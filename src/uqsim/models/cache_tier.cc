#include "uqsim/models/cache_tier.h"

#include <cmath>
#include <stdexcept>

#include "uqsim/models/memcached.h"
#include "uqsim/models/stage_presets.h"

namespace uqsim {
namespace models {

using json::JsonArray;
using json::JsonValue;

JsonValue
cacheTierServiceJson(const CacheTierOptions& options)
{
    if (options.hitProbability < 0.0 || options.hitProbability > 1.0) {
        throw std::invalid_argument(
            "cache tier hit probability must be in [0, 1]");
    }
    // The cache is the memcached listing (stages 0-4: epoll,
    // socket_read, read processing, write processing, socket_send)
    // plus a miss-bookkeeping stage and a hit/miss/fill path split.
    MemcachedOptions base;
    base.serviceName = options.serviceName;
    base.threads = options.threads;
    base.readUs = options.hitUs;
    base.writeUs = options.fillUs;
    base.realProxyNoise = options.realProxyNoise;
    JsonValue doc = memcachedServiceJson(base);

    const double miss_us =
        options.missUs > 0.0 ? options.missUs : kNginxMissHandlingUs;
    JsonValue miss_dist = expUs(miss_us);
    if (options.realProxyNoise)
        miss_dist = withNoise(std::move(miss_dist));
    doc.asObject().at("stages").asArray().push_back(
        processingStage(5, "cache_miss", std::move(miss_dist)));

    const double hit = options.hitProbability;
    JsonArray paths;
    paths.push_back(pathJson(0, "cache_hit", {0, 1, 2, 4}, hit));
    paths.push_back(
        pathJson(1, "cache_miss", {0, 1, 5, 4}, 1.0 - hit));
    // Probability 0: reachable only by explicit path-tree pinning
    // (the fill leg after a miss, and write-through writes).
    paths.push_back(pathJson(2, "cache_fill", {0, 1, 3, 4}, 0.0));
    doc.asObject()["paths"] = JsonValue(std::move(paths));
    return doc;
}

JsonValue
backingStoreServiceJson(const BackingStoreOptions& options)
{
    const double cpu_us =
        options.queryCpuUs > 0.0 ? options.queryCpuUs
                                 : kMongoQueryCpuUs;
    const double disk_mean_ms =
        options.diskMeanMs > 0.0 ? options.diskMeanMs
                                 : kMongoDiskMeanMs;
    JsonValue cpu_dist = expUs(cpu_us);
    if (options.realProxyNoise)
        cpu_dist = withNoise(std::move(cpu_dist));

    JsonValue doc = JsonValue::makeObject();
    doc.asObject()["service_name"] = options.serviceName;
    doc.asObject()["execution_model"] = "multi_threaded";
    doc.asObject()["threads"] = options.threads;

    JsonArray stages;
    stages.push_back(epollStage(0));
    stages.push_back(socketReadStage(1));
    stages.push_back(
        processingStage(2, "query_processing", std::move(cpu_dist)));
    stages.push_back(diskStage(
        3, "disk_read", lognormalUs(disk_mean_ms * 1e3, kMongoDiskCv),
        options.readBytes, "read"));
    stages.push_back(diskStage(
        4, "disk_write", lognormalUs(disk_mean_ms * 1e3, kMongoDiskCv),
        options.writeBytes, "write"));
    stages.push_back(socketSendStage(5));
    doc.asObject()["stages"] = JsonValue(std::move(stages));

    JsonArray paths;
    paths.push_back(pathJson(0, "store_read", {0, 1, 2, 3, 5}, 0.5));
    paths.push_back(pathJson(1, "store_write", {0, 1, 2, 4, 5}, 0.5));
    doc.asObject()["paths"] = JsonValue(std::move(paths));
    return doc;
}

double
effectiveHitRate(double hitProbability, double qps, double keyCount,
                 double ttlSeconds)
{
    if (ttlSeconds <= 0.0 || keyCount <= 0.0 || qps <= 0.0)
        return hitProbability;
    // Stationary Poisson re-reference: a key is re-read at rate
    // qps / keyCount, so the previous fill survived the TTL with
    // probability 1 - exp(-rate * ttl).
    const double survival =
        1.0 - std::exp(-(qps / keyCount) * ttlSeconds);
    return hitProbability * survival;
}

}  // namespace models
}  // namespace uqsim
