#ifndef UQSIM_MODELS_MONGODB_H_
#define UQSIM_MODELS_MONGODB_H_

/**
 * @file
 * MongoDB model.  A query either hits the in-memory working set or
 * misses and pays a disk access — the paper's canonical example of
 * probabilistic execution-path selection (§III-B), with the hit
 * probability a function of working-set size vs. allocated memory.
 * The disk stage occupies a disk channel instead of a core,
 * capturing I/O blocking in the multi-threaded execution model.
 */

#include <cstdint>
#include <string>

#include "uqsim/json/json_value.h"

namespace uqsim {
namespace models {

/** MongoDB model options. */
struct MongoOptions {
    std::string serviceName = "mongodb";
    int threads = 2;
    /** Parallel disk channels (drives). */
    int diskChannels = 2;
    /**
     * Probability that an (unpinned) query hits memory.  Path nodes
     * can pin "query_memory" / "query_disk" explicitly instead.
     */
    double memoryHitProbability = 0.5;
    /** Mean disk access (ms, log-normal); 0 = preset default. */
    double diskMeanMs = 0.0;
    /**
     * Bytes read from disk per missing query ("io_bytes" on the
     * disk stage).  0 (the default) emits no io_bytes/rw keys, so
     * existing service JSON stays byte-identical; set it when the
     * deployment attaches a machines.json disk and queries should
     * contend for shared read bandwidth.
     */
    std::uint64_t diskIoBytes = 0;
    bool realProxyNoise = false;
};

/** Builds the MongoDB service.json document. */
json::JsonValue mongoServiceJson(const MongoOptions& options = {});

}  // namespace models
}  // namespace uqsim

#endif  // UQSIM_MODELS_MONGODB_H_
