#include "uqsim/models/thrift.h"

#include "uqsim/models/stage_presets.h"

namespace uqsim {
namespace models {

using json::JsonArray;
using json::JsonValue;

JsonValue
thriftServiceJson(const ThriftOptions& options)
{
    std::vector<ThriftHandler> handlers = options.handlers;
    if (handlers.empty())
        handlers.push_back(ThriftHandler{"echo", kThriftEchoUs, 1.0});

    JsonValue doc = JsonValue::makeObject();
    doc.asObject()["service_name"] = options.serviceName;
    doc.asObject()["execution_model"] = "multi_threaded";
    doc.asObject()["threads"] = options.threads;

    JsonArray stages;
    stages.push_back(epollStage(0));
    stages.push_back(socketReadStage(1));
    // One processing stage per handler, then a shared send stage.
    const int send_id = 2 + static_cast<int>(handlers.size());
    for (std::size_t i = 0; i < handlers.size(); ++i) {
        JsonValue dist = expUs(handlers[i].meanUs);
        if (options.realProxyNoise)
            dist = withNoise(std::move(dist));
        stages.push_back(processingStage(
            2 + static_cast<int>(i),
            (handlers[i].name + "_processing").c_str(),
            std::move(dist)));
    }
    stages.push_back(socketSendStage(send_id));
    doc.asObject()["stages"] = JsonValue(std::move(stages));

    JsonArray paths;
    for (std::size_t i = 0; i < handlers.size(); ++i) {
        JsonValue path = JsonValue::makeObject();
        path.asObject()["path_id"] = static_cast<int>(i);
        path.asObject()["path_name"] = handlers[i].name;
        JsonArray ids;
        ids.emplace_back(0);
        ids.emplace_back(1);
        ids.emplace_back(2 + static_cast<int>(i));
        ids.emplace_back(send_id);
        path.asObject()["stages"] = JsonValue(std::move(ids));
        path.asObject()["probability"] = handlers[i].probability;
        paths.push_back(std::move(path));
    }
    doc.asObject()["paths"] = JsonValue(std::move(paths));
    return doc;
}

}  // namespace models
}  // namespace uqsim
