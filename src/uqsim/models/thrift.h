#ifndef UQSIM_MODELS_THRIFT_H_
#define UQSIM_MODELS_THRIFT_H_

/**
 * @file
 * Apache Thrift RPC server models (paper §IV-C/D).  A Thrift server
 * shares the event-driven stage structure (epoll, read, process,
 * send); the echo server's processing is the bare RPC handling cost,
 * while application servers (social-network tiers) add their own
 * handler cost and may expose several named handler paths.
 */

#include <string>
#include <vector>

#include "uqsim/json/json_value.h"

namespace uqsim {
namespace models {

/** One RPC handler (an execution path of the server). */
struct ThriftHandler {
    std::string name;
    /** Mean handler processing time (µs, exponential). */
    double meanUs = 20.0;
    /** Selection weight when the handler is not pinned by a path
     *  node. */
    double probability = 1.0;
};

/** Thrift server options. */
struct ThriftOptions {
    std::string serviceName = "thrift";
    int threads = 1;
    std::vector<ThriftHandler> handlers;
    bool realProxyNoise = false;
};

/**
 * Builds a Thrift server service.json.  With no handlers configured
 * a single "echo" handler with the calibrated hello-world cost is
 * used (Fig. 12a).
 */
json::JsonValue thriftServiceJson(const ThriftOptions& options = {});

}  // namespace models
}  // namespace uqsim

#endif  // UQSIM_MODELS_THRIFT_H_
