#ifndef UQSIM_MODELS_CACHE_TIER_H_
#define UQSIM_MODELS_CACHE_TIER_H_

/**
 * @file
 * Cache-tier service model: a memcached-style cache whose execution
 * paths split hit from miss, plus a disk-backed store the miss and
 * fill paths land on.
 *
 * The cache service extends the paper's memcached listing with a
 * cache_miss path (lookup fails, the caller must fetch from the
 * backing store and fill) and a pinned-only cache_fill path
 * (probability 0 — reachable only via explicit path-tree pinning,
 * which is how the application graph models the fill leg of a miss
 * and the write-through leg of a write).  The backing store is a
 * query service whose read and write stages issue sized operations
 * against a machine-attached shared-bandwidth disk (hw::Disk), so
 * concurrent misses contend for real bandwidth instead of sampling
 * independent latencies.
 *
 * The profiled hit rate is an input; TTL/invalidation-driven miss
 * bursts are modeled in closed form by effectiveHitRate(), which
 * discounts the profiled rate by the probability that a key's last
 * refresh survived its TTL under Poisson re-reference.  Together
 * these wire cache-stampede (hit rate collapses, the store
 * saturates), cold-start (hit rate 0), and storage-saturation
 * scenarios end to end.
 */

#include <cstdint>
#include <string>

#include "uqsim/json/json_value.h"

namespace uqsim {
namespace models {

/** Options for the cache service (hit/miss/fill path split). */
struct CacheTierOptions {
    std::string serviceName = "cache";
    int threads = 4;
    /** Probability that a read hits the cache.  Misses take the
     *  cache_miss path; the graph then forwards to the backing
     *  store and returns through the pinned cache_fill path. */
    double hitProbability = 0.9;
    /** Mean hit lookup / miss bookkeeping / fill-store processing
     *  time (µs, exponential); 0 = preset defaults. */
    double hitUs = 0.0;
    double missUs = 0.0;
    double fillUs = 0.0;
    bool realProxyNoise = false;
};

/** Options for the disk-backed store behind the cache. */
struct BackingStoreOptions {
    std::string serviceName = "store";
    int threads = 4;
    /** Mean query CPU time before touching the disk (µs). */
    double queryCpuUs = 0.0;  // 0 = preset default
    /** Mean per-access disk latency (ms, log-normal); rides on top
     *  of the bandwidth term.  0 = preset default. */
    double diskMeanMs = 0.0;
    /** Bytes read per store_read / written per store_write
     *  ("io_bytes" on the disk stages). */
    std::uint64_t readBytes = 65536;
    std::uint64_t writeBytes = 65536;
    bool realProxyNoise = false;
};

/** Builds the cache service.json document (paths: cache_hit,
 *  cache_miss, and pinned-only cache_fill). */
json::JsonValue cacheTierServiceJson(const CacheTierOptions& options = {});

/** Builds the backing-store service.json document (paths:
 *  store_read, store_write; disk stages carry io_bytes/rw). */
json::JsonValue backingStoreServiceJson(
    const BackingStoreOptions& options = {});

/**
 * Profiled hit rate discounted by TTL expiry: a key re-referenced
 * as a Poisson process of rate qps/keyCount only hits if its last
 * fill happened within ttlSeconds, which has probability
 * 1 - exp(-(qps/keyCount) * ttl) in steady state.  ttlSeconds or
 * keyCount <= 0 disables the discount (returns hitProbability).
 * Shrinking the TTL therefore drives deterministic miss bursts —
 * the invalidation-driven stampede input.
 */
double effectiveHitRate(double hitProbability, double qps,
                        double keyCount, double ttlSeconds);

}  // namespace models
}  // namespace uqsim

#endif  // UQSIM_MODELS_CACHE_TIER_H_
