#include "uqsim/models/mongodb.h"

#include "uqsim/models/stage_presets.h"

namespace uqsim {
namespace models {

using json::JsonArray;
using json::JsonValue;

JsonValue
mongoServiceJson(const MongoOptions& options)
{
    const double disk_mean_ms =
        options.diskMeanMs > 0.0 ? options.diskMeanMs : kMongoDiskMeanMs;
    JsonValue cpu_dist = expUs(kMongoQueryCpuUs);
    if (options.realProxyNoise)
        cpu_dist = withNoise(std::move(cpu_dist));

    JsonValue doc = JsonValue::makeObject();
    doc.asObject()["service_name"] = options.serviceName;
    doc.asObject()["execution_model"] = "multi_threaded";
    doc.asObject()["threads"] = options.threads;
    doc.asObject()["disk_channels"] = options.diskChannels;

    JsonArray stages;
    stages.push_back(epollStage(0));
    stages.push_back(socketReadStage(1));
    stages.push_back(
        processingStage(2, "query_processing", std::move(cpu_dist)));
    stages.push_back(diskStage(
        3, "disk_access", lognormalUs(disk_mean_ms * 1e3, kMongoDiskCv),
        options.diskIoBytes,
        options.diskIoBytes > 0 ? "read" : nullptr));
    stages.push_back(socketSendStage(4));
    doc.asObject()["stages"] = JsonValue(std::move(stages));

    const double hit = options.memoryHitProbability;
    JsonArray paths;
    paths.push_back(pathJson(0, "query_memory", {0, 1, 2, 4}, hit));
    paths.push_back(
        pathJson(1, "query_disk", {0, 1, 2, 3, 4}, 1.0 - hit));
    doc.asObject()["paths"] = JsonValue(std::move(paths));
    return doc;
}

}  // namespace models
}  // namespace uqsim
