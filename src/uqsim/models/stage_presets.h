#ifndef UQSIM_MODELS_STAGE_PRESETS_H_
#define UQSIM_MODELS_STAGE_PRESETS_H_

/**
 * @file
 * Reusable stage templates and calibration constants.
 *
 * The paper profiles real applications to obtain per-stage
 * processing-time histograms; we have no testbed, so stage costs are
 * synthetic but calibrated so the paper's stated anchors hold (see
 * DESIGN.md §3): a single-worker NGINX webserver saturates
 * ~8-9 kQPS so that 4-way load balancing saturates ~35 kQPS
 * (Fig. 8), a Thrift echo server saturates just beyond 50 kQPS with
 * <100 µs low-load latency (Fig. 12a), and memcached is never the
 * 2-tier bottleneck (Fig. 5).
 *
 * Because many sources of queueing repeat across microservices,
 * these stage models are shared by every service in the library
 * (the paper's modular reuse).
 */

#include <cstdint>

#include "uqsim/json/json_value.h"

namespace uqsim {
namespace models {

// -- calibration constants (see DESIGN.md §3) -------------------------

/** epoll_wait: base cost plus linear cost per returned event. */
inline constexpr double kEpollBaseUs = 2.0;
inline constexpr double kEpollPerJobUs = 0.8;
inline constexpr int kEpollBatch = 8;

/** socket read/write: base plus per-byte copy cost. */
inline constexpr double kSocketBaseUs = 1.0;
inline constexpr double kSocketReadPerByteNs = 2.0;
inline constexpr double kSocketSendPerByteNs = 1.0;
inline constexpr int kSocketReadBatch = 4;

/** Request processing means (exponential unless noted). */
inline constexpr double kMemcachedReadUs = 8.0;
inline constexpr double kMemcachedWriteUs = 10.0;
inline constexpr double kNginxStaticUs = 105.0;
inline constexpr double kNginxForwardUs = 60.0;
inline constexpr double kNginxResponseUs = 40.0;
inline constexpr double kNginxProxyForwardUs = 25.0;
inline constexpr double kNginxProxyResponseUs = 15.0;
inline constexpr double kNginxMissHandlingUs = 20.0;
inline constexpr double kThriftEchoUs = 15.0;
inline constexpr double kMongoQueryCpuUs = 50.0;
/** MongoDB disk access: log-normal (mean 4 ms, cv 0.45). */
inline constexpr double kMongoDiskMeanMs = 4.0;
inline constexpr double kMongoDiskCv = 0.45;

/** Per-machine soft-irq packet handling (exponential mean). */
inline constexpr double kIrqPerPacketUs = 8.0;

// -- JSON builders -----------------------------------------------------

/** {"type": "exponential", "mean": <us * 1e-6>} */
json::JsonValue expUs(double mean_us);

/** {"type": "deterministic", "value": <us * 1e-6>} */
json::JsonValue detUs(double value_us);

/** Log-normal spec from mean (us) and coefficient of variation. */
json::JsonValue lognormalUs(double mean_us, double cv);

/**
 * Wraps a distribution spec in a noise mixture used by the
 * "real-proxy" mode: with probability @p spike_prob the sample is
 * drawn from the base distribution scaled by @p spike_factor
 * (timeouts, OS jitter — the effects the paper says the simulator
 * omits).
 */
json::JsonValue withNoise(json::JsonValue base, double spike_prob = 0.01,
                          double spike_factor = 6.0);

/** "service_time" object. */
json::JsonValue serviceTimeJson(json::JsonValue base_spec,
                                double per_job_us = 0.0,
                                double per_byte_ns = 0.0,
                                double freq_exponent = 1.0);

/** Full stage object for the "stages" array. */
json::JsonValue stageJson(int id, const char* name,
                          const char* queue_type, bool batching,
                          int batch_limit, json::JsonValue service_time,
                          const char* resource = "cpu");

/** The canonical epoll stage (per-connection batched subqueues). */
json::JsonValue epollStage(int id);

/** The canonical socket_read stage (per-byte cost, batched). */
json::JsonValue socketReadStage(int id);

/** The canonical socket_send stage. */
json::JsonValue socketSendStage(int id);

/** A CPU processing stage with the given base distribution. */
json::JsonValue processingStage(int id, const char* name,
                                json::JsonValue dist_spec);

/**
 * A disk I/O stage (occupies a disk channel, not a core).  When
 * @p io_bytes > 0 the stage moves that many bytes per job against a
 * machine-attached shared disk in direction @p rw ("read" or
 * "write"); the defaults emit neither key, keeping existing service
 * JSON byte-identical.
 */
json::JsonValue diskStage(int id, const char* name,
                          json::JsonValue dist_spec,
                          std::uint64_t io_bytes = 0,
                          const char* rw = nullptr);

/** A path object {"path_id", "path_name", "stages", "probability"}. */
json::JsonValue pathJson(int id, const char* name,
                         std::initializer_list<int> stage_ids,
                         double probability = 1.0);

}  // namespace models
}  // namespace uqsim

#endif  // UQSIM_MODELS_STAGE_PRESETS_H_
