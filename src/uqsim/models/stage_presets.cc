#include "uqsim/models/stage_presets.h"

namespace uqsim {
namespace models {

using json::JsonArray;
using json::JsonValue;

JsonValue
expUs(double mean_us)
{
    JsonValue spec = JsonValue::makeObject();
    spec.asObject()["type"] = "exponential";
    spec.asObject()["mean"] = mean_us * 1e-6;
    return spec;
}

JsonValue
detUs(double value_us)
{
    JsonValue spec = JsonValue::makeObject();
    spec.asObject()["type"] = "deterministic";
    spec.asObject()["value"] = value_us * 1e-6;
    return spec;
}

JsonValue
lognormalUs(double mean_us, double cv)
{
    JsonValue spec = JsonValue::makeObject();
    spec.asObject()["type"] = "lognormal";
    spec.asObject()["mean"] = mean_us * 1e-6;
    spec.asObject()["cv"] = cv;
    return spec;
}

JsonValue
withNoise(JsonValue base, double spike_prob, double spike_factor)
{
    JsonValue spike = JsonValue::makeObject();
    spike.asObject()["type"] = "scaled";
    spike.asObject()["base"] = base;
    spike.asObject()["factor"] = spike_factor;

    JsonValue mixture = JsonValue::makeObject();
    mixture.asObject()["type"] = "mixture";
    mixture.asObject()["a"] = std::move(base);
    mixture.asObject()["b"] = std::move(spike);
    mixture.asObject()["p_b"] = spike_prob;
    return mixture;
}

JsonValue
serviceTimeJson(JsonValue base_spec, double per_job_us, double per_byte_ns,
                double freq_exponent)
{
    JsonValue time = JsonValue::makeObject();
    time.asObject()["base"] = std::move(base_spec);
    if (per_job_us != 0.0)
        time.asObject()["per_job_us"] = per_job_us;
    if (per_byte_ns != 0.0)
        time.asObject()["per_byte_ns"] = per_byte_ns;
    if (freq_exponent != 1.0)
        time.asObject()["freq_exponent"] = freq_exponent;
    return time;
}

JsonValue
stageJson(int id, const char* name, const char* queue_type, bool batching,
          int batch_limit, JsonValue service_time, const char* resource)
{
    JsonValue stage = JsonValue::makeObject();
    stage.asObject()["stage_name"] = name;
    stage.asObject()["stage_id"] = id;
    stage.asObject()["queue_type"] = queue_type;
    stage.asObject()["batching"] = batching;
    if (batch_limit > 0)
        stage.asObject()["queue_parameter"] = batch_limit;
    stage.asObject()["service_time"] = std::move(service_time);
    stage.asObject()["resource"] = resource;
    return stage;
}

JsonValue
epollStage(int id)
{
    return stageJson(id, "epoll", "epoll", true, kEpollBatch,
                     serviceTimeJson(detUs(kEpollBaseUs),
                                     kEpollPerJobUs));
}

JsonValue
socketReadStage(int id)
{
    return stageJson(id, "socket_read", "socket", true, kSocketReadBatch,
                     serviceTimeJson(detUs(kSocketBaseUs), 0.0,
                                     kSocketReadPerByteNs));
}

JsonValue
socketSendStage(int id)
{
    return stageJson(id, "socket_send", "single", false, 0,
                     serviceTimeJson(detUs(kSocketBaseUs), 0.0,
                                     kSocketSendPerByteNs));
}

JsonValue
processingStage(int id, const char* name, JsonValue dist_spec)
{
    return stageJson(id, name, "single", false, 0,
                     serviceTimeJson(std::move(dist_spec)));
}

JsonValue
diskStage(int id, const char* name, JsonValue dist_spec,
          std::uint64_t io_bytes, const char* rw)
{
    // Disk time is frequency-insensitive (freq_exponent 0).
    JsonValue stage =
        stageJson(id, name, "single", false, 0,
                  serviceTimeJson(std::move(dist_spec), 0.0, 0.0, 0.0),
                  "disk");
    if (io_bytes > 0)
        stage.asObject()["io_bytes"] =
            static_cast<std::int64_t>(io_bytes);
    if (rw != nullptr)
        stage.asObject()["rw"] = rw;
    return stage;
}

JsonValue
pathJson(int id, const char* name, std::initializer_list<int> stage_ids,
         double probability)
{
    JsonValue path = JsonValue::makeObject();
    path.asObject()["path_id"] = id;
    path.asObject()["path_name"] = name;
    JsonArray stages;
    for (int stage : stage_ids)
        stages.emplace_back(stage);
    path.asObject()["stages"] = JsonValue(std::move(stages));
    if (probability != 1.0)
        path.asObject()["probability"] = probability;
    return path;
}

}  // namespace models
}  // namespace uqsim
