#include "uqsim/models/nginx.h"

#include "uqsim/models/stage_presets.h"

namespace uqsim {
namespace models {

using json::JsonArray;
using json::JsonValue;

namespace {

JsonValue
nginxBase(const NginxOptions& options)
{
    JsonValue doc = JsonValue::makeObject();
    doc.asObject()["service_name"] = options.serviceName;
    // NGINX worker processes are single-threaded event loops; each
    // worker is one "thread" pinned to one core.
    doc.asObject()["execution_model"] = "multi_threaded";
    doc.asObject()["threads"] = options.workers;
    return doc;
}

JsonValue
maybeNoise(JsonValue spec, const NginxOptions& options)
{
    return options.realProxyNoise ? withNoise(std::move(spec))
                                  : std::move(spec);
}

}  // namespace

JsonValue
nginxWebserverJson(const NginxOptions& options)
{
    JsonValue doc = nginxBase(options);
    JsonArray stages;
    stages.push_back(epollStage(0));
    stages.push_back(socketReadStage(1));
    stages.push_back(processingStage(
        2, "nginx_processing",
        maybeNoise(expUs(kNginxStaticUs), options)));
    stages.push_back(socketSendStage(3));
    doc.asObject()["stages"] = JsonValue(std::move(stages));
    JsonArray paths;
    paths.push_back(pathJson(0, "serve", {0, 1, 2, 3}));
    doc.asObject()["paths"] = JsonValue(std::move(paths));
    return doc;
}

JsonValue
nginxProxyJson(const NginxOptions& options)
{
    JsonValue doc = nginxBase(options);
    JsonArray stages;
    stages.push_back(epollStage(0));
    stages.push_back(socketReadStage(1));
    stages.push_back(processingStage(
        2, "proxy_forward_processing",
        maybeNoise(expUs(kNginxProxyForwardUs), options)));
    stages.push_back(processingStage(
        3, "proxy_response_processing",
        maybeNoise(expUs(kNginxProxyResponseUs), options)));
    stages.push_back(socketSendStage(4));
    doc.asObject()["stages"] = JsonValue(std::move(stages));
    JsonArray paths;
    paths.push_back(pathJson(0, "proxy_forward", {0, 1, 2, 4}));
    paths.push_back(pathJson(1, "proxy_response", {0, 1, 3, 4}));
    doc.asObject()["paths"] = JsonValue(std::move(paths));
    return doc;
}

JsonValue
nginxCacheFrontendJson(const NginxOptions& options)
{
    JsonValue doc = nginxBase(options);
    JsonArray stages;
    stages.push_back(epollStage(0));
    stages.push_back(socketReadStage(1));
    stages.push_back(processingStage(
        2, "request_processing",
        maybeNoise(expUs(kNginxForwardUs), options)));
    stages.push_back(processingStage(
        3, "response_processing",
        maybeNoise(expUs(kNginxResponseUs), options)));
    stages.push_back(processingStage(
        4, "miss_processing",
        maybeNoise(expUs(kNginxMissHandlingUs), options)));
    stages.push_back(socketSendStage(5));
    doc.asObject()["stages"] = JsonValue(std::move(stages));
    JsonArray paths;
    paths.push_back(pathJson(0, "request", {0, 1, 2, 5}));
    paths.push_back(pathJson(1, "response", {0, 1, 3, 5}));
    paths.push_back(pathJson(2, "miss_forward", {0, 1, 4, 5}));
    paths.push_back(pathJson(3, "miss_store", {0, 1, 4, 5}));
    doc.asObject()["paths"] = JsonValue(std::move(paths));
    return doc;
}

}  // namespace models
}  // namespace uqsim
