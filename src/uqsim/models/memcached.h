#ifndef UQSIM_MODELS_MEMCACHED_H_
#define UQSIM_MODELS_MEMCACHED_H_

/**
 * @file
 * The memcached model from the paper's Listing 1: stages epoll ->
 * socket_read -> memcached_processing -> socket_send, with
 * deterministic read and write execution paths.  Read and write use
 * separate processing stages so each carries its own processing-time
 * distribution, which is what the paper's per-path distributions
 * express.
 */

#include <string>

#include "uqsim/json/json_value.h"

namespace uqsim {
namespace models {

/** Options for the memcached service model. */
struct MemcachedOptions {
    std::string serviceName = "memcached";
    int threads = 4;
    /** Mean read / write processing time (µs, exponential). */
    double readUs = 0.0;   // 0 = preset default
    double writeUs = 0.0;  // 0 = preset default
    /** Add real-proxy noise spikes to processing stages. */
    bool realProxyNoise = false;
};

/** Builds the memcached service.json document. */
json::JsonValue memcachedServiceJson(const MemcachedOptions& options = {});

}  // namespace models
}  // namespace uqsim

#endif  // UQSIM_MODELS_MEMCACHED_H_
