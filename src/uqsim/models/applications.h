#ifndef UQSIM_MODELS_APPLICATIONS_H_
#define UQSIM_MODELS_APPLICATIONS_H_

/**
 * @file
 * End-to-end application builders: every validation and case-study
 * system from the paper, assembled as a ConfigBundle (the five JSON
 * inputs of Table I) ready for Simulation::fromBundle().
 *
 *  - 2-tier NGINX-memcached (Fig. 4a / Fig. 5)
 *  - 3-tier NGINX-memcached-MongoDB (Fig. 4b / Fig. 6)
 *  - NGINX load balancing (Fig. 7 / Fig. 8)
 *  - NGINX request fan-out (Fig. 9 / Fig. 10)
 *  - Thrift echo RPC (Fig. 12a)
 *  - Social network (Fig. 11 / Fig. 12b)
 *  - Tail-at-scale fan-out cluster (Fig. 14)
 *  - Power-management 2-tier deployment (Figs. 15/16, Table III)
 */

#include <string>

#include "uqsim/core/sim/config.h"

namespace uqsim {
namespace models {

/** Run-control parameters shared by all bundles. */
struct RunParams {
    double qps = 1000.0;
    std::uint64_t seed = 1;
    double warmupSeconds = 0.5;
    double durationSeconds = 3.5;
    int clientConnections = 320;
    /** Enable the real-proxy noise model (see DESIGN.md §3). */
    bool realProxyNoise = false;
};

/** 2-tier NGINX-memcached parameters. */
struct TwoTierParams {
    RunParams run;
    int nginxWorkers = 8;
    int memcachedThreads = 4;
};

/** 3-tier NGINX-memcached-MongoDB parameters. */
struct ThreeTierParams {
    RunParams run;
    int nginxWorkers = 8;
    int memcachedThreads = 2;
    /** Cache miss probability (requests that reach MongoDB). */
    double missRate = 0.1;
};

/** Load-balancing validation parameters (Fig. 7). */
struct LoadBalancerParams {
    RunParams run;
    /** Scale-out factor: number of webserver instances. */
    int webServers = 4;
    int proxyWorkers = 8;
};

/** Request fan-out validation parameters (Fig. 9). */
struct FanoutParams {
    RunParams run;
    /** Fan-out factor: leaves contacted per request. */
    int fanout = 4;
    int proxyWorkers = 8;
    /** Paper: each requested webpage is 612 bytes. */
    int responseBytes = 612;
};

/**
 * Fan-out case study deployed on a *generated* fat-tree cluster
 * (machines.json schema v2, flow network model; hw/topology.h).
 * With a large responseBytes every leaf's reply converges on the
 * proxy host's edge down-link — the incast scenario the constant
 * model cannot express.
 */
struct FanoutFatTreeParams {
    RunParams run;
    /** Leaves contacted per request, each pinned to its own host;
     *  needs fanout + 1 <= generated host count. */
    int fanout = 16;
    int proxyWorkers = 8;
    /** Bytes each leaf sends back to the proxy (incast payload). */
    int responseBytes = 64 * 1024;
    /** Fat-tree shape: hosts = arity * (arity/2)^2 *
     *  oversubscription (64 for the 4-ary, 4x oversubscribed
     *  default). */
    int arity = 4;
    double oversubscription = 4.0;
    double hostGbps = 10.0;
    double fabricGbps = 10.0;
    double linkLatencyUs = 1.0;
};

/** Thrift hello-world parameters (Fig. 12a). */
struct ThriftEchoParams {
    RunParams run;
    int serverThreads = 1;
};

/** Social network parameters (Fig. 11). */
struct SocialNetworkParams {
    RunParams run;
    int frontendThreads = 4;
    int logicThreads = 2;
    /** Probability a request needs the media branch. */
    double mediaProbability = 0.25;
    /** Probability the post lookup misses the cache. */
    double postMissProbability = 0.2;
    /**
     * Storage tier (opt-in): attach a shared-bandwidth disk of this
     * read bandwidth (MB/s) to the post-storage machine and have
     * missing post lookups read postIoBytes from it, so concurrent
     * misses contend instead of sampling independent latencies.
     * 0 (the default) keeps the legacy disk-channel model and the
     * bundle byte-identical.
     */
    double postDiskMBps = 0.0;
    /** Write bandwidth (MB/s); 0 mirrors postDiskMBps. */
    double postDiskWriteMBps = 0.0;
    /** Disk queue depth; 0 = unbounded. */
    int postDiskQueueDepth = 0;
    /** Bytes read from disk per missing post query. */
    std::uint64_t postIoBytes = 65536;
};

/** Tail-at-scale parameters (Fig. 14, paper §V-A). */
struct TailAtScaleParams {
    RunParams run;
    /** Cluster size; a request fans out to every server. */
    int clusterSize = 100;
    /** Fraction of servers that are slow (10x mean service). */
    double slowFraction = 0.01;
    /** Mean leaf service time (seconds, exponential). */
    double leafMeanSeconds = 1e-3;
    /** Slow-server service time multiplier. */
    double slowFactor = 10.0;
};

/**
 * Cache-stampede case study: client -> cache tier -> disk-backed
 * store.  Reads hit the cache with effectiveHitRate(hitRate, qps,
 * keyCount, ttlSeconds); misses fetch from the store (whose disk
 * reads contend for shared bandwidth) and fill the cache; writes go
 * write-through (cache fill + store write).  Sweeping hitRate (or
 * shrinking ttlSeconds) collapses the hit rate and saturates the
 * backing disk — the stampede/cold-start/storage-saturation family
 * on one bundle.
 */
struct CacheStampedeParams {
    RunParams run;
    int cacheThreads = 4;
    int storeThreads = 4;
    /** Profiled cache hit rate before TTL discounting. */
    double hitRate = 0.9;
    /** TTL discount inputs (see effectiveHitRate); ttlSeconds 0
     *  disables the discount. */
    double ttlSeconds = 0.0;
    double keyCount = 0.0;
    /** Fraction of requests that are writes (write-through). */
    double writeFraction = 0.1;
    /** Bytes per store disk read / write. */
    std::uint64_t readBytes = 65536;
    std::uint64_t writeBytes = 65536;
    /** Store disk: bandwidth (MB/s) and queue depth. */
    double diskReadMBps = 200.0;
    double diskWriteMBps = 0.0;  // 0 mirrors read
    int diskQueueDepth = 32;
    /** Mean per-access latency (ms, log-normal) on top of the
     *  bandwidth term.  Kept small so contention for bandwidth —
     *  not a constant seek cost — dominates the saturated regime. */
    double diskAccessMs = 0.5;
};

/** Power-management deployment parameters (paper §V-B). */
struct PowerTwoTierParams {
    RunParams run;
    int nginxWorkers = 2;
    int memcachedThreads = 2;
    /** Diurnal load (Fig. 15).  The defaults push the peak close to
     *  the 2-worker NGINX capacity (~18.5 kQPS at nominal
     *  frequency) so the QoS target is actually contested and the
     *  power manager must track the ramps. */
    double baseQps = 9000.0;
    double amplitudeQps = 7000.0;
    double periodSeconds = 60.0;
    /**
     * Number of evenly spaced frequency steps between 1.2 and
     * 2.6 GHz; 0 keeps the paper's 8-step DVFS table.  Large values
     * approximate fine-grained mechanisms (RAPL), the paper's
     * suggested fix for the 2 ms-vs-5 ms convergence gap.
     */
    int dvfsSteps = 0;
};

ConfigBundle twoTierBundle(const TwoTierParams& params);
ConfigBundle threeTierBundle(const ThreeTierParams& params);
ConfigBundle loadBalancerBundle(const LoadBalancerParams& params);
ConfigBundle fanoutBundle(const FanoutParams& params);
ConfigBundle fanoutFatTreeBundle(const FanoutFatTreeParams& params);
ConfigBundle thriftEchoBundle(const ThriftEchoParams& params);
ConfigBundle socialNetworkBundle(const SocialNetworkParams& params);
ConfigBundle cacheStampedeBundle(const CacheStampedeParams& params);
ConfigBundle tailAtScaleBundle(const TailAtScaleParams& params);
ConfigBundle powerTwoTierBundle(const PowerTwoTierParams& params);

/**
 * Writes a bundle to @p directory in the on-disk layout
 * ConfigBundle::fromDirectory() reads (machines.json, graph.json,
 * path.json, client.json, options.json, services/<name>.json).
 */
void writeBundle(const ConfigBundle& bundle,
                 const std::string& directory);

}  // namespace models
}  // namespace uqsim

#endif  // UQSIM_MODELS_APPLICATIONS_H_
