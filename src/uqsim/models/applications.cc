#include "uqsim/models/applications.h"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "uqsim/json/json_writer.h"
#include "uqsim/models/cache_tier.h"
#include "uqsim/models/memcached.h"
#include "uqsim/models/mongodb.h"
#include "uqsim/models/nginx.h"
#include "uqsim/models/stage_presets.h"
#include "uqsim/models/thrift.h"

namespace uqsim {
namespace models {

using json::JsonArray;
using json::JsonValue;

namespace {

JsonValue
machineJson(const std::string& name, int cores, int irq_cores,
            double irq_per_packet_us = kIrqPerPacketUs)
{
    JsonValue machine = JsonValue::makeObject();
    machine.asObject()["name"] = name;
    machine.asObject()["cores"] = cores;
    machine.asObject()["irq_cores"] = irq_cores;
    machine.asObject()["irq_per_packet_us"] = irq_per_packet_us;
    return machine;
}

JsonValue
machinesJson(JsonArray machines, double wire_us = 20.0,
             double loopback_us = 5.0)
{
    JsonValue doc = JsonValue::makeObject();
    doc.asObject()["wire_latency_us"] = wire_us;
    doc.asObject()["loopback_latency_us"] = loopback_us;
    doc.asObject()["machines"] = JsonValue(std::move(machines));
    return doc;
}

JsonValue
instanceJson(const std::string& machine, int threads, int cores = 0,
             int disk_channels = 0, bool own_dvfs = false)
{
    JsonValue inst = JsonValue::makeObject();
    inst.asObject()["machine"] = machine;
    inst.asObject()["threads"] = threads;
    if (cores > 0)
        inst.asObject()["cores"] = cores;
    if (disk_channels > 0)
        inst.asObject()["disk_channels"] = disk_channels;
    if (own_dvfs)
        inst.asObject()["own_dvfs"] = true;
    return inst;
}

JsonValue
serviceDeployJson(const std::string& service, JsonArray instances,
                  std::vector<std::pair<std::string, int>> pools = {})
{
    JsonValue svc = JsonValue::makeObject();
    svc.asObject()["service"] = service;
    if (!pools.empty()) {
        JsonValue pool_obj = JsonValue::makeObject();
        for (const auto& [downstream, size] : pools)
            pool_obj.asObject()[downstream] = size;
        svc.asObject()["connection_pools"] = std::move(pool_obj);
    }
    svc.asObject()["instances"] = JsonValue(std::move(instances));
    return svc;
}

JsonValue
graphJson(JsonArray services)
{
    JsonValue doc = JsonValue::makeObject();
    doc.asObject()["services"] = JsonValue(std::move(services));
    return doc;
}

struct NodeOpts {
    int instance = -1;
    int requestBytes = 0;
    bool blockOnEnter = false;
    std::string unblockService;
};

JsonValue
nodeJson(int id, const std::string& service, const std::string& path,
         std::vector<int> children, const NodeOpts& opts = {})
{
    JsonValue node = JsonValue::makeObject();
    node.asObject()["node_id"] = id;
    node.asObject()["service"] = service;
    if (!path.empty())
        node.asObject()["path"] = path;
    JsonArray kids;
    for (int child : children)
        kids.emplace_back(child);
    node.asObject()["children"] = JsonValue(std::move(kids));
    if (opts.instance >= 0)
        node.asObject()["instance"] = opts.instance;
    if (opts.requestBytes > 0)
        node.asObject()["request_bytes"] = opts.requestBytes;
    if (opts.blockOnEnter) {
        JsonArray ops;
        JsonValue op = JsonValue::makeObject();
        op.asObject()["op"] = "block_connection";
        ops.push_back(std::move(op));
        node.asObject()["on_enter"] = JsonValue(std::move(ops));
    }
    if (!opts.unblockService.empty()) {
        JsonArray ops;
        JsonValue op = JsonValue::makeObject();
        op.asObject()["op"] = "unblock_connection";
        op.asObject()["service"] = opts.unblockService;
        ops.push_back(std::move(op));
        node.asObject()["on_leave"] = JsonValue(std::move(ops));
    }
    return node;
}

JsonValue
variantJson(double probability, JsonArray nodes)
{
    JsonValue variant = JsonValue::makeObject();
    variant.asObject()["probability"] = probability;
    variant.asObject()["nodes"] = JsonValue(std::move(nodes));
    return variant;
}

JsonValue
pathDocJson(JsonArray variants)
{
    JsonValue doc = JsonValue::makeObject();
    doc.asObject()["paths"] = JsonValue(std::move(variants));
    return doc;
}

JsonValue
constantLoadJson(double qps)
{
    JsonValue load = JsonValue::makeObject();
    load.asObject()["type"] = "constant";
    load.asObject()["qps"] = qps;
    return load;
}

JsonValue
clientJson(const std::string& front_service, int connections,
           JsonValue load, JsonValue request_bytes)
{
    JsonValue doc = JsonValue::makeObject();
    doc.asObject()["front_service"] = front_service;
    doc.asObject()["connections"] = connections;
    doc.asObject()["arrival"] = "poisson";
    doc.asObject()["load"] = std::move(load);
    doc.asObject()["request_bytes"] = std::move(request_bytes);
    return doc;
}

/** Paper: request value sizes are exponentially distributed. */
JsonValue
requestBytesSpec(double mean = 128.0)
{
    JsonValue spec = JsonValue::makeObject();
    spec.asObject()["type"] = "exponential";
    spec.asObject()["mean"] = mean;
    return spec;
}

SimulationOptions
makeOptions(const RunParams& run)
{
    SimulationOptions options;
    options.seed = run.seed;
    options.warmupSeconds = run.warmupSeconds;
    options.durationSeconds = run.durationSeconds;
    return options;
}

/** Attaches a shared-bandwidth disk (machines.json "disks" array)
 *  to an existing machine document. */
void
attachDisk(JsonValue& machine, const char* disk_name,
           double read_mbps, double write_mbps, int queue_depth)
{
    JsonValue disk = JsonValue::makeObject();
    disk.asObject()["name"] = disk_name;
    disk.asObject()["read_mbps"] = read_mbps;
    if (write_mbps > 0.0)
        disk.asObject()["write_mbps"] = write_mbps;
    if (queue_depth > 0)
        disk.asObject()["queue_depth"] = queue_depth;
    JsonArray disks;
    disks.push_back(std::move(disk));
    machine.asObject()["disks"] = JsonValue(std::move(disks));
}

}  // namespace

// ------------------------------------------------------------ 2-tier

ConfigBundle
twoTierBundle(const TwoTierParams& params)
{
    ConfigBundle bundle;
    bundle.options = makeOptions(params.run);

    NginxOptions nginx;
    nginx.serviceName = "nginx";
    nginx.workers = params.nginxWorkers;
    nginx.realProxyNoise = params.run.realProxyNoise;
    MemcachedOptions memcached;
    memcached.threads = params.memcachedThreads;
    memcached.realProxyNoise = params.run.realProxyNoise;
    bundle.services.push_back(nginxCacheFrontendJson(nginx));
    bundle.services.push_back(memcachedServiceJson(memcached));

    JsonArray machines;
    machines.push_back(machineJson("server0", 20, 4));
    bundle.machines = machinesJson(std::move(machines));

    JsonArray deploys;
    {
        JsonArray instances;
        instances.push_back(
            instanceJson("server0", params.nginxWorkers));
        deploys.push_back(serviceDeployJson(
            "nginx", std::move(instances),
            {{"memcached", 2 * params.nginxWorkers}}));
    }
    {
        JsonArray instances;
        instances.push_back(
            instanceJson("server0", params.memcachedThreads));
        deploys.push_back(
            serviceDeployJson("memcached", std::move(instances)));
    }
    bundle.graph = graphJson(std::move(deploys));

    JsonArray nodes;
    NodeOpts block;
    block.blockOnEnter = true;
    nodes.push_back(nodeJson(0, "nginx", "request", {1}, block));
    nodes.push_back(nodeJson(1, "memcached", "memcached_read", {2}));
    NodeOpts respond;
    respond.unblockService = "nginx";
    respond.requestBytes = 640;
    nodes.push_back(nodeJson(2, "nginx", "response", {}, respond));
    JsonArray variants;
    variants.push_back(variantJson(1.0, std::move(nodes)));
    bundle.paths = pathDocJson(std::move(variants));

    bundle.client = clientJson("nginx", params.run.clientConnections,
                               constantLoadJson(params.run.qps),
                               requestBytesSpec());
    return bundle;
}

// ------------------------------------------------------------ 3-tier

ConfigBundle
threeTierBundle(const ThreeTierParams& params)
{
    ConfigBundle bundle;
    bundle.options = makeOptions(params.run);

    NginxOptions nginx;
    nginx.serviceName = "nginx";
    nginx.workers = params.nginxWorkers;
    nginx.realProxyNoise = params.run.realProxyNoise;
    MemcachedOptions memcached;
    memcached.threads = params.memcachedThreads;
    memcached.realProxyNoise = params.run.realProxyNoise;
    MongoOptions mongo;
    mongo.realProxyNoise = params.run.realProxyNoise;
    bundle.services.push_back(nginxCacheFrontendJson(nginx));
    bundle.services.push_back(memcachedServiceJson(memcached));
    bundle.services.push_back(mongoServiceJson(mongo));

    JsonArray machines;
    machines.push_back(machineJson("server0", 20, 4));
    machines.push_back(machineJson("server1", 8, 2));
    bundle.machines = machinesJson(std::move(machines));

    JsonArray deploys;
    {
        JsonArray instances;
        instances.push_back(
            instanceJson("server0", params.nginxWorkers));
        deploys.push_back(serviceDeployJson(
            "nginx", std::move(instances),
            {{"memcached", 2 * params.nginxWorkers},
             {"mongodb", params.nginxWorkers}}));
    }
    {
        JsonArray instances;
        instances.push_back(
            instanceJson("server0", params.memcachedThreads));
        deploys.push_back(
            serviceDeployJson("memcached", std::move(instances)));
    }
    {
        JsonArray instances;
        instances.push_back(instanceJson("server1", 2, 2, 2));
        deploys.push_back(
            serviceDeployJson("mongodb", std::move(instances)));
    }
    bundle.graph = graphJson(std::move(deploys));

    NodeOpts block;
    block.blockOnEnter = true;
    NodeOpts respond;
    respond.unblockService = "nginx";
    respond.requestBytes = 640;

    // Hit variant: identical to the 2-tier flow.
    JsonArray hit_nodes;
    hit_nodes.push_back(nodeJson(0, "nginx", "request", {1}, block));
    hit_nodes.push_back(
        nodeJson(1, "memcached", "memcached_read", {2}));
    hit_nodes.push_back(nodeJson(2, "nginx", "response", {}, respond));

    // Miss variant: cache read misses, NGINX queries MongoDB (disk
    // path) and write-allocates the result into memcached.
    JsonArray miss_nodes;
    miss_nodes.push_back(nodeJson(0, "nginx", "request", {1}, block));
    miss_nodes.push_back(
        nodeJson(1, "memcached", "memcached_read", {2}));
    miss_nodes.push_back(nodeJson(2, "nginx", "miss_forward", {3}));
    miss_nodes.push_back(nodeJson(3, "mongodb", "query_disk", {4}));
    miss_nodes.push_back(nodeJson(4, "nginx", "miss_store", {5}));
    miss_nodes.push_back(
        nodeJson(5, "memcached", "memcached_write", {6}));
    miss_nodes.push_back(nodeJson(6, "nginx", "response", {}, respond));

    JsonArray variants;
    variants.push_back(
        variantJson(1.0 - params.missRate, std::move(hit_nodes)));
    variants.push_back(
        variantJson(params.missRate, std::move(miss_nodes)));
    bundle.paths = pathDocJson(std::move(variants));

    bundle.client = clientJson("nginx", params.run.clientConnections,
                               constantLoadJson(params.run.qps),
                               requestBytesSpec());
    return bundle;
}

// ----------------------------------------------------- load balancing

ConfigBundle
loadBalancerBundle(const LoadBalancerParams& params)
{
    if (params.webServers <= 0)
        throw std::invalid_argument("webServers must be > 0");
    ConfigBundle bundle;
    bundle.options = makeOptions(params.run);

    NginxOptions proxy;
    proxy.serviceName = "nginx_lb";
    proxy.workers = params.proxyWorkers;
    proxy.realProxyNoise = params.run.realProxyNoise;
    NginxOptions web;
    web.serviceName = "nginx_web";
    web.workers = 1;
    web.realProxyNoise = params.run.realProxyNoise;
    bundle.services.push_back(nginxProxyJson(proxy));
    bundle.services.push_back(nginxWebserverJson(web));

    JsonArray machines;
    machines.push_back(
        machineJson("lb_server", params.proxyWorkers + 4, 4));
    for (int i = 0; i < params.webServers; ++i) {
        machines.push_back(
            machineJson("web" + std::to_string(i), 4, 2));
    }
    bundle.machines = machinesJson(std::move(machines));

    JsonArray deploys;
    {
        JsonArray instances;
        instances.push_back(
            instanceJson("lb_server", params.proxyWorkers));
        deploys.push_back(serviceDeployJson(
            "nginx_lb", std::move(instances), {{"nginx_web", 16}}));
    }
    {
        JsonArray instances;
        for (int i = 0; i < params.webServers; ++i)
            instances.push_back(
                instanceJson("web" + std::to_string(i), 1));
        deploys.push_back(
            serviceDeployJson("nginx_web", std::move(instances)));
    }
    bundle.graph = graphJson(std::move(deploys));

    NodeOpts block;
    block.blockOnEnter = true;
    NodeOpts respond;
    respond.unblockService = "nginx_lb";
    respond.requestBytes = 612;
    JsonArray nodes;
    nodes.push_back(
        nodeJson(0, "nginx_lb", "proxy_forward", {1}, block));
    nodes.push_back(nodeJson(1, "nginx_web", "serve", {2}));
    nodes.push_back(
        nodeJson(2, "nginx_lb", "proxy_response", {}, respond));
    JsonArray variants;
    variants.push_back(variantJson(1.0, std::move(nodes)));
    bundle.paths = pathDocJson(std::move(variants));

    bundle.client =
        clientJson("nginx_lb", params.run.clientConnections,
                   constantLoadJson(params.run.qps),
                   requestBytesSpec());
    return bundle;
}

// ------------------------------------------------------------ fan-out

ConfigBundle
fanoutBundle(const FanoutParams& params)
{
    if (params.fanout <= 0)
        throw std::invalid_argument("fanout must be > 0");
    ConfigBundle bundle;
    bundle.options = makeOptions(params.run);

    NginxOptions proxy;
    proxy.serviceName = "nginx_fanout";
    proxy.workers = params.proxyWorkers;
    proxy.realProxyNoise = params.run.realProxyNoise;
    NginxOptions web;
    web.serviceName = "nginx_web";
    web.workers = 1;
    web.realProxyNoise = params.run.realProxyNoise;
    bundle.services.push_back(nginxProxyJson(proxy));
    bundle.services.push_back(nginxWebserverJson(web));

    // Paper setup: 1 core and 1 thread per fan-out service; 4 cores
    // dedicated to network interrupts.
    JsonArray machines;
    machines.push_back(
        machineJson("fanout_server", params.proxyWorkers + 4, 4));
    for (int i = 0; i < params.fanout; ++i) {
        machines.push_back(
            machineJson("web" + std::to_string(i), 4, 2));
    }
    bundle.machines = machinesJson(std::move(machines));

    JsonArray deploys;
    {
        JsonArray instances;
        instances.push_back(
            instanceJson("fanout_server", params.proxyWorkers));
        deploys.push_back(serviceDeployJson(
            "nginx_fanout", std::move(instances), {{"nginx_web", 16}}));
    }
    {
        JsonArray instances;
        for (int i = 0; i < params.fanout; ++i)
            instances.push_back(
                instanceJson("web" + std::to_string(i), 1));
        deploys.push_back(
            serviceDeployJson("nginx_web", std::move(instances)));
    }
    bundle.graph = graphJson(std::move(deploys));

    JsonArray nodes;
    NodeOpts block;
    block.blockOnEnter = true;
    std::vector<int> leaves;
    for (int i = 0; i < params.fanout; ++i)
        leaves.push_back(1 + i);
    nodes.push_back(
        nodeJson(0, "nginx_fanout", "proxy_forward", leaves, block));
    const int join_id = params.fanout + 1;
    for (int i = 0; i < params.fanout; ++i) {
        NodeOpts pin;
        pin.instance = i;
        nodes.push_back(nodeJson(1 + i, "nginx_web", "serve",
                                 {join_id}, pin));
    }
    NodeOpts respond;
    respond.unblockService = "nginx_fanout";
    respond.requestBytes = params.responseBytes;
    nodes.push_back(nodeJson(join_id, "nginx_fanout", "proxy_response",
                             {}, respond));
    JsonArray variants;
    variants.push_back(variantJson(1.0, std::move(nodes)));
    bundle.paths = pathDocJson(std::move(variants));

    bundle.client =
        clientJson("nginx_fanout", params.run.clientConnections,
                   constantLoadJson(params.run.qps),
                   requestBytesSpec());
    return bundle;
}

// ------------------------------------------------- fat-tree fan-out

ConfigBundle
fanoutFatTreeBundle(const FanoutFatTreeParams& params)
{
    if (params.fanout <= 0)
        throw std::invalid_argument("fanout must be > 0");
    // Mirror the generator's sizing (hw::TopologyBuilder::fatTree)
    // to place the proxy and leaves on distinct generated hosts.
    const int half = params.arity / 2;
    int hosts_per_edge =
        static_cast<int>(half * params.oversubscription + 0.5);
    if (hosts_per_edge < 1)
        hosts_per_edge = 1;
    const int hosts = params.arity * half * hosts_per_edge;
    if (params.fanout + 1 > hosts) {
        throw std::invalid_argument(
            "fat-tree fan-out: need fanout + 1 <= " +
            std::to_string(hosts) + " generated hosts");
    }
    ConfigBundle bundle;
    bundle.options = makeOptions(params.run);

    NginxOptions proxy;
    proxy.serviceName = "nginx_fanout";
    proxy.workers = params.proxyWorkers;
    proxy.realProxyNoise = params.run.realProxyNoise;
    NginxOptions web;
    web.serviceName = "nginx_web";
    web.workers = 1;
    web.realProxyNoise = params.run.realProxyNoise;
    bundle.services.push_back(nginxProxyJson(proxy));
    bundle.services.push_back(nginxWebserverJson(web));

    // machines.json schema v2: the cluster is generated from the
    // topology section, uniform hosts "h0", "h1", ....
    {
        JsonValue host_proto = JsonValue::makeObject();
        host_proto.asObject()["cores"] = params.proxyWorkers + 4;
        host_proto.asObject()["irq_cores"] = 4;
        host_proto.asObject()["irq_per_packet_us"] = kIrqPerPacketUs;
        JsonValue topology = JsonValue::makeObject();
        topology.asObject()["type"] = "fat_tree";
        topology.asObject()["arity"] = params.arity;
        topology.asObject()["oversubscription"] =
            params.oversubscription;
        topology.asObject()["host_gbps"] = params.hostGbps;
        topology.asObject()["fabric_gbps"] = params.fabricGbps;
        topology.asObject()["link_latency_us"] = params.linkLatencyUs;
        topology.asObject()["hosts"] = std::move(host_proto);
        JsonValue network = JsonValue::makeObject();
        network.asObject()["model"] = "flow";
        network.asObject()["loopback_latency_us"] = 5.0;
        network.asObject()["external_latency_us"] = 20.0;
        JsonValue doc = JsonValue::makeObject();
        doc.asObject()["schema_version"] = 2;
        doc.asObject()["network"] = std::move(network);
        doc.asObject()["topology"] = std::move(topology);
        bundle.machines = std::move(doc);
    }

    // Proxy on h0; leaf i on h(1+i), so every leaf response crosses
    // the fabric and converges on h0's edge down-link.
    JsonArray deploys;
    {
        JsonArray instances;
        instances.push_back(instanceJson("h0", params.proxyWorkers));
        deploys.push_back(serviceDeployJson(
            "nginx_fanout", std::move(instances), {{"nginx_web", 16}}));
    }
    {
        JsonArray instances;
        for (int i = 0; i < params.fanout; ++i)
            instances.push_back(
                instanceJson("h" + std::to_string(1 + i), 1));
        deploys.push_back(
            serviceDeployJson("nginx_web", std::move(instances)));
    }
    bundle.graph = graphJson(std::move(deploys));

    JsonArray nodes;
    NodeOpts block;
    block.blockOnEnter = true;
    std::vector<int> leaves;
    for (int i = 0; i < params.fanout; ++i)
        leaves.push_back(1 + i);
    nodes.push_back(
        nodeJson(0, "nginx_fanout", "proxy_forward", leaves, block));
    const int join_id = params.fanout + 1;
    for (int i = 0; i < params.fanout; ++i) {
        NodeOpts pin;
        pin.instance = i;
        nodes.push_back(nodeJson(1 + i, "nginx_web", "serve",
                                 {join_id}, pin));
    }
    NodeOpts respond;
    respond.unblockService = "nginx_fanout";
    respond.requestBytes = params.responseBytes;
    nodes.push_back(nodeJson(join_id, "nginx_fanout", "proxy_response",
                             {}, respond));
    JsonArray variants;
    variants.push_back(variantJson(1.0, std::move(nodes)));
    bundle.paths = pathDocJson(std::move(variants));

    bundle.client =
        clientJson("nginx_fanout", params.run.clientConnections,
                   constantLoadJson(params.run.qps),
                   requestBytesSpec());
    return bundle;
}

// -------------------------------------------------------- Thrift echo

ConfigBundle
thriftEchoBundle(const ThriftEchoParams& params)
{
    ConfigBundle bundle;
    bundle.options = makeOptions(params.run);

    ThriftOptions thrift;
    thrift.serviceName = "thrift_echo";
    thrift.threads = params.serverThreads;
    thrift.realProxyNoise = params.run.realProxyNoise;
    bundle.services.push_back(thriftServiceJson(thrift));

    JsonArray machines;
    machines.push_back(machineJson("server0", 4, 2));
    bundle.machines = machinesJson(std::move(machines));

    JsonArray deploys;
    JsonArray instances;
    instances.push_back(instanceJson("server0", params.serverThreads));
    deploys.push_back(
        serviceDeployJson("thrift_echo", std::move(instances)));
    bundle.graph = graphJson(std::move(deploys));

    JsonArray nodes;
    nodes.push_back(nodeJson(0, "thrift_echo", "echo", {}));
    JsonArray variants;
    variants.push_back(variantJson(1.0, std::move(nodes)));
    bundle.paths = pathDocJson(std::move(variants));

    bundle.client =
        clientJson("thrift_echo", params.run.clientConnections,
                   constantLoadJson(params.run.qps),
                   requestBytesSpec(64.0));
    return bundle;
}

// ----------------------------------------------------- social network

ConfigBundle
socialNetworkBundle(const SocialNetworkParams& params)
{
    ConfigBundle bundle;
    bundle.options = makeOptions(params.run);
    const bool noise = params.run.realProxyNoise;

    // Thrift front-end with the compose / join / finalize handlers.
    ThriftOptions front;
    front.serviceName = "thrift_front";
    front.threads = params.frontendThreads;
    front.realProxyNoise = noise;
    front.handlers = {ThriftHandler{"compose_fwd", 30.0, 1.0},
                      ThriftHandler{"join", 45.0, 1.0},
                      ThriftHandler{"media_fetch", 15.0, 1.0},
                      ThriftHandler{"finalize", 25.0, 1.0}};
    bundle.services.push_back(thriftServiceJson(front));

    auto logic_service = [&](const char* name, const char* verb) {
        ThriftOptions options;
        options.serviceName = name;
        options.threads = params.logicThreads;
        options.realProxyNoise = noise;
        options.handlers = {
            ThriftHandler{std::string(verb) + "_lookup", 20.0, 1.0},
            ThriftHandler{std::string(verb) + "_reply", 8.0, 1.0},
            ThriftHandler{std::string(verb) + "_miss", 10.0, 1.0}};
        return thriftServiceJson(options);
    };
    bundle.services.push_back(logic_service("user_service", "user"));
    bundle.services.push_back(logic_service("post_service", "post"));
    bundle.services.push_back(logic_service("media_service", "media"));

    auto cache_service = [&](const char* name) {
        MemcachedOptions options;
        options.serviceName = name;
        options.threads = 2;
        options.realProxyNoise = noise;
        return memcachedServiceJson(options);
    };
    bundle.services.push_back(cache_service("user_mc"));
    bundle.services.push_back(cache_service("post_mc"));
    bundle.services.push_back(cache_service("media_mc"));

    // MongoDB serves most post-cache misses from its own working
    // set; only the remainder pays the disk path (sampled via the
    // model's path probabilities rather than pinned).
    MongoOptions mongo;
    mongo.serviceName = "post_mongo";
    mongo.memoryHitProbability = 0.7;
    mongo.diskChannels = 4;
    // Opt-in storage tier: sized reads against a machine-attached
    // shared disk instead of independent channel latencies.
    if (params.postDiskMBps > 0.0)
        mongo.diskIoBytes = params.postIoBytes;
    mongo.realProxyNoise = noise;
    bundle.services.push_back(mongoServiceJson(mongo));

    JsonArray machines;
    machines.push_back(
        machineJson("front_server", params.frontendThreads + 4, 4));
    machines.push_back(machineJson("user_server", 12, 2));
    JsonValue post_machine = machineJson("post_server", 12, 2);
    if (params.postDiskMBps > 0.0) {
        attachDisk(post_machine, "post_disk", params.postDiskMBps,
                   params.postDiskWriteMBps,
                   params.postDiskQueueDepth);
    }
    machines.push_back(std::move(post_machine));
    machines.push_back(machineJson("media_server", 12, 2));
    bundle.machines = machinesJson(std::move(machines));

    JsonArray deploys;
    auto deploy_one = [&](const char* service, const char* machine,
                          int threads, int disk = 0) {
        JsonArray instances;
        instances.push_back(instanceJson(machine, threads, 0, disk));
        deploys.push_back(serviceDeployJson(service,
                                            std::move(instances)));
    };
    deploy_one("thrift_front", "front_server", params.frontendThreads);
    deploy_one("user_service", "user_server", params.logicThreads);
    deploy_one("user_mc", "user_server", 2);
    deploy_one("post_service", "post_server", params.logicThreads);
    deploy_one("post_mc", "post_server", 2);
    deploy_one("post_mongo", "post_server", 2, 4);
    deploy_one("media_service", "media_server", params.logicThreads);
    deploy_one("media_mc", "media_server", 2);
    bundle.graph = graphJson(std::move(deploys));

    // Variant helpers: the user branch is nodes u0..u2, the post
    // branch p0..p2 (or the longer miss chain), joining at the
    // front-end.
    auto base_variant = [&](bool post_miss, bool media,
                            double probability) {
        JsonArray nodes;
        int next = 0;
        const int root = next++;
        // User branch.
        const int u_lookup = next++;
        const int u_cache = next++;
        const int u_reply = next++;
        // Post branch.
        const int p_lookup = next++;
        const int p_cache = next++;
        int p_miss = -1, p_mongo = -1;
        if (post_miss) {
            p_miss = next++;
            p_mongo = next++;
        }
        const int p_reply = next++;
        const int join = next++;
        int m_fetch = -1, m_cache = -1, m_reply = -1, finalize = -1;
        if (media) {
            m_fetch = next++;
            m_cache = next++;
            m_reply = next++;
            finalize = next++;
        }

        nodes.push_back(nodeJson(root, "thrift_front", "compose_fwd",
                                 {u_lookup, p_lookup}));
        nodes.push_back(nodeJson(u_lookup, "user_service",
                                 "user_lookup", {u_cache}));
        nodes.push_back(nodeJson(u_cache, "user_mc", "memcached_read",
                                 {u_reply}));
        nodes.push_back(nodeJson(u_reply, "user_service", "user_reply",
                                 {join}));
        nodes.push_back(nodeJson(p_lookup, "post_service",
                                 "post_lookup", {p_cache}));
        if (post_miss) {
            nodes.push_back(nodeJson(p_cache, "post_mc",
                                     "memcached_read", {p_miss}));
            nodes.push_back(nodeJson(p_miss, "post_service",
                                     "post_miss", {p_mongo}));
            // No pinned path: MongoDB samples memory vs. disk.
            nodes.push_back(
                nodeJson(p_mongo, "post_mongo", "", {p_reply}));
        } else {
            nodes.push_back(nodeJson(p_cache, "post_mc",
                                     "memcached_read", {p_reply}));
        }
        nodes.push_back(nodeJson(p_reply, "post_service", "post_reply",
                                 {join}));
        if (media) {
            nodes.push_back(nodeJson(join, "thrift_front", "join",
                                     {m_fetch}));
            nodes.push_back(nodeJson(m_fetch, "media_service",
                                     "media_lookup", {m_cache}));
            nodes.push_back(nodeJson(m_cache, "media_mc",
                                     "memcached_read", {m_reply}));
            nodes.push_back(nodeJson(m_reply, "media_service",
                                     "media_reply", {finalize}));
            nodes.push_back(nodeJson(finalize, "thrift_front",
                                     "finalize", {}));
        } else {
            nodes.push_back(
                nodeJson(join, "thrift_front", "join", {}));
        }
        return variantJson(probability, std::move(nodes));
    };

    const double p_media = params.mediaProbability;
    const double p_miss = params.postMissProbability;
    JsonArray variants;
    variants.push_back(
        base_variant(false, false, (1.0 - p_media) * (1.0 - p_miss)));
    variants.push_back(
        base_variant(true, false, (1.0 - p_media) * p_miss));
    variants.push_back(
        base_variant(false, true, p_media * (1.0 - p_miss)));
    variants.push_back(base_variant(true, true, p_media * p_miss));
    bundle.paths = pathDocJson(std::move(variants));

    bundle.client =
        clientJson("thrift_front", params.run.clientConnections,
                   constantLoadJson(params.run.qps),
                   requestBytesSpec());
    return bundle;
}

// ----------------------------------------------------- cache stampede

ConfigBundle
cacheStampedeBundle(const CacheStampedeParams& params)
{
    if (params.writeFraction < 0.0 || params.writeFraction > 1.0)
        throw std::invalid_argument(
            "writeFraction must be in [0, 1]");
    ConfigBundle bundle;
    bundle.options = makeOptions(params.run);
    const bool noise = params.run.realProxyNoise;

    // TTL discounting turns the profiled hit rate into the rate the
    // cache actually sees at this load (the invalidation-driven
    // stampede input).
    const double hit =
        effectiveHitRate(params.hitRate, params.run.qps,
                         params.keyCount, params.ttlSeconds);

    CacheTierOptions cache;
    cache.serviceName = "cache";
    cache.threads = params.cacheThreads;
    cache.hitProbability = hit;
    cache.realProxyNoise = noise;
    BackingStoreOptions store;
    store.serviceName = "store";
    store.threads = params.storeThreads;
    store.diskMeanMs = params.diskAccessMs;
    store.readBytes = params.readBytes;
    store.writeBytes = params.writeBytes;
    store.realProxyNoise = noise;
    bundle.services.push_back(cacheTierServiceJson(cache));
    bundle.services.push_back(backingStoreServiceJson(store));

    JsonArray machines;
    machines.push_back(
        machineJson("cache_server", params.cacheThreads + 4, 2));
    JsonValue store_machine =
        machineJson("store_server", params.storeThreads + 4, 2);
    attachDisk(store_machine, "store_disk", params.diskReadMBps,
               params.diskWriteMBps, params.diskQueueDepth);
    machines.push_back(std::move(store_machine));
    bundle.machines = machinesJson(std::move(machines));

    JsonArray deploys;
    {
        JsonArray instances;
        instances.push_back(
            instanceJson("cache_server", params.cacheThreads));
        // A wide pool: under a stampede the store holds tens of
        // concurrent disk reads, and the point of the scenario is to
        // saturate the *disk*, not the connection pool in front of
        // it.
        deploys.push_back(serviceDeployJson(
            "cache", std::move(instances),
            {{"store", 16 * params.cacheThreads}}));
    }
    {
        // No disk_channels: the store's disk stages land on the
        // machine-attached shared-bandwidth disk.
        JsonArray instances;
        instances.push_back(
            instanceJson("store_server", params.storeThreads));
        deploys.push_back(
            serviceDeployJson("store", std::move(instances)));
    }
    bundle.graph = graphJson(std::move(deploys));

    // Every node pins its execution path; the hit/miss/write split
    // lives entirely in the variant probabilities so sweeping the
    // hit rate moves load between the cache and the store.
    const double w = params.writeFraction;

    JsonArray hit_nodes;
    hit_nodes.push_back(nodeJson(0, "cache", "cache_hit", {}));

    JsonArray miss_nodes;
    miss_nodes.push_back(nodeJson(0, "cache", "cache_miss", {1}));
    miss_nodes.push_back(nodeJson(1, "store", "store_read", {2}));
    miss_nodes.push_back(nodeJson(2, "cache", "cache_fill", {}));

    JsonArray write_nodes;
    write_nodes.push_back(nodeJson(0, "cache", "cache_fill", {1}));
    write_nodes.push_back(nodeJson(1, "store", "store_write", {}));

    JsonArray variants;
    variants.push_back(
        variantJson(hit * (1.0 - w), std::move(hit_nodes)));
    variants.push_back(
        variantJson((1.0 - hit) * (1.0 - w), std::move(miss_nodes)));
    variants.push_back(variantJson(w, std::move(write_nodes)));
    bundle.paths = pathDocJson(std::move(variants));

    bundle.client = clientJson("cache", params.run.clientConnections,
                               constantLoadJson(params.run.qps),
                               requestBytesSpec());
    return bundle;
}

// ------------------------------------------------------ tail at scale

ConfigBundle
tailAtScaleBundle(const TailAtScaleParams& params)
{
    if (params.clusterSize <= 0)
        throw std::invalid_argument("clusterSize must be > 0");
    ConfigBundle bundle;
    bundle.options = makeOptions(params.run);

    const int slow_count = static_cast<int>(
        std::lround(params.slowFraction * params.clusterSize));
    const int fast_count = params.clusterSize - slow_count;

    // Coordinator: near-zero cost, simple execution model.
    {
        JsonValue doc = JsonValue::makeObject();
        doc.asObject()["service_name"] = "coordinator";
        doc.asObject()["execution_model"] = "simple";
        JsonArray stages;
        stages.push_back(
            processingStage(0, "fanout_processing", detUs(1.0)));
        doc.asObject()["stages"] = JsonValue(std::move(stages));
        JsonArray paths;
        paths.push_back(pathJson(0, "fan", {0}));
        doc.asObject()["paths"] = JsonValue(std::move(paths));
        bundle.services.push_back(std::move(doc));
    }
    // Leaf: one-stage queueing system with exponential service time
    // (paper §V-A); slow leaves run at slowFactor x the mean.
    auto leaf_service = [&](const char* name, double mean_seconds) {
        JsonValue doc = JsonValue::makeObject();
        doc.asObject()["service_name"] = name;
        doc.asObject()["execution_model"] = "simple";
        JsonArray stages;
        stages.push_back(processingStage(0, "leaf_processing",
                                         expUs(mean_seconds * 1e6)));
        doc.asObject()["stages"] = JsonValue(std::move(stages));
        JsonArray paths;
        paths.push_back(pathJson(0, "serve", {0}));
        doc.asObject()["paths"] = JsonValue(std::move(paths));
        return doc;
    };
    bundle.services.push_back(
        leaf_service("leaf", params.leafMeanSeconds));
    if (slow_count > 0) {
        bundle.services.push_back(leaf_service(
            "slow_leaf", params.leafMeanSeconds * params.slowFactor));
    }

    // The pure queueing experiment disables IRQ modeling (irq 0).
    JsonArray machines;
    machines.push_back(machineJson("coord", 8, 0));
    for (int i = 0; i < params.clusterSize; ++i) {
        machines.push_back(
            machineJson("leaf" + std::to_string(i), 1, 0));
    }
    bundle.machines = machinesJson(std::move(machines));

    JsonArray deploys;
    {
        JsonArray instances;
        instances.push_back(instanceJson("coord", 8));
        deploys.push_back(serviceDeployJson(
            "coordinator", std::move(instances),
            {{"leaf", 64}, {"slow_leaf", 64}}));
    }
    {
        JsonArray instances;
        for (int i = 0; i < fast_count; ++i) {
            instances.push_back(instanceJson(
                "leaf" + std::to_string(i), 1));
        }
        if (fast_count > 0) {
            deploys.push_back(
                serviceDeployJson("leaf", std::move(instances)));
        }
    }
    if (slow_count > 0) {
        JsonArray instances;
        for (int i = 0; i < slow_count; ++i) {
            instances.push_back(instanceJson(
                "leaf" + std::to_string(fast_count + i), 1));
        }
        deploys.push_back(
            serviceDeployJson("slow_leaf", std::move(instances)));
    }
    bundle.graph = graphJson(std::move(deploys));

    JsonArray nodes;
    std::vector<int> leaves;
    for (int i = 0; i < params.clusterSize; ++i)
        leaves.push_back(1 + i);
    const int join_id = params.clusterSize + 1;
    nodes.push_back(nodeJson(0, "coordinator", "fan", leaves));
    for (int i = 0; i < params.clusterSize; ++i) {
        NodeOpts pin;
        const bool slow = i >= fast_count;
        pin.instance = slow ? i - fast_count : i;
        nodes.push_back(nodeJson(1 + i, slow ? "slow_leaf" : "leaf",
                                 "serve", {join_id}, pin));
    }
    nodes.push_back(nodeJson(join_id, "coordinator", "fan", {}));
    JsonArray variants;
    variants.push_back(variantJson(1.0, std::move(nodes)));
    bundle.paths = pathDocJson(std::move(variants));

    bundle.client =
        clientJson("coordinator", params.run.clientConnections,
                   constantLoadJson(params.run.qps),
                   requestBytesSpec(64.0));
    return bundle;
}

// ----------------------------------------------- power management app

ConfigBundle
powerTwoTierBundle(const PowerTwoTierParams& params)
{
    ConfigBundle bundle;
    bundle.options = makeOptions(params.run);

    NginxOptions nginx;
    nginx.serviceName = "nginx";
    nginx.workers = params.nginxWorkers;
    nginx.realProxyNoise = params.run.realProxyNoise;
    MemcachedOptions memcached;
    memcached.threads = params.memcachedThreads;
    memcached.realProxyNoise = params.run.realProxyNoise;
    bundle.services.push_back(nginxCacheFrontendJson(nginx));
    bundle.services.push_back(memcachedServiceJson(memcached));

    // Each tier on its own machine so per-tier DVFS is clean.
    JsonArray machines;
    machines.push_back(
        machineJson("fe_server", params.nginxWorkers + 2, 2));
    machines.push_back(
        machineJson("mc_server", params.memcachedThreads + 2, 2));
    if (params.dvfsSteps > 0) {
        JsonArray steps;
        const double lo = 1.2, hi = 2.6;
        for (int i = 0; i < params.dvfsSteps; ++i) {
            steps.emplace_back(lo + (hi - lo) * i /
                               (params.dvfsSteps - 1));
        }
        for (JsonValue& machine : machines)
            machine.asObject()["dvfs_ghz"] = JsonValue(steps);
    }
    bundle.machines = machinesJson(std::move(machines));

    JsonArray deploys;
    {
        JsonArray instances;
        instances.push_back(
            instanceJson("fe_server", params.nginxWorkers));
        deploys.push_back(serviceDeployJson(
            "nginx", std::move(instances),
            {{"memcached", 4 * params.nginxWorkers}}));
    }
    {
        JsonArray instances;
        instances.push_back(
            instanceJson("mc_server", params.memcachedThreads));
        deploys.push_back(
            serviceDeployJson("memcached", std::move(instances)));
    }
    bundle.graph = graphJson(std::move(deploys));

    JsonArray nodes;
    NodeOpts block;
    block.blockOnEnter = true;
    NodeOpts respond;
    respond.unblockService = "nginx";
    respond.requestBytes = 640;
    nodes.push_back(nodeJson(0, "nginx", "request", {1}, block));
    nodes.push_back(nodeJson(1, "memcached", "memcached_read", {2}));
    nodes.push_back(nodeJson(2, "nginx", "response", {}, respond));
    JsonArray variants;
    variants.push_back(variantJson(1.0, std::move(nodes)));
    bundle.paths = pathDocJson(std::move(variants));

    JsonValue load = JsonValue::makeObject();
    load.asObject()["type"] = "diurnal";
    load.asObject()["base_qps"] = params.baseQps;
    load.asObject()["amplitude_qps"] = params.amplitudeQps;
    load.asObject()["period_s"] = params.periodSeconds;
    bundle.client = clientJson("nginx", params.run.clientConnections,
                               std::move(load), requestBytesSpec());
    return bundle;
}

// ------------------------------------------------------ bundle export

void
writeBundle(const ConfigBundle& bundle, const std::string& directory)
{
    namespace fs = std::filesystem;
    const fs::path root(directory);
    fs::create_directories(root / "services");
    auto dump = [](const fs::path& path, const JsonValue& value) {
        std::ofstream stream(path);
        if (!stream)
            throw std::runtime_error("cannot write " + path.string());
        stream << json::writePretty(value) << '\n';
    };
    dump(root / "machines.json", bundle.machines);
    dump(root / "graph.json", bundle.graph);
    dump(root / "path.json", bundle.paths);
    dump(root / "client.json", bundle.client);
    JsonValue options = JsonValue::makeObject();
    options.asObject()["seed"] =
        static_cast<std::int64_t>(bundle.options.seed);
    options.asObject()["warmup_s"] = bundle.options.warmupSeconds;
    options.asObject()["duration_s"] = bundle.options.durationSeconds;
    dump(root / "options.json", options);
    for (const JsonValue& service : bundle.services) {
        dump(root / "services" /
                 (service.at("service_name").asString() + ".json"),
             service);
    }
}

}  // namespace models
}  // namespace uqsim
