#ifndef UQSIM_MODELS_NGINX_H_
#define UQSIM_MODELS_NGINX_H_

/**
 * @file
 * NGINX models (paper Fig. 3 bottom: TCP RX -> epoll -> nginx proc
 * -> TCP TX; TCP RX/TX are modeled by the per-machine IRQ service,
 * so the service itself is epoll -> socket_read -> processing ->
 * socket_send).
 *
 * Three roles are provided:
 *  - webserver: serves a static page (Fig. 8/10 leaf tier);
 *  - proxy: forwards requests and relays responses (load balancer /
 *    fan-out root);
 *  - cache frontend: the 2-/3-tier NGINX that queries memcached
 *    (and on a miss, MongoDB), with http/1.1 request/response
 *    paths plus miss-handling paths.
 */

#include <string>

#include "uqsim/json/json_value.h"

namespace uqsim {
namespace models {

/** Common NGINX model options. */
struct NginxOptions {
    std::string serviceName = "nginx";
    /** Worker processes (single-threaded each). */
    int workers = 1;
    /** Add real-proxy noise spikes to processing stages. */
    bool realProxyNoise = false;
};

/**
 * Static-file webserver.  Paths: "serve" (epoll, read, process,
 * send).
 */
json::JsonValue nginxWebserverJson(const NginxOptions& options = {});

/**
 * Reverse proxy.  Paths: "proxy_forward" and "proxy_response".
 */
json::JsonValue nginxProxyJson(const NginxOptions& options = {});

/**
 * Cache-backed frontend used by the 2-/3-tier applications.  Paths:
 * "request" (receive client request, issue cache lookup),
 * "response" (relay result to the client), "miss_forward" and
 * "miss_store" (3-tier miss handling around the database).
 */
json::JsonValue nginxCacheFrontendJson(const NginxOptions& options = {});

}  // namespace models
}  // namespace uqsim

#endif  // UQSIM_MODELS_NGINX_H_
