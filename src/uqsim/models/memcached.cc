#include "uqsim/models/memcached.h"

#include "uqsim/models/stage_presets.h"

namespace uqsim {
namespace models {

using json::JsonArray;
using json::JsonValue;

JsonValue
memcachedServiceJson(const MemcachedOptions& options)
{
    const double read_us =
        options.readUs > 0.0 ? options.readUs : kMemcachedReadUs;
    const double write_us =
        options.writeUs > 0.0 ? options.writeUs : kMemcachedWriteUs;
    JsonValue read_dist = expUs(read_us);
    JsonValue write_dist = expUs(write_us);
    if (options.realProxyNoise) {
        read_dist = withNoise(std::move(read_dist));
        write_dist = withNoise(std::move(write_dist));
    }

    JsonValue doc = JsonValue::makeObject();
    doc.asObject()["service_name"] = options.serviceName;
    doc.asObject()["execution_model"] = "multi_threaded";
    doc.asObject()["threads"] = options.threads;

    JsonArray stages;
    stages.push_back(epollStage(0));
    stages.push_back(socketReadStage(1));
    stages.push_back(processingStage(2, "memcached_processing",
                                     std::move(read_dist)));
    stages.push_back(processingStage(3, "memcached_processing_write",
                                     std::move(write_dist)));
    stages.push_back(socketSendStage(4));
    doc.asObject()["stages"] = JsonValue(std::move(stages));

    JsonArray paths;
    paths.push_back(pathJson(0, "memcached_read", {0, 1, 2, 4}));
    paths.push_back(pathJson(1, "memcached_write", {0, 1, 3, 4}));
    doc.asObject()["paths"] = JsonValue(std::move(paths));
    return doc;
}

}  // namespace models
}  // namespace uqsim
