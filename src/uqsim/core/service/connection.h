#ifndef UQSIM_CORE_SERVICE_CONNECTION_H_
#define UQSIM_CORE_SERVICE_CONNECTION_H_

/**
 * @file
 * Connections and receive-side blocking.
 *
 * Each microservice instance owns a ConnectionTable tracking the
 * state of every connection that delivers jobs to it.  HTTP/1.1
 * style blocking (paper §III-C) marks a connection's receive side
 * blocked while a request is outstanding; epoll and socket queues
 * treat subqueues of blocked connections as inactive.
 *
 * The BlockRegistry records which connections each root request has
 * blocked, so a later path node (e.g. the webserver's response leg)
 * can find and unblock them by root job id — mirroring the paper's
 * "searches the list of job ids for the one matching the request
 * that initiated the blocking behavior".
 */

#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "uqsim/core/service/job.h"

namespace uqsim {

/**
 * Per-connection state at one instance.
 *
 * Blocking keeps a FIFO of owner root ids (HTTP/1.1 pipelining):
 * the front owner's request is in flight and stays processable;
 * requests queued behind it wait.  Unblocking removes an owner; the
 * next pipelined request then becomes the in-flight one.
 */
struct Connection {
    ConnectionId id = kNoConnection;
    /** Root ids holding the receive-side block, oldest first. */
    std::deque<JobId> owners;

    bool recvBlocked() const { return !owners.empty(); }
};

/** All connections terminating at one instance. */
class ConnectionTable {
  public:
    ConnectionTable() = default;

    /** Looks up (creating on first use) connection @p id. */
    Connection& ensure(ConnectionId id);

    /** True when @p id exists and its receive side is blocked. */
    bool isBlocked(ConnectionId id) const;

    /**
     * Root id of the request holding the block on @p id, or 0 when
     * the connection is not blocked.  HTTP/1.1 semantics: the
     * blocking request itself stays processable; only subsequent
     * requests on the connection wait.
     */
    JobId blockOwner(ConnectionId id) const;

    /** Blocks the receive side of @p id on behalf of @p root. */
    void block(ConnectionId id, JobId root);

    /**
     * Removes @p root from the owner queue of @p id.  When this
     * changes the connection's front owner (or empties the queue),
     * the unblock callback fires so newly eligible jobs get
     * scheduled.
     */
    void unblock(ConnectionId id, JobId root);

    /** Callback fired after every unblock. */
    void onUnblock(std::function<void(ConnectionId)> callback)
    {
        onUnblock_ = std::move(callback);
    }

    /** Drops all connection state (instance crash: every TCP
     *  connection to the dead process resets).  Keeps the unblock
     *  callback so the table is reusable after recovery. */
    void reset() { connections_.clear(); }

    std::size_t connectionCount() const { return connections_.size(); }

  private:
    std::map<ConnectionId, Connection> connections_;
    std::function<void(ConnectionId)> onUnblock_;
};

/** One recorded block, undone when the matching unblock op fires. */
struct BlockRecord {
    ConnectionTable* table = nullptr;
    ConnectionId connection = kNoConnection;
    /** Service at which the block was taken (ops can filter on it). */
    std::string service;
};

/** Root-id indexed registry of outstanding connection blocks. */
class BlockRegistry {
  public:
    BlockRegistry() = default;

    /** Blocks @p connection in @p table and records it under @p root. */
    void block(JobId root, ConnectionTable& table,
               ConnectionId connection, const std::string& service);

    /**
     * Unblocks every connection recorded for @p root whose service
     * matches @p service (empty string matches all).  Returns the
     * number of connections unblocked.
     */
    int unblock(JobId root, const std::string& service);

    /** Outstanding block count for @p root. */
    std::size_t pendingFor(JobId root) const;

    /** Total outstanding blocks (leak detection in tests). */
    std::size_t totalPending() const;

  private:
    std::map<JobId, std::vector<BlockRecord>> records_;
};

}  // namespace uqsim

#endif  // UQSIM_CORE_SERVICE_CONNECTION_H_
