#include "uqsim/core/service/service_model.h"

#include <algorithm>
#include <stdexcept>

namespace uqsim {

ExecutionModel
executionModelFromString(const std::string& name)
{
    if (name == "simple")
        return ExecutionModel::Simple;
    if (name == "multi_threaded" || name == "multithreaded")
        return ExecutionModel::MultiThreaded;
    throw std::invalid_argument("unknown execution model: \"" + name +
                                "\"");
}

const char*
executionModelName(ExecutionModel model)
{
    switch (model) {
      case ExecutionModel::Simple: return "simple";
      case ExecutionModel::MultiThreaded: return "multi_threaded";
    }
    return "?";
}

DynamicThreadPolicy
DynamicThreadPolicy::fromJson(const json::JsonValue& doc)
{
    DynamicThreadPolicy policy;
    policy.maxThreads = doc.getOr("max", 0);
    policy.queueThreshold =
        doc.getOr("queue_threshold", policy.queueThreshold);
    policy.spawnLatency =
        doc.getOr("spawn_latency_us", policy.spawnLatency * 1e6) * 1e-6;
    policy.idleTimeout =
        doc.getOr("idle_timeout_ms", policy.idleTimeout * 1e3) * 1e-3;
    if (policy.maxThreads < 0 || policy.queueThreshold < 0 ||
        policy.spawnLatency < 0.0 || policy.idleTimeout <= 0.0) {
        throw json::JsonError("invalid dynamic_threads policy");
    }
    return policy;
}

ServiceModel::ServiceModel(std::string name,
                           std::vector<StageConfig> stages,
                           std::vector<PathConfig> paths)
    : name_(std::move(name)), stages_(std::move(stages)),
      paths_(std::move(paths)), selector_(paths_)
{
    if (stages_.empty())
        throw std::invalid_argument("service needs at least one stage");
    // Stage ids index the instance's queue array: require 0..n-1.
    std::sort(stages_.begin(), stages_.end(),
              [](const StageConfig& a, const StageConfig& b) {
                  return a.id < b.id;
              });
    for (std::size_t i = 0; i < stages_.size(); ++i) {
        if (stages_[i].id != static_cast<int>(i)) {
            throw std::invalid_argument(
                "service \"" + name_ +
                "\": stage ids must be contiguous from 0");
        }
    }
    for (const PathConfig& path : paths_) {
        for (int stage_id : path.stageIds) {
            if (stage_id < 0 ||
                stage_id >= static_cast<int>(stages_.size())) {
                throw std::invalid_argument(
                    "service \"" + name_ + "\" path \"" + path.name +
                    "\" references unknown stage " +
                    std::to_string(stage_id));
            }
        }
    }
}

std::shared_ptr<ServiceModel>
ServiceModel::fromJson(const json::JsonValue& doc)
{
    std::vector<StageConfig> stages;
    for (const json::JsonValue& stage : doc.at("stages").asArray())
        stages.push_back(StageConfig::fromJson(stage));
    std::vector<PathConfig> paths;
    for (const json::JsonValue& path : doc.at("paths").asArray())
        paths.push_back(PathConfig::fromJson(path));
    auto model = std::make_shared<ServiceModel>(
        doc.at("service_name").asString(), std::move(stages),
        std::move(paths));
    model->setExecutionModel(executionModelFromString(
        doc.getOr("execution_model", "multi_threaded")));
    model->setDefaultThreads(doc.getOr("threads", 1));
    model->setDefaultDiskChannels(doc.getOr("disk_channels", 0));
    model->setContextSwitchSeconds(
        doc.getOr("context_switch_us", 2.0) * 1e-6);
    if (const json::JsonValue* dynamic = doc.find("dynamic_threads")) {
        model->setDynamicThreads(
            DynamicThreadPolicy::fromJson(*dynamic));
    }
    return model;
}

const StageConfig&
ServiceModel::stage(int id) const
{
    if (id < 0 || id >= static_cast<int>(stages_.size()))
        throw std::out_of_range("stage id out of range: " +
                                std::to_string(id));
    return stages_[static_cast<std::size_t>(id)];
}

const PathConfig&
ServiceModel::path(int id) const
{
    for (const PathConfig& path : paths_) {
        if (path.id == id)
            return path;
    }
    throw std::out_of_range("path id out of range: " + std::to_string(id));
}

int
ServiceModel::pathIdByName(const std::string& name) const
{
    for (const PathConfig& path : paths_) {
        if (path.name == name)
            return path.id;
    }
    throw std::out_of_range("service \"" + name_ + "\" has no path \"" +
                            name + "\"");
}

void
ServiceModel::setDefaultThreads(int threads)
{
    if (threads <= 0)
        throw std::invalid_argument("thread count must be > 0");
    defaultThreads_ = threads;
}

void
ServiceModel::setDefaultDiskChannels(int channels)
{
    if (channels < 0)
        throw std::invalid_argument("disk channels must be >= 0");
    defaultDiskChannels_ = channels;
}

void
ServiceModel::setContextSwitchSeconds(double seconds)
{
    if (seconds < 0.0)
        throw std::invalid_argument("context switch must be >= 0");
    contextSwitch_ = seconds;
}

void
ServiceModel::setDynamicThreads(const DynamicThreadPolicy& policy)
{
    if (policy.enabled() &&
        executionModel_ != ExecutionModel::MultiThreaded) {
        throw std::invalid_argument(
            "dynamic thread spawning requires the multi-threaded "
            "execution model");
    }
    dynamicThreads_ = policy;
}

bool
ServiceModel::usesDisk() const
{
    return std::any_of(stages_.begin(), stages_.end(),
                       [](const StageConfig& stage) {
                           return stage.resource == StageResource::Disk;
                       });
}

}  // namespace uqsim
