#include "uqsim/core/service/connection.h"

#include <algorithm>
#include <stdexcept>

namespace uqsim {

Connection&
ConnectionTable::ensure(ConnectionId id)
{
    auto [it, inserted] = connections_.try_emplace(id);
    if (inserted)
        it->second.id = id;
    return it->second;
}

bool
ConnectionTable::isBlocked(ConnectionId id) const
{
    const auto it = connections_.find(id);
    return it != connections_.end() && it->second.recvBlocked();
}

JobId
ConnectionTable::blockOwner(ConnectionId id) const
{
    const auto it = connections_.find(id);
    if (it == connections_.end() || !it->second.recvBlocked())
        return 0;
    return it->second.owners.front();
}

void
ConnectionTable::block(ConnectionId id, JobId root)
{
    ensure(id).owners.push_back(root);
}

void
ConnectionTable::unblock(ConnectionId id, JobId root)
{
    Connection& connection = ensure(id);
    const JobId previous_owner =
        connection.owners.empty() ? 0 : connection.owners.front();
    const auto it = std::find(connection.owners.begin(),
                              connection.owners.end(), root);
    if (it == connection.owners.end())
        return;
    connection.owners.erase(it);
    const JobId new_owner =
        connection.owners.empty() ? 0 : connection.owners.front();
    if (new_owner != previous_owner && onUnblock_)
        onUnblock_(id);
}

void
BlockRegistry::block(JobId root, ConnectionTable& table,
                     ConnectionId connection, const std::string& service)
{
    table.block(connection, root);
    records_[root].push_back(BlockRecord{&table, connection, service});
}

int
BlockRegistry::unblock(JobId root, const std::string& service)
{
    const auto it = records_.find(root);
    if (it == records_.end())
        return 0;
    int released = 0;
    std::vector<BlockRecord>& list = it->second;
    for (std::size_t i = 0; i < list.size();) {
        if (service.empty() || list[i].service == service) {
            BlockRecord record = list[i];
            list.erase(list.begin() + static_cast<std::ptrdiff_t>(i));
            record.table->unblock(record.connection, root);
            ++released;
        } else {
            ++i;
        }
    }
    if (list.empty())
        records_.erase(it);
    return released;
}

std::size_t
BlockRegistry::pendingFor(JobId root) const
{
    const auto it = records_.find(root);
    return it == records_.end() ? 0 : it->second.size();
}

std::size_t
BlockRegistry::totalPending() const
{
    std::size_t total = 0;
    for (const auto& [root, list] : records_)
        total += list.size();
    return total;
}

}  // namespace uqsim
