#include "uqsim/core/service/instance.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace uqsim {

namespace {

int
resolveThreads(const ServiceModelPtr& model, const InstanceConfig& config)
{
    if (!model)
        throw std::invalid_argument("instance requires a service model");
    return config.threads > 0 ? config.threads
                              : model->defaultThreads();
}

}  // namespace

MicroserviceInstance::MicroserviceInstance(Simulator& sim,
                                           ServiceModelPtr model,
                                           std::string name,
                                           hw::Machine* machine,
                                           const InstanceConfig& config)
    : sim_(sim), model_(std::move(model)), name_(std::move(name)),
      machine_(machine), threads_(resolveThreads(model_, config)),
      idleThreads_(threads_), baseThreads_(threads_),
      peakThreads_(threads_), policy_(config.policy),
      rng_(sim.masterSeed(), name_),
      queueCapacity_(config.queueCapacity)
{
    int cores = config.cores > 0 ? config.cores : threads_;
    if (model_->executionModel() == ExecutionModel::Simple) {
        // The simple model dispatches jobs directly onto cores: the
        // worker count equals the core count and there is no
        // context-switch overhead.
        threads_ = cores;
        idleThreads_ = cores;
        baseThreads_ = cores;
        peakThreads_ = cores;
    }
    coreCapacity_ = cores;

    if (machine_ != nullptr) {
        cpuCores_ = &machine_->allocateCores(cores, name_);
        if (config.ownDvfsDomain) {
            dvfs_ = &machine_->makeDvfsDomain(name_);
        } else {
            dvfs_ = &machine_->dvfs();
        }
    } else {
        ownedCpu_ = std::make_unique<hw::CoreSet>(cores, name_ + "/cpu");
        cpuCores_ = ownedCpu_.get();
        ownedDvfs_ = std::make_unique<hw::DvfsDomain>(
            hw::DvfsTable::paperDefault(), name_ + "/dvfs");
        dvfs_ = ownedDvfs_.get();
    }

    // Disk stages bind to a machine-attached shared-bandwidth disk
    // when one exists; otherwise they fall back to the legacy
    // per-instance channel model.  -1 inherits the model's default
    // channel count, while an explicit 0 disables channels (and
    // trips the validation below for disk-using models).
    if (!config.disk.empty()) {
        if (machine_ == nullptr) {
            throw std::invalid_argument(
                "instance \"" + name_ +
                "\" names disk \"" + config.disk +
                "\" but runs detached from any machine");
        }
        machineDisk_ = machine_->disk(config.disk);
        if (machineDisk_ == nullptr) {
            throw std::invalid_argument(
                "instance \"" + name_ + "\": machine \"" +
                machine_->name() + "\" has no disk \"" + config.disk +
                "\"");
        }
    } else if (machine_ != nullptr && model_->usesDisk()) {
        machineDisk_ = machine_->defaultDisk();
    }
    if (machineDisk_ == nullptr) {
        const int disk_channels = config.diskChannels >= 0
                                      ? config.diskChannels
                                      : model_->defaultDiskChannels();
        if (disk_channels > 0) {
            disk_ = std::make_unique<hw::CoreSet>(disk_channels,
                                                  name_ + "/disk");
        } else if (model_->usesDisk()) {
            throw std::invalid_argument(
                "service \"" + model_->name() +
                "\" has disk stages but instance \"" + name_ +
                "\" has no disk channels and its machine attaches "
                "no disks");
        }
    }

    queues_.reserve(model_->stages().size());
    stageLabels_.reserve(model_->stages().size());
    for (const StageConfig& stage : model_->stages()) {
        queues_.push_back(StageQueue::create(stage, &connections_));
        stageLabels_.push_back(name_ + "/" + stage.name);
    }
    spawnLabel_ = name_ + "/spawn";
    retireLabel_ = name_ + "/retire";

    connections_.onUnblock(
        [this](ConnectionId) { scheduleWork(); });
}

void
MicroserviceInstance::accept(JobPtr job)
{
    if (!job)
        throw std::invalid_argument("cannot accept a null job");
    if (down_) {
        ++refused_;
        if (onJobFailed_)
            onJobFailed_(std::move(job), fault::FailReason::Refused);
        return;
    }
    if (queueCapacity_ > 0 &&
        queuedJobs() >= static_cast<std::size_t>(queueCapacity_)) {
        ++rejected_;
        if (onJobFailed_)
            onJobFailed_(std::move(job), fault::FailReason::QueueFull);
        return;
    }
    if (job->execPathId < 0)
        job->execPathId = model_->pathSelector().select(rng_);
    const PathConfig& path = model_->path(job->execPathId);
    job->stageIndex = 0;
    queues_[static_cast<std::size_t>(path.stageIds.front())]->push(
        std::move(job));
    scheduleWork();
}

void
MicroserviceInstance::scheduleWork()
{
    if (scheduling_ || down_)
        return;
    scheduling_ = true;
    while (tryStartWork()) {
    }
    scheduling_ = false;
    if (model_->dynamicThreads().enabled()) {
        maybeSpawnThread();
        maybeRetireThreads();
    }
}

void
MicroserviceInstance::maybeSpawnThread()
{
    const DynamicThreadPolicy& policy = model_->dynamicThreads();
    if (idleThreads_ > 0 ||
        threads_ + pendingSpawns_ >= policy.maxThreads ||
        queuedJobs() <=
            static_cast<std::size_t>(policy.queueThreshold)) {
        return;
    }
    ++pendingSpawns_;
    sim_.scheduleAfter(
        secondsToSimTime(policy.spawnLatency),
        [this]() {
            --pendingSpawns_;
            ++threads_;
            ++idleThreads_;
            ++spawned_;
            peakThreads_ = std::max(peakThreads_, threads_);
            scheduleWork();
        },
        spawnLabel_.c_str());
}

void
MicroserviceInstance::maybeRetireThreads()
{
    const DynamicThreadPolicy& policy = model_->dynamicThreads();
    if (retireScheduled_ || idleThreads_ <= 0 ||
        threads_ <= baseThreads_) {
        return;
    }
    retireScheduled_ = true;
    sim_.scheduleAfter(
        secondsToSimTime(policy.idleTimeout),
        [this]() {
            retireScheduled_ = false;
            if (idleThreads_ > 0 && threads_ > baseThreads_ &&
                !queues_.empty() && queuedJobs() == 0) {
                --threads_;
                --idleThreads_;
            }
            maybeRetireThreads();
        },
        retireLabel_.c_str());
}

bool
MicroserviceInstance::tryStartWork()
{
    if (idleThreads_ <= 0)
        return false;
    const int stage_count = static_cast<int>(queues_.size());
    for (int step = 0; step < stage_count; ++step) {
        const int stage_id = policy_ == SchedulingPolicy::Drain
                                 ? stage_count - 1 - step
                                 : step;
        StageQueue& queue = *queues_[static_cast<std::size_t>(stage_id)];
        if (!queue.hasEligible())
            continue;
        const StageConfig& stage = model_->stage(stage_id);
        // Shared-disk stages occupy no channel semaphore: the worker
        // blocks off-CPU while the operation contends for bandwidth
        // inside hw::Disk (queue depth included).
        const bool shared_disk =
            stage.resource == StageResource::Disk &&
            machineDisk_ != nullptr;
        hw::CoreSet* resource = nullptr;
        if (!shared_disk) {
            resource = stage.resource == StageResource::Cpu
                           ? cpuCores_
                           : disk_.get();
            if (resource == nullptr ||
                !resource->tryAcquire(sim_.now()))
                continue;
        }
        std::vector<JobPtr> batch = queue.popBatch();
        if (batch.empty()) {
            if (resource != nullptr)
                resource->release(sim_.now());
            continue;
        }
        --idleThreads_;
        startBatch(stage_id, std::move(batch));
        return true;
    }
    return false;
}

void
MicroserviceInstance::startBatch(int stage_id, std::vector<JobPtr> batch)
{
    const StageConfig& stage = model_->stage(stage_id);
    std::uint64_t bytes = 0;
    for (const JobPtr& job : batch)
        bytes += job->bytes;
    SimTime duration = stage.time.sample(
        rng_, static_cast<int>(batch.size()), bytes, dvfs_);
    if (oversubscribed() &&
        model_->executionModel() == ExecutionModel::MultiThreaded) {
        duration += secondsToSimTime(model_->contextSwitchSeconds());
    }
    if (slowFactor_ != 1.0) {
        duration = static_cast<SimTime>(std::llround(
            static_cast<double>(duration) * slowFactor_));
    }
    ++batches_;
    batchSizes_.add(static_cast<double>(batch.size()));

    // Recycle a shared batch record when its completion event has
    // fully drained (the free list holds the only reference); this
    // keeps steady-state batch turnover free of shared_ptr
    // control-block allocations.
    std::shared_ptr<std::vector<JobPtr>> shared_batch;
    if (!batchPool_.empty() && batchPool_.back().use_count() == 1) {
        shared_batch = std::move(batchPool_.back());
        batchPool_.pop_back();
        *shared_batch = std::move(batch);
    } else {
        shared_batch =
            std::make_shared<std::vector<JobPtr>>(std::move(batch));
    }
    activeBatches_.push_back(shared_batch);
    if (stage.resource == StageResource::Disk &&
        machineDisk_ != nullptr) {
        // A sized operation against the shared disk: the sampled
        // duration rides on top of the bandwidth term as the access
        // latency, and the batch completes when the last byte moves.
        const std::uint64_t jobs = shared_batch->size();
        const std::uint64_t io_bytes =
            stage.ioBytes > 0 ? stage.ioBytes * jobs : bytes;
        machineDisk_->submit(
            stage.diskDirection == DiskDirection::Read
                ? hw::Disk::OpKind::Read
                : hw::Disk::OpKind::Write,
            io_bytes, simTimeToSeconds(duration),
            [this, stage_id, shared_batch]() {
                finishBatch(stage_id, *shared_batch);
            },
            stageLabels_[static_cast<std::size_t>(stage_id)].c_str());
        return;
    }
    sim_.scheduleAfter(
        duration,
        [this, stage_id, shared_batch]() {
            finishBatch(stage_id, *shared_batch);
        },
        stageLabels_[static_cast<std::size_t>(stage_id)].c_str());
}

void
MicroserviceInstance::finishBatch(int stage_id, std::vector<JobPtr>& batch)
{
    const StageConfig& stage = model_->stage(stage_id);
    if (stage.resource != StageResource::Disk ||
        machineDisk_ == nullptr) {
        hw::CoreSet* resource = stage.resource == StageResource::Cpu
                                    ? cpuCores_
                                    : disk_.get();
        resource->release(sim_.now());
    }
    ++idleThreads_;
    // Deregister; a crash may already have cleared the registry (and
    // the batch), in which case this completes empty.
    auto it = std::find_if(
        activeBatches_.begin(), activeBatches_.end(),
        [&batch](const std::shared_ptr<std::vector<JobPtr>>& entry) {
            return entry.get() == &batch;
        });
    if (it != activeBatches_.end()) {
        batchPool_.push_back(std::move(*it));
        activeBatches_.erase(it);
    }
    for (JobPtr& job : batch)
        advanceJob(std::move(job));
    batch.clear();
    scheduleWork();
}

void
MicroserviceInstance::crash()
{
    if (down_)
        return;
    down_ = true;
    std::vector<JobPtr> victims;
    for (auto& queue : queues_) {
        for (JobPtr& job : queue->drainAll())
            victims.push_back(std::move(job));
    }
    // Jobs inside running batches die too.  The batch-completion
    // events stay scheduled — they release the core and the worker
    // with zero jobs, keeping resource accounting balanced.
    for (auto& entry : activeBatches_) {
        for (JobPtr& job : *entry)
            victims.push_back(std::move(job));
        entry->clear();
    }
    activeBatches_.clear();
    connections_.reset();
    killed_ += victims.size();
    if (onJobFailed_) {
        for (JobPtr& job : victims)
            onJobFailed_(std::move(job), fault::FailReason::Crash);
    }
}

void
MicroserviceInstance::recover()
{
    if (!down_)
        return;
    down_ = false;
    scheduleWork();
}

void
MicroserviceInstance::advanceJob(JobPtr job)
{
    const PathConfig& path = model_->path(job->execPathId);
    ++job->stageIndex;
    if (job->stageIndex <
        static_cast<int>(path.stageIds.size())) {
        const int next_stage =
            path.stageIds[static_cast<std::size_t>(job->stageIndex)];
        queues_[static_cast<std::size_t>(next_stage)]->push(
            std::move(job));
        return;
    }
    ++completed_;
    if (onJobDone_)
        onJobDone_(std::move(job));
}

std::size_t
MicroserviceInstance::queuedJobs() const
{
    std::size_t total = 0;
    for (const auto& queue : queues_)
        total += queue->size();
    return total;
}

std::size_t
MicroserviceInstance::queuedAtStage(int stage_id) const
{
    if (stage_id < 0 || stage_id >= static_cast<int>(queues_.size()))
        throw std::out_of_range("stage id out of range");
    return queues_[static_cast<std::size_t>(stage_id)]->size();
}

double
MicroserviceInstance::cpuUtilization() const
{
    return cpuCores_->utilization(sim_.now());
}

double
MicroserviceInstance::diskUtilization() const
{
    if (machineDisk_ != nullptr)
        return machineDisk_->utilization(sim_.now());
    if (disk_)
        return disk_->utilization(sim_.now());
    return 0.0;
}

}  // namespace uqsim
