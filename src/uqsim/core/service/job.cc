#include "uqsim/core/service/job.h"

namespace uqsim {

JobPtr
JobFactory::createRoot(SimTime now, std::uint32_t bytes)
{
    JobPtr job = std::allocate_shared<Job>(allocator_);
    job->id = nextId_++;
    job->rootId = job->id;
    job->bytes = bytes;
    job->created = now;
    job->enteredTier = now;
    return job;
}

JobPtr
JobFactory::createCopy(const Job& parent)
{
    JobPtr job = std::allocate_shared<Job>(allocator_, parent);
    job->id = nextId_++;
    job->connectionId = kNoConnection;
    job->stageIndex = -1;
    return job;
}

}  // namespace uqsim
