#include "uqsim/core/service/stage_queue.h"

#include <stdexcept>

namespace uqsim {

namespace {

/**
 * Number of jobs poppable from the front of a per-connection
 * subqueue.  An unblocked connection serves up to the batch limit;
 * a receive-blocked connection serves only the leading jobs that
 * belong to the blocking request itself (HTTP/1.1: the in-flight
 * request proceeds, subsequent requests wait).
 */
std::size_t
eligibleCount(const std::deque<JobPtr>& queue,
              const ConnectionTable* connections, ConnectionId id,
              int batch_limit)
{
    if (queue.empty())
        return 0;
    std::size_t cap =
        batch_limit > 0
            ? std::min(queue.size(),
                       static_cast<std::size_t>(batch_limit))
            : queue.size();
    if (connections == nullptr)
        return cap;
    const JobId owner = connections->blockOwner(id);
    if (owner == 0)
        return cap;
    std::size_t count = 0;
    for (const JobPtr& job : queue) {
        if (count >= cap || job->rootId != owner)
            break;
        ++count;
    }
    return count;
}

}  // namespace

std::unique_ptr<StageQueue>
StageQueue::create(const StageConfig& config,
                   const ConnectionTable* connections)
{
    // "batching": false caps every pop at one job per (sub)queue.
    const int limit = config.batching ? config.batchLimit : 1;
    switch (config.queueType) {
      case QueueType::Single:
        return std::make_unique<SingleQueue>(config.batching,
                                             config.batchLimit);
      case QueueType::Socket:
        return std::make_unique<SocketQueue>(limit, connections);
      case QueueType::Epoll:
        return std::make_unique<EpollQueue>(limit, connections);
    }
    throw std::logic_error("unreachable queue type");
}

// ---------------------------------------------------------------- Single

SingleQueue::SingleQueue(bool batching, int batch_limit)
    : batching_(batching), batchLimit_(batch_limit)
{
}

void
SingleQueue::push(JobPtr job)
{
    queue_.push_back(std::move(job));
}

std::vector<JobPtr>
SingleQueue::popBatch()
{
    std::vector<JobPtr> batch;
    if (queue_.empty())
        return batch;
    std::size_t take = 1;
    if (batching_) {
        take = batchLimit_ > 0
                   ? std::min(queue_.size(),
                              static_cast<std::size_t>(batchLimit_))
                   : queue_.size();
    }
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
    }
    return batch;
}

std::vector<JobPtr>
SingleQueue::drainAll()
{
    std::vector<JobPtr> jobs(std::make_move_iterator(queue_.begin()),
                             std::make_move_iterator(queue_.end()));
    queue_.clear();
    return jobs;
}

// ---------------------------------------------------------------- Socket

SocketQueue::SocketQueue(int batch_limit,
                         const ConnectionTable* connections)
    : batchLimit_(batch_limit), connections_(connections)
{
}

void
SocketQueue::push(JobPtr job)
{
    subqueues_[job->connectionId].push_back(std::move(job));
    ++total_;
}

bool
SocketQueue::hasEligible() const
{
    // Subqueues are erased when drained, so this only scans
    // connections with pending jobs (usually few).
    for (const auto& [id, queue] : subqueues_) {
        if (eligibleCount(queue, connections_, id, batchLimit_) > 0)
            return true;
    }
    return false;
}

std::vector<JobPtr>
SocketQueue::popBatch()
{
    std::vector<JobPtr> batch;
    if (subqueues_.empty())
        return batch;
    // Round-robin: scan connections after the cursor first.
    auto serve = [&](auto begin, auto end) -> bool {
        for (auto it = begin; it != end; ++it) {
            const std::size_t take = eligibleCount(
                it->second, connections_, it->first, batchLimit_);
            if (take == 0)
                continue;
            std::deque<JobPtr>& queue = it->second;
            for (std::size_t i = 0; i < take; ++i) {
                batch.push_back(std::move(queue.front()));
                queue.pop_front();
            }
            total_ -= take;
            cursor_ = it->first;
            if (queue.empty())
                subqueues_.erase(it);
            return true;
        }
        return false;
    };
    auto pivot = subqueues_.upper_bound(cursor_);
    if (!serve(pivot, subqueues_.end()))
        serve(subqueues_.begin(), pivot);
    return batch;
}

std::vector<JobPtr>
SocketQueue::drainAll()
{
    std::vector<JobPtr> jobs;
    jobs.reserve(total_);
    for (auto& [id, queue] : subqueues_) {
        for (JobPtr& job : queue)
            jobs.push_back(std::move(job));
    }
    subqueues_.clear();
    total_ = 0;
    cursor_ = kNoConnection;
    return jobs;
}

// ----------------------------------------------------------------- Epoll

EpollQueue::EpollQueue(int batch_limit, const ConnectionTable* connections)
    : batchLimit_(batch_limit), connections_(connections)
{
}

void
EpollQueue::push(JobPtr job)
{
    subqueues_[job->connectionId].push_back(std::move(job));
    ++total_;
}

bool
EpollQueue::hasEligible() const
{
    for (const auto& [id, queue] : subqueues_) {
        if (eligibleCount(queue, connections_, id, batchLimit_) > 0)
            return true;
    }
    return false;
}

std::size_t
EpollQueue::activeSubqueues() const
{
    std::size_t active = 0;
    for (const auto& [id, queue] : subqueues_) {
        if (eligibleCount(queue, connections_, id, batchLimit_) > 0)
            ++active;
    }
    return active;
}

std::vector<JobPtr>
EpollQueue::popBatch()
{
    std::vector<JobPtr> batch;
    // First N jobs of each active subqueue (paper §III-B).  Drained
    // subqueues are erased so future scans skip them.
    for (auto it = subqueues_.begin(); it != subqueues_.end();) {
        std::deque<JobPtr>& queue = it->second;
        const std::size_t take =
            eligibleCount(queue, connections_, it->first, batchLimit_);
        for (std::size_t i = 0; i < take; ++i) {
            batch.push_back(std::move(queue.front()));
            queue.pop_front();
        }
        total_ -= take;
        if (queue.empty()) {
            it = subqueues_.erase(it);
        } else {
            ++it;
        }
    }
    return batch;
}

std::vector<JobPtr>
EpollQueue::drainAll()
{
    std::vector<JobPtr> jobs;
    jobs.reserve(total_);
    for (auto& [id, queue] : subqueues_) {
        for (JobPtr& job : queue)
            jobs.push_back(std::move(job));
    }
    subqueues_.clear();
    total_ = 0;
    return jobs;
}

}  // namespace uqsim
