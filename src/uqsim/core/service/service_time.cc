#include "uqsim/core/service/service_time.h"

#include <cmath>
#include <stdexcept>

#include "uqsim/random/distribution_factory.h"
#include "uqsim/random/distributions.h"

namespace uqsim {

namespace {

long
mhzKey(double frequency_ghz)
{
    return static_cast<long>(frequency_ghz * 1000.0 + 0.5);
}

}  // namespace

ServiceTimeModel::ServiceTimeModel()
    : base_(std::make_shared<random::DeterministicDistribution>(0.0))
{
}

ServiceTimeModel::ServiceTimeModel(random::DistributionPtr base,
                                   double per_job, double per_byte,
                                   double freq_exponent)
    : base_(std::move(base)), perJob_(per_job), perByte_(per_byte),
      freqExponent_(freq_exponent)
{
    if (!base_)
        throw std::invalid_argument("service time base must be non-null");
    if (per_job < 0.0 || per_byte < 0.0)
        throw std::invalid_argument("per-job/per-byte must be >= 0");
}

ServiceTimeModel
ServiceTimeModel::fromJson(const json::JsonValue& doc)
{
    random::DistributionPtr base;
    if (const json::JsonValue* spec = doc.find("base")) {
        base = random::makeDistribution(*spec);
    } else {
        base = std::make_shared<random::DeterministicDistribution>(0.0);
    }
    ServiceTimeModel model(std::move(base),
                           doc.getOr("per_job_us", 0.0) * 1e-6,
                           doc.getOr("per_byte_ns", 0.0) * 1e-9,
                           doc.getOr("freq_exponent", 1.0));
    if (const json::JsonValue* table = doc.find("per_frequency")) {
        for (const auto& entry : table->asObject()) {
            model.setFrequencyDistribution(
                std::stod(entry.first),
                random::makeDistribution(entry.second));
        }
    }
    return model;
}

void
ServiceTimeModel::setFrequencyDistribution(double frequency_ghz,
                                           random::DistributionPtr dist)
{
    if (!dist)
        throw std::invalid_argument("frequency distribution non-null");
    perFrequency_[mhzKey(frequency_ghz)] = std::move(dist);
}

SimTime
ServiceTimeModel::sample(random::Rng& rng, int batch_jobs,
                         std::uint64_t batch_bytes,
                         const hw::DvfsDomain* dvfs) const
{
    double base_seconds;
    double scale = 1.0;
    bool scaled_base = true;
    // Frequency-insensitive stages (disk I/O: freq_exponent 0, no
    // per-frequency table) never consult the domain.  The bypass is
    // digest-safe: the scaled path would multiply by exactly
    // pow(x, 0.0) == 1.0, and x * 1.0 is IEEE-exact, while the RNG
    // draws one base sample either way.
    if (dvfs != nullptr && !frequencyInsensitive()) {
        const auto it = perFrequency_.find(mhzKey(dvfs->frequency()));
        if (it != perFrequency_.end()) {
            base_seconds = it->second->sample(rng);
            scaled_base = false;
        } else {
            base_seconds = base_->sample(rng);
        }
        scale = std::pow(dvfs->slowdown(), freqExponent_);
    } else {
        base_seconds = base_->sample(rng);
    }
    double seconds = perJob_ * batch_jobs +
                     perByte_ * static_cast<double>(batch_bytes);
    seconds *= scale;
    seconds += scaled_base ? base_seconds * scale : base_seconds;
    return secondsToSimTime(seconds);
}

double
ServiceTimeModel::meanSeconds(int batch_jobs,
                              std::uint64_t batch_bytes) const
{
    return base_->mean() + perJob_ * batch_jobs +
           perByte_ * static_cast<double>(batch_bytes);
}

}  // namespace uqsim
