#ifndef UQSIM_CORE_SERVICE_EXECUTION_PATH_H_
#define UQSIM_CORE_SERVICE_EXECUTION_PATH_H_

/**
 * @file
 * Execution paths within a microservice.
 *
 * Multiple application-logic stages assemble into execution paths,
 * corresponding to a microservice's different code paths; a state
 * machine specifies the probability that a microservice follows each
 * path (paper §III-B).  memcached has deterministic read/write
 * paths; MongoDB probabilistically follows a memory (cache hit) or
 * disk (miss) path.
 */

#include <string>
#include <vector>

#include "uqsim/json/json_value.h"
#include "uqsim/random/rng.h"

namespace uqsim {

/** One execution path: an ordered stage sequence. */
struct PathConfig {
    int id = 0;
    std::string name;
    std::vector<int> stageIds;
    /**
     * Selection weight when the path is chosen probabilistically.
     * Weights are normalized across the service's paths.
     */
    double probability = 1.0;

    /** Parses one entry of the "paths" array in service.json. */
    static PathConfig fromJson(const json::JsonValue& doc);
};

/** Probabilistic path selection state machine. */
class PathSelector {
  public:
    explicit PathSelector(const std::vector<PathConfig>& paths);

    /** Samples a path id according to the normalized weights. */
    int select(random::Rng& rng) const;

    /** True when only one outcome is possible. */
    bool deterministic() const { return cumulative_.size() <= 1; }

  private:
    std::vector<int> ids_;
    std::vector<double> cumulative_;
};

}  // namespace uqsim

#endif  // UQSIM_CORE_SERVICE_EXECUTION_PATH_H_
