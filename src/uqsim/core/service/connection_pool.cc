#include "uqsim/core/service/connection_pool.h"

#include <algorithm>
#include <stdexcept>

namespace uqsim {

ConnectionPool::ConnectionPool(std::string name, int size,
                               ConnectionIdAllocator& ids)
    : name_(std::move(name)), size_(size)
{
    if (size <= 0)
        throw std::invalid_argument("connection pool size must be > 0");
    all_.reserve(static_cast<std::size_t>(size));
    for (int i = 0; i < size; ++i) {
        const ConnectionId id = ids.next();
        all_.push_back(id);
        free_.push_back(id);
    }
}

void
ConnectionPool::acquire(ReadyFn ready)
{
    if (!free_.empty()) {
        const ConnectionId id = free_.front();
        free_.pop_front();
        ready(id);
        return;
    }
    waiters_.push_back(std::move(ready));
    maxWaiters_ = std::max(maxWaiters_, waiters_.size());
}

void
ConnectionPool::release(ConnectionId id)
{
    if (std::find(all_.begin(), all_.end(), id) == all_.end()) {
        throw std::logic_error("connection " + std::to_string(id) +
                               " does not belong to pool " + name_);
    }
    if (!waiters_.empty()) {
        auto ready = std::move(waiters_.front());
        waiters_.pop_front();
        ready(id);
        return;
    }
    if (std::find(free_.begin(), free_.end(), id) != free_.end()) {
        throw std::logic_error("double release of connection " +
                               std::to_string(id) + " in pool " + name_);
    }
    free_.push_back(id);
}

}  // namespace uqsim
