#ifndef UQSIM_CORE_SERVICE_SERVICE_MODEL_H_
#define UQSIM_CORE_SERVICE_SERVICE_MODEL_H_

/**
 * @file
 * The immutable model of one microservice type, parsed from
 * service.json: its stages, execution paths, and execution model.
 * Instances of the same service share one ServiceModel (the paper's
 * modular, reusable per-microservice models).
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "uqsim/core/service/execution_path.h"
#include "uqsim/core/service/stage.h"
#include "uqsim/json/json_value.h"

namespace uqsim {

/**
 * How jobs are dispatched onto hardware (paper §III-B): the simple
 * model dispatches directly onto cores (single-stage services); the
 * multi-threaded model adds a thread/process abstraction capturing
 * context switching and I/O blocking.
 */
enum class ExecutionModel {
    Simple,
    MultiThreaded,
};

ExecutionModel executionModelFromString(const std::string& name);
const char* executionModelName(ExecutionModel model);

/**
 * Dynamic thread/process spawning policy (paper §III-B: thread
 * counts may be static or governed by a dynamic spawning policy).
 *
 * When every worker is busy and more than @ref queueThreshold jobs
 * are queued, a new worker is spawned after @ref spawnLatency; when
 * workers sit idle for @ref idleTimeout, surplus workers above the
 * configured base count are retired.
 */
struct DynamicThreadPolicy {
    /** Maximum workers; 0 disables dynamic spawning. */
    int maxThreads = 0;
    /** Queue depth that triggers a spawn. */
    int queueThreshold = 4;
    /** Thread/process creation latency (seconds). */
    double spawnLatency = 100e-6;
    /** Idle time before a surplus worker is retired (seconds). */
    double idleTimeout = 10e-3;

    bool enabled() const { return maxThreads > 0; }

    /** Parses the "dynamic_threads" object of service.json. */
    static DynamicThreadPolicy fromJson(const json::JsonValue& doc);
};

/** Immutable per-service-type model. */
class ServiceModel {
  public:
    /**
     * @param name    the service name ("service_name")
     * @param stages  stage configs with contiguous ids 0..n-1
     * @param paths   at least one execution path
     */
    ServiceModel(std::string name, std::vector<StageConfig> stages,
                 std::vector<PathConfig> paths);

    /** Parses a complete service.json document. */
    static std::shared_ptr<ServiceModel>
    fromJson(const json::JsonValue& doc);

    const std::string& name() const { return name_; }

    /**
     * Interned id of name() within the owning deployment, assigned
     * by Deployment::registerModel.  Hot paths (dispatcher routing,
     * per-tier stats, tracing) use this id instead of the string.
     */
    std::uint32_t nameId() const { return nameId_; }
    void setNameId(std::uint32_t id) { nameId_ = id; }

    const std::vector<StageConfig>& stages() const { return stages_; }
    const std::vector<PathConfig>& paths() const { return paths_; }

    const StageConfig& stage(int id) const;
    const PathConfig& path(int id) const;
    /** Path id by name; throws when unknown. */
    int pathIdByName(const std::string& name) const;

    const PathSelector& pathSelector() const { return selector_; }

    ExecutionModel executionModel() const { return executionModel_; }
    void setExecutionModel(ExecutionModel model)
    {
        executionModel_ = model;
    }

    /** Default worker (thread/process) count; graph.json overrides. */
    int defaultThreads() const { return defaultThreads_; }
    void setDefaultThreads(int threads);

    /** Default disk channels (parallel I/O capacity); 0 = no disk. */
    int defaultDiskChannels() const { return defaultDiskChannels_; }
    void setDefaultDiskChannels(int channels);

    /** Context-switch overhead applied when threads > cores. */
    double contextSwitchSeconds() const { return contextSwitch_; }
    void setContextSwitchSeconds(double seconds);

    /** Dynamic spawning policy (disabled by default). */
    const DynamicThreadPolicy& dynamicThreads() const
    {
        return dynamicThreads_;
    }
    void setDynamicThreads(const DynamicThreadPolicy& policy);

    /** True when any stage uses the disk resource. */
    bool usesDisk() const;

  private:
    std::string name_;
    std::uint32_t nameId_ = 0xFFFFFFFFu;
    std::vector<StageConfig> stages_;
    std::vector<PathConfig> paths_;
    PathSelector selector_;
    ExecutionModel executionModel_ = ExecutionModel::MultiThreaded;
    int defaultThreads_ = 1;
    int defaultDiskChannels_ = 0;
    double contextSwitch_ = 2e-6;
    DynamicThreadPolicy dynamicThreads_;
};

using ServiceModelPtr = std::shared_ptr<ServiceModel>;

}  // namespace uqsim

#endif  // UQSIM_CORE_SERVICE_SERVICE_MODEL_H_
