#ifndef UQSIM_CORE_SERVICE_STAGE_H_
#define UQSIM_CORE_SERVICE_STAGE_H_

/**
 * @file
 * Stage definitions.
 *
 * A stage is the basic element of a microservice's application
 * logic: a queue-consumer pair representing one execution phase
 * (paper §III-B).  Stages are configured with a queue discipline
 * (single / socket / epoll), optional batching, a service-time
 * model, and the hardware resource they occupy (CPU or disk).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "uqsim/core/service/service_time.h"
#include "uqsim/json/json_value.h"

namespace uqsim {

/** Queue discipline of a stage ("queue_type" in service.json). */
enum class QueueType {
    /** One FIFO queue holding all jobs. */
    Single,
    /** Per-connection subqueues; a pop drains one ready connection. */
    Socket,
    /** Per-connection subqueues; a pop takes the first N jobs of
     *  every active (non-blocked, non-empty) subqueue. */
    Epoll,
};

QueueType queueTypeFromString(const std::string& name);
const char* queueTypeName(QueueType type);

/** Hardware resource a stage occupies while executing. */
enum class StageResource {
    Cpu,   ///< needs a core from the instance's core set
    Disk,  ///< needs a disk channel; the thread blocks off-CPU
};

StageResource stageResourceFromString(const std::string& name);
const char* stageResourceName(StageResource resource);

/** Direction of a disk stage's I/O ("rw" in service.json). */
enum class DiskDirection {
    Read,
    Write,
};

DiskDirection diskDirectionFromString(const std::string& name);
const char* diskDirectionName(DiskDirection direction);

/** Static configuration of one stage. */
struct StageConfig {
    int id = 0;
    std::string name;
    QueueType queueType = QueueType::Single;
    bool batching = false;
    /**
     * Batch limit N ("queue_parameter"): for epoll, the first N jobs
     * of each active subqueue; for socket, the first N jobs of one
     * ready connection; for single with batching, up to N jobs.
     * <= 0 means unlimited.
     */
    int batchLimit = 0;
    /** Execution-time model. */
    ServiceTimeModel time;
    /** Resource occupied during execution. */
    StageResource resource = StageResource::Cpu;
    /**
     * Bytes moved per job by a disk stage ("io_bytes").  When the
     * instance's machine has an attached hw::Disk, each batch
     * becomes a sized operation contending for shared bandwidth;
     * 0 falls back to the batch's payload bytes.  Ignored for CPU
     * stages and for the legacy per-instance channel model.
     */
    std::uint64_t ioBytes = 0;
    /** Disk I/O direction ("rw": "read" or "write"). */
    DiskDirection diskDirection = DiskDirection::Read;

    /**
     * Parses one entry of the "stages" array in service.json.  The
     * paper's template is accepted:
     *
     *   {"stage_name": "epoll", "stage_id": 0, "queue_type": "epoll",
     *    "batching": true, "queue_parameter": [null, 8],
     *    "service_time": {...}, "resource": "cpu"}
     */
    static StageConfig fromJson(const json::JsonValue& doc);
};

}  // namespace uqsim

#endif  // UQSIM_CORE_SERVICE_STAGE_H_
