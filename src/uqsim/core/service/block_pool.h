#ifndef UQSIM_CORE_SERVICE_BLOCK_POOL_H_
#define UQSIM_CORE_SERVICE_BLOCK_POOL_H_

/**
 * @file
 * Fixed-size block pool and a std-compatible allocator over it.
 *
 * Jobs are allocated and destroyed once per request hop; at steady
 * state the population is bounded by the number of in-flight
 * requests, which makes a free-list pool the right shape: blocks are
 * carved from slab allocations, recycled on a LIFO free list, and
 * only returned to the OS when the pool dies.  The PoolAllocator
 * plugs the pool into std::allocate_shared so a Job and its
 * shared_ptr control block land in one recycled block.
 *
 * Single-threaded by design, like everything inside one Simulator;
 * parallel sweeps give every replication its own pool.
 */

#include <cassert>
#include <cstddef>
#include <memory>
#include <new>
#include <vector>

namespace uqsim {

/**
 * Pool of equally-sized blocks.  The block size is fixed by the
 * first allocation; the pool serves exactly one object type (plus
 * its allocate_shared control-block wrapper).
 */
class FixedBlockPool {
  public:
    FixedBlockPool() = default;
    FixedBlockPool(const FixedBlockPool&) = delete;
    FixedBlockPool& operator=(const FixedBlockPool&) = delete;

    void*
    allocate(std::size_t bytes)
    {
        if (blockSize_ == 0)
            blockSize_ = bytes;
        assert(bytes == blockSize_ &&
               "FixedBlockPool serves one block size");
        if (free_.empty())
            grow();
        void* block = free_.back();
        free_.pop_back();
        return block;
    }

    void
    deallocate(void* block)
    {
        free_.push_back(block);
    }

    /** Blocks ever carved (diagnostics; live + free). */
    std::size_t capacity() const { return capacity_; }

    /** Blocks currently on the free list (diagnostics). */
    std::size_t freeBlocks() const { return free_.size(); }

    /** Blocks currently handed out — the live object population.
     *  The invariant auditor checks this drops to zero when a
     *  drained simulation cannot be holding any objects. */
    std::size_t liveBlocks() const { return capacity_ - free_.size(); }

  private:
    static constexpr std::size_t kBlocksPerSlab = 256;

    void
    grow()
    {
        const std::size_t stride =
            (blockSize_ + alignof(std::max_align_t) - 1) &
            ~(alignof(std::max_align_t) - 1);
        slabs_.push_back(std::make_unique<unsigned char[]>(
            stride * kBlocksPerSlab));
        unsigned char* base = slabs_.back().get();
        free_.reserve(free_.size() + kBlocksPerSlab);
        for (std::size_t i = kBlocksPerSlab; i-- > 0;)
            free_.push_back(base + i * stride);
        capacity_ += kBlocksPerSlab;
    }

    std::size_t blockSize_ = 0;
    std::size_t capacity_ = 0;
    std::vector<std::unique_ptr<unsigned char[]>> slabs_;
    std::vector<void*> free_;
};

/**
 * Allocator handing out FixedBlockPool blocks for single-object
 * allocations (the allocate_shared case).  Copies share the pool via
 * shared_ptr, so the pool outlives every object allocated from it.
 */
template <typename T>
class PoolAllocator {
  public:
    using value_type = T;

    explicit PoolAllocator(std::shared_ptr<FixedBlockPool> pool)
        : pool_(std::move(pool))
    {
    }

    template <typename U>
    PoolAllocator(const PoolAllocator<U>& other) : pool_(other.pool_)
    {
    }

    T*
    allocate(std::size_t n)
    {
        if (n != 1) {
            return static_cast<T*>(
                ::operator new(n * sizeof(T)));
        }
        return static_cast<T*>(pool_->allocate(sizeof(T)));
    }

    void
    deallocate(T* p, std::size_t n)
    {
        if (n != 1) {
            ::operator delete(p);
            return;
        }
        pool_->deallocate(p);
    }

    template <typename U>
    bool
    operator==(const PoolAllocator<U>& other) const
    {
        return pool_ == other.pool_;
    }

  private:
    template <typename U>
    friend class PoolAllocator;

    std::shared_ptr<FixedBlockPool> pool_;
};

}  // namespace uqsim

#endif  // UQSIM_CORE_SERVICE_BLOCK_POOL_H_
