#ifndef UQSIM_CORE_SERVICE_SERVICE_TIME_H_
#define UQSIM_CORE_SERVICE_SERVICE_TIME_H_

/**
 * @file
 * Stage service-time model.
 *
 * The paper assigns every stage one or more execution-time
 * distributions describing its processing time under different
 * settings (DVFS configurations, loads, thread counts), and notes
 * that some stages are runtime dependent: epoll's execution time
 * grows linearly with the number of returned events, and
 * socket_read's with the number of bytes read (§III-B).
 *
 * ServiceTimeModel captures this as:
 *
 *   time = base.sample() + per_job * batch_jobs + per_byte * bytes
 *
 * scaled by (f_nominal / f)^freq_exponent under DVFS, unless an
 * explicit per-frequency distribution is provided for the current
 * step, in which case that distribution is used unscaled (the
 * paper's per-frequency histograms).
 */

#include <map>
#include <string>

#include "uqsim/core/engine/sim_time.h"
#include "uqsim/hw/dvfs.h"
#include "uqsim/json/json_value.h"
#include "uqsim/random/distribution.h"

namespace uqsim {

/** Parameterized stage execution time. */
class ServiceTimeModel {
  public:
    ServiceTimeModel();

    /** Fixed + runtime-dependent components. */
    explicit ServiceTimeModel(random::DistributionPtr base,
                              double per_job = 0.0, double per_byte = 0.0,
                              double freq_exponent = 1.0);

    /**
     * Parses the "service_time" JSON object:
     *
     *   {"base": <dist spec>, "per_job_us": 1.0, "per_byte_ns": 0.5,
     *    "freq_exponent": 1.0,
     *    "per_frequency": {"2.6": <dist spec>, "1.2": <dist spec>}}
     */
    static ServiceTimeModel fromJson(const json::JsonValue& doc);

    /** Registers a frequency-specific base distribution. */
    void setFrequencyDistribution(double frequency_ghz,
                                  random::DistributionPtr dist);

    /**
     * Samples the execution time of one batch.
     *
     * @param rng         sampling stream
     * @param batch_jobs  number of jobs in the batch (>= 1)
     * @param batch_bytes total payload bytes across the batch
     * @param dvfs        frequency domain, or nullptr for nominal
     */
    SimTime sample(random::Rng& rng, int batch_jobs,
                   std::uint64_t batch_bytes,
                   const hw::DvfsDomain* dvfs) const;

    /** Mean per-batch time at nominal frequency for @p batch_jobs. */
    double meanSeconds(int batch_jobs, std::uint64_t batch_bytes) const;

    double perJob() const { return perJob_; }
    double perByte() const { return perByte_; }
    double freqExponent() const { return freqExponent_; }
    const random::DistributionPtr& base() const { return base_; }

    /**
     * True when sampling cannot depend on the frequency domain:
     * freq_exponent is 0 (the scale is pow(x, 0) == 1, exactly) and
     * no per-frequency distribution is registered.  Disk stages are
     * configured this way — their time is I/O-bound — and sample()
     * bypasses the DVFS-aware path for them, which is bit-identical
     * to scaling by 1.0 but makes the contract assertable.
     */
    bool frequencyInsensitive() const
    {
        return freqExponent_ == 0.0 && perFrequency_.empty();
    }

  private:
    random::DistributionPtr base_;
    double perJob_ = 0.0;
    double perByte_ = 0.0;
    double freqExponent_ = 1.0;
    /** Keyed by frequency in integer MHz to avoid FP key issues. */
    std::map<long, random::DistributionPtr> perFrequency_;
};

}  // namespace uqsim

#endif  // UQSIM_CORE_SERVICE_SERVICE_TIME_H_
