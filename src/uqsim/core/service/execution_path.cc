#include "uqsim/core/service/execution_path.h"

#include <stdexcept>

namespace uqsim {

PathConfig
PathConfig::fromJson(const json::JsonValue& doc)
{
    PathConfig config;
    config.id = static_cast<int>(doc.at("path_id").asInt());
    config.name = doc.getOr("path_name", "path" + std::to_string(config.id));
    for (const json::JsonValue& stage : doc.at("stages").asArray())
        config.stageIds.push_back(static_cast<int>(stage.asInt()));
    if (config.stageIds.empty())
        throw json::JsonError("path \"" + config.name + "\" has no stages");
    config.probability = doc.getOr("probability", 1.0);
    if (config.probability < 0.0)
        throw json::JsonError("path probability must be >= 0");
    return config;
}

PathSelector::PathSelector(const std::vector<PathConfig>& paths)
{
    if (paths.empty())
        throw std::invalid_argument("path selector requires >= 1 path");
    double total = 0.0;
    for (const PathConfig& path : paths)
        total += path.probability;
    if (total <= 0.0)
        throw std::invalid_argument("path probabilities sum to zero");
    double cumulative = 0.0;
    for (const PathConfig& path : paths) {
        cumulative += path.probability / total;
        ids_.push_back(path.id);
        cumulative_.push_back(cumulative);
    }
    cumulative_.back() = 1.0;  // guard against FP drift
}

int
PathSelector::select(random::Rng& rng) const
{
    if (ids_.size() == 1)
        return ids_.front();
    const double u = rng.nextDouble();
    for (std::size_t i = 0; i < cumulative_.size(); ++i) {
        if (u < cumulative_[i])
            return ids_[i];
    }
    return ids_.back();
}

}  // namespace uqsim
