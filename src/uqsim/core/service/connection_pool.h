#ifndef UQSIM_CORE_SERVICE_CONNECTION_POOL_H_
#define UQSIM_CORE_SERVICE_CONNECTION_POOL_H_

/**
 * @file
 * Inter-tier connection pools.
 *
 * graph.json assigns each microservice a connection pool size
 * (paper §III-C).  A pool holds a fixed set of connections from an
 * upstream instance to a downstream instance; a request must hold a
 * pooled connection while it is being processed downstream.  Pool
 * exhaustion queues requests upstream — the backpressure effect the
 * power-management case study calls out (connection pool exhaustion
 * and blocking).
 */

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "uqsim/core/engine/inline_function.h"
#include "uqsim/core/service/job.h"

namespace uqsim {

/** Allocates globally unique connection ids. */
class ConnectionIdAllocator {
  public:
    ConnectionId next() { return next_++; }

    /** The id the next call to next() will hand out (snapshot
     *  validation; ids are allocated deterministically). */
    ConnectionId peekNext() const { return next_; }

  private:
    ConnectionId next_ = 1;
};

/** Fixed-size pool of connections to one downstream instance. */
class ConnectionPool {
  public:
    /** Ready callback; sized so the dispatcher's forward-hop capture
     *  (this + job + node + instances + pool + root) stays inline —
     *  one pool acquire per request hop must not heap-allocate. */
    using ReadyFn = InlineFunction<void(ConnectionId), 96>;

    /**
     * @param name  diagnostic label, e.g. "nginx.0->memcached.1"
     * @param size  number of connections (> 0)
     * @param ids   allocator for the pool's connection ids
     */
    ConnectionPool(std::string name, int size,
                   ConnectionIdAllocator& ids);

    const std::string& name() const { return name_; }
    int size() const { return size_; }
    int available() const { return static_cast<int>(free_.size()); }
    std::size_t waiters() const { return waiters_.size(); }
    std::size_t maxWaiters() const { return maxWaiters_; }

    /** Free connection ids in hand-out order (snapshot digesting:
     *  FIFO reuse makes the order deterministic under replay). */
    const std::deque<ConnectionId>& freeIds() const { return free_; }

    /**
     * Hands a free connection to @p ready, immediately when one is
     * available or once a connection is released otherwise (FIFO).
     */
    void acquire(ReadyFn ready);

    /** Returns connection @p id to the pool. */
    void release(ConnectionId id);

  private:
    std::string name_;
    int size_;
    std::vector<ConnectionId> all_;
    std::deque<ConnectionId> free_;
    std::deque<ReadyFn> waiters_;
    std::size_t maxWaiters_ = 0;
};

}  // namespace uqsim

#endif  // UQSIM_CORE_SERVICE_CONNECTION_POOL_H_
