#ifndef UQSIM_CORE_SERVICE_NAME_INTERNER_H_
#define UQSIM_CORE_SERVICE_NAME_INTERNER_H_

/**
 * @file
 * Service-name interning.
 *
 * Service and tier names appear on every request hop: instance
 * selection, edge-policy lookup, per-tier fault counters, trace
 * spans.  Interning maps each distinct name to a small dense integer
 * id at configuration-load time so the hot path works with array
 * indices; strings reappear only at report-render boundaries.
 *
 * Ids are assigned in intern order, which is configuration order —
 * deterministic for a given config, so id-keyed iteration cannot
 * perturb simulation results.
 */

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace uqsim {

/** Bidirectional name <-> dense-id table. */
class NameInterner {
  public:
    /** Sentinel for "no name". */
    static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

    /** Returns the id of @p name, interning it if new. */
    std::uint32_t
    intern(const std::string& name)
    {
        const auto it = ids_.find(name);
        if (it != ids_.end())
            return it->second;
        const auto id = static_cast<std::uint32_t>(names_.size());
        names_.push_back(name);
        ids_.emplace(name, id);
        return id;
    }

    /** The id of @p name, or kNone when never interned. */
    std::uint32_t
    find(const std::string& name) const
    {
        const auto it = ids_.find(name);
        return it == ids_.end() ? kNone : it->second;
    }

    /** The name behind @p id. */
    const std::string&
    name(std::uint32_t id) const
    {
        if (id >= names_.size())
            throw std::out_of_range("unknown interned id " +
                                    std::to_string(id));
        return names_[id];
    }

    /** Number of interned names (ids are 0..size-1). */
    std::size_t size() const { return names_.size(); }

  private:
    std::map<std::string, std::uint32_t> ids_;
    std::vector<std::string> names_;
};

}  // namespace uqsim

#endif  // UQSIM_CORE_SERVICE_NAME_INTERNER_H_
