#ifndef UQSIM_CORE_SERVICE_INSTANCE_H_
#define UQSIM_CORE_SERVICE_INSTANCE_H_

/**
 * @file
 * A running microservice instance.
 *
 * An instance couples a ServiceModel with hardware: a set of worker
 * threads/processes, dedicated CPU cores on a machine, optional disk
 * channels, and a DVFS domain.  Jobs delivered by the dispatcher
 * flow through the model's stage queues; idle workers pick batches
 * according to the scheduling policy, occupy the stage's resource
 * for the sampled service time, and advance jobs to their next
 * stage.  Completion of a job's last stage reports back to the
 * dispatcher.
 *
 * Worker scheduling policy: by default workers serve the *latest*
 * non-empty stage first (Drain), which mirrors a real event loop —
 * a batch returned by epoll is read, processed, and sent before the
 * worker polls again.  StageOrder (earliest stage first) is
 * available as an ablation.
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "uqsim/core/engine/simulator.h"
#include "uqsim/core/service/connection.h"
#include "uqsim/core/service/job.h"
#include "uqsim/core/service/service_model.h"
#include "uqsim/core/service/stage_queue.h"
#include "uqsim/fault/resilience.h"
#include "uqsim/hw/machine.h"
#include "uqsim/random/rng.h"
#include "uqsim/stats/summary.h"

namespace uqsim {

/** Order in which idle workers scan stage queues. */
enum class SchedulingPolicy {
    /** Latest stage first (event-loop drain; the default). */
    Drain,
    /** Earliest stage first (ablation). */
    StageOrder,
};

/** Per-instance deployment parameters (from graph.json). */
struct InstanceConfig {
    /** Worker threads/processes; 0 uses the model default. */
    int threads = 0;
    /** Dedicated CPU cores; 0 means one per thread. */
    int cores = 0;
    /** Disk channels for the legacy per-instance channel model.
     *  -1 inherits the model default; an explicit 0 disables disk
     *  channels (and is an error when the model has disk stages and
     *  the machine attaches no disk).  Ignored when disk stages bind
     *  to a machine-attached hw::Disk. */
    int diskChannels = -1;
    /** Machine disk to bind disk stages to, by name.  Empty binds
     *  the machine's default (first) disk when the model has disk
     *  stages and the machine has any. */
    std::string disk;
    /** Give the instance its own DVFS domain (per-tier power
     *  control) instead of sharing the machine's. */
    bool ownDvfsDomain = false;
    SchedulingPolicy policy = SchedulingPolicy::Drain;
    /** Bound on jobs queued across all stages; 0 = unbounded.  A
     *  full instance rejects new jobs (reject-on-full). */
    int queueCapacity = 0;
};

/** One deployed microservice instance. */
class MicroserviceInstance {
  public:
    /**
     * @param sim      owning simulator
     * @param model    shared immutable service model
     * @param name     unique instance name, e.g. "nginx.0"
     * @param machine  host machine; nullptr gives the instance its
     *                 own detached core set at nominal frequency
     *                 (unit tests)
     * @param config   deployment parameters
     */
    MicroserviceInstance(Simulator& sim, ServiceModelPtr model,
                         std::string name, hw::Machine* machine,
                         const InstanceConfig& config);

    MicroserviceInstance(const MicroserviceInstance&) = delete;
    MicroserviceInstance& operator=(const MicroserviceInstance&) = delete;

    const std::string& name() const { return name_; }
    const ServiceModel& model() const { return *model_; }
    hw::Machine* machine() { return machine_; }

    /** Deployment-wide dense instance id (deployment order); -1 for
     *  detached instances.  Keys connection-pool lookups. */
    int uid() const { return uid_; }
    void setUid(int uid) { uid_ = uid; }

    /** The instance's frequency domain (never null). */
    hw::DvfsDomain* dvfs() { return dvfs_; }
    const hw::DvfsDomain* dvfs() const { return dvfs_; }

    /**
     * Delivers a job.  job->execPathId selects the execution path;
     * pass -1 to sample from the model's path probabilities.
     * job->connectionId identifies the epoll/socket subqueue.
     */
    void accept(JobPtr job);

    /** Callback fired when a job finishes its last stage. */
    void setOnJobDone(std::function<void(JobPtr)> callback)
    {
        onJobDone_ = std::move(callback);
    }

    /** Callback fired when a job is lost to a fault or rejection
     *  (crash kill, delivery while down, bounded queue full). */
    void setOnJobFailed(
        std::function<void(JobPtr, fault::FailReason)> callback)
    {
        onJobFailed_ = std::move(callback);
    }

    /** Receive-blocking state for this instance's connections. */
    ConnectionTable& connections() { return connections_; }

    /** Re-examines queues; called when external state changes. */
    void scheduleWork();

    // Fault injection ------------------------------------------------

    /**
     * Kills the instance: every queued job and every job in a
     * running batch fails (reported via the job-failed callback),
     * and all connection state resets.  Worker-thread and core
     * accounting stays balanced — in-flight batch completions still
     * fire, they just complete empty.
     */
    void crash();

    /** Brings a crashed instance back (empty queues, fresh
     *  connections). */
    void recover();

    bool isDown() const { return down_; }

    /** Multiplies sampled processing times (slow-node fault);
     *  1.0 = nominal. */
    void setSlowFactor(double factor) { slowFactor_ = factor; }
    double slowFactor() const { return slowFactor_; }

    /** Jobs killed by crashes. */
    std::uint64_t killedJobs() const { return killed_; }
    /** Jobs rejected by the bounded queue. */
    std::uint64_t rejectedJobs() const { return rejected_; }
    /** Jobs refused because the instance was down. */
    std::uint64_t refusedJobs() const { return refused_; }

    // Introspection / statistics -------------------------------------

    int threads() const { return threads_; }
    int idleThreads() const { return idleThreads_; }
    /** Configured base worker count (dynamic spawning floor). */
    int baseThreads() const { return baseThreads_; }
    /** Highest concurrent worker count observed. */
    int peakThreads() const { return peakThreads_; }
    /** Workers spawned by the dynamic policy so far. */
    std::uint64_t spawnedThreads() const { return spawned_; }
    std::uint64_t completedJobs() const { return completed_; }
    std::uint64_t executedBatches() const { return batches_; }

    /** Jobs currently queued across all stages. */
    std::size_t queuedJobs() const;

    /** Jobs queued at one stage. */
    std::size_t queuedAtStage(int stage_id) const;

    /** CPU core utilization so far. */
    double cpuUtilization() const;

    /** Disk utilization on its own axis (never folded into the CPU
     *  number): the bound machine disk's busy fraction, or the
     *  legacy channel set's occupancy; 0 without disk stages. */
    double diskUtilization() const;

    /** The machine disk this instance's disk stages contend on, or
     *  nullptr under the legacy channel model. */
    hw::Disk* machineDisk() { return machineDisk_; }

    /** Observed batch-size statistics (batching effectiveness). */
    const stats::Summary& batchSizeStats() const { return batchSizes_; }

  private:
    bool tryStartWork();
    void startBatch(int stage_id, std::vector<JobPtr> batch);
    void finishBatch(int stage_id, std::vector<JobPtr>& batch);
    void advanceJob(JobPtr job);
    bool oversubscribed() const { return threads_ > coreCapacity_; }
    void maybeSpawnThread();
    void maybeRetireThreads();

    Simulator& sim_;
    ServiceModelPtr model_;
    std::string name_;
    int uid_ = -1;
    hw::Machine* machine_;
    hw::DvfsDomain* dvfs_ = nullptr;
    std::unique_ptr<hw::DvfsDomain> ownedDvfs_;
    hw::CoreSet* cpuCores_ = nullptr;
    std::unique_ptr<hw::CoreSet> ownedCpu_;
    std::unique_ptr<hw::CoreSet> disk_;
    hw::Disk* machineDisk_ = nullptr;
    int threads_;
    int idleThreads_;
    int baseThreads_;
    int peakThreads_;
    int coreCapacity_ = 0;
    int pendingSpawns_ = 0;
    bool retireScheduled_ = false;
    std::uint64_t spawned_ = 0;
    SchedulingPolicy policy_;
    ConnectionTable connections_;
    std::vector<std::unique_ptr<StageQueue>> queues_;
    random::RngStream rng_;
    /** Precomputed "<instance>/<stage>" event labels (hot path). */
    std::vector<std::string> stageLabels_;
    std::string spawnLabel_;
    std::string retireLabel_;
    std::function<void(JobPtr)> onJobDone_;
    std::function<void(JobPtr, fault::FailReason)> onJobFailed_;
    bool scheduling_ = false;
    std::uint64_t completed_ = 0;
    std::uint64_t batches_ = 0;
    stats::Summary batchSizes_;
    bool down_ = false;
    double slowFactor_ = 1.0;
    int queueCapacity_ = 0;
    std::uint64_t killed_ = 0;
    std::uint64_t rejected_ = 0;
    std::uint64_t refused_ = 0;
    /** Batches currently executing; cleared (jobs killed) on crash
     *  while their completion events drain harmlessly. */
    std::vector<std::shared_ptr<std::vector<JobPtr>>> activeBatches_;
    /** Finished batch records awaiting reuse; an entry is reusable
     *  once its completion event dropped the last other reference. */
    std::vector<std::shared_ptr<std::vector<JobPtr>>> batchPool_;
};

using InstancePtr = std::unique_ptr<MicroserviceInstance>;

}  // namespace uqsim

#endif  // UQSIM_CORE_SERVICE_INSTANCE_H_
