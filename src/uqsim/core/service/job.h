#ifndef UQSIM_CORE_SERVICE_JOB_H_
#define UQSIM_CORE_SERVICE_JOB_H_

/**
 * @file
 * Jobs: requests flowing through the microservice network.
 *
 * A client request creates one root job.  Fan-out path nodes copy
 * the job (one copy per child node); all copies share the root id,
 * which fan-in synchronization and connection unblocking match on
 * (paper §III-C).
 */

#include <cstdint>
#include <memory>

#include "uqsim/core/engine/sim_time.h"
#include "uqsim/core/service/block_pool.h"

namespace uqsim {

/** Unique job / request identifier. */
using JobId = std::uint64_t;

/** Globally unique connection identifier. */
using ConnectionId = std::int64_t;

/** Sentinel for "no connection". */
inline constexpr ConnectionId kNoConnection = -1;

/** A request (or a fan-out copy of one) traversing the system. */
struct Job {
    /** Unique id of this copy. */
    JobId id = 0;
    /** Id of the originating client request; shared by all copies. */
    JobId rootId = 0;

    /** Index of the sampled inter-service path variant. */
    int pathVariant = 0;
    /** Current path node (index into the variant's node list). */
    int pathNodeId = -1;
    /** Execution path id within the current microservice. */
    int execPathId = 0;
    /** Position within the execution path's stage list. */
    int stageIndex = -1;

    /** Request payload size in bytes (affects socket/irq cost). */
    std::uint32_t bytes = 128;

    /** Connection the job arrived on at the current instance. */
    ConnectionId connectionId = kNoConnection;

    /** Client issue time (end-to-end latency reference). */
    SimTime created = 0;
    /** Time the job entered the current path node's tier. */
    SimTime enteredTier = 0;

    /** Identifies the issuing client (multi-client simulations). */
    int clientTag = -1;
};

using JobPtr = std::shared_ptr<Job>;

/**
 * Allocates jobs with unique ids.  Jobs come from a free-list block
 * pool via allocate_shared — object and control block in one
 * recycled allocation, so steady-state job churn never touches the
 * heap.  The pool is shared into every JobPtr's deleter and outlives
 * the factory if jobs do.
 */
class JobFactory {
  public:
    JobFactory()
        : pool_(std::make_shared<FixedBlockPool>()),
          allocator_(pool_)
    {
    }

    /** Creates a new root job issued at @p now. */
    JobPtr createRoot(SimTime now, std::uint32_t bytes);

    /** Creates a fan-out copy of @p parent. */
    JobPtr createCopy(const Job& parent);

    /** Total jobs ever created. */
    JobId created() const { return nextId_ - 1; }

    /** Pool blocks ever carved (diagnostics; bounds live jobs). */
    std::size_t poolCapacity() const { return pool_->capacity(); }

    /** Jobs currently alive (allocated and not yet destroyed).
     *  Exact: every job occupies exactly one pool block, object and
     *  control block fused by allocate_shared. */
    std::size_t liveJobs() const { return pool_->liveBlocks(); }

  private:
    JobId nextId_ = 1;
    std::shared_ptr<FixedBlockPool> pool_;
    PoolAllocator<Job> allocator_;
};

}  // namespace uqsim

#endif  // UQSIM_CORE_SERVICE_JOB_H_
