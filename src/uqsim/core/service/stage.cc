#include "uqsim/core/service/stage.h"

#include <stdexcept>

#include "uqsim/json/validation.h"

namespace uqsim {

QueueType
queueTypeFromString(const std::string& name)
{
    if (name == "single")
        return QueueType::Single;
    if (name == "socket")
        return QueueType::Socket;
    if (name == "epoll")
        return QueueType::Epoll;
    throw std::invalid_argument("unknown queue_type: \"" + name + "\"");
}

const char*
queueTypeName(QueueType type)
{
    switch (type) {
      case QueueType::Single: return "single";
      case QueueType::Socket: return "socket";
      case QueueType::Epoll: return "epoll";
    }
    return "?";
}

StageResource
stageResourceFromString(const std::string& name)
{
    if (name == "cpu")
        return StageResource::Cpu;
    if (name == "disk")
        return StageResource::Disk;
    throw std::invalid_argument("unknown stage resource: \"" + name +
                                "\"");
}

const char*
stageResourceName(StageResource resource)
{
    switch (resource) {
      case StageResource::Cpu: return "cpu";
      case StageResource::Disk: return "disk";
    }
    return "?";
}

DiskDirection
diskDirectionFromString(const std::string& name)
{
    if (name == "read")
        return DiskDirection::Read;
    if (name == "write")
        return DiskDirection::Write;
    throw std::invalid_argument("unknown rw direction: \"" + name +
                                "\" (expected \"read\" or \"write\")");
}

const char*
diskDirectionName(DiskDirection direction)
{
    switch (direction) {
      case DiskDirection::Read: return "read";
      case DiskDirection::Write: return "write";
    }
    return "?";
}

StageConfig
StageConfig::fromJson(const json::JsonValue& doc)
{
    json::requireKnownKeys(doc,
                           {"stage_name", "stage_id", "queue_type",
                            "batching", "queue_parameter",
                            "service_time", "resource", "io_bytes",
                            "rw"},
                           "service.json stages[]");
    StageConfig config;
    config.name = doc.at("stage_name").asString();
    config.id = static_cast<int>(doc.at("stage_id").asInt());
    config.queueType =
        queueTypeFromString(doc.getOr("queue_type", "single"));
    config.batching = doc.getOr("batching", false);

    // "queue_parameter": the paper's template uses [null, N] for
    // epoll and [N] for socket; also accept a bare integer.
    if (const json::JsonValue* param = doc.find("queue_parameter")) {
        if (param->isInt()) {
            config.batchLimit = static_cast<int>(param->asInt());
        } else if (param->isArray()) {
            for (const json::JsonValue& element : param->asArray()) {
                if (element.isInt()) {
                    config.batchLimit =
                        static_cast<int>(element.asInt());
                }
            }
        } else if (!param->isNull()) {
            throw json::JsonError(
                "queue_parameter must be null, int, or array");
        }
    }

    if (const json::JsonValue* time = doc.find("service_time"))
        config.time = ServiceTimeModel::fromJson(*time);
    config.resource =
        stageResourceFromString(doc.getOr("resource", "cpu"));
    const std::int64_t ioBytes = doc.getOr("io_bytes",
                                           std::int64_t{0});
    if (ioBytes < 0)
        throw json::JsonError("io_bytes must be >= 0");
    config.ioBytes = static_cast<std::uint64_t>(ioBytes);
    config.diskDirection =
        diskDirectionFromString(doc.getOr("rw", "read"));
    if (config.resource != StageResource::Disk &&
        (config.ioBytes != 0 || doc.find("rw") != nullptr)) {
        throw json::JsonError(
            "stage \"" + config.name +
            "\": io_bytes/rw require \"resource\": \"disk\"");
    }
    return config;
}

}  // namespace uqsim
