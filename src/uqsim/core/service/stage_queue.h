#ifndef UQSIM_CORE_SERVICE_STAGE_QUEUE_H_
#define UQSIM_CORE_SERVICE_STAGE_QUEUE_H_

/**
 * @file
 * Stage job queues.
 *
 * Every stage is coupled with a job queue (paper §III-B):
 *
 *  - SingleQueue: one FIFO holding all jobs (e.g.
 *    memcached_processing, socket_send).
 *  - SocketQueue: jobs classified into per-connection subqueues; a
 *    pop returns the first N jobs of a single ready connection at a
 *    time (socket_read).
 *  - EpollQueue: per-connection subqueues; a pop returns the first N
 *    jobs of *each* active subqueue (epoll).  A subqueue whose
 *    connection is receive-blocked is not active.
 */

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "uqsim/core/service/connection.h"
#include "uqsim/core/service/job.h"
#include "uqsim/core/service/stage.h"

namespace uqsim {

/** Abstract stage queue. */
class StageQueue {
  public:
    virtual ~StageQueue() = default;

    /** Enqueues a job. */
    virtual void push(JobPtr job) = 0;

    /** True when a pop would return at least one job. */
    virtual bool hasEligible() const = 0;

    /** Pops one batch per the stage's discipline. */
    virtual std::vector<JobPtr> popBatch() = 0;

    /** Jobs currently queued (eligible or not). */
    virtual std::size_t size() const = 0;

    /** Removes and returns every queued job (instance crash). */
    virtual std::vector<JobPtr> drainAll() = 0;

    /**
     * Factory from a stage configuration.  @p connections supplies
     * receive-blocking state for socket/epoll queues and may be
     * nullptr for single queues.
     */
    static std::unique_ptr<StageQueue>
    create(const StageConfig& config, const ConnectionTable* connections);
};

/** One FIFO for all jobs. */
class SingleQueue : public StageQueue {
  public:
    /** @param batch_limit max jobs per pop; <= 0 means 1 (or all
     *  when @p batching). */
    SingleQueue(bool batching, int batch_limit);

    void push(JobPtr job) override;
    bool hasEligible() const override { return !queue_.empty(); }
    std::vector<JobPtr> popBatch() override;
    std::size_t size() const override { return queue_.size(); }
    std::vector<JobPtr> drainAll() override;

  private:
    std::deque<JobPtr> queue_;
    bool batching_;
    int batchLimit_;
};

/** Per-connection subqueues; pop serves one ready connection. */
class SocketQueue : public StageQueue {
  public:
    SocketQueue(int batch_limit, const ConnectionTable* connections);

    void push(JobPtr job) override;
    bool hasEligible() const override;
    std::vector<JobPtr> popBatch() override;
    std::size_t size() const override { return total_; }
    std::vector<JobPtr> drainAll() override;

  private:
    std::map<ConnectionId, std::deque<JobPtr>> subqueues_;
    std::size_t total_ = 0;
    int batchLimit_;
    const ConnectionTable* connections_;
    /** Round-robin cursor: last connection served. */
    ConnectionId cursor_ = kNoConnection;
};

/** Per-connection subqueues; pop serves all active connections. */
class EpollQueue : public StageQueue {
  public:
    EpollQueue(int batch_limit, const ConnectionTable* connections);

    void push(JobPtr job) override;
    bool hasEligible() const override;
    std::vector<JobPtr> popBatch() override;
    std::size_t size() const override { return total_; }
    std::vector<JobPtr> drainAll() override;

    /** Number of currently active (pollable) subqueues. */
    std::size_t activeSubqueues() const;

  private:
    std::map<ConnectionId, std::deque<JobPtr>> subqueues_;
    std::size_t total_ = 0;
    int batchLimit_;
    const ConnectionTable* connections_;
};

}  // namespace uqsim

#endif  // UQSIM_CORE_SERVICE_STAGE_QUEUE_H_
