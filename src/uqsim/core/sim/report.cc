#include "uqsim/core/sim/report.h"

#include <iomanip>
#include <sstream>

namespace uqsim {

std::string
RunReport::toString() const
{
    std::ostringstream out;
    out << std::fixed << std::setprecision(3);
    out << "offered " << offeredQps << " qps, achieved " << achievedQps
        << " qps (" << completed << " completions)\n";
    out << "  end-to-end: mean " << endToEnd.meanMs << " ms, p50 "
        << endToEnd.p50Ms << " ms, p95 " << endToEnd.p95Ms << " ms, p99 "
        << endToEnd.p99Ms << " ms, max " << endToEnd.maxMs << " ms\n";
    for (const auto& [tier, stats] : tiers) {
        out << "  tier " << tier << ": mean " << stats.meanMs
            << " ms, p99 " << stats.p99Ms << " ms (" << stats.count
            << " samples)\n";
    }
    return out.str();
}

std::string
RunReport::csvHeader()
{
    return "offered_qps,achieved_qps,mean_ms,p50_ms,p95_ms,p99_ms,max_ms";
}

std::string
RunReport::toCsvRow() const
{
    std::ostringstream out;
    out << std::fixed << std::setprecision(4);
    out << offeredQps << ',' << achievedQps << ',' << endToEnd.meanMs
        << ',' << endToEnd.p50Ms << ',' << endToEnd.p95Ms << ','
        << endToEnd.p99Ms << ',' << endToEnd.maxMs;
    return out.str();
}

}  // namespace uqsim
