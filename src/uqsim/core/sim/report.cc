#include "uqsim/core/sim/report.h"

#include <iomanip>
#include <sstream>

#include "uqsim/json/json_writer.h"

namespace uqsim {

namespace {

double
rate(std::uint64_t count, std::uint64_t total)
{
    return total > 0 ? static_cast<double>(count) /
                           static_cast<double>(total)
                     : 0.0;
}

json::JsonValue
latencyJson(const LatencyStats& stats)
{
    json::JsonValue doc = json::JsonValue::makeObject();
    doc.asObject()["count"] = stats.count;
    doc.asObject()["mean_ms"] = stats.meanMs;
    doc.asObject()["p50_ms"] = stats.p50Ms;
    doc.asObject()["p95_ms"] = stats.p95Ms;
    doc.asObject()["p99_ms"] = stats.p99Ms;
    doc.asObject()["max_ms"] = stats.maxMs;
    return doc;
}

}  // namespace

std::string
RunReport::toString() const
{
    std::ostringstream out;
    out << std::fixed << std::setprecision(3);
    out << "offered " << offeredQps << " qps, achieved " << achievedQps
        << " qps (" << completed << " completions)\n";
    out << "  end-to-end: mean " << endToEnd.meanMs << " ms, p50 "
        << endToEnd.p50Ms << " ms, p95 " << endToEnd.p95Ms << " ms, p99 "
        << endToEnd.p99Ms << " ms, max " << endToEnd.maxMs << " ms\n";
    for (const auto& [tier, stats] : tiers) {
        out << "  tier " << tier << ": mean " << stats.meanMs
            << " ms, p99 " << stats.p99Ms << " ms (" << stats.count
            << " samples)\n";
    }
    if (failed > 0 || shed > 0 || crashes > 0 || netDropped > 0 ||
        breakerTrips > 0 || failovers > 0 || unreachable > 0 ||
        linkDrops > 0) {
        out << "  faults: " << failed << " failed, " << shed
            << " shed, " << retries << " retries, " << hedges
            << " hedges, " << breakerTrips << " breaker trips, "
            << crashes << " crashes, " << netDropped
            << " messages dropped\n";
        if (failovers > 0 || unreachable > 0 || linkDrops > 0) {
            out << "  network: " << failovers << " failovers, "
                << unreachable << " unreachable, " << linkDrops
                << " link drops\n";
        }
        out << "  availability: " << availability << "\n";
    }
    for (const auto& [tier, stats] : tierFaults) {
        out << "  tier " << tier << " faults: " << stats.errors
            << " errors, " << stats.timeouts << " timeouts, "
            << stats.retries << " retries, " << stats.hedges
            << " hedges, " << stats.shed << " shed, " << stats.rejected
            << " rejected, " << stats.crashKills << " crash kills, "
            << stats.unreachable << " unreachable\n";
    }
    for (const auto& [link, stats] : linkFaults) {
        out << "  link " << link << ": down " << stats.downSeconds
            << " s, " << stats.drops << " drops\n";
    }
    for (const auto& [disk, stats] : disks) {
        out << "  disk " << disk << ": util " << stats.utilization
            << ", " << stats.reads << " reads, " << stats.writes
            << " writes, " << stats.bytesRead << " B read, "
            << stats.bytesWritten << " B written, " << stats.queuedOps
            << " queued (peak " << stats.peakQueueDepth << ")\n";
    }
    if (replicationsPlanned > 0) {
        out << "  replications: " << replicationsMerged << "/"
            << replicationsPlanned << " merged"
            << (degraded ? " (DEGRADED)" : "") << "\n";
    }
    return out.str();
}

std::string
RunReport::csvHeader()
{
    return "offered_qps,achieved_qps,mean_ms,p50_ms,p95_ms,p99_ms,max_ms";
}

std::string
RunReport::toCsvRow() const
{
    std::ostringstream out;
    out << std::fixed << std::setprecision(4);
    out << offeredQps << ',' << achievedQps << ',' << endToEnd.meanMs
        << ',' << endToEnd.p50Ms << ',' << endToEnd.p95Ms << ','
        << endToEnd.p99Ms << ',' << endToEnd.maxMs;
    return out.str();
}

json::JsonValue
RunReport::toJson() const
{
    json::JsonValue doc = json::JsonValue::makeObject();
    auto& obj = doc.asObject();
    obj["offered_qps"] = offeredQps;
    obj["achieved_qps"] = achievedQps;
    obj["generated"] = generated;
    obj["completed"] = completed;
    obj["timeouts"] = timeouts;
    obj["failed"] = failed;
    obj["shed"] = shed;
    obj["retries"] = retries;
    obj["hedges"] = hedges;
    obj["breaker_trips"] = breakerTrips;
    obj["net_dropped"] = netDropped;
    obj["crashes"] = crashes;
    obj["failovers"] = failovers;
    obj["unreachable"] = unreachable;
    obj["link_drops"] = linkDrops;
    obj["availability"] = availability;
    obj["timeout_rate"] = rate(timeouts, generated);
    obj["error_rate"] = rate(failed + shed, generated);
    obj["end_to_end"] = latencyJson(endToEnd);
    json::JsonValue tiers_doc = json::JsonValue::makeObject();
    for (const auto& [tier, stats] : tiers)
        tiers_doc.asObject()[tier] = latencyJson(stats);
    obj["tiers"] = std::move(tiers_doc);
    json::JsonValue faults_doc = json::JsonValue::makeObject();
    for (const auto& [tier, stats] : tierFaults) {
        json::JsonValue entry = json::JsonValue::makeObject();
        auto& tier_obj = entry.asObject();
        tier_obj["errors"] = stats.errors;
        tier_obj["timeouts"] = stats.timeouts;
        tier_obj["hop_timeouts"] = stats.hopTimeouts;
        tier_obj["retries"] = stats.retries;
        tier_obj["hedges"] = stats.hedges;
        tier_obj["shed"] = stats.shed;
        tier_obj["rejected"] = stats.rejected;
        tier_obj["crash_kills"] = stats.crashKills;
        tier_obj["unreachable"] = stats.unreachable;
        tier_obj["error_rate"] = rate(stats.errors, generated);
        tier_obj["timeout_rate"] = rate(stats.timeouts, generated);
        faults_doc.asObject()[tier] = std::move(entry);
    }
    obj["tier_faults"] = std::move(faults_doc);
    if (!linkFaults.empty()) {
        json::JsonValue links_doc = json::JsonValue::makeObject();
        for (const auto& [link, stats] : linkFaults) {
            json::JsonValue entry = json::JsonValue::makeObject();
            auto& link_obj = entry.asObject();
            link_obj["down_seconds"] = stats.downSeconds;
            link_obj["drops"] = stats.drops;
            links_doc.asObject()[link] = std::move(entry);
        }
        obj["link_faults"] = std::move(links_doc);
    }
    if (!disks.empty()) {
        json::JsonValue disks_doc = json::JsonValue::makeObject();
        for (const auto& [disk, stats] : disks) {
            json::JsonValue entry = json::JsonValue::makeObject();
            auto& disk_obj = entry.asObject();
            disk_obj["busy_seconds"] = stats.busySeconds;
            disk_obj["utilization"] = stats.utilization;
            disk_obj["reads"] = stats.reads;
            disk_obj["writes"] = stats.writes;
            disk_obj["bytes_read"] = stats.bytesRead;
            disk_obj["bytes_written"] = stats.bytesWritten;
            disk_obj["queued_ops"] = stats.queuedOps;
            disk_obj["peak_queue_depth"] = stats.peakQueueDepth;
            disks_doc.asObject()[disk] = std::move(entry);
        }
        obj["disks"] = std::move(disks_doc);
    }
    obj["events"] = events;
    obj["wall_seconds"] = wallSeconds;
    if (replicationsPlanned > 0) {
        obj["replications_planned"] = replicationsPlanned;
        obj["replications_merged"] = replicationsMerged;
        obj["degraded"] = degraded;
    }
    return doc;
}

std::string
RunReport::toJsonString(bool pretty) const
{
    json::WriteOptions options;
    options.pretty = pretty;
    return json::write(toJson(), options);
}

}  // namespace uqsim
