#include "uqsim/core/sim/audit.h"

#include <algorithm>
#include <string>
#include <vector>

#include "uqsim/core/sim/simulation.h"

namespace uqsim {
namespace audit {

AuditReport
auditSimulation(Simulation& simulation, bool at_drain)
{
    AuditReport report = simulation.sim().auditEngine();
    Dispatcher& dispatcher = simulation.dispatcher();

    // Job conservation across dispatcher hops: every request that
    // entered the dispatcher is accounted for exactly once.
    const std::uint64_t started = dispatcher.requestsStarted();
    const std::uint64_t settled = dispatcher.requestsCompleted() +
                                  dispatcher.requestsFailed() +
                                  dispatcher.requestsShed();
    const std::uint64_t active =
        static_cast<std::uint64_t>(dispatcher.activeRequests());
    if (started != settled + active) {
        report.violations.push_back(
            "job conservation violated: started " +
            std::to_string(started) + " != completed+failed+shed " +
            std::to_string(settled) + " + active " +
            std::to_string(active));
    }

    // Force-released state at completion points to a path-walking
    // bug even though the dispatcher papered over it.
    if (dispatcher.leakedBlocks() > 0) {
        report.violations.push_back(
            std::to_string(dispatcher.leakedBlocks()) +
            " block(s) force-released at request completion");
    }
    if (dispatcher.leakedHops() > 0) {
        report.violations.push_back(
            std::to_string(dispatcher.leakedHops()) +
            " connection hop(s) force-released at request "
            "completion");
    }

    // Connection pools: structural sanity always, full-occupancy
    // accounting only at drain.  The deployment hands pools out in
    // unspecified (hash) order; sort by name so audit findings are
    // deterministic.
    std::vector<const ConnectionPool*> pools;
    simulation.deployment().forEachPool(
        [&](const ConnectionPool& pool) { pools.push_back(&pool); });
    std::sort(pools.begin(), pools.end(),
              [](const ConnectionPool* a, const ConnectionPool* b) {
                  return a->name() < b->name();
              });
    for (const ConnectionPool* pool_ptr : pools) {
        const ConnectionPool& pool = *pool_ptr;
        if (pool.available() > pool.size()) {
            report.violations.push_back(
                "pool " + pool.name() + " holds " +
                std::to_string(pool.available()) +
                " free connections but owns only " +
                std::to_string(pool.size()) + " (double release)");
        }
        if (pool.available() > 0 && pool.waiters() > 0) {
            report.violations.push_back(
                "pool " + pool.name() + " has " +
                std::to_string(pool.waiters()) +
                " waiter(s) despite " +
                std::to_string(pool.available()) +
                " free connection(s)");
        }
        if (at_drain) {
            if (pool.available() != pool.size()) {
                report.violations.push_back(
                    "pool " + pool.name() + " leaked " +
                    std::to_string(pool.size() - pool.available()) +
                    " connection(s) at drain");
            }
            if (pool.waiters() > 0) {
                report.violations.push_back(
                    "pool " + pool.name() + " stranded " +
                    std::to_string(pool.waiters()) +
                    " waiter(s) at drain");
            }
        }
    }

    if (at_drain) {
        if (!simulation.sim().queue().empty()) {
            report.violations.push_back(
                "drain audit requested but " +
                std::to_string(simulation.sim().queue().size()) +
                " event(s) are still pending");
        }
        if (active > 0) {
            report.violations.push_back(
                std::to_string(active) +
                " request(s) active with a drained event queue "
                "(pool-waiter deadlock)");
        }
        const std::size_t live = dispatcher.jobs().liveJobs();
        if (live > 0) {
            report.violations.push_back(
                std::to_string(live) +
                " pooled job(s) alive at drain (leaked JobPtr)");
        }
    }
    return report;
}

}  // namespace audit
}  // namespace uqsim
