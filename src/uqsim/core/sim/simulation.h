#ifndef UQSIM_CORE_SIM_SIMULATION_H_
#define UQSIM_CORE_SIM_SIMULATION_H_

/**
 * @file
 * Top-level simulation facade.
 *
 * A Simulation assembles the whole system — cluster, service models,
 * deployment, path tree, dispatcher, clients — either
 * programmatically or from the five JSON inputs, then runs it and
 * produces a RunReport.  Statistics respect the warm-up window.
 *
 * Build protocol:
 *   1. construct with options;
 *   2. populate cluster() / deployment() / pathTree() / addClient()
 *      (or call the load*Json methods / fromBundle);
 *   3. finalize() — constructs the dispatcher and wires stats;
 *   4. run().
 */

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "uqsim/core/app/deployment.h"
#include "uqsim/core/app/dispatcher.h"
#include "uqsim/core/app/path_tree.h"
#include "uqsim/core/engine/simulator.h"
#include "uqsim/core/sim/config.h"
#include "uqsim/core/sim/report.h"
#include "uqsim/fault/fault_plan.h"
#include "uqsim/fault/fault_scheduler.h"
#include "uqsim/hw/cluster.h"
#include "uqsim/snapshot/snapshot.h"
#include "uqsim/stats/percentile_recorder.h"
#include "uqsim/stats/throughput_meter.h"
#include "uqsim/workload/client.h"

namespace uqsim {

/** Fully assembled simulated system. */
class Simulation {
  public:
    explicit Simulation(const SimulationOptions& options = {});

    /** Builds everything from a configuration bundle. */
    static std::unique_ptr<Simulation>
    fromBundle(const ConfigBundle& bundle);

    // -- construction phase -------------------------------------------

    hw::Cluster& cluster() { return *cluster_; }
    Deployment& deployment() { return *deployment_; }
    PathTree& pathTree() { return pathTree_; }

    void loadMachinesJson(const json::JsonValue& doc);
    void loadServiceJson(const json::JsonValue& doc);
    void loadGraphJson(const json::JsonValue& doc);
    void loadPathJson(const json::JsonValue& doc);
    void loadClientJson(const json::JsonValue& doc);
    /** Parses a faults.json document; call before finalize(). */
    void loadFaultsJson(const json::JsonValue& doc);

    /** Sets the fault plan programmatically; call before finalize(). */
    void setFaultPlan(fault::FaultPlan plan);

    /** Adds a client programmatically. */
    void addClient(workload::ClientConfig config);

    /**
     * Constructs the dispatcher and clients and wires statistics.
     * Must be called exactly once, after all deployment/config
     * calls and before run().
     */
    void finalize();

    // -- run phase -----------------------------------------------------

    /** True once finalize() has been called. */
    bool finalized() const { return dispatcher_ != nullptr; }

    /**
     * Runs to the configured duration and returns the report.
     * May be called once.
     *
     * In audit mode (UQSIM_AUDIT / audit::setAuditMode) the
     * invariant auditor runs after the simulation and throws
     * EngineInvariantError on violations; when the run drained the
     * event queue the stronger quiescent-state checks (job /
     * connection-pool leak accounting) apply too.
     */
    RunReport run();

    // -- segmented (checkpointed) execution ------------------------
    // run() equals any interleaving of advanceToEvents()/
    // advanceToTime() followed by one finishRun(), event for event:
    // segment boundaries never clamp the clock (Simulator::
    // runSegment), so the trace digest is independent of where the
    // checkpoints fall.  See snapshot/checkpoint.h.

    /**
     * Runs until @p target_events total events have executed (an
     * absolute count, not a delta), the duration horizon or event
     * budget is hit, or the queue drains.
     */
    StopReason advanceToEvents(std::uint64_t target_events);

    /** Runs until the next event would fire after @p until (clamped
     *  to the duration horizon).  The clock is left at the last
     *  fired event. */
    StopReason advanceToTime(SimTime until);

    /**
     * Completes a segmented run: runs to the configured duration
     * (with the end-of-horizon clock clamp), applies the post-run
     * audit, and builds the report.  run() is exactly finishRun()
     * with no preceding advance calls.
     */
    RunReport finishRun();

    // -- checkpoint / restore --------------------------------------

    /**
     * Composition fingerprint pinned into every snapshot: seed, time
     * horizon and budgets, machine/service/client composition,
     * network model, and fault plan.  Restoring a snapshot into a
     * simulation with a different digest is a hard error.  Computed
     * at finalize().
     */
    std::uint64_t configDigest() const { return configDigest_; }

    /** Replay coordinates at this instant (snapshot header). */
    snapshot::SnapshotMeta snapshotMeta() const;

    /**
     * Serializes every stateful layer into @p writer (one section
     * per layer) and sets the snapshot meta.  Must be called between
     * events — after an advance*() return, never from inside one.
     */
    void saveState(snapshot::SnapshotWriter& writer) const;

    /**
     * Validates every layer's live state against @p reader's
     * sections; throws snapshot::SnapshotStateError naming the
     * section and field on any divergence.  The caller (restore)
     * must already have replayed this simulation to the snapshot's
     * executed-event count.
     */
    void loadState(snapshot::SnapshotReader& reader) const;

    /**
     * Attaches a supervisor mailbox to the engine (nullptr
     * detaches); see Simulator::setRunControl.  The SweepRunner's
     * stall watchdog uses this to sample progress watermarks and
     * abort stalled replications.
     */
    void setRunControl(RunControl* control)
    {
        sim_.setRunControl(control);
    }

    /** Additional listener for end-to-end completions (seconds),
     *  invoked for every completion including warm-up. */
    void setCompletionListener(
        std::function<void(const Job&, double)> listener)
    {
        completionListener_ = std::move(listener);
    }

    /** Additional listener for per-tier latencies (seconds). */
    void setTierListener(
        std::function<void(const std::string&, double)> listener)
    {
        tierListener_ = std::move(listener);
    }

    // -- accessors -------------------------------------------------

    Simulator& sim() { return sim_; }
    const Simulator& sim() const { return sim_; }
    Dispatcher& dispatcher();
    /** Null when the run has no fault plan. */
    fault::FaultScheduler* faultScheduler() { return faultScheduler_.get(); }
    const SimulationOptions& options() const { return options_; }
    std::vector<std::unique_ptr<workload::Client>>& clients()
    {
        return clients_;
    }

    /** End-to-end latencies (seconds) within the measured window. */
    const stats::PercentileRecorder& latencies() const
    {
        return endToEnd_;
    }

    /** Per-tier latencies (seconds) within the measured window,
     *  rendered to a name-keyed map.  Internally the recorders live
     *  in a dense id-indexed array (hot path); this is the
     *  inspection boundary. */
    std::map<std::string, stats::PercentileRecorder>
    tierLatencies() const;

    /** Builds the report from current statistics (post-run). */
    RunReport buildReport(double wall_seconds = 0.0) const;

  private:
    SimulationOptions options_;
    Simulator sim_;
    std::unique_ptr<hw::Cluster> cluster_;
    std::unique_ptr<Deployment> deployment_;
    PathTree pathTree_;
    bool pathTreeLoaded_ = false;
    std::unique_ptr<Dispatcher> dispatcher_;
    fault::FaultPlan faultPlan_;
    std::unique_ptr<fault::FaultScheduler> faultScheduler_;
    std::vector<workload::ClientConfig> pendingClients_;
    std::vector<std::unique_ptr<workload::Client>> clients_;
    stats::PercentileRecorder endToEnd_;
    /** Measured-window tier latency recorders indexed by interned
     *  service id. */
    std::vector<stats::PercentileRecorder> tiersById_;
    std::uint64_t measuredCompletions_ = 0;
    std::uint64_t measuredGenerated_ = 0;
    std::uint64_t measuredFailed_ = 0;
    std::function<void(const Job&, double)> completionListener_;
    std::function<void(const std::string&, double)> tierListener_;
    bool ran_ = false;
    std::uint64_t configDigest_ = 0;

    bool inMeasurementWindow() const;
    std::uint64_t computeConfigDigest() const;
    /** Shared guard for the segmented-run entry points. */
    void checkAdvance() const;
};

}  // namespace uqsim

#endif  // UQSIM_CORE_SIM_SIMULATION_H_
