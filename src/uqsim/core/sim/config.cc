#include "uqsim/core/sim/config.h"

#include <algorithm>
#include <filesystem>

#include "uqsim/json/json_parser.h"
#include "uqsim/json/validation.h"

namespace uqsim {

SimulationOptions
SimulationOptions::fromJson(const json::JsonValue& doc)
{
    json::requireKnownKeys(
        doc, {"seed", "warmup_s", "duration_s", "max_events"},
        "options.json");
    SimulationOptions options;
    options.seed = static_cast<std::uint64_t>(
        doc.getOr("seed", std::int64_t{1}));
    options.warmupSeconds = doc.getOr("warmup_s", options.warmupSeconds);
    options.durationSeconds =
        doc.getOr("duration_s", options.durationSeconds);
    options.maxEvents = static_cast<std::uint64_t>(
        doc.getOr("max_events", std::int64_t{0}));
    return options;
}

ConfigBundle
ConfigBundle::fromDirectory(const std::string& directory)
{
    namespace fs = std::filesystem;
    const fs::path root(directory);
    if (!fs::is_directory(root)) {
        throw json::JsonError("config directory not found: " +
                              directory);
    }
    ConfigBundle bundle;
    bundle.machines = json::parseFile((root / "machines.json").string());
    bundle.graph = json::parseFile((root / "graph.json").string());
    bundle.paths = json::parseFile((root / "path.json").string());
    bundle.client = json::parseFile((root / "client.json").string());
    const fs::path options_path = root / "options.json";
    if (fs::exists(options_path)) {
        bundle.options = SimulationOptions::fromJson(
            json::parseFile(options_path.string()));
    }
    const fs::path faults_path = root / "faults.json";
    if (fs::exists(faults_path))
        bundle.faults = json::parseFile(faults_path.string());
    const fs::path services_dir = root / "services";
    if (!fs::is_directory(services_dir)) {
        throw json::JsonError("missing services/ directory under " +
                              directory);
    }
    std::vector<fs::path> service_files;
    for (const auto& entry : fs::directory_iterator(services_dir)) {
        if (entry.path().extension() == ".json")
            service_files.push_back(entry.path());
    }
    std::sort(service_files.begin(), service_files.end());
    for (const fs::path& path : service_files)
        bundle.services.push_back(json::parseFile(path.string()));
    return bundle;
}

}  // namespace uqsim
