#include "uqsim/core/sim/simulation.h"

#include <chrono>
#include <stdexcept>

#include "uqsim/core/sim/audit.h"
#include "uqsim/hw/flow_model.h"

namespace uqsim {

Simulation::Simulation(const SimulationOptions& options)
    : options_(options), sim_(options.seed),
      cluster_(std::make_unique<hw::Cluster>(sim_)),
      deployment_(std::make_unique<Deployment>(sim_, *cluster_))
{
}

std::unique_ptr<Simulation>
Simulation::fromBundle(const ConfigBundle& bundle)
{
    auto simulation = std::make_unique<Simulation>(bundle.options);
    simulation->loadMachinesJson(bundle.machines);
    for (const json::JsonValue& service : bundle.services)
        simulation->loadServiceJson(service);
    simulation->loadGraphJson(bundle.graph);
    simulation->loadPathJson(bundle.paths);
    simulation->loadClientJson(bundle.client);
    if (!bundle.faults.isNull())
        simulation->loadFaultsJson(bundle.faults);
    simulation->finalize();
    return simulation;
}

Dispatcher&
Simulation::dispatcher()
{
    if (!dispatcher_)
        throw std::logic_error("finalize() has not been called");
    return *dispatcher_;
}

void
Simulation::loadMachinesJson(const json::JsonValue& doc)
{
    if (!deployment_->allInstances().empty()) {
        throw std::logic_error(
            "machines.json must be loaded before deploying instances");
    }
    cluster_ = hw::Cluster::fromJson(sim_, doc);
    deployment_ = std::make_unique<Deployment>(sim_, *cluster_);
}

void
Simulation::loadServiceJson(const json::JsonValue& doc)
{
    deployment_->registerModel(ServiceModel::fromJson(doc));
}

void
Simulation::loadGraphJson(const json::JsonValue& doc)
{
    deployment_->loadGraphJson(doc);
}

void
Simulation::loadPathJson(const json::JsonValue& doc)
{
    pathTree_ = PathTree::fromJson(doc);
    pathTreeLoaded_ = true;
}

void
Simulation::loadClientJson(const json::JsonValue& doc)
{
    // client.json may hold one client object or an array of them
    // (multi-workload simulations).
    if (doc.isArray()) {
        for (const json::JsonValue& client : doc.asArray())
            addClient(workload::ClientConfig::fromJson(client));
        return;
    }
    addClient(workload::ClientConfig::fromJson(doc));
}

void
Simulation::loadFaultsJson(const json::JsonValue& doc)
{
    setFaultPlan(fault::FaultPlan::fromJson(doc));
}

void
Simulation::setFaultPlan(fault::FaultPlan plan)
{
    if (finalized()) {
        throw std::logic_error(
            "cannot set a fault plan after finalize()");
    }
    faultPlan_ = std::move(plan);
}

void
Simulation::addClient(workload::ClientConfig config)
{
    if (finalized())
        throw std::logic_error("cannot add clients after finalize()");
    pendingClients_.push_back(std::move(config));
}

bool
Simulation::inMeasurementWindow() const
{
    return simTimeToSeconds(sim_.now()) >= options_.warmupSeconds;
}

std::uint64_t
Simulation::computeConfigDigest() const
{
    snapshot::Digest digest;
    digest.u64(options_.seed);
    digest.f64(options_.warmupSeconds);
    digest.f64(options_.durationSeconds);
    digest.u64(options_.maxEvents);

    const auto& machines = cluster_->machines();
    digest.u64(machines.size());
    for (const hw::Machine* machine : machines) {
        digest.str(machine->name());
        digest.u64(machine->disks().size());
        for (const auto& disk : machine->disks()) {
            digest.str(disk->name());
            digest.f64(disk->config().readBytesPerSecond);
            digest.f64(disk->config().writeBytesPerSecond);
            digest.u64(static_cast<std::uint64_t>(
                disk->config().queueDepth));
        }
    }

    const auto& instances = deployment_->allInstances();
    digest.u64(instances.size());
    for (MicroserviceInstance* instance : instances) {
        digest.str(instance->name());
        digest.str(instance->machine() != nullptr
                       ? instance->machine()->name()
                       : std::string());
    }

    digest.u64(clients_.size() + pendingClients_.size());
    const auto foldClient = [&digest](
                                const workload::ClientConfig& config) {
        digest.str(config.frontService);
        digest.u64(static_cast<std::uint64_t>(config.connections));
        digest.u32(static_cast<std::uint32_t>(config.mode));
        digest.f64(config.thinkTime);
        digest.f64(config.startTime);
        digest.f64(config.stopTime);
        digest.f64(config.timeout);
        digest.u64(static_cast<std::uint64_t>(config.retries));
        digest.f64(config.retryBackoffSeconds);
        digest.f64(config.retryBackoffMult);
        digest.f64(config.retryJitter);
        digest.str(config.load ? config.load->describe()
                               : std::string());
    };
    for (const auto& client : clients_)
        foldClient(client->config());
    for (const workload::ClientConfig& config : pendingClients_)
        foldClient(config);

    const hw::NetworkModel& model = cluster_->network().model();
    digest.str(model.modelName());
    if (const auto* flow = dynamic_cast<const hw::FlowModel*>(&model))
        digest.u64(flow->linkCount());

    digest.u64(faultPlan_.faults.size());
    for (const fault::FaultSpec& spec : faultPlan_.faults) {
        digest.u32(static_cast<std::uint32_t>(spec.kind));
        digest.str(spec.instance);
        digest.str(spec.service);
        digest.f64(spec.atSeconds);
        digest.f64(spec.recoverSeconds);
        digest.f64(spec.mtbfSeconds);
        digest.f64(spec.mttrSeconds);
        digest.f64(spec.startSeconds);
        digest.f64(spec.endSeconds);
        digest.f64(spec.factor);
        digest.f64(spec.extraLatencySeconds);
        digest.f64(spec.lossProbability);
        digest.str(spec.link);
        digest.str(spec.switchName);
        digest.u64(spec.groups.size());
        for (const auto& group : spec.groups) {
            digest.u64(group.size());
            for (const std::string& host : group)
                digest.str(host);
        }
        digest.f64(spec.capacityFactor);
        digest.f64(spec.latencyFactor);
    }
    return digest.value();
}

void
Simulation::finalize()
{
    if (finalized())
        throw std::logic_error("finalize() called twice");
    if (pathTree_.variantCount() == 0)
        throw std::logic_error("no path variants configured");
    dispatcher_ = std::make_unique<Dispatcher>(
        sim_, cluster_->network(), pathTree_, *deployment_);

    dispatcher_->setOnRequestComplete(
        [this](const Job& job, SimTime latency) {
            // Route to the issuing client first: a response arriving
            // after the client timeout is not a completion from the
            // client's perspective.
            if (job.clientTag >= 0 &&
                job.clientTag < static_cast<int>(clients_.size()) &&
                !clients_[static_cast<std::size_t>(job.clientTag)]
                     ->onCompletion(job.rootId)) {
                return;
            }
            const double seconds = simTimeToSeconds(latency);
            // Measurement window filters on issue time so that a
            // burst of warm-up stragglers does not pollute stats.
            if (simTimeToSeconds(job.created) >=
                options_.warmupSeconds) {
                endToEnd_.add(seconds);
                ++measuredCompletions_;
            }
            if (completionListener_)
                completionListener_(job, seconds);
        });
    dispatcher_->setOnRequestFailed(
        [this](JobId root, int client_tag, SimTime created,
               fault::FailReason) {
            if (client_tag >= 0 &&
                client_tag < static_cast<int>(clients_.size())) {
                clients_[static_cast<std::size_t>(client_tag)]
                    ->onFailure(root);
            }
            if (simTimeToSeconds(created) >= options_.warmupSeconds)
                ++measuredFailed_;
        });
    dispatcher_->setTierLatencyHook(
        [this](std::uint32_t tier_id, double seconds) {
            if (inMeasurementWindow()) {
                if (tiersById_.size() <= tier_id)
                    tiersById_.resize(tier_id + 1);
                tiersById_[tier_id].add(seconds);
            }
            // Name resolution only when a listener actually wants
            // the string (keeps the hot path id-only).
            if (tierListener_) {
                tierListener_(deployment_->names().name(tier_id),
                              seconds);
            }
        });

    for (workload::ClientConfig& config : pendingClients_) {
        clients_.push_back(std::make_unique<workload::Client>(
            sim_, *dispatcher_, *deployment_, std::move(config)));
        clients_.back()->setTag(
            static_cast<int>(clients_.size()) - 1);
        clients_.back()->start();
    }
    pendingClients_.clear();

    if (!faultPlan_.empty()) {
        faultScheduler_ = std::make_unique<fault::FaultScheduler>(
            sim_, *deployment_, cluster_->network(), faultPlan_);
        faultScheduler_->start(options_.durationSeconds);
    }

    // Snapshot issue counts at the warm-up boundary.
    sim_.scheduleAt(
        secondsToSimTime(options_.warmupSeconds),
        [this]() { measuredGenerated_ = dispatcher_->requestsStarted(); },
        "warmup-boundary");

    configDigest_ = computeConfigDigest();
}

RunReport
Simulation::run()
{
    // A plain run is a segmented run with zero advance calls; the
    // engine path (one runLoop with the end-of-horizon clamp) is
    // bit-identical to what run() always did.
    return finishRun();
}

void
Simulation::checkAdvance() const
{
    if (!finalized())
        throw std::logic_error("finalize() before advancing");
    if (ran_) {
        throw std::logic_error(
            "cannot advance after run()/finishRun()");
    }
}

StopReason
Simulation::advanceToEvents(std::uint64_t target_events)
{
    checkAdvance();
    if (target_events <= sim_.executedEvents())
        return StopReason::EventLimit;
    // runLoop treats max_events as an absolute executed-event total,
    // so the segment target composes with the configured budget by
    // simply taking the smaller absolute bound.
    std::uint64_t budget = target_events;
    if (options_.maxEvents > 0 && options_.maxEvents < budget)
        budget = options_.maxEvents;
    return sim_.runSegment(
        secondsToSimTime(options_.durationSeconds), budget);
}

StopReason
Simulation::advanceToTime(SimTime until)
{
    checkAdvance();
    const SimTime horizon =
        secondsToSimTime(options_.durationSeconds);
    return sim_.runSegment(until < horizon ? until : horizon,
                           options_.maxEvents);
}

RunReport
Simulation::finishRun()
{
    if (!finalized())
        throw std::logic_error("finalize() before run()");
    if (ran_)
        throw std::logic_error("run() called twice");
    ran_ = true;
    const auto wall_start = std::chrono::steady_clock::now();
    const StopReason reason =
        sim_.run(secondsToSimTime(options_.durationSeconds),
                 options_.maxEvents);
    const auto wall_end = std::chrono::steady_clock::now();
    const double wall =
        std::chrono::duration<double>(wall_end - wall_start).count();
    if (audit::auditModeEnabled()) {
        audit::auditSimulation(*this, reason == StopReason::Drained)
            .raise(std::string("post-run, stop reason ") +
                   stopReasonName(reason));
    }
    return buildReport(wall);
}

snapshot::SnapshotMeta
Simulation::snapshotMeta() const
{
    snapshot::SnapshotMeta meta;
    meta.configDigest = configDigest_;
    meta.masterSeed = sim_.masterSeed();
    meta.simTime = sim_.now();
    meta.executedEvents = sim_.executedEvents();
    meta.traceDigest = sim_.traceDigest();
    return meta;
}

void
Simulation::saveState(snapshot::SnapshotWriter& writer) const
{
    if (!finalized())
        throw std::logic_error("finalize() before saveState()");
    writer.setMeta(snapshotMeta());

    sim_.saveState(writer);  // ENGINE

    writer.beginSection(snapshot::SectionId::Clients);
    writer.putU64(clients_.size());
    for (const auto& client : clients_)
        client->saveState(writer);
    writer.endSection();

    dispatcher_->saveState(writer);          // DISPATCHER
    cluster_->network().saveState(writer);   // NETWORK

    writer.beginSection(snapshot::SectionId::Disks);
    std::uint64_t diskCount = 0;
    for (const hw::Machine* machine : cluster_->machines())
        diskCount += machine->disks().size();
    writer.putU64(diskCount);
    for (const hw::Machine* machine : cluster_->machines()) {
        for (const auto& disk : machine->disks())
            disk->saveState(writer);
    }
    writer.endSection();

    // The FAULTS section exists exactly when the run has a fault
    // plan; restore rebuilds from the same config, so presence is
    // symmetric by construction.
    if (faultScheduler_)
        faultScheduler_->saveState(writer);

    writer.beginSection(snapshot::SectionId::Stats);
    writer.putU64(measuredCompletions_);
    writer.putU64(measuredGenerated_);
    writer.putU64(measuredFailed_);
    writer.putU64(endToEnd_.count());
    snapshot::Digest e2e;
    for (double value : endToEnd_.values())
        e2e.f64(value);
    writer.putU64(e2e.value());
    writer.putU64(tiersById_.size());
    snapshot::Digest tiers;
    for (const stats::PercentileRecorder& tier : tiersById_) {
        tiers.u64(tier.count());
        for (double value : tier.values())
            tiers.f64(value);
    }
    writer.putU64(tiers.value());
    writer.endSection();
}

void
Simulation::loadState(snapshot::SnapshotReader& reader) const
{
    if (!finalized())
        throw std::logic_error("finalize() before loadState()");

    sim_.loadState(reader);  // ENGINE

    reader.openSection(snapshot::SectionId::Clients);
    reader.requireU64("clients", clients_.size());
    for (std::size_t i = 0; i < clients_.size(); ++i) {
        clients_[i]->loadState(reader,
                               "client" + std::to_string(i));
    }
    reader.closeSection();

    dispatcher_->loadState(reader);          // DISPATCHER
    cluster_->network().loadState(reader);   // NETWORK

    reader.openSection(snapshot::SectionId::Disks);
    std::uint64_t diskCount = 0;
    for (const hw::Machine* machine : cluster_->machines())
        diskCount += machine->disks().size();
    reader.requireU64("disks", diskCount);
    std::size_t diskIndex = 0;
    for (const hw::Machine* machine : cluster_->machines()) {
        for (const auto& disk : machine->disks()) {
            disk->loadState(
                reader, "disk" + std::to_string(diskIndex++));
        }
    }
    reader.closeSection();

    if (faultScheduler_)
        faultScheduler_->loadState(reader);

    reader.openSection(snapshot::SectionId::Stats);
    reader.requireU64("measured_completions", measuredCompletions_);
    reader.requireU64("measured_generated", measuredGenerated_);
    reader.requireU64("measured_failed", measuredFailed_);
    reader.requireU64("end_to_end", endToEnd_.count());
    snapshot::Digest e2e;
    for (double value : endToEnd_.values())
        e2e.f64(value);
    reader.requireU64("end_to_end_digest", e2e.value());
    reader.requireU64("tiers", tiersById_.size());
    snapshot::Digest tiers;
    for (const stats::PercentileRecorder& tier : tiersById_) {
        tiers.u64(tier.count());
        for (double value : tier.values())
            tiers.f64(value);
    }
    reader.requireU64("tier_digest", tiers.value());
    reader.closeSection();
}

namespace {

LatencyStats
toLatencyStats(const stats::PercentileRecorder& recorder)
{
    LatencyStats stats;
    stats.count = recorder.count();
    stats.meanMs = recorder.mean() * 1e3;
    stats.p50Ms = recorder.p50() * 1e3;
    stats.p95Ms = recorder.p95() * 1e3;
    stats.p99Ms = recorder.p99() * 1e3;
    stats.maxMs = recorder.max() * 1e3;
    return stats;
}

}  // namespace

std::map<std::string, stats::PercentileRecorder>
Simulation::tierLatencies() const
{
    std::map<std::string, stats::PercentileRecorder> rendered;
    for (std::size_t id = 0; id < tiersById_.size(); ++id) {
        if (tiersById_[id].count() > 0) {
            rendered[deployment_->names().name(
                static_cast<std::uint32_t>(id))] = tiersById_[id];
        }
    }
    return rendered;
}

RunReport
Simulation::buildReport(double wall_seconds) const
{
    RunReport report;
    double offered = 0.0;
    for (const auto& client : clients_) {
        if (client->config().load) {
            offered += client->config().load->rateAt(
                options_.warmupSeconds);
        }
    }
    report.offeredQps = offered;
    const double window =
        options_.durationSeconds - options_.warmupSeconds;
    report.achievedQps =
        window > 0.0
            ? static_cast<double>(measuredCompletions_) / window
            : 0.0;
    report.completed = measuredCompletions_;
    report.generated =
        dispatcher_ ? dispatcher_->requestsStarted() - measuredGenerated_
                    : 0;
    report.endToEnd = toLatencyStats(endToEnd_);
    for (const auto& client : clients_) {
        report.timeouts += client->timeouts();
        report.retries += client->retriesIssued();
        if (client->timeouts() > 0) {
            report.tierFaults[client->config().frontService].timeouts +=
                client->timeouts();
        }
    }
    for (std::size_t id = 0; id < tiersById_.size(); ++id) {
        if (tiersById_[id].count() > 0) {
            report.tiers[deployment_->names().name(
                static_cast<std::uint32_t>(id))] =
                toLatencyStats(tiersById_[id]);
        }
    }
    if (dispatcher_) {
        report.failed = dispatcher_->requestsFailed();
        report.shed = dispatcher_->requestsShed();
        report.retries += dispatcher_->retriesSent();
        report.hedges = dispatcher_->hedgesSent();
        report.breakerTrips = dispatcher_->breakerTrips();
        for (const auto& [tier, stats] : dispatcher_->tierFaults()) {
            TierFaultStats& merged = report.tierFaults[tier];
            merged.errors += stats.errors;
            merged.hopTimeouts += stats.hopTimeouts;
            merged.retries += stats.retries;
            merged.hedges += stats.hedges;
            merged.shed += stats.shed;
            merged.rejected += stats.rejected;
            merged.crashKills += stats.crashKills;
            merged.unreachable += stats.unreachable;
        }
        const std::uint64_t served = dispatcher_->requestsCompleted();
        const std::uint64_t denom =
            served + report.failed + report.shed;
        report.availability =
            denom > 0
                ? static_cast<double>(served) /
                      static_cast<double>(denom)
                : 1.0;
    }
    report.netDropped = cluster_->network().droppedMessages();
    if (faultScheduler_)
        report.crashes = faultScheduler_->crashesInjected();
    if (const auto* flow = dynamic_cast<const hw::FlowModel*>(
            &cluster_->network().model())) {
        report.failovers = flow->failovers();
        report.unreachable = flow->unreachableMessages();
        report.linkDrops = flow->linkDropsTotal();
        for (const auto& summary : flow->linkFaultSummaries()) {
            LinkFaultStats& link = report.linkFaults[summary.name];
            link.downSeconds = summary.downSeconds;
            link.drops = summary.drops;
        }
    }
    for (const hw::Machine* machine : cluster_->machines()) {
        for (const auto& disk : machine->disks()) {
            DiskStats& stats = report.disks[disk->label()];
            stats.busySeconds = disk->busySeconds(sim_.now());
            stats.utilization = disk->utilization(sim_.now());
            stats.reads = disk->readsCompleted();
            stats.writes = disk->writesCompleted();
            stats.bytesRead = disk->bytesRead();
            stats.bytesWritten = disk->bytesWritten();
            stats.queuedOps = disk->queuedOps();
            stats.peakQueueDepth = disk->peakQueueDepth();
        }
    }
    report.events = sim_.executedEvents();
    report.wallSeconds = wall_seconds;
    return report;
}

}  // namespace uqsim
