#ifndef UQSIM_CORE_SIM_CONFIG_H_
#define UQSIM_CORE_SIM_CONFIG_H_

/**
 * @file
 * Simulation options and the five-input configuration bundle
 * (Table I): service.json files, graph.json, path.json,
 * machines.json, and client.json.
 */

#include <string>
#include <vector>

#include "uqsim/json/json_value.h"

namespace uqsim {

/** Run-control options. */
struct SimulationOptions {
    /** Master random seed. */
    std::uint64_t seed = 1;
    /** Warm-up period discarded from statistics (seconds). */
    double warmupSeconds = 1.0;
    /** Total simulated time (seconds), including warm-up. */
    double durationSeconds = 11.0;
    /** Safety limit on executed events; 0 = unlimited. */
    std::uint64_t maxEvents = 0;

    /** Parses {"seed": 1, "warmup_s": 1, "duration_s": 11}. */
    static SimulationOptions fromJson(const json::JsonValue& doc);
};

/** The simulator inputs, as parsed JSON documents. */
struct ConfigBundle {
    json::JsonValue machines;
    std::vector<json::JsonValue> services;
    json::JsonValue graph;
    json::JsonValue paths;
    json::JsonValue client;
    /** Optional fault-injection timeline (faults.json); null when
     *  the file is absent. */
    json::JsonValue faults;
    SimulationOptions options;

    /**
     * Loads a bundle from a directory containing machines.json,
     * graph.json, path.json, client.json, an optional options.json,
     * an optional faults.json, and a services/ subdirectory of
     * service.json files.
     */
    static ConfigBundle fromDirectory(const std::string& directory);
};

}  // namespace uqsim

#endif  // UQSIM_CORE_SIM_CONFIG_H_
