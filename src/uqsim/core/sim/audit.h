#ifndef UQSIM_CORE_SIM_AUDIT_H_
#define UQSIM_CORE_SIM_AUDIT_H_

/**
 * @file
 * Simulation-level invariant auditor.
 *
 * Extends the engine-level checks (uqsim/core/engine/audit.h) with
 * whole-system accounting that only the facade can see:
 *
 *   - job conservation across dispatcher hops: every started
 *     request is completed, failed, shed, or still active;
 *   - dispatcher force-release counters (leakedBlocks / leakedHops)
 *     stay zero;
 *   - connection-pool sanity: never more free connections than the
 *     pool owns (double release), never waiters while connections
 *     are free;
 *   - at drain (the event queue emptied): no active requests, no
 *     live pooled jobs, every connection back in its pool, no
 *     stranded pool waiters.  A drained queue with active requests
 *     is a waiter deadlock — exactly the class of hang the auditor
 *     exists to name.
 *
 * When audit mode is on (UQSIM_AUDIT / audit::setAuditMode),
 * Simulation::run() runs this audit after every run and throws
 * EngineInvariantError on violations; the SweepRunner also audits
 * the engine of a replication that throws mid-run before salvaging
 * its siblings (docs/ARCHITECTURE.md §"Harness failure-handling
 * contract").
 */

#include "uqsim/core/engine/audit.h"

namespace uqsim {

class Simulation;

namespace audit {

/**
 * Audits @p simulation.  @p at_drain asserts the stronger
 * quiescent-state invariants (zero live jobs, full pools); pass
 * true only when the event queue drained.
 */
AuditReport auditSimulation(Simulation& simulation, bool at_drain);

}  // namespace audit
}  // namespace uqsim

#endif  // UQSIM_CORE_SIM_AUDIT_H_
