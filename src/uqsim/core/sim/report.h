#ifndef UQSIM_CORE_SIM_REPORT_H_
#define UQSIM_CORE_SIM_REPORT_H_

/**
 * @file
 * Run results: end-to-end and per-tier latency statistics plus
 * throughput, in the units the paper reports (milliseconds, kQPS).
 */

#include <cstdint>
#include <map>
#include <string>

namespace uqsim {

/** Latency statistics of one tier (or end-to-end). */
struct LatencyStats {
    std::uint64_t count = 0;
    double meanMs = 0.0;
    double p50Ms = 0.0;
    double p95Ms = 0.0;
    double p99Ms = 0.0;
    double maxMs = 0.0;
};

/** Summary of one simulation run (measurement window only). */
struct RunReport {
    /** Offered load at the end of warm-up (requests/second). */
    double offeredQps = 0.0;
    /** Completions per second over the measurement window. */
    double achievedQps = 0.0;
    /** Requests issued / completed in the measurement window. */
    std::uint64_t generated = 0;
    std::uint64_t completed = 0;
    /** Client-side timeouts over the whole run (0 when disabled). */
    std::uint64_t timeouts = 0;
    /** End-to-end request latency. */
    LatencyStats endToEnd;
    /** Per-tier latency (service name keyed). */
    std::map<std::string, LatencyStats> tiers;
    /** Events executed over the whole run (engine effort). */
    std::uint64_t events = 0;
    /** Wall-clock seconds the run took (host time). */
    double wallSeconds = 0.0;

    /** Multi-line human-readable rendering. */
    std::string toString() const;

    /** One CSV row: offered,achieved,mean,p50,p95,p99,max. */
    std::string toCsvRow() const;
    static std::string csvHeader();
};

}  // namespace uqsim

#endif  // UQSIM_CORE_SIM_REPORT_H_
