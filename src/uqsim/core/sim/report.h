#ifndef UQSIM_CORE_SIM_REPORT_H_
#define UQSIM_CORE_SIM_REPORT_H_

/**
 * @file
 * Run results: end-to-end and per-tier latency statistics plus
 * throughput, in the units the paper reports (milliseconds, kQPS).
 * Under fault injection the report also carries goodput (achieved
 * vs. offered), availability, and per-tier failure counters.
 */

#include <cstdint>
#include <map>
#include <string>

#include "uqsim/json/json_value.h"

namespace uqsim {

/** Latency statistics of one tier (or end-to-end). */
struct LatencyStats {
    std::uint64_t count = 0;
    double meanMs = 0.0;
    double p50Ms = 0.0;
    double p95Ms = 0.0;
    double p99Ms = 0.0;
    double maxMs = 0.0;
};

/** Failure and mitigation counters for one service tier. */
struct TierFaultStats {
    /** Requests that failed at (or entering) this tier. */
    std::uint64_t errors = 0;
    /** Client-side timeouts of requests fronted by this tier. */
    std::uint64_t timeouts = 0;
    /** Per-hop timeouts on edges out of this tier. */
    std::uint64_t hopTimeouts = 0;
    /** Retry attempts sent from this tier. */
    std::uint64_t retries = 0;
    /** Hedged attempts sent from this tier. */
    std::uint64_t hedges = 0;
    /** Requests shed by admission control at this tier. */
    std::uint64_t shed = 0;
    /** Jobs rejected by this tier's bounded queues. */
    std::uint64_t rejected = 0;
    /** Jobs killed by instance crashes in this tier. */
    std::uint64_t crashKills = 0;
    /** Messages toward this tier that got an unreachable verdict
     *  (no surviving route or network partition). */
    std::uint64_t unreachable = 0;
};

/** Fault summary of one fabric link (FlowModel runs only). */
struct LinkFaultStats {
    /** Seconds the link spent down during the run. */
    double downSeconds = 0.0;
    /** In-flight messages dropped when the link died. */
    std::uint64_t drops = 0;
};

/** Counters of one machine-attached shared-bandwidth disk. */
struct DiskStats {
    /** Wall-clock seconds with at least one operation in service. */
    double busySeconds = 0.0;
    /** busySeconds over the simulated duration. */
    double utilization = 0.0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t bytesRead = 0;
    std::uint64_t bytesWritten = 0;
    /** Operations that waited for a queue-depth slot. */
    std::uint64_t queuedOps = 0;
    /** High-water mark of the waiting FIFO. */
    std::uint64_t peakQueueDepth = 0;
};

/** Summary of one simulation run (measurement window only). */
struct RunReport {
    /** Offered load at the end of warm-up (requests/second). */
    double offeredQps = 0.0;
    /** Completions per second over the measurement window. */
    double achievedQps = 0.0;
    /** Requests issued / completed in the measurement window. */
    std::uint64_t generated = 0;
    std::uint64_t completed = 0;
    /** Client-side timeouts over the whole run (0 when disabled). */
    std::uint64_t timeouts = 0;

    // Fault / resilience counters (whole run; 0 without faults).
    /** Requests failed by faults, exhausted retries, or breakers. */
    std::uint64_t failed = 0;
    /** Requests shed by admission control. */
    std::uint64_t shed = 0;
    std::uint64_t retries = 0;
    std::uint64_t hedges = 0;
    std::uint64_t breakerTrips = 0;
    /** Messages lost in network fault windows. */
    std::uint64_t netDropped = 0;
    /** Instance crashes injected. */
    std::uint64_t crashes = 0;
    /** Transfers rerouted over a backup path (FlowModel). */
    std::uint64_t failovers = 0;
    /** Transfers with an unreachable verdict (FlowModel). */
    std::uint64_t unreachable = 0;
    /** In-flight messages dropped by link failures (FlowModel). */
    std::uint64_t linkDrops = 0;
    /** completed / (completed + failed + shed); 1.0 fault-free. */
    double availability = 1.0;

    /** End-to-end request latency. */
    LatencyStats endToEnd;
    /** Per-tier latency (service name keyed). */
    std::map<std::string, LatencyStats> tiers;
    /** Per-tier failure counters (service name keyed; empty when
     *  nothing failed). */
    std::map<std::string, TierFaultStats> tierFaults;
    /** Per-link downtime/drop counters (link name keyed; empty
     *  unless a topology fault touched the link). */
    std::map<std::string, LinkFaultStats> linkFaults;
    /** Per-disk storage counters ("machine/disk" keyed; empty when
     *  no machine attaches a disk). */
    std::map<std::string, DiskStats> disks;
    /** Events executed over the whole run (engine effort). */
    std::uint64_t events = 0;
    /** Wall-clock seconds the run took (host time). */
    double wallSeconds = 0.0;

    // Replication provenance (set by the harness on pooled reports;
    // 0/0/false on a plain single-run report).
    /** Replications the harness planned for this point. */
    int replicationsPlanned = 0;
    /** Replications actually merged into this report. */
    int replicationsMerged = 0;
    /** True when failures or journal-restored replications left this
     *  report short of the planned data: counts cover only the
     *  merged replications and percentiles may be approximated (see
     *  runner::ReplicatedPoint::mergedReport). */
    bool degraded = false;

    /** Multi-line human-readable rendering. */
    std::string toString() const;

    /** One CSV row: offered,achieved,mean,p50,p95,p99,max. */
    std::string toCsvRow() const;
    static std::string csvHeader();

    /** Structured rendering (scalars, rates, latencies, per-tier
     *  error/timeout rates). */
    json::JsonValue toJson() const;
    std::string toJsonString(bool pretty = true) const;
};

}  // namespace uqsim

#endif  // UQSIM_CORE_SIM_REPORT_H_
