#ifndef UQSIM_CORE_SIM_SWEEP_H_
#define UQSIM_CORE_SIM_SWEEP_H_

/**
 * @file
 * Load-sweep harness for producing the paper's load-latency curves:
 * run one independent simulation per offered-load point and collect
 * the reports.
 */

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "uqsim/core/sim/report.h"
#include "uqsim/core/sim/simulation.h"

namespace uqsim {

/** One point of a load-latency curve. */
struct SweepPoint {
    double offeredQps = 0.0;
    RunReport report;
};

/** A named load-latency curve (one line in a paper figure). */
struct SweepCurve {
    std::string label;
    std::vector<SweepPoint> points;

    /**
     * The lowest offered load at which the system saturates, defined
     * as achieved throughput falling more than @p tolerance below
     * offered (default 5 %).  Returns 0 when no point saturates.
     */
    double saturationQps(double tolerance = 0.05) const;

    /** p99 latency (ms) at the highest non-saturated point. */
    double tailBeforeSaturationMs(double tolerance = 0.05) const;
};

/**
 * Runs @p factory once per load in @p loads.  The factory must
 * return a finalized simulation offering that load.
 */
SweepCurve
runLoadSweep(const std::string& label, const std::vector<double>& loads,
             const std::function<std::unique_ptr<Simulation>(double)>&
                 factory);

/**
 * Formats curves as an aligned text table with columns
 * load | achieved | mean | p99 per curve.  Used by the bench
 * binaries to print figure data.
 */
std::string formatSweepTable(const std::vector<SweepCurve>& curves);

/** Evenly spaced loads from @p lo to @p hi inclusive. */
std::vector<double> linspace(double lo, double hi, int count);

/** Result of an SLO capacity search. */
struct CapacitySearchResult {
    /** Highest load meeting the SLO; 0 when even @p lo fails. */
    double capacityQps = 0.0;
    /** Report of the run at capacityQps. */
    RunReport atCapacity;
    /** Simulation runs performed. */
    int iterations = 0;
};

/**
 * Binary-searches the highest offered load whose run meets the SLO:
 * p99 <= @p slo_p99_ms and achieved throughput within
 * @p achieved_tol of offered.  The factory is invoked once per
 * probe; the search ends when the bracket is within @p rel_tol of
 * the capacity.  This is the capacity-planning question ("what load
 * can this deployment sustain at my latency target?") the simulator
 * answers without a testbed.
 */
CapacitySearchResult findSloCapacity(
    const std::function<std::unique_ptr<Simulation>(double)>& factory,
    double slo_p99_ms, double lo, double hi, double rel_tol = 0.05,
    double achieved_tol = 0.05);

}  // namespace uqsim

#endif  // UQSIM_CORE_SIM_SWEEP_H_
