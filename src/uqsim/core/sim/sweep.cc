#include "uqsim/core/sim/sweep.h"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace uqsim {

double
SweepCurve::saturationQps(double tolerance) const
{
    for (const SweepPoint& point : points) {
        if (point.offeredQps <= 0.0)
            continue;
        const double ratio =
            point.report.achievedQps / point.offeredQps;
        if (ratio < 1.0 - tolerance)
            return point.offeredQps;
    }
    return 0.0;
}

double
SweepCurve::tailBeforeSaturationMs(double tolerance) const
{
    double tail = 0.0;
    for (const SweepPoint& point : points) {
        if (point.offeredQps <= 0.0)
            continue;
        const double ratio =
            point.report.achievedQps / point.offeredQps;
        if (ratio < 1.0 - tolerance)
            break;
        tail = point.report.endToEnd.p99Ms;
    }
    return tail;
}

SweepCurve
runLoadSweep(const std::string& label, const std::vector<double>& loads,
             const std::function<std::unique_ptr<Simulation>(double)>&
                 factory)
{
    SweepCurve curve;
    curve.label = label;
    curve.points.reserve(loads.size());
    for (double load : loads) {
        std::unique_ptr<Simulation> simulation = factory(load);
        if (!simulation || !simulation->finalized()) {
            throw std::logic_error(
                "sweep factory must return a finalized simulation");
        }
        SweepPoint point;
        point.offeredQps = load;
        point.report = simulation->run();
        curve.points.push_back(std::move(point));
    }
    return curve;
}

std::string
formatSweepTable(const std::vector<SweepCurve>& curves)
{
    std::ostringstream out;
    out << std::fixed;
    out << std::setw(12) << "load_qps";
    for (const SweepCurve& curve : curves) {
        out << " | " << std::setw(10) << (curve.label + ".ach")
            << ' ' << std::setw(10) << (curve.label + ".mean")
            << ' ' << std::setw(10) << (curve.label + ".p99");
    }
    out << '\n';
    std::size_t rows = 0;
    for (const SweepCurve& curve : curves)
        rows = std::max(rows, curve.points.size());
    for (std::size_t row = 0; row < rows; ++row) {
        double load = 0.0;
        for (const SweepCurve& curve : curves) {
            if (row < curve.points.size()) {
                load = curve.points[row].offeredQps;
                break;
            }
        }
        out << std::setprecision(0) << std::setw(12) << load;
        for (const SweepCurve& curve : curves) {
            if (row >= curve.points.size()) {
                out << " | " << std::setw(10) << '-' << ' '
                    << std::setw(10) << '-' << ' ' << std::setw(10)
                    << '-';
                continue;
            }
            const RunReport& report = curve.points[row].report;
            out << std::setprecision(0) << " | " << std::setw(10)
                << report.achievedQps << std::setprecision(3) << ' '
                << std::setw(10) << report.endToEnd.meanMs << ' '
                << std::setw(10) << report.endToEnd.p99Ms;
        }
        out << '\n';
    }
    return out.str();
}

CapacitySearchResult
findSloCapacity(
    const std::function<std::unique_ptr<Simulation>(double)>& factory,
    double slo_p99_ms, double lo, double hi, double rel_tol,
    double achieved_tol)
{
    if (lo <= 0.0 || hi <= lo)
        throw std::invalid_argument(
            "capacity search needs 0 < lo < hi");
    if (slo_p99_ms <= 0.0)
        throw std::invalid_argument("SLO must be > 0");

    CapacitySearchResult result;
    auto probe = [&](double qps) -> std::pair<bool, RunReport> {
        std::unique_ptr<Simulation> simulation = factory(qps);
        if (!simulation || !simulation->finalized()) {
            throw std::logic_error(
                "capacity factory must return a finalized simulation");
        }
        RunReport report = simulation->run();
        ++result.iterations;
        const bool meets =
            report.endToEnd.p99Ms <= slo_p99_ms &&
            report.achievedQps >= qps * (1.0 - achieved_tol);
        return {meets, std::move(report)};
    };

    auto [lo_ok, lo_report] = probe(lo);
    if (!lo_ok)
        return result;  // even the lower bound violates the SLO
    result.capacityQps = lo;
    result.atCapacity = std::move(lo_report);

    auto [hi_ok, hi_report] = probe(hi);
    if (hi_ok) {
        result.capacityQps = hi;
        result.atCapacity = std::move(hi_report);
        return result;
    }

    double good = lo, bad = hi;
    while (bad - good > rel_tol * bad) {
        const double mid = 0.5 * (good + bad);
        auto [ok, report] = probe(mid);
        if (ok) {
            good = mid;
            result.capacityQps = mid;
            result.atCapacity = std::move(report);
        } else {
            bad = mid;
        }
    }
    return result;
}

std::vector<double>
linspace(double lo, double hi, int count)
{
    if (count <= 0)
        throw std::invalid_argument("linspace count must be > 0");
    std::vector<double> values;
    values.reserve(static_cast<std::size_t>(count));
    if (count == 1) {
        values.push_back(lo);
        return values;
    }
    const double step = (hi - lo) / (count - 1);
    for (int i = 0; i < count; ++i)
        values.push_back(lo + step * i);
    return values;
}

}  // namespace uqsim
