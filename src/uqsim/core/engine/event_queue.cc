#include "uqsim/core/engine/event_queue.h"

#include <algorithm>
#include <string>

#include "uqsim/snapshot/snapshot.h"

namespace uqsim {

std::uint32_t
EventQueue::acquireSlot()
{
    if (freeList_.empty()) {
        const std::uint32_t base =
            static_cast<std::uint32_t>(slabs_.size() * kSlabSize);
        slabs_.push_back(std::make_unique<Slot[]>(kSlabSize));
        freeList_.reserve(kSlabSize);
        // Reversed so the lowest index is handed out first.
        for (std::size_t i = kSlabSize; i-- > 0;) {
            freeList_.push_back(base +
                                static_cast<std::uint32_t>(i));
        }
    }
    const std::uint32_t index = freeList_.back();
    freeList_.pop_back();
    return index;
}

void
EventQueue::releaseSlot(std::uint32_t index)
{
    Slot& s = *slotPtr(index);
    s.action.reset();
    s.heapIndex = kFreeIndex;
    ++s.generation;
    freeList_.push_back(index);
}

std::vector<std::string>
EventQueue::auditCheck() const
{
    std::vector<std::string> violations;

    // Heap ordering: every entry sorts at or after its parent.
    for (std::size_t pos = 1; pos < heap_.size(); ++pos) {
        const std::size_t parent = (pos - 1) >> 2;
        if (heap_[pos].before(heap_[parent])) {
            violations.push_back(
                "heap order violated at position " +
                std::to_string(pos) + ": child (t=" +
                std::to_string(heap_[pos].when) + ", seq=" +
                std::to_string(heap_[pos].sequence) +
                ") sorts before its parent");
        }
    }

    // Back-pointers: a heap entry and its slot must agree.
    for (std::size_t pos = 0; pos < heap_.size(); ++pos) {
        const HeapEntry& entry = heap_[pos];
        if (entry.slot >= poolCapacity()) {
            violations.push_back("heap entry at position " +
                                 std::to_string(pos) +
                                 " names slot " +
                                 std::to_string(entry.slot) +
                                 " beyond the pool capacity");
            continue;
        }
        const Slot& s = *slotPtr(entry.slot);
        if (s.heapIndex != static_cast<std::int32_t>(pos)) {
            violations.push_back(
                "slot " + std::to_string(entry.slot) +
                " back-pointer is " + std::to_string(s.heapIndex) +
                " but the slot sits at heap position " +
                std::to_string(pos));
        }
        if (s.when != entry.when || s.sequence != entry.sequence) {
            violations.push_back(
                "slot " + std::to_string(entry.slot) +
                " payload (t, seq) disagrees with its heap entry");
        }
    }

    // Pool accounting: every carved slot is pending, free, or — only
    // while an event fires — executing.  auditCheck runs between
    // events, so an executing slot here is a leaked FiredEvent.
    std::size_t executing = 0;
    std::size_t marked_free = 0;
    for (std::uint32_t index = 0;
         index < static_cast<std::uint32_t>(poolCapacity()); ++index) {
        const Slot& s = *slotPtr(index);
        if (s.heapIndex == kExecutingIndex)
            ++executing;
        else if (s.heapIndex == kFreeIndex)
            ++marked_free;
    }
    if (executing > 0) {
        violations.push_back(
            std::to_string(executing) +
            " slot(s) stuck in the executing state (leaked "
            "FiredEvent)");
    }
    if (marked_free != freeList_.size()) {
        violations.push_back(
            "free accounting mismatch: " +
            std::to_string(marked_free) +
            " slot(s) marked free but the free list holds " +
            std::to_string(freeList_.size()));
    }
    if (heap_.size() + freeList_.size() + executing !=
        poolCapacity()) {
        violations.push_back(
            "pool accounting mismatch: pending " +
            std::to_string(heap_.size()) + " + free " +
            std::to_string(freeList_.size()) + " + executing " +
            std::to_string(executing) + " != capacity " +
            std::to_string(poolCapacity()));
    }
    return violations;
}

std::size_t
EventQueue::tieGroupSize(std::size_t cap) const
{
    if (heap_.empty() || cap == 0)
        return 0;
    const SimTime front = heap_.front().when;
    std::size_t count = 0;
    for (const HeapEntry& entry : heap_) {
        if (entry.when == front && ++count >= cap)
            break;
    }
    return count;
}

EventQueue::FiredEvent
EventQueue::popTie(std::size_t k)
{
    if (heap_.empty())
        return FiredEvent();
    if (k == 0)
        return pop();
    const SimTime front = heap_.front().when;
    // Select the (k+1)-th smallest sequence among the tie group.
    // The tie group is small (bounded by the explorer's branching
    // cap in practice), so a linear selection is fine.
    std::uint64_t chosen_seq = 0;
    std::size_t chosen_pos = heap_.size();
    std::uint64_t floor_seq = 0;  // sequences <= floor already taken
    bool have_floor = false;
    for (std::size_t round = 0; round <= k; ++round) {
        chosen_pos = heap_.size();
        for (std::size_t pos = 0; pos < heap_.size(); ++pos) {
            const HeapEntry& entry = heap_[pos];
            if (entry.when != front)
                continue;
            if (have_floor && entry.sequence <= floor_seq)
                continue;
            if (chosen_pos == heap_.size() ||
                entry.sequence < chosen_seq) {
                chosen_seq = entry.sequence;
                chosen_pos = pos;
            }
        }
        if (chosen_pos == heap_.size())
            return FiredEvent();  // k beyond the tie group
        floor_seq = chosen_seq;
        have_floor = true;
    }
    const std::uint32_t slot = heap_[chosen_pos].slot;
    heapRemoveAt(chosen_pos);
    slotPtr(slot)->heapIndex = kExecutingIndex;
    return FiredEvent(this, slot);
}

std::uint64_t
EventQueue::pendingStateHash() const
{
    constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
    constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;
    std::uint64_t h = 0x9E3779B97F4A7C15ULL;
    for (const HeapEntry& entry : heap_) {
        const Slot& s = *slotPtr(entry.slot);
        // Hash the label by content: literal addresses are not
        // stable enough to compare fingerprints across schedules.
        std::uint64_t label = kFnvOffset;
        for (const char* p = s.label; *p != '\0'; ++p) {
            label = (label ^ static_cast<unsigned char>(*p)) *
                    kFnvPrime;
        }
        std::uint64_t x =
            static_cast<std::uint64_t>(entry.when) ^ label;
        // splitmix64-style finalizer, then a commutative fold so
        // heap layout (and pop order history) cannot matter.
        x ^= x >> 30;
        x *= 0xBF58476D1CE4E5B9ULL;
        x ^= x >> 27;
        x *= 0x94D049BB133111EBULL;
        x ^= x >> 31;
        h += x;
    }
    return h;
}

std::uint64_t
EventQueue::pendingDigest() const
{
    // Sorted (when, sequence) order — NOT heap layout order, which
    // depends on the insertion/removal history in ways the replayed
    // queue reproduces anyway but that would make the digest fragile
    // to future heap tweaks.  Labels are string literals with stable
    // content, so folding them pins *which* events are pending, not
    // just when.
    std::vector<const HeapEntry*> sorted;
    sorted.reserve(heap_.size());
    for (const HeapEntry& entry : heap_)
        sorted.push_back(&entry);
    std::sort(sorted.begin(), sorted.end(),
              [](const HeapEntry* a, const HeapEntry* b) {
                  return a->before(*b);
              });
    snapshot::Digest digest;
    for (const HeapEntry* entry : sorted) {
        digest.i64(entry->when);
        digest.u64(entry->sequence);
        digest.str(slotPtr(entry->slot)->label);
    }
    return digest.value();
}

std::uint64_t
EventQueue::generationDigest() const
{
    // Slot-index order: slot allocation is deterministic under
    // replay, so generation counters (and with them every live
    // EventHandle's validity) replay exactly.
    snapshot::Digest digest;
    for (std::uint32_t index = 0;
         index < static_cast<std::uint32_t>(poolCapacity()); ++index) {
        digest.u32(slotPtr(index)->generation);
    }
    return digest.value();
}

void
EventQueue::saveState(snapshot::SnapshotWriter& writer) const
{
    writer.putU64(nextSequence_);
    writer.putU64(heap_.size());
    writer.putU64(freeList_.size());
    writer.putU64(poolCapacity());
    writer.putU64(pendingDigest());
    writer.putU64(generationDigest());
}

void
EventQueue::loadState(snapshot::SnapshotReader& reader) const
{
    reader.requireU64("queue.next_sequence", nextSequence_);
    reader.requireU64("queue.pending", heap_.size());
    reader.requireU64("queue.free_slots", freeList_.size());
    reader.requireU64("queue.pool_capacity", poolCapacity());
    reader.requireU64("queue.pending_digest", pendingDigest());
    reader.requireU64("queue.generation_digest", generationDigest());
}

void
EventQueue::heapPush(std::uint32_t slot, SimTime when,
                     std::uint64_t sequence)
{
    heap_.push_back(HeapEntry{when, sequence, slot});
    siftUp(heap_.size() - 1, heap_.back());
}

void
EventQueue::heapRemoveTop()
{
    const HeapEntry last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty())
        siftDown(0, last);
}

void
EventQueue::heapRemoveAt(std::size_t pos)
{
    const HeapEntry last = heap_.back();
    heap_.pop_back();
    if (pos == heap_.size())
        return;
    // The replacement may belong above or below the vacated
    // position; try both directions (one is a no-op).
    siftDown(pos, last);
    pos = static_cast<std::size_t>(
        slotPtr(last.slot)->heapIndex);
    siftUp(pos, heap_[pos]);
}

void
EventQueue::siftUp(std::size_t pos, HeapEntry moving)
{
    while (pos > 0) {
        const std::size_t parent = (pos - 1) >> 2;
        const HeapEntry& p = heap_[parent];
        if (p.before(moving))
            break;
        heap_[pos] = p;
        slotPtr(p.slot)->heapIndex = static_cast<std::int32_t>(pos);
        pos = parent;
    }
    heap_[pos] = moving;
    slotPtr(moving.slot)->heapIndex = static_cast<std::int32_t>(pos);
}

void
EventQueue::siftDown(std::size_t pos, HeapEntry moving)
{
    const std::size_t n = heap_.size();
    while (true) {
        const std::size_t first = pos * 4 + 1;
        if (first >= n)
            break;
        const std::size_t end = first + 4 < n ? first + 4 : n;
        std::size_t best = first;
        for (std::size_t c = first + 1; c < end; ++c) {
            if (heap_[c].before(heap_[best]))
                best = c;
        }
        if (moving.before(heap_[best]))
            break;
        heap_[pos] = heap_[best];
        slotPtr(heap_[pos].slot)->heapIndex =
            static_cast<std::int32_t>(pos);
        pos = best;
    }
    heap_[pos] = moving;
    slotPtr(moving.slot)->heapIndex = static_cast<std::int32_t>(pos);
}

}  // namespace uqsim
