#include "uqsim/core/engine/event_queue.h"

#include <algorithm>
#include <stdexcept>

namespace uqsim {

EventHandle
EventQueue::schedule(std::shared_ptr<Event> event, SimTime when)
{
    if (!event)
        throw std::invalid_argument("cannot schedule a null event");
    event->when_ = when;
    event->sequence_ = nextSequence_++;
    EventHandle handle{std::weak_ptr<Event>(event)};
    heap_.push_back(Entry{std::move(event)});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
    return handle;
}

void
EventQueue::dropCancelled()
{
    while (!heap_.empty() && heap_.front().event->cancelled()) {
        std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
        heap_.pop_back();
    }
}

bool
EventQueue::empty()
{
    dropCancelled();
    return heap_.empty();
}

SimTime
EventQueue::nextTime()
{
    dropCancelled();
    return heap_.empty() ? kSimTimeMax : heap_.front().event->when();
}

std::shared_ptr<Event>
EventQueue::pop()
{
    dropCancelled();
    if (heap_.empty())
        return nullptr;
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
    std::shared_ptr<Event> event = std::move(heap_.back().event);
    heap_.pop_back();
    return event;
}

}  // namespace uqsim
