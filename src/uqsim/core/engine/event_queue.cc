#include "uqsim/core/engine/event_queue.h"

#include <algorithm>
#include <stdexcept>

namespace uqsim {

EventHandle
EventQueue::schedule(std::shared_ptr<Event> event, SimTime when)
{
    if (!event)
        throw std::invalid_argument("cannot schedule a null event");
    event->when_ = when;
    event->sequence_ = nextSequence_++;
    EventHandle handle{std::weak_ptr<Event>(event)};
    heap_.push_back(Entry{std::move(event)});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
    maybePurge();
    return handle;
}

void
EventQueue::maybePurge()
{
    if (heap_.size() < purgeCheckSize_)
        return;
    std::size_t cancelled = 0;
    for (const Entry& entry : heap_) {
        if (entry.event->cancelled())
            ++cancelled;
    }
    if (cancelled * 2 > heap_.size()) {
        heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                                   [](const Entry& entry) {
                                       return entry.event->cancelled();
                                   }),
                    heap_.end());
        std::make_heap(heap_.begin(), heap_.end(), std::greater<>());
        ++purgeCount_;
    }
    // Re-check only once the heap has grown well past the current
    // live population, keeping the scan amortized O(1) per schedule.
    purgeCheckSize_ = std::max<std::size_t>(64, heap_.size() * 2);
}

std::size_t
EventQueue::liveSize() const
{
    std::size_t live = 0;
    for (const Entry& entry : heap_) {
        if (!entry.event->cancelled())
            ++live;
    }
    return live;
}

void
EventQueue::dropCancelled()
{
    while (!heap_.empty() && heap_.front().event->cancelled()) {
        std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
        heap_.pop_back();
    }
}

bool
EventQueue::empty()
{
    dropCancelled();
    return heap_.empty();
}

SimTime
EventQueue::nextTime()
{
    dropCancelled();
    return heap_.empty() ? kSimTimeMax : heap_.front().event->when();
}

std::shared_ptr<Event>
EventQueue::pop()
{
    dropCancelled();
    if (heap_.empty())
        return nullptr;
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
    std::shared_ptr<Event> event = std::move(heap_.back().event);
    heap_.pop_back();
    return event;
}

}  // namespace uqsim
