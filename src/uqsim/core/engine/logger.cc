#include "uqsim/core/engine/logger.h"

#include <iostream>
#include <sstream>

namespace uqsim {

const char*
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Off: return "OFF";
      case LogLevel::Error: return "ERROR";
      case LogLevel::Warn: return "WARN";
      case LogLevel::Info: return "INFO";
      case LogLevel::Trace: return "TRACE";
    }
    return "?";
}

Logger::Logger() : sink_(&std::clog) {}

void
Logger::log(LogLevel level, SimTime now, const std::string& component,
            const std::string& message)
{
    if (!enabled(level))
        return;
    std::ostringstream line;
    line << '[' << formatSimTime(now) << "] " << logLevelName(level) << ' '
         << component << ": " << message;
    if (hook_)
        hook_(line.str());
    if (sink_ != nullptr)
        *sink_ << line.str() << '\n';
}

}  // namespace uqsim
