#ifndef UQSIM_CORE_ENGINE_CHOICE_H_
#define UQSIM_CORE_ENGINE_CHOICE_H_

/**
 * @file
 * Schedule choice points: the engine-side hook the schedule-space
 * explorer (src/uqsim/explore/) drives.
 *
 * A deterministic simulation resolves several kinds of "don't care"
 * nondeterminism by fixed tie-breaking: events sharing a timestamp
 * fire in scheduling order, fault windows open exactly at their
 * scripted onset, and retry/hedge timers fire exactly at their
 * nominal delay.  Real systems do not honor those tie-breaks, and
 * metastable failures (retry storms, breaker flapping) often hide in
 * the schedules the default order never visits.
 *
 * A Chooser attached to a Simulator turns each such tie-break into an
 * explicit *choice point*: the engine (or the fault scheduler, or the
 * dispatcher's resilience timers) asks the chooser to pick one of a
 * small set of options.  The engine stays fully deterministic given
 * the sequence of answers, so any schedule can be replayed exactly.
 *
 * Default-path contract: with no chooser attached (the normal case)
 * none of these hooks fire — the hot path pays one predictable
 * null-pointer branch per event and nothing else, and every trace
 * digest is bit-identical to pre-explorer builds.  A chooser that
 * always answers 0 must also reproduce the default schedule exactly:
 * option 0 of every choice point is defined as "what the engine would
 * have done anyway".
 */

#include <string>

#include "uqsim/core/engine/sim_time.h"

namespace uqsim {

class Simulator;

/** What kind of nondeterminism a choice point perturbs. */
enum class ChoiceKind {
    /** Which of the events tied at the earliest timestamp fires
     *  next.  Option k = the event with the (k+1)-th smallest
     *  sequence number in the tie group; option 0 is the default
     *  order. */
    EventTie,
    /** Fault-window onset: the whole window (crash, slow, network,
     *  or stochastic-crash timeline) shifts later by
     *  chosen * jitterStep. */
    FaultJitter,
    /** Resilience timer nudge: a retry timeout, hedge, or backoff
     *  resend timer fires chosen * jitterStep later than nominal. */
    TimerNudge,
    /** Which surviving backup route a failed-over transfer takes.
     *  Option k = the (k+1)-th surviving candidate in installation
     *  order; option 0 is the deterministic default (first
     *  survivor).  Only fires when >= 2 candidates survive. */
    RouteFailover,
};

/** Stable lowercase name ("event_tie", "fault_jitter",
 *  "timer_nudge", "route_failover"); used in schedule files. */
const char* choiceKindName(ChoiceKind kind);

/** Inverse of choiceKindName; throws std::invalid_argument on an
 *  unknown name. */
ChoiceKind choiceKindFromName(const std::string& name);

/**
 * Decision oracle for one run.  Attached to a Simulator with
 * setChooser(); the engine, fault scheduler, and dispatcher consult
 * it at every choice point.  Implementations live in
 * src/uqsim/explore/ (recording DFS chooser, strict replay chooser).
 */
class Chooser {
  public:
    virtual ~Chooser() = default;

    /** Called by Simulator::setChooser so state fingerprints can be
     *  taken at decision time. */
    virtual void attach(Simulator& sim) = 0;

    /**
     * Picks one of [0, options) at a choice point; only called when
     * options >= 2.  @p label names the site (string literal) for
     * schedule-file readability.
     */
    virtual int choose(ChoiceKind kind, int options,
                       const char* label) = 0;

    /**
     * Branching cap for @p kind.  <= 1 disables the choice point
     * entirely (the site takes the default without calling
     * choose()).  For EventTie this caps how many tied events are
     * considered; for the jitter kinds it is the number of discrete
     * onsets/nudges explored.
     */
    virtual int maxChoices(ChoiceKind kind) const = 0;

    /** Time shift applied per chosen step for the jitter kinds
     *  (ignored for EventTie). */
    virtual SimTime jitterStep(ChoiceKind kind) const = 0;
};

}  // namespace uqsim

#endif  // UQSIM_CORE_ENGINE_CHOICE_H_
