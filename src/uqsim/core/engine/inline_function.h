#ifndef UQSIM_CORE_ENGINE_INLINE_FUNCTION_H_
#define UQSIM_CORE_ENGINE_INLINE_FUNCTION_H_

/**
 * @file
 * Move-only type-erased callable with configurable inline storage.
 *
 * The event hot path schedules millions of small closures; wrapping
 * each in a std::function costs a heap allocation whenever the
 * capture exceeds the (16-byte, libstdc++) small-object buffer.
 * InlineFunction sizes its buffer per use site so the common capture
 * sets stay inline, and supports move-only captures (e.g. another
 * InlineFunction, a unique_ptr), which std::function cannot hold.
 * Callables larger than the buffer fall back to a single heap
 * allocation — correct, just not free.
 */

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace uqsim {

template <typename Signature, std::size_t InlineBytes>
class InlineFunction;

template <typename R, typename... Args, std::size_t InlineBytes>
class InlineFunction<R(Args...), InlineBytes> {
  public:
    InlineFunction() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                  std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
    InlineFunction(F&& fn)  // NOLINT: implicit like std::function
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void*>(storage_))
                Fn(std::forward<F>(fn));
            ops_ = &InlineOps<Fn>::ops;
        } else {
            ::new (static_cast<void*>(storage_))
                Fn*(new Fn(std::forward<F>(fn)));
            ops_ = &HeapOps<Fn>::ops;
        }
    }

    InlineFunction(InlineFunction&& other) noexcept
    {
        moveFrom(other);
    }

    InlineFunction&
    operator=(InlineFunction&& other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InlineFunction(const InlineFunction&) = delete;
    InlineFunction& operator=(const InlineFunction&) = delete;

    ~InlineFunction() { reset(); }

    explicit operator bool() const { return ops_ != nullptr; }

    R
    operator()(Args... args)
    {
        return ops_->invoke(storage_, std::forward<Args>(args)...);
    }

    /** Destroys the held callable, leaving the function empty. */
    void
    reset()
    {
        if (ops_ != nullptr) {
            ops_->destroy(storage_);
            ops_ = nullptr;
        }
    }

    /** True when the callable is stored inline (no heap block). */
    bool storedInline() const
    {
        return ops_ != nullptr && ops_->inlineStored;
    }

  private:
    struct Ops {
        R (*invoke)(void*, Args&&...);
        void (*relocate)(void* src, void* dst) noexcept;
        void (*destroy)(void*) noexcept;
        bool inlineStored;
    };

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= InlineBytes &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    template <typename Fn>
    struct InlineOps {
        static R
        invoke(void* s, Args&&... args)
        {
            return (*static_cast<Fn*>(s))(std::forward<Args>(args)...);
        }
        static void
        relocate(void* src, void* dst) noexcept
        {
            ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
            static_cast<Fn*>(src)->~Fn();
        }
        static void
        destroy(void* s) noexcept
        {
            static_cast<Fn*>(s)->~Fn();
        }
        static constexpr Ops ops = {&invoke, &relocate, &destroy, true};
    };

    template <typename Fn>
    struct HeapOps {
        static Fn*&
        held(void* s)
        {
            return *static_cast<Fn**>(s);
        }
        static R
        invoke(void* s, Args&&... args)
        {
            return (*held(s))(std::forward<Args>(args)...);
        }
        static void
        relocate(void* src, void* dst) noexcept
        {
            ::new (dst) Fn*(held(src));
        }
        static void
        destroy(void* s) noexcept
        {
            delete held(s);
        }
        static constexpr Ops ops = {&invoke, &relocate, &destroy,
                                    false};
    };

    void
    moveFrom(InlineFunction& other) noexcept
    {
        ops_ = other.ops_;
        if (ops_ != nullptr) {
            ops_->relocate(other.storage_, storage_);
            other.ops_ = nullptr;
        }
    }

    static constexpr std::size_t kStorageBytes =
        InlineBytes < sizeof(void*) ? sizeof(void*) : InlineBytes;

    alignas(std::max_align_t) unsigned char storage_[kStorageBytes];
    const Ops* ops_ = nullptr;
};

}  // namespace uqsim

#endif  // UQSIM_CORE_ENGINE_INLINE_FUNCTION_H_
