#include "uqsim/core/engine/audit.h"

#include <cstdlib>

namespace uqsim {
namespace audit {

namespace {

bool
readEnvironment()
{
    const char* value = std::getenv("UQSIM_AUDIT");
    return value != nullptr && value[0] != '\0' &&
           !(value[0] == '0' && value[1] == '\0');
}

/** -1 unset (use environment), 0 forced off, 1 forced on. */
int overrideMode = -1;

}  // namespace

bool
auditModeEnabled()
{
    if (overrideMode >= 0)
        return overrideMode != 0;
    static const bool fromEnvironment = readEnvironment();
    return fromEnvironment;
}

void
setAuditMode(bool enabled)
{
    overrideMode = enabled ? 1 : 0;
}

std::string
AuditReport::describe() const
{
    std::string out;
    for (const std::string& violation : violations) {
        if (!out.empty())
            out += "; ";
        out += violation;
    }
    return out;
}

void
AuditReport::raise(const std::string& context) const
{
    if (!clean()) {
        throw EngineInvariantError("engine invariant violation (" +
                                   context + "): " + describe());
    }
}

}  // namespace audit
}  // namespace uqsim
