#ifndef UQSIM_CORE_ENGINE_SIMULATOR_H_
#define UQSIM_CORE_ENGINE_SIMULATOR_H_

/**
 * @file
 * Discrete-event simulation driver.
 *
 * The simulator owns the clock, the event queue, the master random
 * seed, and the logger.  Every simulation cycle it pops the earliest
 * event, advances the clock to that event's timestamp, and executes
 * it; executing an event typically schedules causally dependent
 * events (paper §III-A, Fig. 2).  Simulation completes when no
 * events remain or a stop condition triggers.
 */

#include <cstdint>
#include <string>
#include <utility>

#include "uqsim/core/engine/audit.h"
#include "uqsim/core/engine/choice.h"
#include "uqsim/core/engine/event.h"
#include "uqsim/core/engine/event_queue.h"
#include "uqsim/core/engine/logger.h"
#include "uqsim/core/engine/run_control.h"
#include "uqsim/core/engine/sim_time.h"
#include "uqsim/random/rng.h"

namespace uqsim {

namespace snapshot {
class SnapshotWriter;
class SnapshotReader;
}  // namespace snapshot

/** Why Simulator::run() returned. */
enum class StopReason {
    Drained,       ///< no outstanding events remained
    TimeLimit,     ///< the until-time was reached
    EventLimit,    ///< the event-count limit was reached
    Stopped,       ///< Simulator::stop() was called from an event
};

const char* stopReasonName(StopReason reason);

/** Event-driven simulation kernel. */
class Simulator {
  public:
    /** @param master_seed  seed from which all RNG streams derive. */
    explicit Simulator(std::uint64_t master_seed = 1);

    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    /** Current simulation time. */
    SimTime now() const { return now_; }

    /** Master seed (used to derive component streams). */
    std::uint64_t masterSeed() const { return masterSeed_; }

    /** Creates an independently seeded stream for @p label. */
    random::RngStream makeStream(const std::string& label) const;

    /**
     * Schedules a callback at absolute time @p when (>= now).
     * @p label must outlive the event (string literal or stable
     * member); it is shown by the trace logger.
     */
    template <typename F>
    EventHandle
    scheduleAt(SimTime when, F&& callback,
               const char* label = "callback")
    {
        if (when < now_)
            throwSchedulePast(when);
        return queue_.schedule(when, std::forward<F>(callback), label);
    }

    /** Schedules a callback @p delay after the current time. */
    template <typename F>
    EventHandle
    scheduleAfter(SimTime delay, F&& callback,
                  const char* label = "callback")
    {
        if (delay < 0)
            throwNegativeDelay();
        return queue_.schedule(now_ + delay,
                               std::forward<F>(callback), label);
    }

    /**
     * Runs until the queue drains, time exceeds @p until, more than
     * @p max_events fire, or stop() is called.
     *
     * Events scheduled exactly at @p until still fire; the first
     * event strictly after @p until ends the run with the clock left
     * at @p until.
     */
    StopReason run(SimTime until = kSimTimeMax,
                   std::uint64_t max_events = 0);

    /**
     * run() variant for segmented (checkpointed) execution: identical
     * event-for-event, except that reaching @p until does NOT clamp
     * the clock forward to @p until — the clock stays at the last
     * fired event.  That makes running in segments bit-identical to a
     * straight run: only the *final* run() of a simulation performs
     * the end-of-horizon clamp.  @p max_events is an absolute
     * executed-event threshold, like run()'s.
     */
    StopReason runSegment(SimTime until = kSimTimeMax,
                          std::uint64_t max_events = 0);

    /** Requests the active run() to return after the current event. */
    void stop() { stopRequested_ = true; }

    /** Number of events executed so far. */
    std::uint64_t executedEvents() const { return executedEvents_; }

    /**
     * Running FNV-1a digest of the executed event trace: every fired
     * event folds (when, sequence) into the hash.  Two runs with the
     * same seed and configuration must produce the same digest on
     * every platform; the determinism regression tests rely on this.
     */
    std::uint64_t traceDigest() const { return traceDigest_; }

    EventQueue& queue() { return queue_; }
    Logger& logger() { return logger_; }

    /**
     * Attaches a supervisor mailbox (nullptr detaches).  While
     * attached, run() publishes progress watermarks every
     * kControlPollEvents events and honors abort requests / the
     * control's event budget by throwing SimulationAbortError
     * between events.  The budget check happens at poll granularity,
     * so it is deterministic for a given event stream.
     */
    void setRunControl(RunControl* control) { control_ = control; }
    RunControl* runControl() const { return control_; }

    /**
     * Audits engine invariants now: event-heap ordering, slot
     * back-pointers, and pool accounting (see
     * EventQueue::auditCheck).  Cheap relative to a run; called by
     * the simulation-level auditor and the harness abort path.
     */
    audit::AuditReport auditEngine() const;

    /**
     * Attaches a schedule chooser (nullptr detaches).  While
     * attached, same-timestamp event pops become choice points (see
     * choice.h), and the fault scheduler / dispatcher consult the
     * chooser for onset-jitter and timer-nudge decisions.  With no
     * chooser the run loop pays one predictable branch per event and
     * behaves bit-identically to pre-explorer builds.  Attach before
     * Simulation::finalize() so fault-plan choice points are seen.
     */
    void
    setChooser(Chooser* chooser)
    {
        chooser_ = chooser;
        if (chooser_ != nullptr)
            chooser_->attach(*this);
    }
    Chooser* chooser() const { return chooser_; }

    /**
     * Approximate state fingerprint for the explorer's revisit
     * pruning: the clock combined with the order-insensitive hash of
     * the pending-event multiset.  Two equal fingerprints *probably*
     * name equivalent states (the fingerprint ignores component
     * state, so the explorer treats collisions as prune hints, not
     * proofs).
     */
    std::uint64_t stateFingerprint() const;

    /** Events between control polls / audit clock checks. */
    static constexpr std::uint64_t kControlPollEvents = 1024;

    /**
     * Writes the ENGINE snapshot section: clock, executed-event
     * count, trace digest, and the event queue's pool/heap state
     * (snapshot.h).  Must be called between events.
     */
    void saveState(snapshot::SnapshotWriter& writer) const;

    /**
     * Validates the live (replayed) engine state against a
     * snapshot's ENGINE section; throws SnapshotStateError on any
     * divergence.  See docs/ARCHITECTURE.md §"Checkpoint / restore".
     */
    void loadState(snapshot::SnapshotReader& reader) const;

  private:
    StopReason runLoop(SimTime until, std::uint64_t max_events,
                       bool clamp_clock);
    void digestEvent(std::uint64_t when, std::uint64_t sequence);
    [[noreturn]] void throwSchedulePast(SimTime when) const;
    [[noreturn]] static void throwNegativeDelay();

    /** Publishes watermarks and honors aborts; throws
     *  SimulationAbortError when the supervisor asked to stop. */
    void pollControl();

    /** Pops the next event through the attached chooser: a tie at
     *  the earliest timestamp becomes an EventTie choice point. */
    EventQueue::FiredEvent popChosen();

    SimTime now_ = 0;
    std::uint64_t masterSeed_;
    EventQueue queue_;
    Logger logger_;
    RunControl* control_ = nullptr;
    Chooser* chooser_ = nullptr;
    bool stopRequested_ = false;
    std::uint64_t executedEvents_ = 0;
    std::uint64_t traceDigest_ = 0xCBF29CE484222325ULL;  // FNV offset
};

}  // namespace uqsim

#endif  // UQSIM_CORE_ENGINE_SIMULATOR_H_
