#ifndef UQSIM_CORE_ENGINE_RUN_CONTROL_H_
#define UQSIM_CORE_ENGINE_RUN_CONTROL_H_

/**
 * @file
 * Cooperative run control: the channel between a running Simulator
 * and an external supervisor (the SweepRunner's stall watchdog).
 *
 * A Simulator given a RunControl publishes progress watermarks
 * (events executed, current sim time) every few thousand events and
 * polls the abort flag at the same cadence.  A supervisor thread
 * samples the watermarks to detect stalls and runaway runs, and
 * requests termination by setting the abort flag; the simulator then
 * raises SimulationAbortError *between* events, so RAII cleanup of
 * the in-flight event has already run and the engine's pooled
 * storage stays consistent (the harness verifies this with the
 * invariant auditor before salvaging sibling replications).
 *
 * All cross-thread traffic goes through relaxed atomics: watermarks
 * are monotone counters used only for progress detection, and the
 * abort flag is a level-triggered request, so no ordering beyond
 * atomicity is required.  A truly blocked event callback (e.g. one
 * performing host I/O that never returns) cannot be killed
 * cooperatively; the watchdog detects that case too — the event
 * watermark freezes — but termination waits until the callback
 * returns.  Process-level isolation is out of scope (documented in
 * docs/ARCHITECTURE.md §"Harness failure-handling contract").
 */

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace uqsim {

/** Why a supervised run was aborted. */
enum class AbortReason : int {
    None = 0,
    /** Progress watermarks stopped advancing for the stall window. */
    Stall,
    /** The wall-clock budget for the replication was exceeded. */
    WallTimeout,
    /** The executed-event budget was exceeded. */
    EventBudget,
    /** An external caller requested the abort. */
    External,
};

const char* abortReasonName(AbortReason reason);

/**
 * Thrown by Simulator::run() when a supervisor aborts the run.  The
 * harness classifies it as a timeout/stall failure, never as an
 * internal error.
 */
class SimulationAbortError : public std::runtime_error {
  public:
    SimulationAbortError(AbortReason reason, const std::string& detail)
        : std::runtime_error("simulation aborted (" +
                             std::string(abortReasonName(reason)) +
                             "): " + detail),
          reason_(reason)
    {
    }

    AbortReason reason() const { return reason_; }

  private:
    AbortReason reason_;
};

/**
 * Shared progress/abort mailbox.  One per supervised replication;
 * the worker thread's Simulator writes watermarks and reads the
 * abort request, the watchdog thread does the reverse.
 */
class RunControl {
  public:
    RunControl() = default;

    RunControl(const RunControl&) = delete;
    RunControl& operator=(const RunControl&) = delete;

    // -- worker (Simulator) side --------------------------------------

    /** Publishes progress; called every control-poll interval. */
    void
    publish(std::uint64_t events, std::int64_t sim_time)
    {
        events_.store(events, std::memory_order_relaxed);
        simTime_.store(sim_time, std::memory_order_relaxed);
    }

    /** Pending abort reason; AbortReason::None when none requested. */
    AbortReason
    abortRequested() const
    {
        return static_cast<AbortReason>(
            abort_.load(std::memory_order_relaxed));
    }

    /** Event budget the simulator enforces inline; 0 = unlimited.
     *  Checked at poll granularity, so enforcement is deterministic
     *  for a given event stream. */
    std::uint64_t maxEvents() const { return maxEvents_; }
    void setMaxEvents(std::uint64_t budget) { maxEvents_ = budget; }

    // -- supervisor (watchdog) side -----------------------------------

    std::uint64_t
    eventWatermark() const
    {
        return events_.load(std::memory_order_relaxed);
    }

    std::int64_t
    simTimeWatermark() const
    {
        return simTime_.load(std::memory_order_relaxed);
    }

    /** Requests termination; the first reason wins. */
    void
    requestAbort(AbortReason reason)
    {
        int expected = static_cast<int>(AbortReason::None);
        abort_.compare_exchange_strong(expected,
                                       static_cast<int>(reason),
                                       std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> events_{0};
    std::atomic<std::int64_t> simTime_{0};
    std::atomic<int> abort_{static_cast<int>(AbortReason::None)};
    /** Written before the run starts, read only by the worker. */
    std::uint64_t maxEvents_ = 0;
};

}  // namespace uqsim

#endif  // UQSIM_CORE_ENGINE_RUN_CONTROL_H_
