#include "uqsim/core/engine/simulator.h"

#include <stdexcept>

namespace uqsim {

const char*
stopReasonName(StopReason reason)
{
    switch (reason) {
      case StopReason::Drained: return "drained";
      case StopReason::TimeLimit: return "time-limit";
      case StopReason::EventLimit: return "event-limit";
      case StopReason::Stopped: return "stopped";
    }
    return "?";
}

Simulator::Simulator(std::uint64_t master_seed) : masterSeed_(master_seed)
{
}

random::RngStream
Simulator::makeStream(const std::string& label) const
{
    return random::RngStream(masterSeed_, label);
}

EventHandle
Simulator::scheduleAt(std::shared_ptr<Event> event, SimTime when)
{
    if (when < now_) {
        throw std::logic_error(
            "cannot schedule event in the past: event at " +
            formatSimTime(when) + ", now " + formatSimTime(now_));
    }
    return queue_.schedule(std::move(event), when);
}

EventHandle
Simulator::scheduleAt(SimTime when, std::function<void()> callback,
                      std::string label)
{
    return scheduleAt(std::make_shared<CallbackEvent>(std::move(callback),
                                                      std::move(label)),
                      when);
}

EventHandle
Simulator::scheduleAfter(SimTime delay, std::function<void()> callback,
                         std::string label)
{
    if (delay < 0)
        throw std::logic_error("cannot schedule with negative delay");
    return scheduleAt(now_ + delay, std::move(callback), std::move(label));
}

void
Simulator::digestEvent(std::uint64_t when, std::uint64_t sequence)
{
    // FNV-1a over the 16 bytes of (when, sequence), one byte at a
    // time so the digest is identical on every platform regardless
    // of endianness conventions in wider folds.
    constexpr std::uint64_t kPrime = 0x100000001B3ULL;
    std::uint64_t h = traceDigest_;
    for (int i = 0; i < 8; ++i) {
        h = (h ^ ((when >> (8 * i)) & 0xFF)) * kPrime;
    }
    for (int i = 0; i < 8; ++i) {
        h = (h ^ ((sequence >> (8 * i)) & 0xFF)) * kPrime;
    }
    traceDigest_ = h;
}

StopReason
Simulator::run(SimTime until, std::uint64_t max_events)
{
    stopRequested_ = false;
    while (true) {
        if (stopRequested_)
            return StopReason::Stopped;
        if (max_events != 0 && executedEvents_ >= max_events)
            return StopReason::EventLimit;
        const SimTime next = queue_.nextTime();
        if (next == kSimTimeMax)
            return StopReason::Drained;
        if (next > until) {
            now_ = until;
            return StopReason::TimeLimit;
        }
        std::shared_ptr<Event> event = queue_.pop();
        now_ = event->when();
        if (logger_.enabled(LogLevel::Trace))
            logger_.log(LogLevel::Trace, now_, "engine",
                        "fire " + event->label());
        digestEvent(static_cast<std::uint64_t>(event->when()),
                    event->sequence());
        event->execute();
        ++executedEvents_;
    }
}

}  // namespace uqsim
