#include "uqsim/core/engine/simulator.h"

#include <stdexcept>

#include "uqsim/snapshot/snapshot.h"

namespace uqsim {

const char*
stopReasonName(StopReason reason)
{
    switch (reason) {
      case StopReason::Drained: return "drained";
      case StopReason::TimeLimit: return "time-limit";
      case StopReason::EventLimit: return "event-limit";
      case StopReason::Stopped: return "stopped";
    }
    return "?";
}

Simulator::Simulator(std::uint64_t master_seed) : masterSeed_(master_seed)
{
}

random::RngStream
Simulator::makeStream(const std::string& label) const
{
    return random::RngStream(masterSeed_, label);
}

void
Simulator::throwSchedulePast(SimTime when) const
{
    throw std::logic_error(
        "cannot schedule event in the past: event at " +
        formatSimTime(when) + ", now " + formatSimTime(now_));
}

void
Simulator::throwNegativeDelay()
{
    throw std::logic_error("cannot schedule with negative delay");
}

void
Simulator::digestEvent(std::uint64_t when, std::uint64_t sequence)
{
    // FNV-1a over the 16 bytes of (when, sequence), one byte at a
    // time so the digest is identical on every platform regardless
    // of endianness conventions in wider folds.
    constexpr std::uint64_t kPrime = 0x100000001B3ULL;
    std::uint64_t h = traceDigest_;
    for (int i = 0; i < 8; ++i) {
        h = (h ^ ((when >> (8 * i)) & 0xFF)) * kPrime;
    }
    for (int i = 0; i < 8; ++i) {
        h = (h ^ ((sequence >> (8 * i)) & 0xFF)) * kPrime;
    }
    traceDigest_ = h;
}

void
Simulator::pollControl()
{
    control_->publish(executedEvents_,
                      static_cast<std::int64_t>(now_));
    const AbortReason requested = control_->abortRequested();
    if (requested != AbortReason::None) {
        throw SimulationAbortError(
            requested, "at t=" + formatSimTime(now_) + " after " +
                           std::to_string(executedEvents_) +
                           " events");
    }
    if (control_->maxEvents() != 0 &&
        executedEvents_ >= control_->maxEvents()) {
        control_->requestAbort(AbortReason::EventBudget);
        throw SimulationAbortError(
            AbortReason::EventBudget,
            "executed " + std::to_string(executedEvents_) +
                " events, budget " +
                std::to_string(control_->maxEvents()));
    }
}

std::uint64_t
Simulator::stateFingerprint() const
{
    std::uint64_t x = static_cast<std::uint64_t>(now_) ^
                      queue_.pendingStateHash();
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return x;
}

EventQueue::FiredEvent
Simulator::popChosen()
{
    const int cap = chooser_->maxChoices(ChoiceKind::EventTie);
    if (cap > 1) {
        const std::size_t group =
            queue_.tieGroupSize(static_cast<std::size_t>(cap));
        if (group > 1) {
            const int pick =
                chooser_->choose(ChoiceKind::EventTie,
                                 static_cast<int>(group),
                                 "event-tie");
            return queue_.popTie(static_cast<std::size_t>(pick));
        }
    }
    return queue_.pop();
}

void
Simulator::saveState(snapshot::SnapshotWriter& writer) const
{
    writer.beginSection(snapshot::SectionId::Engine);
    writer.putI64(now_);
    writer.putU64(masterSeed_);
    writer.putU64(executedEvents_);
    writer.putU64(traceDigest_);
    queue_.saveState(writer);
    writer.endSection();
}

void
Simulator::loadState(snapshot::SnapshotReader& reader) const
{
    reader.openSection(snapshot::SectionId::Engine);
    reader.requireI64("now", now_);
    reader.requireU64("master_seed", masterSeed_);
    reader.requireU64("executed_events", executedEvents_);
    reader.requireU64("trace_digest", traceDigest_);
    queue_.loadState(reader);
    reader.closeSection();
}

audit::AuditReport
Simulator::auditEngine() const
{
    audit::AuditReport report;
    report.violations = queue_.auditCheck();
    return report;
}

StopReason
Simulator::run(SimTime until, std::uint64_t max_events)
{
    return runLoop(until, max_events, /*clamp_clock=*/true);
}

StopReason
Simulator::runSegment(SimTime until, std::uint64_t max_events)
{
    return runLoop(until, max_events, /*clamp_clock=*/false);
}

StopReason
Simulator::runLoop(SimTime until, std::uint64_t max_events,
                   bool clamp_clock)
{
    stopRequested_ = false;
    const bool auditing = audit::auditModeEnabled();
    while (true) {
        if (stopRequested_)
            return StopReason::Stopped;
        if (max_events != 0 && executedEvents_ >= max_events)
            return StopReason::EventLimit;
        if (control_ != nullptr &&
            executedEvents_ % kControlPollEvents == 0) {
            pollControl();
        }
        const SimTime next = queue_.nextTime();
        if (next == kSimTimeMax)
            return StopReason::Drained;
        if (next > until) {
            // A segment boundary must not move the clock: a restored
            // run replays by event count, which leaves the clock at
            // the last fired event.  Only the final (non-segment)
            // run clamps to the horizon.
            if (clamp_clock)
                now_ = until;
            return StopReason::TimeLimit;
        }
        if (auditing && next < now_) {
            throw EngineInvariantError(
                "clock would run backwards: next event at " +
                formatSimTime(next) + ", now " +
                formatSimTime(now_));
        }
        EventQueue::FiredEvent event =
            chooser_ == nullptr ? queue_.pop() : popChosen();
        now_ = event.when();
        if (logger_.enabled(LogLevel::Trace))
            logger_.log(LogLevel::Trace, now_, "engine",
                        std::string("fire ") + event.label());
        digestEvent(static_cast<std::uint64_t>(event.when()),
                    event.sequence());
        event.invoke();
        ++executedEvents_;
    }
}

}  // namespace uqsim
