#ifndef UQSIM_CORE_ENGINE_LOGGER_H_
#define UQSIM_CORE_ENGINE_LOGGER_H_

/**
 * @file
 * Lightweight component-tagged trace logging.
 *
 * Logging is off by default (simulations are hot loops); tests and
 * debugging sessions enable it per component or globally.
 */

#include <functional>
#include <iosfwd>
#include <string>

#include "uqsim/core/engine/sim_time.h"

namespace uqsim {

/** Log severity levels. */
enum class LogLevel {
    Off = 0,
    Error,
    Warn,
    Info,
    Trace,
};

const char* logLevelName(LogLevel level);

/** Per-simulator logger. */
class Logger {
  public:
    Logger();

    /** Sets the global threshold; messages above it are dropped. */
    void setLevel(LogLevel level) { level_ = level; }
    LogLevel level() const { return level_; }

    /** Redirects output (default: std::clog). */
    void setSink(std::ostream* sink) { sink_ = sink; }

    /** Installs a callback receiving every formatted line (tests). */
    void setHook(std::function<void(const std::string&)> hook)
    {
        hook_ = std::move(hook);
    }

    bool enabled(LogLevel level) const
    {
        return level <= level_ && level_ != LogLevel::Off;
    }

    /** Emits one line: "[time] LEVEL component: message". */
    void log(LogLevel level, SimTime now, const std::string& component,
             const std::string& message);

  private:
    LogLevel level_ = LogLevel::Off;
    std::ostream* sink_;
    std::function<void(const std::string&)> hook_;
};

}  // namespace uqsim

#endif  // UQSIM_CORE_ENGINE_LOGGER_H_
