#ifndef UQSIM_CORE_ENGINE_SIM_TIME_H_
#define UQSIM_CORE_ENGINE_SIM_TIME_H_

/**
 * @file
 * Simulation time representation.
 *
 * Simulation time is a signed 64-bit count of nanoseconds.  Integer
 * time makes event ordering exact and runs bit-deterministic; at
 * nanosecond resolution the clock can represent ~292 years, far more
 * than any µqSim experiment needs.
 */

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

namespace uqsim {

/** Simulation time in nanoseconds. */
using SimTime = std::int64_t;

/** Time constants (ticks per unit). */
inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1000;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;

/** Largest representable time; used as "never". */
inline constexpr SimTime kSimTimeMax =
    std::numeric_limits<std::int64_t>::max();

/** Converts seconds (double) to SimTime, rounding to nearest tick. */
constexpr SimTime
secondsToSimTime(double seconds)
{
    return static_cast<SimTime>(seconds * static_cast<double>(kSecond) +
                                (seconds >= 0 ? 0.5 : -0.5));
}

/** Converts SimTime ticks to seconds. */
constexpr double
simTimeToSeconds(SimTime time)
{
    return static_cast<double>(time) / static_cast<double>(kSecond);
}

/** Converts SimTime ticks to milliseconds. */
constexpr double
simTimeToMillis(SimTime time)
{
    return static_cast<double>(time) /
           static_cast<double>(kMillisecond);
}

/** Converts SimTime ticks to microseconds. */
constexpr double
simTimeToMicros(SimTime time)
{
    return static_cast<double>(time) /
           static_cast<double>(kMicrosecond);
}

/** Renders a time with an adaptive unit, e.g. "12.5us" / "3.2ms". */
std::string formatSimTime(SimTime time);

}  // namespace uqsim

#endif  // UQSIM_CORE_ENGINE_SIM_TIME_H_
