#ifndef UQSIM_CORE_ENGINE_EVENT_H_
#define UQSIM_CORE_ENGINE_EVENT_H_

/**
 * @file
 * Simulation events.
 *
 * An event represents the arrival or completion of a job in a
 * microservice, or a cluster administration operation such as a DVFS
 * change (paper §III-A).  Events carry a firing time and a sequence
 * number assigned by the queue: two events with equal times fire in
 * scheduling order, which makes simulations deterministic.
 *
 * Events live in slab-allocated pool slots owned by the EventQueue;
 * an EventHandle names a slot by (index, generation).  The
 * generation stamp is bumped every time a slot is released, so a
 * handle held past its event's execution simply stops matching —
 * a stale cancel() is a no-op, with no shared_ptr/weak_ptr control
 * blocks on the hot path.
 */

#include <cstdint>

#include "uqsim/core/engine/inline_function.h"
#include "uqsim/core/engine/sim_time.h"

namespace uqsim {

class EventQueue;

/**
 * The event payload: a move-only closure.  112 inline bytes covers
 * every capture set the simulator schedules (network hops carrying a
 * completion callback are the largest); bigger callables degrade to
 * one heap allocation.
 */
using EventAction = InlineFunction<void(), 112>;

/**
 * Handle to a scheduled event, used for cancellation.  Holding a
 * handle does not keep the event alive past execution; a handle must
 * not outlive the queue it came from.
 */
class EventHandle {
  public:
    EventHandle() = default;
    EventHandle(EventQueue* queue, std::uint32_t slot,
                std::uint32_t generation)
        : queue_(queue), slot_(slot), generation_(generation)
    {
    }

    /** Cancels the event if it has not fired yet; returns success.
     *  Defined in event_queue.h. */
    bool cancel();

    /** True when the event is still pending (not fired, not freed).
     *  Defined in event_queue.h. */
    bool pending() const;

  private:
    EventQueue* queue_ = nullptr;
    std::uint32_t slot_ = 0;
    std::uint32_t generation_ = 0;
};

}  // namespace uqsim

#endif  // UQSIM_CORE_ENGINE_EVENT_H_
