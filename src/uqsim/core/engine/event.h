#ifndef UQSIM_CORE_ENGINE_EVENT_H_
#define UQSIM_CORE_ENGINE_EVENT_H_

/**
 * @file
 * Simulation events.
 *
 * An event represents the arrival or completion of a job in a
 * microservice, or a cluster administration operation such as a DVFS
 * change (paper §III-A).  Events carry a firing time and a sequence
 * number assigned by the queue: two events with equal times fire in
 * scheduling order, which makes simulations deterministic.
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "uqsim/core/engine/sim_time.h"

namespace uqsim {

/** Base class for all schedulable events. */
class Event {
  public:
    virtual ~Event() = default;

    /** Invoked by the simulator when the event fires. */
    virtual void execute() = 0;

    /** Debug label; shown by the trace logger. */
    virtual std::string label() const { return "event"; }

    /** The time this event is scheduled to fire. */
    SimTime when() const { return when_; }

    /** Queue insertion order; breaks ties between equal times. */
    std::uint64_t sequence() const { return sequence_; }

    /** True once cancel() was called; cancelled events do not fire. */
    bool cancelled() const { return cancelled_; }

    /**
     * Marks the event as cancelled.  The queue drops it lazily when
     * it reaches the front, so cancellation is O(1).
     */
    void cancel() { cancelled_ = true; }

  private:
    friend class EventQueue;

    SimTime when_ = 0;
    std::uint64_t sequence_ = 0;
    bool cancelled_ = false;
};

/** Event wrapping a callable; the common case. */
class CallbackEvent : public Event {
  public:
    explicit CallbackEvent(std::function<void()> callback,
                           std::string label = "callback")
        : callback_(std::move(callback)), label_(std::move(label))
    {
    }

    void execute() override { callback_(); }
    std::string label() const override { return label_; }

  private:
    std::function<void()> callback_;
    std::string label_;
};

/**
 * Handle to a scheduled event, used for cancellation.  Holding a
 * handle does not keep the event alive past execution.
 */
class EventHandle {
  public:
    EventHandle() = default;
    explicit EventHandle(std::weak_ptr<Event> event)
        : event_(std::move(event))
    {
    }

    /** Cancels the event if it has not fired yet; returns success. */
    bool
    cancel()
    {
        if (std::shared_ptr<Event> event = event_.lock()) {
            event->cancel();
            return true;
        }
        return false;
    }

    /** True when the event is still pending (not fired, not freed). */
    bool pending() const
    {
        std::shared_ptr<Event> event = event_.lock();
        return event != nullptr && !event->cancelled();
    }

  private:
    std::weak_ptr<Event> event_;
};

}  // namespace uqsim

#endif  // UQSIM_CORE_ENGINE_EVENT_H_
