#ifndef UQSIM_CORE_ENGINE_EVENT_QUEUE_H_
#define UQSIM_CORE_ENGINE_EVENT_QUEUE_H_

/**
 * @file
 * Priority queue of events ordered by (time, sequence).
 *
 * All events are stored in increasing time order; every simulation
 * cycle the queue manager pops the earliest event (paper §III-A).
 * Cancellation is lazy: cancelled events are dropped when they reach
 * the front of the heap.  To keep cancellation-heavy workloads
 * (e.g. client timeouts that almost always get cancelled) from
 * growing the heap unboundedly, schedule() periodically scans the
 * heap and eagerly purges all cancelled entries when they exceed
 * half of it; the scan interval doubles with the heap size, so the
 * purge costs amortized O(1) per scheduled event.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "uqsim/core/engine/event.h"
#include "uqsim/core/engine/sim_time.h"

namespace uqsim {

/** Stable min-heap of events. */
class EventQueue {
  public:
    EventQueue() = default;

    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /**
     * Schedules @p event to fire at absolute time @p when.
     * Returns a handle usable for cancellation.
     */
    EventHandle schedule(std::shared_ptr<Event> event, SimTime when);

    /**
     * True when no live events remain.  Cancelled events at the
     * front are dropped first; a cancelled event that is not at the
     * front is always preceded by a live one, so the answer is
     * exact.
     */
    bool empty();

    /**
     * Number of pending heap entries.  May overcount by events that
     * were cancelled but not yet dropped, but the eager purge bounds
     * the overcount: at most half the heap plus the entries
     * cancelled since the last purge check.
     */
    std::size_t size() const { return heap_.size(); }

    /**
     * Exact number of live (non-cancelled) pending events.  O(n);
     * intended for diagnostics and tests.
     */
    std::size_t liveSize() const;

    /** Eager purges performed so far (diagnostics). */
    std::uint64_t purgeCount() const { return purgeCount_; }

    /** Firing time of the earliest live event; kSimTimeMax if none. */
    SimTime nextTime();

    /**
     * Removes and returns the earliest live event, or nullptr when
     * the queue is empty.
     */
    std::shared_ptr<Event> pop();

    /** Total number of events ever scheduled (diagnostics). */
    std::uint64_t scheduledCount() const { return nextSequence_; }

  private:
    struct Entry {
        std::shared_ptr<Event> event;

        bool
        operator>(const Entry& other) const
        {
            const SimTime a = event->when();
            const SimTime b = other.event->when();
            if (a != b)
                return a > b;
            return event->sequence() > other.event->sequence();
        }
    };

    void dropCancelled();
    void maybePurge();

    std::vector<Entry> heap_;
    std::uint64_t nextSequence_ = 0;
    /** Heap size that triggers the next cancelled-entry scan. */
    std::size_t purgeCheckSize_ = 64;
    std::uint64_t purgeCount_ = 0;
};

}  // namespace uqsim

#endif  // UQSIM_CORE_ENGINE_EVENT_QUEUE_H_
