#ifndef UQSIM_CORE_ENGINE_EVENT_QUEUE_H_
#define UQSIM_CORE_ENGINE_EVENT_QUEUE_H_

/**
 * @file
 * Priority queue of events ordered by (time, sequence).
 *
 * All events are stored in increasing time order; every simulation
 * cycle the queue manager pops the earliest event (paper §III-A).
 * Cancellation is lazy: cancelled events are dropped when they reach
 * the front of the heap.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "uqsim/core/engine/event.h"
#include "uqsim/core/engine/sim_time.h"

namespace uqsim {

/** Stable min-heap of events. */
class EventQueue {
  public:
    EventQueue() = default;

    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /**
     * Schedules @p event to fire at absolute time @p when.
     * Returns a handle usable for cancellation.
     */
    EventHandle schedule(std::shared_ptr<Event> event, SimTime when);

    /**
     * True when no live events remain.  Cancelled events at the
     * front are dropped first; a cancelled event that is not at the
     * front is always preceded by a live one, so the answer is
     * exact.
     */
    bool empty();

    /**
     * Number of pending heap entries.  May overcount by events that
     * were cancelled but not yet dropped.
     */
    std::size_t size() const { return heap_.size(); }

    /** Firing time of the earliest live event; kSimTimeMax if none. */
    SimTime nextTime();

    /**
     * Removes and returns the earliest live event, or nullptr when
     * the queue is empty.
     */
    std::shared_ptr<Event> pop();

    /** Total number of events ever scheduled (diagnostics). */
    std::uint64_t scheduledCount() const { return nextSequence_; }

  private:
    struct Entry {
        std::shared_ptr<Event> event;

        bool
        operator>(const Entry& other) const
        {
            const SimTime a = event->when();
            const SimTime b = other.event->when();
            if (a != b)
                return a > b;
            return event->sequence() > other.event->sequence();
        }
    };

    void dropCancelled();

    std::vector<Entry> heap_;
    std::uint64_t nextSequence_ = 0;
};

}  // namespace uqsim

#endif  // UQSIM_CORE_ENGINE_EVENT_QUEUE_H_
