#ifndef UQSIM_CORE_ENGINE_EVENT_QUEUE_H_
#define UQSIM_CORE_ENGINE_EVENT_QUEUE_H_

/**
 * @file
 * Priority queue of events ordered by (time, sequence).
 *
 * All events are stored in increasing time order; every simulation
 * cycle the queue manager pops the earliest event (paper §III-A).
 *
 * Structure: event payloads live in fixed-size slots carved from
 * slab allocations (addresses stable for the queue's lifetime) and
 * recycled through a free list, so steady-state scheduling touches
 * no allocator.  The ready order is a 4-ary min-heap of (when,
 * sequence, slot) entries — comparisons stay within the contiguous
 * heap array, and the shallower tree beats a binary heap on the
 * sift-down-heavy pop/cancel mix.  Every slot stores its heap
 * position, so cancellation removes the entry in O(log n) instead
 * of the old lazy cancelled-flag purge; a cancelled slot is
 * recycled immediately.
 */

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "uqsim/core/engine/event.h"
#include "uqsim/core/engine/sim_time.h"

namespace uqsim {

namespace snapshot {
class SnapshotWriter;
class SnapshotReader;
}  // namespace snapshot

/** Pooled min-heap of events with O(log n) cancellation. */
class EventQueue {
  public:
    EventQueue() = default;

    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /**
     * Schedules @p action to fire at absolute time @p when.  The
     * sequence number is assigned in call order; @p label must
     * outlive the event (string literal or stable member).
     * Returns a handle usable for cancellation.
     */
    template <typename F>
    EventHandle
    schedule(SimTime when, F&& action, const char* label = "callback")
    {
        const std::uint32_t index = acquireSlot();
        Slot& s = *slotPtr(index);
        s.action = EventAction(std::forward<F>(action));
        s.when = when;
        s.sequence = nextSequence_++;
        s.label = label;
        heapPush(index, when, s.sequence);
        return EventHandle(this, index, s.generation);
    }

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events (cancelled entries are removed
     *  eagerly, so this is exact). */
    std::size_t size() const { return heap_.size(); }

    /** Exact number of live pending events.  Alias of size(); kept
     *  for diagnostics parity with the lazy-purge queue. */
    std::size_t liveSize() const { return heap_.size(); }

    /** Firing time of the earliest event; kSimTimeMax if none. */
    SimTime
    nextTime() const
    {
        return heap_.empty() ? kSimTimeMax : heap_.front().when;
    }

    /**
     * The earliest event, removed from the heap and ready to fire.
     * Move-only RAII: the slot is recycled when the FiredEvent is
     * destroyed, after invoke().  Converts to false when the queue
     * was empty.
     */
    class FiredEvent {
      public:
        FiredEvent() = default;
        FiredEvent(EventQueue* queue, std::uint32_t slot)
            : queue_(queue), slot_(slot)
        {
        }

        FiredEvent(FiredEvent&& other) noexcept
            : queue_(other.queue_), slot_(other.slot_)
        {
            other.queue_ = nullptr;
        }

        FiredEvent(const FiredEvent&) = delete;
        FiredEvent& operator=(const FiredEvent&) = delete;
        FiredEvent& operator=(FiredEvent&&) = delete;

        ~FiredEvent()
        {
            if (queue_ != nullptr)
                queue_->releaseSlot(slot_);
        }

        explicit operator bool() const { return queue_ != nullptr; }

        SimTime when() const { return queue_->slotPtr(slot_)->when; }
        std::uint64_t
        sequence() const
        {
            return queue_->slotPtr(slot_)->sequence;
        }
        const char*
        label() const
        {
            return queue_->slotPtr(slot_)->label;
        }

        /** Runs the event's action. */
        void invoke() { queue_->slotPtr(slot_)->action(); }

      private:
        EventQueue* queue_ = nullptr;
        std::uint32_t slot_ = 0;
    };

    /** Removes and returns the earliest event; false-y when empty. */
    FiredEvent
    pop()
    {
        if (heap_.empty())
            return FiredEvent();
        const std::uint32_t top = heap_.front().slot;
        heapRemoveTop();
        slotPtr(top)->heapIndex = kExecutingIndex;
        return FiredEvent(this, top);
    }

    // Exploration support (not on the default hot path) --------------

    /**
     * Number of events tied at the earliest timestamp, capped at
     * @p cap.  O(pending) scan; only the schedule explorer calls it.
     */
    std::size_t tieGroupSize(std::size_t cap) const;

    /**
     * Removes and returns the event with the (k+1)-th smallest
     * sequence number among those tied at the earliest timestamp.
     * popTie(0) is exactly pop(); @p k must be < tieGroupSize.
     */
    FiredEvent popTie(std::size_t k);

    /**
     * Order-insensitive fingerprint of the pending-event multiset:
     * a commutative fold over (when, label) of every pending event,
     * deliberately excluding sequence numbers and slot indices so
     * that equivalent states reached through different histories
     * hash equally.  Used by the explorer's revisit pruning; O(n).
     */
    std::uint64_t pendingStateHash() const;

    /** Total number of events ever scheduled (diagnostics). */
    std::uint64_t scheduledCount() const { return nextSequence_; }

    /** Pool capacity in slots (diagnostics; high-water mark). */
    std::size_t
    poolCapacity() const
    {
        return slabs_.size() * kSlabSize;
    }

    /** Recycled slots currently on the free list (diagnostics). */
    std::size_t freeSlots() const { return freeList_.size(); }

    /**
     * Re-derives the queue's bookkeeping and cross-checks it
     * (engine invariant auditor):
     *   - 4-ary heap ordering on (when, sequence),
     *   - slot back-pointer consistency (heap entry <-> slot),
     *   - pool accounting: pending + free == capacity, with no slot
     *     stuck in the "executing" state (a leaked FiredEvent).
     * Returns one message per violation; empty when consistent.
     * O(capacity); intended for audit mode and tests, not the hot
     * path.  Must be called between events (no FiredEvent alive).
     */
    std::vector<std::string> auditCheck() const;

    // Snapshot support (snapshot.h) ---------------------------------

    /**
     * Serializes the queue's bookkeeping into the open snapshot
     * section: sequence counter, heap/pool/free-list sizes, and two
     * deterministic digests — the pending multiset in sorted (when,
     * sequence, label) order and the per-slot generation counters in
     * slot order.  Events themselves are closures and are *not*
     * written; restore replays them (see snapshot.h).  Must be
     * called between events.
     */
    void saveState(snapshot::SnapshotWriter& writer) const;

    /** Validates the live (replayed) queue against saveState()'s
     *  fields; throws SnapshotStateError on divergence. */
    void loadState(snapshot::SnapshotReader& reader) const;

    // Used by EventHandle -------------------------------------------

    /**
     * Cancels slot @p index if @p generation still matches.  An
     * event that already fired (generation bumped) is a no-op
     * returning false; the currently-executing event reports true
     * without effect, mirroring the old cancelled-flag semantics.
     */
    bool
    cancelSlot(std::uint32_t index, std::uint32_t generation)
    {
        Slot& s = *slotPtr(index);
        if (s.generation != generation)
            return false;
        if (s.heapIndex == kExecutingIndex)
            return true;
        if (s.heapIndex < 0)
            return false;
        heapRemoveAt(static_cast<std::size_t>(s.heapIndex));
        releaseSlot(index);
        return true;
    }

    /** True when the slot still names a pending (or currently
     *  firing) event. */
    bool
    slotPending(std::uint32_t index, std::uint32_t generation) const
    {
        const Slot& s = *slotPtr(index);
        return s.generation == generation &&
               s.heapIndex != kFreeIndex;
    }

  private:
    friend class FiredEvent;

    static constexpr std::size_t kSlabBits = 8;
    static constexpr std::size_t kSlabSize = std::size_t{1}
                                             << kSlabBits;
    static constexpr std::size_t kSlabMask = kSlabSize - 1;
    static constexpr std::int32_t kFreeIndex = -1;
    static constexpr std::int32_t kExecutingIndex = -2;

    struct Slot {
        EventAction action;
        SimTime when = 0;
        std::uint64_t sequence = 0;
        const char* label = "";
        std::uint32_t generation = 0;
        std::int32_t heapIndex = kFreeIndex;
    };

    struct HeapEntry {
        SimTime when;
        std::uint64_t sequence;
        std::uint32_t slot;

        bool
        before(const HeapEntry& other) const
        {
            if (when != other.when)
                return when < other.when;
            return sequence < other.sequence;
        }
    };

    Slot*
    slotPtr(std::uint32_t index)
    {
        return &slabs_[index >> kSlabBits][index & kSlabMask];
    }
    const Slot*
    slotPtr(std::uint32_t index) const
    {
        return &slabs_[index >> kSlabBits][index & kSlabMask];
    }

    std::uint32_t acquireSlot();
    void releaseSlot(std::uint32_t index);

    /** Ordered fold over the pending multiset (snapshot digest). */
    std::uint64_t pendingDigest() const;
    /** Fold over per-slot generations in slot order (snapshot
     *  digest; pins handle-generation state). */
    std::uint64_t generationDigest() const;

    void heapPush(std::uint32_t slot, SimTime when,
                  std::uint64_t sequence);
    void heapRemoveTop();
    void heapRemoveAt(std::size_t pos);
    void siftUp(std::size_t pos, HeapEntry moving);
    void siftDown(std::size_t pos, HeapEntry moving);

    std::vector<std::unique_ptr<Slot[]>> slabs_;
    std::vector<std::uint32_t> freeList_;
    std::vector<HeapEntry> heap_;
    std::uint64_t nextSequence_ = 0;
};

inline bool
EventHandle::cancel()
{
    return queue_ != nullptr && queue_->cancelSlot(slot_, generation_);
}

inline bool
EventHandle::pending() const
{
    return queue_ != nullptr && queue_->slotPending(slot_, generation_);
}

}  // namespace uqsim

#endif  // UQSIM_CORE_ENGINE_EVENT_QUEUE_H_
