#include "uqsim/core/engine/choice.h"

#include <stdexcept>

namespace uqsim {

const char*
choiceKindName(ChoiceKind kind)
{
    switch (kind) {
      case ChoiceKind::EventTie: return "event_tie";
      case ChoiceKind::FaultJitter: return "fault_jitter";
      case ChoiceKind::TimerNudge: return "timer_nudge";
      case ChoiceKind::RouteFailover: return "route_failover";
    }
    return "?";
}

ChoiceKind
choiceKindFromName(const std::string& name)
{
    if (name == "event_tie")
        return ChoiceKind::EventTie;
    if (name == "fault_jitter")
        return ChoiceKind::FaultJitter;
    if (name == "timer_nudge")
        return ChoiceKind::TimerNudge;
    if (name == "route_failover")
        return ChoiceKind::RouteFailover;
    throw std::invalid_argument("unknown choice kind: " + name);
}

}  // namespace uqsim
