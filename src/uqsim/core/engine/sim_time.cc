#include "uqsim/core/engine/sim_time.h"

#include <cstdio>

namespace uqsim {

std::string
formatSimTime(SimTime time)
{
    char buffer[48];
    const double abs_time = std::abs(static_cast<double>(time));
    if (abs_time < static_cast<double>(kMicrosecond)) {
        std::snprintf(buffer, sizeof(buffer), "%lldns",
                      static_cast<long long>(time));
    } else if (abs_time < static_cast<double>(kMillisecond)) {
        std::snprintf(buffer, sizeof(buffer), "%.3fus",
                      simTimeToMicros(time));
    } else if (abs_time < static_cast<double>(kSecond)) {
        std::snprintf(buffer, sizeof(buffer), "%.3fms",
                      simTimeToMillis(time));
    } else {
        std::snprintf(buffer, sizeof(buffer), "%.6fs",
                      simTimeToSeconds(time));
    }
    return buffer;
}

}  // namespace uqsim
