#ifndef UQSIM_CORE_ENGINE_AUDIT_H_
#define UQSIM_CORE_ENGINE_AUDIT_H_

/**
 * @file
 * Engine invariant auditing.
 *
 * The auditor is a debug-mode safety net for the pooled hot path:
 * slab-allocated events, free-listed jobs, recycled dispatcher
 * state.  Pooling bugs (a slot released twice, a handle surviving
 * its generation, a job pinned by a forgotten closure) corrupt
 * results silently instead of crashing, so the auditor re-derives
 * the bookkeeping from first principles and cross-checks:
 *
 *   - event-heap ordering and back-pointer consistency,
 *   - event-pool accounting (pending + free == capacity),
 *   - non-decreasing simulation clock,
 *   - Job / ConnectionPool leak accounting at drain,
 *   - job conservation across dispatcher hops
 *     (started == completed + failed + shed + active).
 *
 * Enablement: set the UQSIM_AUDIT environment variable (any
 * non-empty value except "0") or call setAuditMode(true).  When
 * enabled, Simulation::run() audits after the run and the
 * SweepRunner audits the engine of every replication that throws
 * mid-run before salvaging its siblings.  Violations raise
 * EngineInvariantError, which the harness taxonomy classifies as
 * `invariant` — distinct from config errors and timeouts.
 */

#include <stdexcept>
#include <string>
#include <vector>

namespace uqsim {

/** An engine bookkeeping invariant does not hold. */
class EngineInvariantError : public std::logic_error {
  public:
    explicit EngineInvariantError(const std::string& what)
        : std::logic_error(what)
    {
    }
};

namespace audit {

/**
 * True when auditing is on: UQSIM_AUDIT is set in the environment
 * (to anything but "" or "0"), or setAuditMode(true) was called.
 * The environment is read once and cached.
 */
bool auditModeEnabled();

/** Overrides the environment (tests); pass-through thereafter. */
void setAuditMode(bool enabled);

/** Findings of one audit pass; empty means every invariant held. */
struct AuditReport {
    std::vector<std::string> violations;

    bool clean() const { return violations.empty(); }

    /** One violation per line, for error messages. */
    std::string describe() const;

    /** Throws EngineInvariantError when not clean. */
    void raise(const std::string& context) const;
};

}  // namespace audit
}  // namespace uqsim

#endif  // UQSIM_CORE_ENGINE_AUDIT_H_
