#include "uqsim/core/engine/run_control.h"

namespace uqsim {

const char*
abortReasonName(AbortReason reason)
{
    switch (reason) {
      case AbortReason::None: return "none";
      case AbortReason::Stall: return "stall";
      case AbortReason::WallTimeout: return "wall-timeout";
      case AbortReason::EventBudget: return "event-budget";
      case AbortReason::External: return "external";
    }
    return "?";
}

}  // namespace uqsim
