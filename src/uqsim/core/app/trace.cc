#include "uqsim/core/app/trace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace uqsim {

TraceRecorder::TraceRecorder(double sampling_rate, std::size_t capacity)
    : samplingRate_(sampling_rate), capacity_(capacity)
{
    if (sampling_rate < 0.0 || sampling_rate > 1.0)
        throw std::invalid_argument("sampling rate must be in [0, 1]");
    if (capacity == 0)
        throw std::invalid_argument("trace capacity must be > 0");
}

bool
TraceRecorder::sampled(JobId root) const
{
    if (samplingRate_ >= 1.0)
        return true;
    if (samplingRate_ <= 0.0)
        return false;
    // Deterministic hash-based sampling: stable across reruns.
    std::uint64_t x = root;
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDULL;
    x ^= x >> 33;
    const double u =
        static_cast<double>(x >> 11) * 0x1.0p-53;
    return u < samplingRate_;
}

std::string
TraceRecorder::serviceName(std::uint32_t service_id) const
{
    if (names_ != nullptr && service_id < names_->size())
        return names_->name(service_id);
    return "svc#" + std::to_string(service_id);
}

void
TraceRecorder::recordStart(const Job& job, SimTime now)
{
    if (!sampled(job.rootId))
        return;
    // Retries or hedges can re-enter the root request; keep the
    // original trace instead of clobbering its collected spans.
    const auto it = active_.find(job.rootId);
    if (it != active_.end())
        return;
    RequestTrace& trace = active_[job.rootId];
    trace.root = job.rootId;
    trace.started = now;
}

void
TraceRecorder::recordEnter(const Job& job, std::uint32_t service_id,
                           SimTime now)
{
    const auto it = active_.find(job.rootId);
    if (it == active_.end())
        return;
    TraceSpan span;
    span.job = job.id;
    span.serviceId = service_id;
    span.pathNode = job.pathNodeId;
    span.enter = now;
    it->second.spans.push_back(span);
}

void
TraceRecorder::recordLeave(const Job& job, SimTime now)
{
    const auto it = active_.find(job.rootId);
    if (it == active_.end())
        return;
    // Close the most recent open span of this job copy.
    auto& spans = it->second.spans;
    for (auto span = spans.rbegin(); span != spans.rend(); ++span) {
        if (span->job == job.id && span->leave == kTraceOpen) {
            span->leave = now;
            return;
        }
    }
}

void
TraceRecorder::recordComplete(const Job& job, SimTime now)
{
    const auto it = active_.find(job.rootId);
    if (it == active_.end())
        return;
    it->second.completed = now;
    done_.push_back(std::move(it->second));
    active_.erase(it);
    while (done_.size() > capacity_)
        done_.pop_front();
}

std::string
TraceRecorder::waterfall(const RequestTrace& trace, int width) const
{
    std::ostringstream out;
    const SimTime end =
        trace.completed != kTraceOpen ? trace.completed : trace.started;
    SimTime horizon = end;
    for (const TraceSpan& span : trace.spans) {
        horizon = std::max(
            horizon, span.leave != kTraceOpen ? span.leave : span.enter);
    }
    const double total =
        std::max<double>(1.0,
                         static_cast<double>(horizon - trace.started));
    char line[256];
    std::snprintf(line, sizeof(line),
                  "request %llu: %zu spans, %.1f us end-to-end\n",
                  static_cast<unsigned long long>(trace.root),
                  trace.spans.size(),
                  simTimeToMicros(horizon - trace.started));
    out << line;
    for (const TraceSpan& span : trace.spans) {
        const SimTime leave =
            span.leave != kTraceOpen ? span.leave : horizon;
        const double begin_frac =
            static_cast<double>(span.enter - trace.started) / total;
        const double end_frac =
            static_cast<double>(leave - trace.started) / total;
        const int begin_col = static_cast<int>(begin_frac * width);
        const int end_col = std::max(
            begin_col + 1, static_cast<int>(end_frac * width));
        std::string bar(static_cast<std::size_t>(width + 1), ' ');
        for (int col = begin_col; col <= std::min(end_col, width);
             ++col) {
            bar[static_cast<std::size_t>(col)] = '-';
        }
        bar[static_cast<std::size_t>(begin_col)] = '+';
        bar[static_cast<std::size_t>(std::min(end_col, width))] = '|';
        std::snprintf(line, sizeof(line),
                      "  %-14s [%2d] %9.1fus %s %9.1fus\n",
                      serviceName(span.serviceId).c_str(), span.pathNode,
                      simTimeToMicros(span.enter - trace.started),
                      bar.c_str(),
                      simTimeToMicros(leave - span.enter));
        out << line;
    }
    return out.str();
}

}  // namespace uqsim
