#include "uqsim/core/app/deployment.h"

#include <algorithm>
#include <stdexcept>

#include "uqsim/json/validation.h"
#include "uqsim/snapshot/snapshot.h"

namespace uqsim {

LbPolicy
lbPolicyFromString(const std::string& name)
{
    if (name == "round_robin")
        return LbPolicy::RoundRobin;
    if (name == "random")
        return LbPolicy::Random;
    throw std::invalid_argument("unknown lb_policy: \"" + name + "\"");
}

InstanceConfig
instanceConfigFromJson(const json::JsonValue& doc)
{
    json::requireKnownKeys(doc,
                           {"machine", "threads", "cores",
                            "disk_channels", "disk", "own_dvfs",
                            "scheduling", "queue_capacity"},
                           "graph.json instance");
    InstanceConfig config;
    config.threads = doc.getOr("threads", 0);
    config.cores = doc.getOr("cores", 0);
    // -1 = inherit the model default; an explicit 0 disables the
    // legacy channel model (see InstanceConfig::diskChannels).
    config.diskChannels = doc.getOr("disk_channels", -1);
    config.disk = doc.getOr("disk", "");
    config.ownDvfsDomain = doc.getOr("own_dvfs", false);
    config.queueCapacity = doc.getOr("queue_capacity", 0);
    const std::string policy = doc.getOr("scheduling", "drain");
    if (policy == "drain") {
        config.policy = SchedulingPolicy::Drain;
    } else if (policy == "stage_order") {
        config.policy = SchedulingPolicy::StageOrder;
    } else {
        throw json::JsonError("unknown scheduling policy: \"" + policy +
                              "\"");
    }
    return config;
}

Deployment::Deployment(Simulator& sim, hw::Cluster& cluster)
    : sim_(sim), cluster_(cluster)
{
}

void
Deployment::registerModel(ServiceModelPtr model)
{
    if (!model)
        throw std::invalid_argument("cannot register a null model");
    ServiceEntry& service = services_[model->name()];
    if (service.model && !service.instances.empty()) {
        throw std::logic_error("model for \"" + model->name() +
                               "\" re-registered after deployment");
    }
    const std::uint32_t id = names_.intern(model->name());
    model->setNameId(id);
    if (entriesById_.size() <= id)
        entriesById_.resize(id + 1, nullptr);
    entriesById_[id] = &service;
    service.model = std::move(model);
}

const ServiceModelPtr&
Deployment::model(const std::string& service) const
{
    return entry(service).model;
}

Deployment::ServiceEntry&
Deployment::entry(const std::string& service)
{
    auto it = services_.find(service);
    if (it == services_.end() || !it->second.model)
        throw std::out_of_range("unknown service: \"" + service + "\"");
    return it->second;
}

const Deployment::ServiceEntry&
Deployment::entry(const std::string& service) const
{
    auto it = services_.find(service);
    if (it == services_.end() || !it->second.model)
        throw std::out_of_range("unknown service: \"" + service + "\"");
    return it->second;
}

Deployment::ServiceEntry&
Deployment::entry(std::uint32_t service_id)
{
    if (service_id >= entriesById_.size() ||
        entriesById_[service_id] == nullptr) {
        throw std::out_of_range("unknown service id " +
                                std::to_string(service_id));
    }
    return *entriesById_[service_id];
}

const Deployment::ServiceEntry&
Deployment::entry(std::uint32_t service_id) const
{
    if (service_id >= entriesById_.size() ||
        entriesById_[service_id] == nullptr) {
        throw std::out_of_range("unknown service id " +
                                std::to_string(service_id));
    }
    return *entriesById_[service_id];
}

int
Deployment::deployInstance(const std::string& service,
                           const std::string& machine,
                           const InstanceConfig& config)
{
    ServiceEntry& svc = entry(service);
    const int index = static_cast<int>(svc.instances.size());
    const std::string name = service + "." + std::to_string(index);
    hw::Machine* host =
        machine.empty() ? nullptr : &cluster_.machine(machine);
    svc.instances.push_back(std::make_unique<MicroserviceInstance>(
        sim_, svc.model, name, host, config));
    svc.instances.back()->setUid(
        static_cast<int>(allInstances_.size()));
    svc.instancePtrs.push_back(svc.instances.back().get());
    allInstances_.push_back(svc.instances.back().get());
    return index;
}

void
Deployment::loadGraphJson(const json::JsonValue& doc)
{
    json::requireKnownKeys(doc, {"services"}, "graph.json");
    for (const json::JsonValue& svc : doc.at("services").asArray()) {
        json::requireKnownKeys(svc,
                               {"service", "lb_policy",
                                "connection_pools", "instances",
                                "policies", "admission"},
                               "graph.json service");
        const std::string service = svc.at("service").asString();
        if (svc.contains("lb_policy")) {
            setLbPolicy(service, lbPolicyFromString(
                                     svc.at("lb_policy").asString()));
        }
        if (const json::JsonValue* pools = svc.find("connection_pools")) {
            for (const auto& [downstream, size] : pools->asObject()) {
                setPoolSize(service, downstream,
                            static_cast<int>(size.asInt()));
            }
        }
        if (const json::JsonValue* policies = svc.find("policies")) {
            for (const auto& [downstream, policy] :
                 policies->asObject()) {
                setEdgePolicy(service, downstream,
                              fault::EdgePolicy::fromJson(policy));
            }
        }
        if (const json::JsonValue* admission = svc.find("admission")) {
            setAdmission(service,
                         fault::AdmissionConfig::fromJson(*admission));
        }
        for (const json::JsonValue& inst :
             svc.at("instances").asArray()) {
            deployInstance(service, inst.getOr("machine", ""),
                           instanceConfigFromJson(inst));
        }
    }
}

void
Deployment::setEdgePolicy(const std::string& from_service,
                          const std::string& to_service,
                          const fault::EdgePolicy& policy)
{
    edgePolicies_[edgeKey(names_.intern(from_service),
                          names_.intern(to_service))] = policy;
}

const fault::EdgePolicy*
Deployment::edgePolicy(const std::string& from_service,
                       const std::string& to_service) const
{
    const std::uint32_t from_id = names_.find(from_service);
    const std::uint32_t to_id = names_.find(to_service);
    if (from_id == NameInterner::kNone || to_id == NameInterner::kNone)
        return nullptr;
    return edgePolicy(from_id, to_id);
}

const fault::EdgePolicy*
Deployment::edgePolicy(std::uint32_t from_id, std::uint32_t to_id) const
{
    const auto it = edgePolicies_.find(edgeKey(from_id, to_id));
    return it == edgePolicies_.end() ? nullptr : &it->second;
}

void
Deployment::setAdmission(const std::string& service,
                         const fault::AdmissionConfig& config)
{
    const std::uint32_t id = names_.intern(service);
    if (admission_.size() <= id)
        admission_.resize(id + 1);
    admission_[id] = std::make_unique<fault::AdmissionConfig>(config);
}

const fault::AdmissionConfig*
Deployment::admission(const std::string& service) const
{
    const std::uint32_t id = names_.find(service);
    return id == NameInterner::kNone ? nullptr : admission(id);
}

const fault::AdmissionConfig*
Deployment::admission(std::uint32_t service_id) const
{
    return service_id < admission_.size() ? admission_[service_id].get()
                                          : nullptr;
}

void
Deployment::setPoolSize(const std::string& from_service,
                        const std::string& to_service, int size)
{
    if (size <= 0)
        throw std::invalid_argument("pool size must be > 0");
    poolSizes_[{from_service, to_service}] = size;
}

void
Deployment::setLbPolicy(const std::string& service, LbPolicy policy)
{
    entry(service).lbPolicy = policy;
}

int
Deployment::instanceCount(const std::string& service) const
{
    return static_cast<int>(entry(service).instances.size());
}

int
Deployment::instanceCount(std::uint32_t service_id) const
{
    return static_cast<int>(entry(service_id).instances.size());
}

MicroserviceInstance&
Deployment::instance(const std::string& service, int index)
{
    ServiceEntry& svc = entry(service);
    if (index < 0 || index >= static_cast<int>(svc.instances.size())) {
        throw std::out_of_range("service \"" + service +
                                "\" has no instance " +
                                std::to_string(index));
    }
    return *svc.instances[static_cast<std::size_t>(index)];
}

MicroserviceInstance&
Deployment::instance(std::uint32_t service_id, int index)
{
    ServiceEntry& svc = entry(service_id);
    if (index < 0 || index >= static_cast<int>(svc.instances.size())) {
        throw std::out_of_range("service id " +
                                std::to_string(service_id) +
                                " has no instance " +
                                std::to_string(index));
    }
    return *svc.instances[static_cast<std::size_t>(index)];
}

const std::vector<MicroserviceInstance*>&
Deployment::instances(const std::string& service) const
{
    return entry(service).instancePtrs;
}

namespace {

MicroserviceInstance&
pickFromInstances(
    std::vector<std::unique_ptr<MicroserviceInstance>>& instances,
    LbPolicy policy, std::size_t& rr_cursor, random::Rng& rng,
    const std::string& service)
{
    if (instances.empty())
        throw std::logic_error("service \"" + service +
                               "\" has no instances");
    std::size_t index = 0;
    switch (policy) {
      case LbPolicy::RoundRobin:
        index = rr_cursor++ % instances.size();
        break;
      case LbPolicy::Random:
        index = static_cast<std::size_t>(
            rng.nextBounded(instances.size()));
        break;
    }
    return *instances[index];
}

}  // namespace

MicroserviceInstance&
Deployment::pickInstance(const std::string& service, random::Rng& rng)
{
    ServiceEntry& svc = entry(service);
    return pickFromInstances(svc.instances, svc.lbPolicy, svc.rrCursor,
                             rng, service);
}

MicroserviceInstance&
Deployment::pickInstance(std::uint32_t service_id, random::Rng& rng)
{
    ServiceEntry& svc = entry(service_id);
    return pickFromInstances(svc.instances, svc.lbPolicy, svc.rrCursor,
                             rng, svc.model->name());
}

ConnectionPool&
Deployment::pool(const MicroserviceInstance& from,
                 const MicroserviceInstance& to)
{
    const std::uint64_t key =
        (static_cast<std::uint64_t>(
             static_cast<std::uint32_t>(from.uid()))
         << 32) |
        static_cast<std::uint32_t>(to.uid());
    auto it = pools_.find(key);
    if (it == pools_.end()) {
        int size = kDefaultPoolSize;
        const auto size_it = poolSizes_.find(
            {from.model().name(), to.model().name()});
        if (size_it != poolSizes_.end())
            size = size_it->second;
        it = pools_
                 .emplace(key, std::make_unique<ConnectionPool>(
                                   from.name() + "->" + to.name(), size,
                                   connectionIds_))
                 .first;
    }
    return *it->second;
}

namespace {

/** Deterministic fold of the deployment's mutable routing state. */
snapshot::Digest
deploymentDigest(
    const std::unordered_map<std::uint64_t,
                             std::unique_ptr<ConnectionPool>>& pools)
{
    std::vector<std::uint64_t> keys;
    keys.reserve(pools.size());
    for (const auto& [key, pool] : pools)
        keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    snapshot::Digest digest;
    for (const std::uint64_t key : keys) {
        const ConnectionPool& pool = *pools.at(key);
        digest.u64(key);
        digest.str(pool.name());
        digest.i64(pool.size());
        digest.i64(pool.available());
        for (const ConnectionId id : pool.freeIds())
            digest.i64(id);
        digest.u64(pool.waiters());
        digest.u64(pool.maxWaiters());
    }
    return digest;
}

}  // namespace

void
Deployment::saveState(snapshot::SnapshotWriter& writer) const
{
    writer.putI64(connectionIds_.peekNext());
    writer.putU64(services_.size());
    snapshot::Digest cursors;
    for (const auto& [name, svc] : services_) {
        cursors.str(name);
        cursors.u64(svc.rrCursor);
    }
    writer.putU64(cursors.value());
    writer.putU64(pools_.size());
    writer.putU64(deploymentDigest(pools_).value());
}

void
Deployment::loadState(snapshot::SnapshotReader& reader) const
{
    reader.requireI64("deployment.next_connection_id",
                      connectionIds_.peekNext());
    reader.requireU64("deployment.services", services_.size());
    snapshot::Digest cursors;
    for (const auto& [name, svc] : services_) {
        cursors.str(name);
        cursors.u64(svc.rrCursor);
    }
    reader.requireU64("deployment.rr_cursor_digest", cursors.value());
    reader.requireU64("deployment.pools", pools_.size());
    reader.requireU64("deployment.pool_digest",
                      deploymentDigest(pools_).value());
}

}  // namespace uqsim
