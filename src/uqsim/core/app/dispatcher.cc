#include "uqsim/core/app/dispatcher.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "uqsim/snapshot/state_io.h"

namespace uqsim {

namespace {

std::uint64_t
edgeKey(std::uint32_t from_id, std::uint32_t to_id)
{
    return (static_cast<std::uint64_t>(from_id) << 32) | to_id;
}

bool
anyFaults(const TierFaultStats& stats)
{
    return stats.errors != 0 || stats.timeouts != 0 ||
           stats.hopTimeouts != 0 || stats.retries != 0 ||
           stats.hedges != 0 || stats.shed != 0 || stats.rejected != 0 ||
           stats.crashKills != 0 || stats.unreachable != 0;
}

/** Job-level failure reason matching a wire-level drop verdict. */
fault::FailReason
dropFailReason(hw::DropReason reason)
{
    return reason == hw::DropReason::Unreachable
               ? fault::FailReason::Unreachable
               : fault::FailReason::NetworkLoss;
}

}  // namespace

Dispatcher::Dispatcher(Simulator& sim, hw::Network& network,
                       PathTree& tree, Deployment& deployment)
    : sim_(sim), network_(network), tree_(tree), deployment_(deployment),
      rng_(sim.masterSeed(), "dispatcher"),
      retryRng_(sim.masterSeed(), "dispatcher/retry")
{
    tree_.resolveExecPaths(
        [this](const std::string& service, const std::string& path) {
            return deployment_.model(service)->pathIdByName(path);
        });
    tree_.resolveServiceIds([this](const std::string& service) {
        return deployment_.names().intern(service);
    });
    for (MicroserviceInstance* instance : deployment_.allInstances()) {
        instance->setOnJobDone([this, instance](JobPtr job) {
            onNodeComplete(std::move(job), *instance);
        });
        instance->setOnJobFailed(
            [this, instance](JobPtr job, fault::FailReason reason) {
                onJobFailed(std::move(job), *instance, reason);
            });
    }
}

Dispatcher::RootState*
Dispatcher::findRoot(JobId root)
{
    const auto it = roots_.find(root);
    return it == roots_.end() ? nullptr : it->second.get();
}

std::unique_ptr<Dispatcher::RootState>
Dispatcher::acquireRoot(std::size_t node_count)
{
    std::unique_ptr<RootState> state;
    if (!rootPool_.empty()) {
        state = std::move(rootPool_.back());
        rootPool_.pop_back();
    } else {
        state = std::make_unique<RootState>();
    }
    state->variant = 0;
    state->affinity.assign(deployment_.names().size(), nullptr);
    state->syncArrived.clear();
    state->hops.clear();
    // hopStates only grows; entries beyond this variant's node count
    // are disengaged and harmless.
    if (state->hopStates.size() < node_count)
        state->hopStates.resize(node_count);
    state->terminalsDone = 0;
    state->clientTag = -1;
    state->created = 0;
    state->frontId = NameInterner::kNone;
    return state;
}

void
Dispatcher::recycleRoot(std::unique_ptr<RootState> state)
{
    // Drop job references (prototypes, attempt lists) now rather
    // than at reuse, matching the old destroy-on-completion timing.
    for (const int node_id : state->engagedHops)
        state->hopStates[static_cast<std::size_t>(node_id)].reset();
    state->engagedHops.clear();
    rootPool_.push_back(std::move(state));
}

std::uint64_t
Dispatcher::breakerTrips() const
{
    std::uint64_t trips = 0;
    for (const auto& [edge, runtime] : edges_) {
        if (runtime.breaker)
            trips += runtime.breaker->trips();
    }
    return trips;
}

std::size_t
Dispatcher::openBreakers() const
{
    std::size_t open = 0;
    for (const auto& [edge, runtime] : edges_) {
        if (runtime.breaker &&
            runtime.breaker->state() !=
                fault::CircuitBreaker::State::Closed) {
            ++open;
        }
    }
    return open;
}

SimTime
Dispatcher::timerNudge(const char* label)
{
    Chooser* chooser = sim_.chooser();
    if (chooser == nullptr)
        return 0;
    const int cap = chooser->maxChoices(ChoiceKind::TimerNudge);
    if (cap <= 1)
        return 0;
    const int pick =
        chooser->choose(ChoiceKind::TimerNudge, cap, label);
    return static_cast<SimTime>(pick) *
           chooser->jitterStep(ChoiceKind::TimerNudge);
}

TierFaultStats&
Dispatcher::tierFault(std::uint32_t tier_id)
{
    if (tierFaults_.size() <= tier_id)
        tierFaults_.resize(tier_id + 1);
    return tierFaults_[tier_id];
}

std::map<std::string, TierFaultStats>
Dispatcher::tierFaults() const
{
    std::map<std::string, TierFaultStats> rendered;
    for (std::size_t id = 0; id < tierFaults_.size(); ++id) {
        if (anyFaults(tierFaults_[id])) {
            rendered[deployment_.names().name(
                static_cast<std::uint32_t>(id))] = tierFaults_[id];
        }
    }
    return rendered;
}

void
Dispatcher::startRequest(JobPtr job, MicroserviceInstance& front,
                         ConnectionId client_conn)
{
    if (!job)
        throw std::invalid_argument("cannot start a null request");
    ++started_;
    const std::uint32_t front_id = front.model().nameId();
    const fault::AdmissionConfig* admission =
        deployment_.admission(front_id);
    if (inflightByFront_.size() <= front_id)
        inflightByFront_.resize(front_id + 1, 0);
    if (admission != nullptr && admission->maxInflight > 0 &&
        inflightByFront_[front_id] >= admission->maxInflight) {
        // Load shedding: reject at the door, before any work or
        // RNG draw happens for this request.
        ++shed_;
        ++tierFault(front_id).shed;
        if (onRequestFailed_) {
            onRequestFailed_(job->rootId, job->clientTag, job->created,
                             fault::FailReason::Shed);
        }
        return;
    }
    job->pathVariant = tree_.sampleVariant(rng_);
    const PathVariant& variant = tree_.variant(job->pathVariant);
    const PathNode& root = variant.nodes[
        static_cast<std::size_t>(variant.rootId)];
    if (root.serviceId != front_id) {
        throw std::logic_error(
            "front-end instance \"" + front.name() +
            "\" does not serve root node service \"" + root.service +
            "\"");
    }
    std::unique_ptr<RootState> fresh = acquireRoot(variant.nodes.size());
    RootState& state = *fresh;
    roots_[job->rootId] = std::move(fresh);
    state.variant = job->pathVariant;
    state.affinity[root.serviceId] = &front;
    state.clientTag = job->clientTag;
    state.created = job->created;
    state.frontId = front_id;
    ++inflightByFront_[front_id];
    if (tracer_ != nullptr)
        tracer_->recordStart(*job, sim_.now());

    if (root.requestBytes != 0)
        job->bytes = root.requestBytes;
    job->connectionId = client_conn;
    const int node_id = variant.rootId;
    const JobId root_id = job->rootId;
    MicroserviceInstance* target = &front;
    network_.transfer(nullptr, front.machine(), job->bytes,
                      [this, job, node_id, target]() mutable {
                          deliver(std::move(job), node_id, *target);
                      },
                      [this, root_id](hw::DropReason reason) {
                          onEdgeDrop(root_id, reason,
                                     NameInterner::kNone);
                      });
}

MicroserviceInstance&
Dispatcher::selectInstance(RootState& state, const PathNode& node)
{
    if (node.instanceIndex >= 0)
        return deployment_.instance(node.serviceId, node.instanceIndex);
    MicroserviceInstance*& sticky = state.affinity[node.serviceId];
    if (sticky != nullptr)
        return *sticky;
    MicroserviceInstance& picked =
        deployment_.pickInstance(node.serviceId, rng_);
    sticky = &picked;
    return picked;
}

void
Dispatcher::routeToNode(JobPtr job, int node_id,
                        MicroserviceInstance* from)
{
    RootState* state_ptr = findRoot(job->rootId);
    if (state_ptr == nullptr)
        return;  // request already completed or failed; drop the copy
    RootState& state = *state_ptr;
    const PathNode& node = tree_.node(state.variant, node_id);

    if (from != nullptr) {
        // A managed hop replaces the plain forward hop when the
        // service edge carries an active resilience policy.  Fan-in
        // nodes are excluded: a retried or hedged duplicate would
        // corrupt the arrival count.
        const fault::EdgePolicy* policy = deployment_.edgePolicy(
            from->model().nameId(), node.serviceId);
        if (policy != nullptr && policy->active() && node.fanIn <= 1 &&
            state.hopStates[static_cast<std::size_t>(node_id)].policy ==
                nullptr &&
            &selectInstance(state, node) != from) {
            startManagedHop(state, std::move(job), node_id, from,
                            *policy);
            return;
        }
    }

    MicroserviceInstance& target = selectInstance(state, node);
    if (node.requestBytes != 0)
        job->bytes = node.requestBytes;

    if (&target == from) {
        // Same-instance hop (consecutive nodes on one instance):
        // no network, connection unchanged.
        sim_.scheduleAfter(
            0,
            [this, job, node_id, t = &target]() mutable {
                deliver(std::move(job), node_id, *t);
            },
            "dispatch/local");
        return;
    }

    // Return hop? (target handled an earlier node and holds the
    // pooled connection this response travels back on.)  Prefer the
    // exact connection the job traveled out on — hedged duplicates
    // can leave several (upstream, downstream) pairs.
    auto hop_it = std::find_if(
        state.hops.begin(), state.hops.end(),
        [&](const ForwardHop& hop) {
            return hop.upstream == &target && hop.downstream == from &&
                   hop.conn == job->connectionId;
        });
    if (hop_it == state.hops.end()) {
        hop_it = std::find_if(
            state.hops.begin(), state.hops.end(),
            [&](const ForwardHop& hop) {
                return hop.upstream == &target &&
                       hop.downstream == from;
            });
    }
    if (hop_it != state.hops.end()) {
        const ForwardHop hop = *hop_it;
        state.hops.erase(hop_it);
        job->connectionId = hop.conn;
        network_.transfer(
            from != nullptr ? from->machine() : nullptr,
            target.machine(), job->bytes,
            [this, job, node_id, t = &target, hop]() mutable {
                // Response received: the connection is free for the
                // next request (HTTP/1.1 reuse).
                hop.pool->release(hop.conn);
                deliver(std::move(job), node_id, *t);
            },
            [this, root = job->rootId, hop](hw::DropReason reason) {
                // Response lost in transit; the connection still
                // frees (it was past the pool when the hop record
                // was erased above).
                hop.pool->release(hop.conn);
                onEdgeDrop(root, reason, NameInterner::kNone);
            });
        return;
    }

    // Forward hop: acquire a pooled connection (backpressure when
    // the pool is exhausted).
    if (from != nullptr) {
        ConnectionPool* pool = &deployment_.pool(*from, target);
        const JobId root = job->rootId;
        pool->acquire([this, job, node_id, from, t = &target, pool,
                       root](ConnectionId conn) mutable {
            RootState* st = findRoot(root);
            if (st == nullptr) {
                pool->release(conn);
                return;
            }
            st->hops.push_back(ForwardHop{from, t, conn, pool});
            job->connectionId = conn;
            network_.transfer(
                from->machine(), t->machine(), job->bytes,
                [this, job, node_id, t]() mutable {
                    deliver(std::move(job), node_id, *t);
                },
                [this, job, node_id](hw::DropReason reason) mutable {
                    onTransferDropped(std::move(job), node_id, reason);
                });
        });
        return;
    }

    // Hop from outside the cluster (no pool).
    network_.transfer(nullptr, target.machine(), job->bytes,
                      [this, job, node_id, t = &target]() mutable {
                          deliver(std::move(job), node_id, *t);
                      },
                      [this, root = job->rootId](hw::DropReason reason) {
                          onEdgeDrop(root, reason,
                                     NameInterner::kNone);
                      });
}

void
Dispatcher::deliver(JobPtr job, int node_id, MicroserviceInstance& target)
{
    RootState* state_ptr = findRoot(job->rootId);
    if (state_ptr == nullptr)
        return;
    RootState& state = *state_ptr;
    const PathNode& node = tree_.node(state.variant, node_id);

    // Fan-in synchronization: only the final copy proceeds.
    if (node.fanIn > 1) {
        const auto arrived = std::find_if(
            state.syncArrived.begin(), state.syncArrived.end(),
            [node_id](const std::pair<int, int>& entry) {
                return entry.first == node_id;
            });
        if (arrived == state.syncArrived.end()) {
            state.syncArrived.emplace_back(node_id, 1);
            return;
        }
        if (++arrived->second < node.fanIn)
            return;
        state.syncArrived.erase(arrived);
    }

    job->pathNodeId = node_id;
    job->enteredTier = sim_.now();
    job->execPathId = node.execPathId;
    if (tracer_ != nullptr)
        tracer_->recordEnter(*job, node.serviceId, sim_.now());
    for (const PathNodeOp& op : node.onEnter) {
        if (op.kind == PathNodeOp::Kind::BlockConnection &&
            job->connectionId != kNoConnection) {
            blocks_.block(job->rootId, target.connections(),
                          job->connectionId, node.service);
        }
    }
    target.accept(std::move(job));
}

void
Dispatcher::onNodeComplete(JobPtr job, MicroserviceInstance& inst)
{
    if (deadJobs_.erase(job->id) > 0)
        return;  // cancelled attempt finishing late; drop silently
    RootState* state_ptr = findRoot(job->rootId);
    if (state_ptr == nullptr)
        return;
    RootState& state = *state_ptr;
    if (tierLatencyHook_) {
        tierLatencyHook_(inst.model().nameId(),
                         simTimeToSeconds(sim_.now() - job->enteredTier));
    }
    if (tracer_ != nullptr)
        tracer_->recordLeave(*job, sim_.now());

    // Managed hop won by this job: stop the policy machinery and
    // cancel the other attempts (first-response-wins).
    HopState& hs =
        state.hopStates[static_cast<std::size_t>(job->pathNodeId)];
    if (hs.policy != nullptr && !hs.done) {
        auto winner = std::find_if(
            hs.attempts.begin(), hs.attempts.end(),
            [&](const Attempt& attempt) {
                return attempt.jobId == job->id;
            });
        if (winner != hs.attempts.end()) {
            hs.done = true;
            hs.timeoutEvent.cancel();
            hs.hedgeEvent.cancel();
            hs.resendEvent.cancel();
            hs.prototype.reset();
            EdgeRuntime& edge = edgeRuntime(hs.from->model().nameId(),
                                            hs.serviceId, *hs.policy);
            edge.hopLatency.add(
                simTimeToSeconds(sim_.now() - winner->sentAt));
            if (edge.breaker)
                edge.breaker->recordSuccess(sim_.now());
            for (Attempt& attempt : hs.attempts) {
                if (attempt.jobId == job->id || !attempt.live)
                    continue;
                attempt.live = false;
                --hs.liveAttempts;
                deadJobs_.insert(attempt.jobId);
                releaseAttemptConn(state, attempt);
            }
        }
    }

    const PathNode& node = tree_.node(state.variant, job->pathNodeId);
    for (const PathNodeOp& op : node.onLeave) {
        if (op.kind == PathNodeOp::Kind::UnblockConnection)
            blocks_.unblock(job->rootId, op.service);
    }

    if (node.children.empty()) {
        finishRequest(std::move(job), inst);
        return;
    }
    for (std::size_t i = 0; i < node.children.size(); ++i) {
        JobPtr child = (i + 1 == node.children.size())
                           ? std::move(job)
                           : jobs_.createCopy(*job);
        routeToNode(std::move(child), node.children[i], &inst);
    }
}

void
Dispatcher::finishRequest(JobPtr job, MicroserviceInstance& last)
{
    RootState* state_ptr = findRoot(job->rootId);
    if (state_ptr == nullptr)
        return;
    RootState& state = *state_ptr;
    // A leaf that never routes back releases its own connection.
    const auto hop_it = std::find_if(
        state.hops.begin(), state.hops.end(),
        [&](const ForwardHop& hop) {
            return hop.downstream == &last &&
                   hop.conn == job->connectionId;
        });
    if (hop_it != state.hops.end()) {
        const ForwardHop hop = *hop_it;
        state.hops.erase(hop_it);
        hop.pool->release(hop.conn);
    }
    const PathVariant& variant = tree_.variant(state.variant);
    if (++state.terminalsDone < variant.terminalCount)
        return;
    const JobId root_id = job->rootId;
    network_.transfer(last.machine(), nullptr, job->bytes,
                      [this, job]() mutable {
                          completeAtClient(std::move(job));
                      },
                      [this, root_id](hw::DropReason reason) {
                          onEdgeDrop(root_id, reason,
                                     NameInterner::kNone);
                      });
}

void
Dispatcher::completeAtClient(JobPtr job)
{
    const auto it = roots_.find(job->rootId);
    if (it != roots_.end()) {
        std::unique_ptr<RootState> state = std::move(it->second);
        roots_.erase(it);
        cancelHopEvents(*state);
        decrementInflight(state->frontId);
        // Defensive cleanup; well-formed paths leave nothing behind.
        for (const ForwardHop& hop : state->hops) {
            hop.pool->release(hop.conn);
            ++leakedHops_;
        }
        recycleRoot(std::move(state));
    }
    leakedBlocks_ +=
        static_cast<std::uint64_t>(blocks_.unblock(job->rootId, ""));
    ++completed_;
    if (tracer_ != nullptr)
        tracer_->recordComplete(*job, sim_.now());
    if (onRequestComplete_)
        onRequestComplete_(*job, sim_.now() - job->created);
}

// ------------------------------------------------------------- resilience

Dispatcher::EdgeRuntime&
Dispatcher::edgeRuntime(std::uint32_t from_id, std::uint32_t to_id,
                        const fault::EdgePolicy& policy)
{
    const std::uint64_t key = edgeKey(from_id, to_id);
    auto it = edges_.find(key);
    if (it == edges_.end()) {
        EdgeRuntime runtime;
        if (policy.breaker.enabled) {
            runtime.breaker = std::make_unique<fault::CircuitBreaker>(
                policy.breaker);
        }
        it = edges_.emplace(key, std::move(runtime)).first;
    }
    return it->second;
}

SimTime
Dispatcher::resolveHedgeDelay(EdgeRuntime& edge,
                              const fault::EdgePolicy& policy)
{
    if (policy.hedgePercentile > 0.0 &&
        edge.hopLatency.count() >=
            static_cast<std::size_t>(policy.hedgeMinSamples)) {
        return secondsToSimTime(
            edge.hopLatency.percentile(policy.hedgePercentile * 100.0));
    }
    if (policy.hedgeDelaySeconds > 0.0)
        return secondsToSimTime(policy.hedgeDelaySeconds);
    return 0;
}

void
Dispatcher::startManagedHop(RootState& state, JobPtr job, int node_id,
                            MicroserviceInstance* from,
                            const fault::EdgePolicy& policy)
{
    const PathNode& node = tree_.node(state.variant, node_id);
    EdgeRuntime& edge =
        edgeRuntime(from->model().nameId(), node.serviceId, policy);
    const JobId root = job->rootId;
    if (edge.breaker && !edge.breaker->allowRequest(sim_.now())) {
        failRequest(root, fault::FailReason::BreakerOpen,
                    node.serviceId);
        return;
    }
    HopState& hs = state.hopStates[static_cast<std::size_t>(node_id)];
    hs.policy = &policy;
    hs.from = from;
    hs.serviceId = node.serviceId;
    hs.prototype = jobs_.createCopy(*job);
    hs.retriesLeft = policy.retries;
    hs.hedgesLeft = policy.hedgingEnabled() ? policy.hedgeMax : 0;
    state.engagedHops.push_back(node_id);
    launchAttempt(root, node_id, std::move(job));
    if (findRoot(root) == nullptr)
        return;
    if (hs.hedgesLeft > 0) {
        const SimTime delay = resolveHedgeDelay(edge, policy);
        if (delay > 0) {
            hs.hedgeEvent = sim_.scheduleAfter(
                delay + timerNudge("timer/hedge"),
                [this, root, node_id]() { onHedgeTimer(root, node_id); },
                "dispatch/hedge");
        }
    }
}

void
Dispatcher::launchAttempt(JobId root, int node_id, JobPtr job)
{
    RootState* state_ptr = findRoot(root);
    if (state_ptr == nullptr)
        return;
    RootState& state = *state_ptr;
    HopState& hs = state.hopStates[static_cast<std::size_t>(node_id)];
    if (hs.policy == nullptr)
        return;
    const PathNode& node = tree_.node(state.variant, node_id);

    MicroserviceInstance* target = nullptr;
    if (hs.attempts.empty()) {
        target = &selectInstance(state, node);
    } else if (node.instanceIndex >= 0) {
        target =
            &deployment_.instance(node.serviceId, node.instanceIndex);
    } else {
        // Retries and hedges prefer a different instance — the point
        // is to dodge the slow or dead one.
        MicroserviceInstance* previous = state.affinity[node.serviceId];
        target = &deployment_.pickInstance(node.serviceId, rng_);
        if (target == previous &&
            deployment_.instanceCount(node.serviceId) > 1) {
            target = &deployment_.pickInstance(node.serviceId, rng_);
        }
        state.affinity[node.serviceId] = target;
    }
    if (node.requestBytes != 0)
        job->bytes = node.requestBytes;
    hs.attempts.push_back(
        Attempt{job->id, sim_.now(), kNoConnection, true});
    ++hs.liveAttempts;
    if (hs.policy->retriesEnabled()) {
        hs.timeoutEvent.cancel();
        hs.timeoutEvent = sim_.scheduleAfter(
            secondsToSimTime(hs.policy->timeoutSeconds) +
                timerNudge("timer/timeout"),
            [this, root, node_id]() { onHopTimeout(root, node_id); },
            "dispatch/timeout");
    }
    MicroserviceInstance* from = hs.from;
    ConnectionPool* pool = &deployment_.pool(*from, *target);
    pool->acquire([this, job, node_id, from, t = target, pool,
                   root](ConnectionId conn) mutable {
        RootState* st = findRoot(root);
        if (st == nullptr || deadJobs_.erase(job->id) > 0) {
            pool->release(conn);
            return;
        }
        HopState& hop_state =
            st->hopStates[static_cast<std::size_t>(node_id)];
        if (hop_state.policy != nullptr) {
            if (hop_state.done) {
                pool->release(conn);
                return;
            }
            for (Attempt& attempt : hop_state.attempts) {
                if (attempt.jobId == job->id) {
                    attempt.conn = conn;
                    break;
                }
            }
        }
        st->hops.push_back(ForwardHop{from, t, conn, pool});
        job->connectionId = conn;
        network_.transfer(
            from->machine(), t->machine(), job->bytes,
            [this, job, node_id, t]() mutable {
                deliver(std::move(job), node_id, *t);
            },
            [this, job, node_id](hw::DropReason reason) mutable {
                onTransferDropped(std::move(job), node_id, reason);
            });
    });
}

void
Dispatcher::onHopTimeout(JobId root, int node_id)
{
    RootState* state = findRoot(root);
    if (state == nullptr)
        return;
    HopState& hs = state->hopStates[static_cast<std::size_t>(node_id)];
    if (hs.policy == nullptr || hs.done)
        return;
    EdgeRuntime& edge =
        edgeRuntime(hs.from->model().nameId(), hs.serviceId, *hs.policy);
    if (edge.breaker)
        edge.breaker->recordFailure(sim_.now());
    ++tierFault(hs.from->model().nameId()).hopTimeouts;
    if (hs.retriesLeft > 0) {
        // The timed-out attempt stays live as a racer: if it responds
        // before the retry, its response still wins.
        --hs.retriesLeft;
        scheduleResend(root, node_id);
        return;
    }
    failRequest(root, fault::FailReason::HopTimeout, hs.serviceId);
}

void
Dispatcher::scheduleResend(JobId root, int node_id)
{
    RootState* state = findRoot(root);
    if (state == nullptr)
        return;
    HopState& hs = state->hopStates[static_cast<std::size_t>(node_id)];
    if (hs.policy == nullptr || hs.done)
        return;
    hs.timeoutEvent.cancel();
    const fault::EdgePolicy& policy = *hs.policy;
    double backoff = 0.0;
    if (policy.backoffBaseSeconds > 0.0) {
        backoff = policy.backoffBaseSeconds *
                  std::pow(policy.backoffMultiplier,
                           static_cast<double>(hs.attempts.size() - 1));
        if (policy.jitter > 0.0)
            backoff *= 1.0 + policy.jitter * retryRng_.nextDouble();
    }
    ++retriesSent_;
    ++tierFault(hs.from->model().nameId()).retries;
    auto fire = [this, root, node_id]() {
        RootState* st = findRoot(root);
        if (st == nullptr)
            return;
        HopState& hop_state =
            st->hopStates[static_cast<std::size_t>(node_id)];
        if (hop_state.policy == nullptr || hop_state.done ||
            !hop_state.prototype) {
            return;
        }
        launchAttempt(root, node_id,
                      jobs_.createCopy(*hop_state.prototype));
    };
    if (backoff <= 0.0) {
        fire();
    } else {
        hs.resendEvent = sim_.scheduleAfter(
            secondsToSimTime(backoff) + timerNudge("timer/retry"),
            fire, "dispatch/retry");
    }
}

void
Dispatcher::onHedgeTimer(JobId root, int node_id)
{
    RootState* state = findRoot(root);
    if (state == nullptr)
        return;
    HopState& hs = state->hopStates[static_cast<std::size_t>(node_id)];
    if (hs.policy == nullptr || hs.done)
        return;
    if (hs.hedgesLeft <= 0 || !hs.prototype)
        return;
    --hs.hedgesLeft;
    ++hedgesSent_;
    ++tierFault(hs.from->model().nameId()).hedges;
    launchAttempt(root, node_id, jobs_.createCopy(*hs.prototype));
    if (findRoot(root) == nullptr)
        return;
    if (hs.hedgesLeft > 0) {
        EdgeRuntime& edge = edgeRuntime(hs.from->model().nameId(),
                                        hs.serviceId, *hs.policy);
        const SimTime delay = resolveHedgeDelay(edge, *hs.policy);
        if (delay > 0) {
            hs.hedgeEvent = sim_.scheduleAfter(
                delay + timerNudge("timer/hedge"),
                [this, root, node_id]() { onHedgeTimer(root, node_id); },
                "dispatch/hedge");
        }
    }
}

void
Dispatcher::onJobFailed(JobPtr job, MicroserviceInstance& inst,
                        fault::FailReason reason)
{
    if (deadJobs_.erase(job->id) > 0)
        return;
    RootState* state = findRoot(job->rootId);
    if (state == nullptr)
        return;
    const std::uint32_t tier = inst.model().nameId();
    if (reason == fault::FailReason::Crash)
        ++tierFault(tier).crashKills;
    else if (reason == fault::FailReason::QueueFull)
        ++tierFault(tier).rejected;
    failAttemptOrRequest(job->rootId, job->pathNodeId, job->id, reason,
                         tier);
}

void
Dispatcher::onTransferDropped(JobPtr job, int node_id,
                              hw::DropReason reason)
{
    if (deadJobs_.erase(job->id) > 0)
        return;
    RootState* state = findRoot(job->rootId);
    if (state == nullptr)
        return;
    const PathNode& node = tree_.node(state->variant, node_id);
    if (reason == hw::DropReason::Unreachable)
        ++tierFault(node.serviceId).unreachable;
    failAttemptOrRequest(job->rootId, node_id, job->id,
                         dropFailReason(reason), node.serviceId);
}

void
Dispatcher::onEdgeDrop(JobId root, hw::DropReason reason,
                       std::uint32_t tier_id)
{
    if (reason == hw::DropReason::Unreachable) {
        const RootState* state = findRoot(root);
        const std::uint32_t resolved =
            tier_id != NameInterner::kNone ? tier_id
            : state != nullptr            ? state->frontId
                                          : NameInterner::kNone;
        if (resolved != NameInterner::kNone)
            ++tierFault(resolved).unreachable;
    }
    failRequest(root, dropFailReason(reason), tier_id);
}

void
Dispatcher::failAttemptOrRequest(JobId root, int node_id, JobId job_id,
                                 fault::FailReason reason,
                                 std::uint32_t tier_id)
{
    RootState* state = findRoot(root);
    if (state == nullptr)
        return;
    if (node_id >= 0 &&
        static_cast<std::size_t>(node_id) < state->hopStates.size()) {
        HopState& hs =
            state->hopStates[static_cast<std::size_t>(node_id)];
        if (hs.policy != nullptr && !hs.done) {
            const auto a_it = std::find_if(
                hs.attempts.begin(), hs.attempts.end(),
                [&](const Attempt& attempt) {
                    return attempt.jobId == job_id;
                });
            if (a_it != hs.attempts.end() && a_it->live) {
                a_it->live = false;
                --hs.liveAttempts;
                releaseAttemptConn(*state, *a_it);
                EdgeRuntime& edge =
                    edgeRuntime(hs.from->model().nameId(), hs.serviceId,
                                *hs.policy);
                if (edge.breaker)
                    edge.breaker->recordFailure(sim_.now());
                if (hs.retriesLeft > 0) {
                    --hs.retriesLeft;
                    scheduleResend(root, node_id);
                    return;
                }
                if (hs.liveAttempts > 0)
                    return;  // a racing attempt may still succeed
                failRequest(root, reason, tier_id);
                return;
            }
        }
    }
    failRequest(root, reason, tier_id);
}

void
Dispatcher::releaseAttemptConn(RootState& state, Attempt& attempt)
{
    if (attempt.conn == kNoConnection)
        return;
    const auto it = std::find_if(
        state.hops.begin(), state.hops.end(),
        [&](const ForwardHop& hop) { return hop.conn == attempt.conn; });
    attempt.conn = kNoConnection;
    if (it == state.hops.end())
        return;
    // Erase before releasing: release can synchronously run a pool
    // waiter that pushes into this same hops vector.
    const ForwardHop hop = *it;
    state.hops.erase(it);
    hop.pool->release(hop.conn);
}

void
Dispatcher::cancelHopEvents(RootState& state)
{
    for (const int node_id : state.engagedHops) {
        HopState& hs =
            state.hopStates[static_cast<std::size_t>(node_id)];
        hs.timeoutEvent.cancel();
        hs.hedgeEvent.cancel();
        hs.resendEvent.cancel();
        // Dead marks of this root's cancelled attempts are no longer
        // needed: with the root gone every late result is dropped by
        // the root lookup anyway.
        for (const Attempt& attempt : hs.attempts) {
            if (!attempt.live)
                deadJobs_.erase(attempt.jobId);
        }
    }
}

void
Dispatcher::decrementInflight(std::uint32_t front_id)
{
    if (front_id < inflightByFront_.size() &&
        inflightByFront_[front_id] > 0) {
        --inflightByFront_[front_id];
    }
}

void
Dispatcher::failRequest(JobId root, fault::FailReason reason,
                        std::uint32_t tier_id)
{
    const auto it = roots_.find(root);
    if (it == roots_.end())
        return;
    // Move the state out before any release: releasing connections
    // can synchronously run pool waiters that re-enter the
    // dispatcher.
    std::unique_ptr<RootState> state = std::move(it->second);
    roots_.erase(it);
    cancelHopEvents(*state);
    for (const ForwardHop& hop : state->hops)
        hop.pool->release(hop.conn);
    blocks_.unblock(root, "");
    decrementInflight(state->frontId);
    ++failed_;
    ++tierFault(tier_id == NameInterner::kNone ? state->frontId : tier_id)
          .errors;
    if (onRequestFailed_)
        onRequestFailed_(root, state->clientTag, state->created, reason);
    recycleRoot(std::move(state));
}

std::uint64_t
Dispatcher::activeStateDigest() const
{
    snapshot::Digest digest;
    // Active roots in JobId order (std::map).
    for (const auto& [root, state] : roots_) {
        digest.u64(root);
        digest.i64(state->variant);
        digest.i64(state->terminalsDone);
        digest.i64(state->clientTag);
        digest.i64(state->created);
        digest.u32(state->frontId);
        for (const MicroserviceInstance* sticky : state->affinity)
            digest.i64(sticky == nullptr ? -1 : sticky->uid());
        for (const auto& [node, arrived] : state->syncArrived) {
            digest.i64(node);
            digest.i64(arrived);
        }
        digest.u64(state->hops.size());
        for (const ForwardHop& hop : state->hops) {
            digest.i64(hop.upstream == nullptr ? -1
                                               : hop.upstream->uid());
            digest.i64(hop.downstream == nullptr
                           ? -1
                           : hop.downstream->uid());
            digest.i64(hop.conn);
        }
        digest.u64(state->engagedHops.size());
        for (const int node_id : state->engagedHops) {
            const HopState& hop =
                state->hopStates[static_cast<std::size_t>(node_id)];
            digest.i64(node_id);
            digest.boolean(hop.policy != nullptr);
            digest.u32(hop.serviceId);
            digest.i64(hop.liveAttempts);
            digest.i64(hop.retriesLeft);
            digest.i64(hop.hedgesLeft);
            digest.boolean(hop.done);
            digest.u64(hop.attempts.size());
            for (const Attempt& attempt : hop.attempts) {
                digest.u64(attempt.jobId);
                digest.i64(attempt.sentAt);
                digest.i64(attempt.conn);
                digest.boolean(attempt.live);
            }
            digest.boolean(hop.timeoutEvent.pending());
            digest.boolean(hop.hedgeEvent.pending());
            digest.boolean(hop.resendEvent.pending());
        }
    }
    // Dead-job set (std::set, id order).
    digest.u64(deadJobs_.size());
    for (const JobId dead : deadJobs_)
        digest.u64(dead);
    // Per-edge runtime in sorted-key order (the map is unordered).
    std::vector<std::uint64_t> edge_keys;
    edge_keys.reserve(edges_.size());
    for (const auto& [key, runtime] : edges_)
        edge_keys.push_back(key);
    std::sort(edge_keys.begin(), edge_keys.end());
    for (const std::uint64_t key : edge_keys) {
        const EdgeRuntime& runtime = edges_.at(key);
        digest.u64(key);
        digest.boolean(runtime.breaker != nullptr);
        if (runtime.breaker)
            digest.u64(runtime.breaker->stateDigest());
        digest.u64(runtime.hopLatency.count());
        for (const double value : runtime.hopLatency.values())
            digest.f64(value);
    }
    // Admission counters and per-tier fault counters (dense arrays).
    for (const int inflight : inflightByFront_)
        digest.i64(inflight);
    for (const TierFaultStats& stats : tierFaults_) {
        digest.u64(stats.errors);
        digest.u64(stats.timeouts);
        digest.u64(stats.hopTimeouts);
        digest.u64(stats.retries);
        digest.u64(stats.hedges);
        digest.u64(stats.shed);
        digest.u64(stats.rejected);
        digest.u64(stats.crashKills);
        digest.u64(stats.unreachable);
    }
    return digest.value();
}

void
Dispatcher::saveState(snapshot::SnapshotWriter& writer) const
{
    writer.beginSection(snapshot::SectionId::Dispatcher);
    writer.putU64(started_);
    writer.putU64(completed_);
    writer.putU64(failed_);
    writer.putU64(shed_);
    writer.putU64(retriesSent_);
    writer.putU64(hedgesSent_);
    writer.putU64(leakedBlocks_);
    writer.putU64(leakedHops_);
    writer.putU64(jobs_.created());
    writer.putU64(jobs_.liveJobs());
    snapshot::putRngState(writer, rng_.state());
    snapshot::putRngState(writer, retryRng_.state());
    writer.putU64(roots_.size());
    writer.putU64(deadJobs_.size());
    writer.putU64(edges_.size());
    writer.putU64(activeStateDigest());
    deployment_.saveState(writer);
    writer.endSection();
}

void
Dispatcher::loadState(snapshot::SnapshotReader& reader) const
{
    reader.openSection(snapshot::SectionId::Dispatcher);
    reader.requireU64("started", started_);
    reader.requireU64("completed", completed_);
    reader.requireU64("failed", failed_);
    reader.requireU64("shed", shed_);
    reader.requireU64("retries_sent", retriesSent_);
    reader.requireU64("hedges_sent", hedgesSent_);
    reader.requireU64("leaked_blocks", leakedBlocks_);
    reader.requireU64("leaked_hops", leakedHops_);
    reader.requireU64("jobs_created", jobs_.created());
    reader.requireU64("jobs_live", jobs_.liveJobs());
    snapshot::requireRngState(reader, "rng", rng_.state());
    snapshot::requireRngState(reader, "retry_rng", retryRng_.state());
    reader.requireU64("active_roots", roots_.size());
    reader.requireU64("dead_jobs", deadJobs_.size());
    reader.requireU64("edges", edges_.size());
    reader.requireU64("active_state_digest", activeStateDigest());
    deployment_.loadState(reader);
    reader.closeSection();
}

}  // namespace uqsim
