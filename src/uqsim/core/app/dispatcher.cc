#include "uqsim/core/app/dispatcher.h"

#include <algorithm>
#include <stdexcept>

namespace uqsim {

Dispatcher::Dispatcher(Simulator& sim, hw::Network& network,
                       PathTree& tree, Deployment& deployment)
    : sim_(sim), network_(network), tree_(tree), deployment_(deployment),
      rng_(sim.masterSeed(), "dispatcher")
{
    tree_.resolveExecPaths(
        [this](const std::string& service, const std::string& path) {
            return deployment_.model(service)->pathIdByName(path);
        });
    for (MicroserviceInstance* instance : deployment_.allInstances()) {
        instance->setOnJobDone([this, instance](JobPtr job) {
            onNodeComplete(std::move(job), *instance);
        });
    }
}

Dispatcher::RootState&
Dispatcher::rootState(JobId root)
{
    const auto it = roots_.find(root);
    if (it == roots_.end())
        throw std::logic_error("no root state for request " +
                               std::to_string(root));
    return it->second;
}

void
Dispatcher::startRequest(JobPtr job, MicroserviceInstance& front,
                         ConnectionId client_conn)
{
    if (!job)
        throw std::invalid_argument("cannot start a null request");
    ++started_;
    job->pathVariant = tree_.sampleVariant(rng_);
    const PathVariant& variant = tree_.variant(job->pathVariant);
    const PathNode& root = variant.nodes[
        static_cast<std::size_t>(variant.rootId)];
    if (root.service != front.model().name()) {
        throw std::logic_error(
            "front-end instance \"" + front.name() +
            "\" does not serve root node service \"" + root.service +
            "\"");
    }
    RootState& state = roots_[job->rootId];
    state.variant = job->pathVariant;
    state.affinity[root.service] = &front;
    if (tracer_ != nullptr)
        tracer_->recordStart(*job, sim_.now());

    if (root.requestBytes != 0)
        job->bytes = root.requestBytes;
    job->connectionId = client_conn;
    const int node_id = variant.rootId;
    MicroserviceInstance* target = &front;
    network_.transfer(nullptr, front.machine(), job->bytes,
                      [this, job, node_id, target]() mutable {
                          deliver(std::move(job), node_id, *target);
                      });
}

MicroserviceInstance&
Dispatcher::selectInstance(RootState& state, const PathNode& node)
{
    if (node.instanceIndex >= 0)
        return deployment_.instance(node.service, node.instanceIndex);
    const auto it = state.affinity.find(node.service);
    if (it != state.affinity.end())
        return *it->second;
    MicroserviceInstance& picked =
        deployment_.pickInstance(node.service, rng_);
    state.affinity[node.service] = &picked;
    return picked;
}

void
Dispatcher::routeToNode(JobPtr job, int node_id,
                        MicroserviceInstance* from)
{
    RootState& state = rootState(job->rootId);
    const PathNode& node = tree_.node(state.variant, node_id);
    MicroserviceInstance& target = selectInstance(state, node);
    if (node.requestBytes != 0)
        job->bytes = node.requestBytes;

    if (&target == from) {
        // Same-instance hop (consecutive nodes on one instance):
        // no network, connection unchanged.
        sim_.scheduleAfter(
            0,
            [this, job, node_id, t = &target]() mutable {
                deliver(std::move(job), node_id, *t);
            },
            "dispatch/local");
        return;
    }

    // Return hop? (target handled an earlier node and holds the
    // pooled connection this response travels back on.)
    const auto hop_it = std::find_if(
        state.hops.begin(), state.hops.end(),
        [&](const ForwardHop& hop) {
            return hop.upstream == &target && hop.downstream == from;
        });
    if (hop_it != state.hops.end()) {
        const ForwardHop hop = *hop_it;
        state.hops.erase(hop_it);
        job->connectionId = hop.conn;
        network_.transfer(
            from != nullptr ? from->machine() : nullptr,
            target.machine(), job->bytes,
            [this, job, node_id, t = &target, hop]() mutable {
                // Response received: the connection is free for the
                // next request (HTTP/1.1 reuse).
                hop.pool->release(hop.conn);
                deliver(std::move(job), node_id, *t);
            });
        return;
    }

    // Forward hop: acquire a pooled connection (backpressure when
    // the pool is exhausted).
    if (from != nullptr) {
        ConnectionPool* pool = &deployment_.pool(*from, target);
        const JobId root = job->rootId;
        pool->acquire([this, job, node_id, from, t = &target, pool,
                       root](ConnectionId conn) mutable {
            RootState& st = rootState(root);
            st.hops.push_back(ForwardHop{from, t, conn, pool});
            job->connectionId = conn;
            network_.transfer(from->machine(), t->machine(), job->bytes,
                              [this, job, node_id, t]() mutable {
                                  deliver(std::move(job), node_id, *t);
                              });
        });
        return;
    }

    // Hop from outside the cluster (no pool).
    network_.transfer(nullptr, target.machine(), job->bytes,
                      [this, job, node_id, t = &target]() mutable {
                          deliver(std::move(job), node_id, *t);
                      });
}

void
Dispatcher::deliver(JobPtr job, int node_id, MicroserviceInstance& target)
{
    RootState& state = rootState(job->rootId);
    const PathNode& node = tree_.node(state.variant, node_id);

    // Fan-in synchronization: only the final copy proceeds.
    if (node.fanIn > 1) {
        int& arrived = state.syncArrived[node_id];
        if (++arrived < node.fanIn)
            return;
        state.syncArrived.erase(node_id);
    }

    job->pathNodeId = node_id;
    job->enteredTier = sim_.now();
    job->execPathId = node.execPathId;
    if (tracer_ != nullptr)
        tracer_->recordEnter(*job, node.service, sim_.now());
    for (const PathNodeOp& op : node.onEnter) {
        if (op.kind == PathNodeOp::Kind::BlockConnection &&
            job->connectionId != kNoConnection) {
            blocks_.block(job->rootId, target.connections(),
                          job->connectionId, node.service);
        }
    }
    target.accept(std::move(job));
}

void
Dispatcher::onNodeComplete(JobPtr job, MicroserviceInstance& inst)
{
    if (tierLatencyHook_) {
        tierLatencyHook_(inst.model().name(),
                         simTimeToSeconds(sim_.now() - job->enteredTier));
    }
    if (tracer_ != nullptr)
        tracer_->recordLeave(*job, sim_.now());
    RootState& state = rootState(job->rootId);
    const PathNode& node = tree_.node(state.variant, job->pathNodeId);
    for (const PathNodeOp& op : node.onLeave) {
        if (op.kind == PathNodeOp::Kind::UnblockConnection)
            blocks_.unblock(job->rootId, op.service);
    }

    if (node.children.empty()) {
        finishRequest(std::move(job), inst);
        return;
    }
    for (std::size_t i = 0; i < node.children.size(); ++i) {
        JobPtr child = (i + 1 == node.children.size())
                           ? std::move(job)
                           : jobs_.createCopy(*job);
        routeToNode(std::move(child), node.children[i], &inst);
    }
}

void
Dispatcher::finishRequest(JobPtr job, MicroserviceInstance& last)
{
    RootState& state = rootState(job->rootId);
    // A leaf that never routes back releases its own connection.
    const auto hop_it = std::find_if(
        state.hops.begin(), state.hops.end(),
        [&](const ForwardHop& hop) {
            return hop.downstream == &last &&
                   hop.conn == job->connectionId;
        });
    if (hop_it != state.hops.end()) {
        hop_it->pool->release(hop_it->conn);
        state.hops.erase(hop_it);
    }
    const PathVariant& variant = tree_.variant(state.variant);
    if (++state.terminalsDone < variant.terminalCount)
        return;
    network_.transfer(last.machine(), nullptr, job->bytes,
                      [this, job]() mutable {
                          completeAtClient(std::move(job));
                      });
}

void
Dispatcher::completeAtClient(JobPtr job)
{
    const auto it = roots_.find(job->rootId);
    if (it != roots_.end()) {
        // Defensive cleanup; well-formed paths leave nothing behind.
        for (const ForwardHop& hop : it->second.hops) {
            hop.pool->release(hop.conn);
            ++leakedHops_;
        }
        roots_.erase(it);
    }
    leakedBlocks_ +=
        static_cast<std::uint64_t>(blocks_.unblock(job->rootId, ""));
    ++completed_;
    if (tracer_ != nullptr)
        tracer_->recordComplete(*job, sim_.now());
    if (onRequestComplete_)
        onRequestComplete_(*job, sim_.now() - job->created);
}

}  // namespace uqsim
