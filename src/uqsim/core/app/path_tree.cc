#include "uqsim/core/app/path_tree.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace uqsim {

PathNodeOp
PathNodeOp::fromJson(const json::JsonValue& doc)
{
    PathNodeOp op;
    const std::string kind = doc.at("op").asString();
    if (kind == "block_connection") {
        op.kind = Kind::BlockConnection;
    } else if (kind == "unblock_connection") {
        op.kind = Kind::UnblockConnection;
    } else {
        throw json::JsonError("unknown path node op: \"" + kind + "\"");
    }
    op.service = doc.getOr("service", "");
    return op;
}

PathNode
PathNode::fromJson(const json::JsonValue& doc)
{
    PathNode node;
    node.id = static_cast<int>(doc.at("node_id").asInt());
    node.service = doc.at("service").asString();
    node.pathName = doc.getOr("path", "");
    if (const json::JsonValue* children = doc.find("children")) {
        for (const json::JsonValue& child : children->asArray())
            node.children.push_back(static_cast<int>(child.asInt()));
    }
    if (const json::JsonValue* ops = doc.find("on_enter")) {
        for (const json::JsonValue& op : ops->asArray())
            node.onEnter.push_back(PathNodeOp::fromJson(op));
    }
    if (const json::JsonValue* ops = doc.find("on_leave")) {
        for (const json::JsonValue& op : ops->asArray())
            node.onLeave.push_back(PathNodeOp::fromJson(op));
    }
    node.requestBytes = static_cast<std::uint32_t>(
        doc.getOr("request_bytes", std::int64_t{0}));
    node.instanceIndex = doc.getOr("instance", -1);
    return node;
}

void
PathVariant::finalize()
{
    if (nodes.empty())
        throw std::invalid_argument("path variant has no nodes");
    std::sort(nodes.begin(), nodes.end(),
              [](const PathNode& a, const PathNode& b) {
                  return a.id < b.id;
              });
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (nodes[i].id != static_cast<int>(i)) {
            throw std::invalid_argument(
                "path node ids must be contiguous from 0");
        }
        nodes[i].fanIn = 0;
    }
    for (const PathNode& node : nodes) {
        for (int child : node.children) {
            if (child < 0 || child >= static_cast<int>(nodes.size())) {
                throw std::invalid_argument(
                    "path node " + std::to_string(node.id) +
                    " has unknown child " + std::to_string(child));
            }
            ++nodes[static_cast<std::size_t>(child)].fanIn;
        }
    }
    rootId = -1;
    terminalCount = 0;
    for (const PathNode& node : nodes) {
        if (node.fanIn == 0) {
            if (rootId != -1) {
                throw std::invalid_argument(
                    "path variant has multiple roots (" +
                    std::to_string(rootId) + " and " +
                    std::to_string(node.id) + ")");
            }
            rootId = node.id;
        }
        if (node.children.empty())
            ++terminalCount;
    }
    if (rootId == -1)
        throw std::invalid_argument("path variant has no root (cycle?)");
    // Kahn's algorithm: every node must be reachable in topological
    // order, otherwise there is a cycle.
    std::vector<int> indegree(nodes.size(), 0);
    for (const PathNode& node : nodes) {
        for (int child : node.children)
            ++indegree[static_cast<std::size_t>(child)];
    }
    std::vector<int> frontier;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (indegree[i] == 0)
            frontier.push_back(static_cast<int>(i));
    }
    std::size_t visited = 0;
    while (!frontier.empty()) {
        const int id = frontier.back();
        frontier.pop_back();
        ++visited;
        for (int child : nodes[static_cast<std::size_t>(id)].children) {
            if (--indegree[static_cast<std::size_t>(child)] == 0)
                frontier.push_back(child);
        }
    }
    if (visited != nodes.size())
        throw std::invalid_argument("path variant contains a cycle");
}

PathTree
PathTree::fromJson(const json::JsonValue& doc)
{
    PathTree tree;
    auto parse_variant = [](const json::JsonValue& spec) {
        PathVariant variant;
        variant.probability = spec.getOr("probability", 1.0);
        for (const json::JsonValue& node : spec.at("nodes").asArray())
            variant.nodes.push_back(PathNode::fromJson(node));
        return variant;
    };
    if (const json::JsonValue* variants = doc.find("paths")) {
        // Validate the probability sum once over the whole document,
        // not incrementally per variant: a zero-probability variant
        // listed first (e.g. a cold-start sweep point) is legal as
        // long as the document's total is positive.
        for (const json::JsonValue& spec : variants->asArray()) {
            PathVariant variant = parse_variant(spec);
            if (variant.probability < 0.0) {
                throw std::invalid_argument(
                    "variant probability must be >= 0");
            }
            variant.finalize();
            tree.variants_.push_back(std::move(variant));
        }
        tree.rebuildCumulative();
    } else {
        tree.addVariant(parse_variant(doc));
    }
    return tree;
}

int
PathTree::addVariant(PathVariant variant)
{
    if (variant.probability < 0.0)
        throw std::invalid_argument("variant probability must be >= 0");
    variant.finalize();
    variants_.push_back(std::move(variant));
    rebuildCumulative();
    return static_cast<int>(variants_.size()) - 1;
}

void
PathTree::rebuildCumulative()
{
    double total = 0.0;
    for (const PathVariant& variant : variants_)
        total += variant.probability;
    if (total <= 0.0)
        throw std::invalid_argument("variant probabilities sum to zero");
    cumulative_.clear();
    double cumulative = 0.0;
    for (const PathVariant& variant : variants_) {
        cumulative += variant.probability / total;
        cumulative_.push_back(cumulative);
    }
    cumulative_.back() = 1.0;
}

const PathVariant&
PathTree::variant(int index) const
{
    if (index < 0 || index >= static_cast<int>(variants_.size()))
        throw std::out_of_range("path variant index out of range");
    return variants_[static_cast<std::size_t>(index)];
}

int
PathTree::sampleVariant(random::Rng& rng) const
{
    if (variants_.empty())
        throw std::logic_error("path tree has no variants");
    if (variants_.size() == 1)
        return 0;
    const double u = rng.nextDouble();
    for (std::size_t i = 0; i < cumulative_.size(); ++i) {
        if (u < cumulative_[i])
            return static_cast<int>(i);
    }
    return static_cast<int>(variants_.size()) - 1;
}

const PathNode&
PathTree::node(int variant_index, int node_id) const
{
    const PathVariant& v = variant(variant_index);
    if (node_id < 0 || node_id >= static_cast<int>(v.nodes.size()))
        throw std::out_of_range("path node id out of range");
    return v.nodes[static_cast<std::size_t>(node_id)];
}

void
PathTree::resolveExecPaths(
    const std::function<int(const std::string&, const std::string&)>&
        resolver)
{
    for (PathVariant& variant : variants_) {
        for (PathNode& node : variant.nodes) {
            if (!node.pathName.empty())
                node.execPathId = resolver(node.service, node.pathName);
        }
    }
}

void
PathTree::resolveServiceIds(
    const std::function<std::uint32_t(const std::string&)>& interner)
{
    for (PathVariant& variant : variants_) {
        for (PathNode& node : variant.nodes)
            node.serviceId = interner(node.service);
    }
}

std::vector<std::string>
PathTree::referencedServices() const
{
    std::set<std::string> seen;
    std::vector<std::string> services;
    for (const PathVariant& variant : variants_) {
        for (const PathNode& node : variant.nodes) {
            if (seen.insert(node.service).second)
                services.push_back(node.service);
        }
    }
    return services;
}

}  // namespace uqsim
