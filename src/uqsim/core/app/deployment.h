#ifndef UQSIM_CORE_APP_DEPLOYMENT_H_
#define UQSIM_CORE_APP_DEPLOYMENT_H_

/**
 * @file
 * Microservice deployment (graph.json): which instances of each
 * service exist, on which machines, with what resources and
 * execution model, plus inter-tier connection pool sizes and the
 * load-balancing policy (paper §III-C, Table I).
 *
 * Example:
 *
 *   {"services": [
 *      {"service": "nginx",
 *       "lb_policy": "round_robin",
 *       "connection_pools": {"memcached": 8},
 *       "instances": [
 *          {"machine": "server0", "threads": 8, "cores": 8,
 *           "own_dvfs": true}
 *       ]}
 *   ]}
 */

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "uqsim/core/engine/simulator.h"
#include "uqsim/core/service/connection_pool.h"
#include "uqsim/core/service/instance.h"
#include "uqsim/core/service/name_interner.h"
#include "uqsim/core/service/service_model.h"
#include "uqsim/fault/resilience.h"
#include "uqsim/hw/cluster.h"
#include "uqsim/json/json_value.h"

namespace uqsim {

namespace snapshot {
class SnapshotWriter;
class SnapshotReader;
}  // namespace snapshot

/** How a service's instances are selected for new requests. */
enum class LbPolicy {
    RoundRobin,
    Random,
};

LbPolicy lbPolicyFromString(const std::string& name);

/** The set of deployed instances plus connection pools. */
class Deployment {
  public:
    /** Default pool size used when graph.json does not specify. */
    static constexpr int kDefaultPoolSize = 8;

    Deployment(Simulator& sim, hw::Cluster& cluster);

    Deployment(const Deployment&) = delete;
    Deployment& operator=(const Deployment&) = delete;

    /** The cluster instances are deployed onto (used by the fault
     *  scheduler to resolve machine names for partition groups). */
    hw::Cluster& cluster() { return cluster_; }
    const hw::Cluster& cluster() const { return cluster_; }

    /** Registers a service model before deploying instances.  The
     *  model's name is interned and its nameId assigned. */
    void registerModel(ServiceModelPtr model);

    /** The model for @p service; throws when unknown. */
    const ServiceModelPtr& model(const std::string& service) const;

    /** Service-name interner shared by the whole simulation. */
    NameInterner& names() { return names_; }
    const NameInterner& names() const { return names_; }

    /**
     * Deploys one instance of @p service on @p machine (empty name
     * = detached test instance).  Returns the instance index.
     */
    int deployInstance(const std::string& service,
                       const std::string& machine,
                       const InstanceConfig& config);

    /** Applies a parsed graph.json document. */
    void loadGraphJson(const json::JsonValue& doc);

    /** Sets the pool size for hops from @p from_service to
     *  @p to_service. */
    void setPoolSize(const std::string& from_service,
                     const std::string& to_service, int size);

    /** Sets the LB policy for @p service. */
    void setLbPolicy(const std::string& service, LbPolicy policy);

    /** Number of instances of @p service. */
    int instanceCount(const std::string& service) const;
    /** Number of instances of the service with interned id @p id. */
    int instanceCount(std::uint32_t service_id) const;

    /** Instance @p index of @p service. */
    MicroserviceInstance& instance(const std::string& service, int index);
    /** Instance @p index of the service with interned id @p id. */
    MicroserviceInstance& instance(std::uint32_t service_id, int index);

    /** All instances of @p service. */
    const std::vector<MicroserviceInstance*>&
    instances(const std::string& service) const;

    /** All instances across services (deployment order). */
    const std::vector<MicroserviceInstance*>& allInstances() const
    {
        return allInstances_;
    }

    /**
     * Picks an instance of @p service per its LB policy (round-robin
     * by default).
     */
    MicroserviceInstance& pickInstance(const std::string& service,
                                       random::Rng& rng);
    /** Same, addressed by interned service id (hot path). */
    MicroserviceInstance& pickInstance(std::uint32_t service_id,
                                       random::Rng& rng);

    /**
     * The connection pool for hops from @p from to @p to, created
     * lazily with the configured size.
     */
    ConnectionPool& pool(const MicroserviceInstance& from,
                         const MicroserviceInstance& to);

    /** Allocator for ad-hoc (client) connection ids. */
    ConnectionIdAllocator& connectionIds() { return connectionIds_; }

    /**
     * Visits every lazily-created connection pool (invariant
     * auditor / diagnostics).  Iteration order is unspecified;
     * callers must not depend on it for anything order-sensitive.
     */
    template <typename Fn>
    void
    forEachPool(Fn&& fn) const
    {
        for (const auto& [key, pool] : pools_)
            fn(*pool);
    }

    /** Sets the resilience policy for hops from @p from_service to
     *  @p to_service (graph.json "policies" block). */
    void setEdgePolicy(const std::string& from_service,
                       const std::string& to_service,
                       const fault::EdgePolicy& policy);

    /** The policy for a (from, to) service edge, or nullptr. */
    const fault::EdgePolicy* edgePolicy(const std::string& from_service,
                                        const std::string& to_service)
        const;
    /** Same, addressed by interned service ids (hot path). */
    const fault::EdgePolicy* edgePolicy(std::uint32_t from_id,
                                        std::uint32_t to_id) const;

    /** Sets admission control for requests entering via @p service. */
    void setAdmission(const std::string& service,
                      const fault::AdmissionConfig& config);

    /** Admission config for @p service, or nullptr. */
    const fault::AdmissionConfig*
    admission(const std::string& service) const;
    /** Same, addressed by interned service id (hot path). */
    const fault::AdmissionConfig* admission(std::uint32_t service_id) const;

    /**
     * Serializes the deployment's mutable routing state into the
     * open snapshot section: connection-id allocator position,
     * per-service round-robin cursors, and every connection pool's
     * occupancy (free ids in hand-out order, waiter count,
     * high-water mark), pools in sorted-key order.
     */
    void saveState(snapshot::SnapshotWriter& writer) const;

    /** Validates the live (replayed) state against saveState()'s
     *  fields; throws SnapshotStateError on divergence. */
    void loadState(snapshot::SnapshotReader& reader) const;

  private:
    struct ServiceEntry {
        ServiceModelPtr model;
        std::vector<std::unique_ptr<MicroserviceInstance>> instances;
        std::vector<MicroserviceInstance*> instancePtrs;
        LbPolicy lbPolicy = LbPolicy::RoundRobin;
        std::size_t rrCursor = 0;
    };

    ServiceEntry& entry(const std::string& service);
    const ServiceEntry& entry(const std::string& service) const;
    ServiceEntry& entry(std::uint32_t service_id);
    const ServiceEntry& entry(std::uint32_t service_id) const;

    /** Packs a service-id pair into one lookup key. */
    static std::uint64_t
    edgeKey(std::uint32_t from_id, std::uint32_t to_id)
    {
        return (static_cast<std::uint64_t>(from_id) << 32) | to_id;
    }

    Simulator& sim_;
    hw::Cluster& cluster_;
    NameInterner names_;
    std::map<std::string, ServiceEntry> services_;
    /** entry pointers indexed by interned service id (nullptr for
     *  interned-but-unregistered names). */
    std::vector<ServiceEntry*> entriesById_;
    std::map<std::pair<std::string, std::string>, int> poolSizes_;
    /** Pools keyed by packed (from uid, to uid) instance pair. */
    std::unordered_map<std::uint64_t, std::unique_ptr<ConnectionPool>>
        pools_;
    ConnectionIdAllocator connectionIds_;
    std::vector<MicroserviceInstance*> allInstances_;
    /** Edge policies keyed by packed (from, to) service ids. */
    std::unordered_map<std::uint64_t, fault::EdgePolicy> edgePolicies_;
    /** Admission configs indexed by interned service id. */
    std::vector<std::unique_ptr<fault::AdmissionConfig>> admission_;
};

/** Parses one instance object from graph.json. */
InstanceConfig instanceConfigFromJson(const json::JsonValue& doc);

}  // namespace uqsim

#endif  // UQSIM_CORE_APP_DEPLOYMENT_H_
