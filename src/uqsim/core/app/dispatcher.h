#ifndef UQSIM_CORE_APP_DISPATCHER_H_
#define UQSIM_CORE_APP_DISPATCHER_H_

/**
 * @file
 * The centralized scheduler dispatching requests to microservice
 * instances (paper §I, §III).
 *
 * The dispatcher walks each request through its sampled path
 * variant: it selects target instances (pinned, sticky per root
 * request, or load-balanced), moves messages through the network and
 * per-machine IRQ services, enforces fan-in synchronization,
 * acquires and releases inter-tier pooled connections, and applies
 * enter/leave blocking operations.
 *
 * Connection-pool protocol: a *forward* hop from instance A to
 * instance B acquires a connection from pool(A→B) and records it
 * under the root request.  When a later node routes from B back to
 * A, that recorded connection carries the response and is released
 * when the response arrives at A (HTTP/1.1-style reuse).  A leaf
 * node that never routes back releases its connection when the node
 * completes.
 *
 * Resilience: a hop whose (upstream, downstream) service edge has an
 * EdgePolicy becomes *managed* — the dispatcher arms a per-attempt
 * timeout with a retry budget (exponential backoff + jitter from the
 * "dispatcher/retry" stream), fires hedged duplicate attempts after
 * a fixed or adaptive-percentile delay, and gates sends on the
 * edge's circuit breaker.  The first attempt to respond wins; the
 * others are marked dead, their connections released, and their
 * late results dropped.  A request with no live attempts and no
 * retry budget left fails, as do requests hit by instance crashes,
 * bounded-queue rejection, network loss, or entry-tier admission
 * control.  Fan-in nodes stay unmanaged (a duplicate copy would
 * corrupt the arrival count).
 */

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "uqsim/core/app/deployment.h"
#include "uqsim/core/app/path_tree.h"
#include "uqsim/core/app/trace.h"
#include "uqsim/core/engine/simulator.h"
#include "uqsim/core/service/connection.h"
#include "uqsim/core/service/job.h"
#include "uqsim/core/sim/report.h"
#include "uqsim/fault/resilience.h"
#include "uqsim/hw/network.h"
#include "uqsim/stats/percentile_recorder.h"

namespace uqsim {

/** Central request router. */
class Dispatcher {
  public:
    /**
     * Wires every deployed instance's completion and failure
     * callbacks to this dispatcher and resolves the path tree's
     * execution-path names against the deployment's models.  Deploy
     * all instances before constructing the dispatcher.
     */
    Dispatcher(Simulator& sim, hw::Network& network, PathTree& tree,
               Deployment& deployment);

    Dispatcher(const Dispatcher&) = delete;
    Dispatcher& operator=(const Dispatcher&) = delete;

    /**
     * Begins a client request.  @p front is the front-end instance
     * the client connection terminates at; @p client_conn is that
     * connection's id, which must come from the deployment's
     * ConnectionIdAllocator so it cannot collide with pooled
     * connection ids.  The root node of the sampled variant must
     * belong to @p front's service.
     */
    void startRequest(JobPtr job, MicroserviceInstance& front,
                      ConnectionId client_conn);

    /** Fired when the response reaches the client. */
    void setOnRequestComplete(
        std::function<void(const Job&, SimTime)> callback)
    {
        onRequestComplete_ = std::move(callback);
    }

    /**
     * Fired when a request fails (crash, loss, exhausted retries,
     * breaker, shed) with the root id, issuing client tag, issue
     * time, and reason.
     */
    void setOnRequestFailed(
        std::function<void(JobId, int, SimTime, fault::FailReason)>
            callback)
    {
        onRequestFailed_ = std::move(callback);
    }

    /**
     * Fired when a job leaves a tier, with the tier's interned
     * service id (resolve via Deployment::names()) and the per-tier
     * latency in seconds (queueing + processing at that tier).  Used
     * by the power manager.
     */
    void setTierLatencyHook(
        std::function<void(std::uint32_t, double)> hook)
    {
        tierLatencyHook_ = std::move(hook);
    }

    /**
     * Attaches a trace recorder; pass nullptr to detach.  The
     * recorder receives start/enter/leave/complete events for the
     * root requests its sampler selects, and is bound to the
     * deployment's name interner for span rendering.
     */
    void attachTracer(TraceRecorder* tracer)
    {
        tracer_ = tracer;
        if (tracer_ != nullptr)
            tracer_->bindNames(&deployment_.names());
    }

    BlockRegistry& blocks() { return blocks_; }
    JobFactory& jobs() { return jobs_; }

    std::uint64_t requestsStarted() const { return started_; }
    std::uint64_t requestsCompleted() const { return completed_; }
    std::uint64_t requestsFailed() const { return failed_; }
    std::uint64_t requestsShed() const { return shed_; }
    std::uint64_t retriesSent() const { return retriesSent_; }
    std::uint64_t hedgesSent() const { return hedgesSent_; }
    /** Circuit-breaker trips summed over all edges. */
    std::uint64_t breakerTrips() const;
    /** Breakers currently not Closed (Open or HalfOpen); the
     *  breaker-recloses invariant checks this is zero post-run. */
    std::size_t openBreakers() const;
    std::size_t activeRequests() const { return roots_.size(); }

    /**
     * Per-tier failure counters accumulated so far, rendered to a
     * name-keyed map (tiers with no recorded faults are omitted).
     * Internally the counters live in a dense id-indexed array; this
     * is the report-render boundary.
     */
    std::map<std::string, TierFaultStats> tierFaults() const;

    /** Blocks/hops force-released at request completion (should stay
     *  zero for well-formed path configurations). */
    std::uint64_t leakedBlocks() const { return leakedBlocks_; }
    std::uint64_t leakedHops() const { return leakedHops_; }

    /**
     * Writes the DISPATCHER snapshot section: request counters, RNG
     * positions, deterministic folds of the active-root map, dead-job
     * set, per-edge breaker + latency state, per-tier fault counters,
     * and the deployment's pool/cursor state (snapshot.h).
     */
    void saveState(snapshot::SnapshotWriter& writer) const;

    /** Validates the live (replayed) state against a snapshot's
     *  DISPATCHER section; throws SnapshotStateError on divergence. */
    void loadState(snapshot::SnapshotReader& reader) const;

  private:
    struct ForwardHop {
        const MicroserviceInstance* upstream = nullptr;
        const MicroserviceInstance* downstream = nullptr;
        ConnectionId conn = kNoConnection;
        ConnectionPool* pool = nullptr;
    };

    /** One send (original, retry, or hedge) of a managed hop. */
    struct Attempt {
        JobId jobId = 0;
        SimTime sentAt = 0;
        ConnectionId conn = kNoConnection;
        bool live = true;
    };

    /** Per-(root, node) state of a managed hop.  `policy` doubles as
     *  the "engaged" flag; reset() recycles the record in place,
     *  keeping the attempts vector's capacity. */
    struct HopState {
        const fault::EdgePolicy* policy = nullptr;
        MicroserviceInstance* from = nullptr;
        /** Interned id of the downstream service. */
        std::uint32_t serviceId = 0xFFFFFFFFu;
        /** Pristine copy for minting retry/hedge attempts. */
        JobPtr prototype;
        std::vector<Attempt> attempts;
        int liveAttempts = 0;
        int retriesLeft = 0;
        int hedgesLeft = 0;
        bool done = false;
        EventHandle timeoutEvent;
        EventHandle hedgeEvent;
        EventHandle resendEvent;

        void
        reset()
        {
            policy = nullptr;
            from = nullptr;
            serviceId = 0xFFFFFFFFu;
            prototype.reset();
            attempts.clear();
            liveAttempts = 0;
            retriesLeft = 0;
            hedgesLeft = 0;
            done = false;
            timeoutEvent = EventHandle();
            hedgeEvent = EventHandle();
            resendEvent = EventHandle();
        }
    };

    /** Per-(upstream, downstream) service-edge runtime state. */
    struct EdgeRuntime {
        std::unique_ptr<fault::CircuitBreaker> breaker;
        /** Winner hop latencies (seconds); feeds adaptive hedging. */
        stats::PercentileRecorder hopLatency;
    };

    /**
     * Per-root-request routing state.  RootStates are recycled
     * through a free list: every container below keeps its capacity
     * across requests, so steady-state request turnover performs no
     * heap allocation here.
     */
    struct RootState {
        int variant = 0;
        /** Sticky routing, indexed by interned service id. */
        std::vector<MicroserviceInstance*> affinity;
        /** Fan-in counters: (node id, copies arrived) pairs. */
        std::vector<std::pair<int, int>> syncArrived;
        /** Outstanding pooled connections. */
        std::vector<ForwardHop> hops;
        /** Managed-hop records indexed by path-node id; an entry is
         *  engaged while its policy pointer is set. */
        std::vector<HopState> hopStates;
        /** Node ids with engaged hopStates entries (reset targets). */
        std::vector<int> engagedHops;
        int terminalsDone = 0;
        int clientTag = -1;
        SimTime created = 0;
        /** Interned id of the front service. */
        std::uint32_t frontId = 0xFFFFFFFFu;
    };

    /** Nullable lookup; null after the request completed or failed. */
    RootState* findRoot(JobId root);
    /** Takes a recycled (or fresh) RootState sized for a variant
     *  with @p node_count nodes. */
    std::unique_ptr<RootState> acquireRoot(std::size_t node_count);
    /** Returns a finished RootState to the free list, dropping its
     *  job references. */
    void recycleRoot(std::unique_ptr<RootState> state);
    MicroserviceInstance& selectInstance(RootState& state,
                                         const PathNode& node);
    void routeToNode(JobPtr job, int node_id,
                     MicroserviceInstance* from);
    void deliver(JobPtr job, int node_id, MicroserviceInstance& target);
    void onNodeComplete(JobPtr job, MicroserviceInstance& inst);
    void finishRequest(JobPtr job, MicroserviceInstance& last);
    void completeAtClient(JobPtr job);

    // Resilience machinery -------------------------------------------
    EdgeRuntime& edgeRuntime(std::uint32_t from_id, std::uint32_t to_id,
                             const fault::EdgePolicy& policy);
    void startManagedHop(RootState& state, JobPtr job, int node_id,
                         MicroserviceInstance* from,
                         const fault::EdgePolicy& policy);
    void launchAttempt(JobId root, int node_id, JobPtr job);
    void onHopTimeout(JobId root, int node_id);
    void scheduleResend(JobId root, int node_id);
    void onHedgeTimer(JobId root, int node_id);
    SimTime resolveHedgeDelay(EdgeRuntime& edge,
                              const fault::EdgePolicy& policy);
    /**
     * Extra delay for one resilience timer (timeout / hedge /
     * retry-backoff), decided by the simulator's attached Chooser
     * (TimerNudge choice points).  Zero with no chooser, with the
     * kind disabled, or when the chooser answers 0, so the default
     * schedule is unchanged.
     */
    SimTime timerNudge(const char* label);
    /** Job-level failure reported by an instance (crash, refusal,
     *  bounded-queue rejection). */
    void onJobFailed(JobPtr job, MicroserviceInstance& inst,
                     fault::FailReason reason);
    /** Message dropped in transit toward a managed hop: consumes a
     *  retry before failing the request. */
    void onTransferDropped(JobPtr job, int node_id,
                           hw::DropReason reason);
    /** Message dropped on an unmanaged edge (client legs, pooled
     *  response legs): fails the whole request, counting an
     *  unreachable verdict against the resolved tier. */
    void onEdgeDrop(JobId root, hw::DropReason reason,
                    std::uint32_t tier_id);
    /**
     * Routes one attempt failure: consumes a retry, lets surviving
     * racer attempts run, or fails the whole request.
     */
    void failAttemptOrRequest(JobId root, int node_id, JobId job_id,
                              fault::FailReason reason,
                              std::uint32_t tier_id);
    /** Releases the pooled connection an attempt holds (if any). */
    void releaseAttemptConn(RootState& state, Attempt& attempt);
    /** @p tier_id kNone charges the error to the front service. */
    void failRequest(JobId root, fault::FailReason reason,
                     std::uint32_t tier_id);
    void cancelHopEvents(RootState& state);
    void decrementInflight(std::uint32_t front_id);
    /** Id-indexed fault counters, grown on demand. */
    TierFaultStats& tierFault(std::uint32_t tier_id);

    /** Deterministic fold of the active-root map, dead-job set,
     *  per-edge runtime state, and per-tier fault counters
     *  (snapshot save + validate share this). */
    std::uint64_t activeStateDigest() const;

    Simulator& sim_;
    hw::Network& network_;
    PathTree& tree_;
    Deployment& deployment_;
    random::RngStream rng_;
    /** Backoff jitter; only drawn when a retry policy asks for it. */
    random::RngStream retryRng_;
    JobFactory jobs_;
    BlockRegistry blocks_;
    std::map<JobId, std::unique_ptr<RootState>> roots_;
    /** Finished RootStates awaiting reuse (capacity retained). */
    std::vector<std::unique_ptr<RootState>> rootPool_;
    /** Edge-keyed breaker + latency state, keyed by packed
     *  (from id << 32 | to id).  Only iterated for order-independent
     *  sums, so the unordered layout cannot affect determinism. */
    std::unordered_map<std::uint64_t, EdgeRuntime> edges_;
    /** Cancelled attempt jobs whose late results must be dropped. */
    std::set<JobId> deadJobs_;
    /** Admission control: active roots per front-service id. */
    std::vector<int> inflightByFront_;
    /** Fault counters indexed by interned tier id. */
    std::vector<TierFaultStats> tierFaults_;
    TraceRecorder* tracer_ = nullptr;
    std::function<void(const Job&, SimTime)> onRequestComplete_;
    std::function<void(JobId, int, SimTime, fault::FailReason)>
        onRequestFailed_;
    std::function<void(std::uint32_t, double)> tierLatencyHook_;
    std::uint64_t started_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t failed_ = 0;
    std::uint64_t shed_ = 0;
    std::uint64_t retriesSent_ = 0;
    std::uint64_t hedgesSent_ = 0;
    std::uint64_t leakedBlocks_ = 0;
    std::uint64_t leakedHops_ = 0;
};

}  // namespace uqsim

#endif  // UQSIM_CORE_APP_DISPATCHER_H_
