#ifndef UQSIM_CORE_APP_DISPATCHER_H_
#define UQSIM_CORE_APP_DISPATCHER_H_

/**
 * @file
 * The centralized scheduler dispatching requests to microservice
 * instances (paper §I, §III).
 *
 * The dispatcher walks each request through its sampled path
 * variant: it selects target instances (pinned, sticky per root
 * request, or load-balanced), moves messages through the network and
 * per-machine IRQ services, enforces fan-in synchronization,
 * acquires and releases inter-tier pooled connections, and applies
 * enter/leave blocking operations.
 *
 * Connection-pool protocol: a *forward* hop from instance A to
 * instance B acquires a connection from pool(A→B) and records it
 * under the root request.  When a later node routes from B back to
 * A, that recorded connection carries the response and is released
 * when the response arrives at A (HTTP/1.1-style reuse).  A leaf
 * node that never routes back releases its connection when the node
 * completes.
 */

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "uqsim/core/app/deployment.h"
#include "uqsim/core/app/path_tree.h"
#include "uqsim/core/app/trace.h"
#include "uqsim/core/engine/simulator.h"
#include "uqsim/core/service/connection.h"
#include "uqsim/core/service/job.h"
#include "uqsim/hw/network.h"

namespace uqsim {

/** Central request router. */
class Dispatcher {
  public:
    /**
     * Wires every deployed instance's completion callback to this
     * dispatcher and resolves the path tree's execution-path names
     * against the deployment's models.  Deploy all instances before
     * constructing the dispatcher.
     */
    Dispatcher(Simulator& sim, hw::Network& network, PathTree& tree,
               Deployment& deployment);

    Dispatcher(const Dispatcher&) = delete;
    Dispatcher& operator=(const Dispatcher&) = delete;

    /**
     * Begins a client request.  @p front is the front-end instance
     * the client connection terminates at; @p client_conn is that
     * connection's id, which must come from the deployment's
     * ConnectionIdAllocator so it cannot collide with pooled
     * connection ids.  The root node of the sampled variant must
     * belong to @p front's service.
     */
    void startRequest(JobPtr job, MicroserviceInstance& front,
                      ConnectionId client_conn);

    /** Fired when the response reaches the client. */
    void setOnRequestComplete(
        std::function<void(const Job&, SimTime)> callback)
    {
        onRequestComplete_ = std::move(callback);
    }

    /**
     * Fired when a job leaves a tier, with the per-tier latency in
     * seconds (queueing + processing at that tier).  Used by the
     * power manager.
     */
    void setTierLatencyHook(
        std::function<void(const std::string&, double)> hook)
    {
        tierLatencyHook_ = std::move(hook);
    }

    /**
     * Attaches a trace recorder; pass nullptr to detach.  The
     * recorder receives start/enter/leave/complete events for the
     * root requests its sampler selects.
     */
    void attachTracer(TraceRecorder* tracer) { tracer_ = tracer; }

    BlockRegistry& blocks() { return blocks_; }
    JobFactory& jobs() { return jobs_; }

    std::uint64_t requestsStarted() const { return started_; }
    std::uint64_t requestsCompleted() const { return completed_; }
    std::size_t activeRequests() const { return roots_.size(); }

    /** Blocks/hops force-released at request completion (should stay
     *  zero for well-formed path configurations). */
    std::uint64_t leakedBlocks() const { return leakedBlocks_; }
    std::uint64_t leakedHops() const { return leakedHops_; }

  private:
    struct ForwardHop {
        const MicroserviceInstance* upstream = nullptr;
        const MicroserviceInstance* downstream = nullptr;
        ConnectionId conn = kNoConnection;
        ConnectionPool* pool = nullptr;
    };

    struct RootState {
        int variant = 0;
        /** Sticky routing: service name -> chosen instance. */
        std::map<std::string, MicroserviceInstance*> affinity;
        /** Fan-in counters: node id -> copies arrived. */
        std::map<int, int> syncArrived;
        /** Outstanding pooled connections. */
        std::vector<ForwardHop> hops;
        int terminalsDone = 0;
    };

    RootState& rootState(JobId root);
    MicroserviceInstance& selectInstance(RootState& state,
                                         const PathNode& node);
    void routeToNode(JobPtr job, int node_id,
                     MicroserviceInstance* from);
    void deliver(JobPtr job, int node_id, MicroserviceInstance& target);
    void onNodeComplete(JobPtr job, MicroserviceInstance& inst);
    void finishRequest(JobPtr job, MicroserviceInstance& last);
    void completeAtClient(JobPtr job);

    Simulator& sim_;
    hw::Network& network_;
    PathTree& tree_;
    Deployment& deployment_;
    random::RngStream rng_;
    JobFactory jobs_;
    BlockRegistry blocks_;
    std::map<JobId, RootState> roots_;
    TraceRecorder* tracer_ = nullptr;
    std::function<void(const Job&, SimTime)> onRequestComplete_;
    std::function<void(const std::string&, double)> tierLatencyHook_;
    std::uint64_t started_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t leakedBlocks_ = 0;
    std::uint64_t leakedHops_ = 0;
};

}  // namespace uqsim

#endif  // UQSIM_CORE_APP_DISPATCHER_H_
