#ifndef UQSIM_CORE_APP_PATH_TREE_H_
#define UQSIM_CORE_APP_PATH_TREE_H_

/**
 * @file
 * Inter-microservice paths (path.json).
 *
 * A path is a DAG of path nodes.  Each node names a microservice,
 * optionally pins the execution path within it, and lists its
 * children; after a node completes, µqSim copies the job for each
 * child and sends it to a matching instance (paper §III-C).  A node
 * with multiple parents expresses synchronization: a job enters it
 * only after all parent copies complete (fan-in).  Nodes carry
 * enter/leave operations encoding blocking behavior.
 *
 * Control-flow variability across requests is expressed as multiple
 * path variants with probabilities (e.g. cache hit vs. miss in the
 * 3-tier application).
 */

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "uqsim/json/json_value.h"
#include "uqsim/random/rng.h"

namespace uqsim {

/** Blocking operation attached to a path node. */
struct PathNodeOp {
    enum class Kind {
        /** Block the receive side of the connection the job arrived
         *  on at the current instance. */
        BlockConnection,
        /** Unblock the connections recorded for this root request at
         *  the named service (empty = all). */
        UnblockConnection,
    };

    Kind kind = Kind::BlockConnection;
    /** Service filter for UnblockConnection. */
    std::string service;

    static PathNodeOp fromJson(const json::JsonValue& doc);
};

/** One node of an inter-microservice path. */
struct PathNode {
    int id = 0;
    /** Microservice this node executes on. */
    std::string service;
    /** Interned id of `service` (resolveServiceIds); the dispatcher
     *  hot path routes by this id, never by the string. */
    std::uint32_t serviceId = 0xFFFFFFFFu;
    /** Execution path name within the service; empty = sample. */
    std::string pathName;
    /** Resolved execution path id (resolveExecPaths); -1 = sample. */
    int execPathId = -1;
    /** Children entered after this node completes (fan-out). */
    std::vector<int> children;
    /** Number of parents (computed); > 1 means synchronization. */
    int fanIn = 0;
    /** Operations applied when a job enters / leaves the node. */
    std::vector<PathNodeOp> onEnter;
    std::vector<PathNodeOp> onLeave;
    /** Message size for the hop into this node; 0 keeps job size. */
    std::uint32_t requestBytes = 0;
    /** Pin to a specific instance index; -1 = load balance. */
    int instanceIndex = -1;

    static PathNode fromJson(const json::JsonValue& doc);
};

/** One complete path DAG with a selection probability. */
struct PathVariant {
    double probability = 1.0;
    std::vector<PathNode> nodes;
    int rootId = -1;
    /** Number of terminal (childless) nodes. */
    int terminalCount = 0;

    /** Computes fanIn/root/terminals and validates the DAG. */
    void finalize();
};

/** All path variants of an application. */
class PathTree {
  public:
    PathTree() = default;

    /** Parses a path.json document:
     *
     *  {"paths": [{"probability": 1.0, "nodes": [...]}, ...]}
     *
     * A document with a top-level "nodes" array is treated as a
     * single variant with probability 1. */
    static PathTree fromJson(const json::JsonValue& doc);

    /** Adds a variant programmatically; finalize() is called. */
    int addVariant(PathVariant variant);

    std::size_t variantCount() const { return variants_.size(); }
    const PathVariant& variant(int index) const;

    /** Samples a variant index by probability. */
    int sampleVariant(random::Rng& rng) const;

    /** The node @p node_id of variant @p variant_index. */
    const PathNode& node(int variant_index, int node_id) const;

    /** All services referenced by any variant (deduplicated). */
    std::vector<std::string> referencedServices() const;

    /**
     * Resolves each node's pathName to an execution path id using
     * @p resolver(service, path_name).  Nodes with an empty pathName
     * keep execPathId = -1 (sampled at accept time).
     */
    void resolveExecPaths(
        const std::function<int(const std::string&, const std::string&)>&
            resolver);

    /**
     * Resolves each node's service name to an interned id using
     * @p interner(service), filling PathNode::serviceId.
     */
    void resolveServiceIds(
        const std::function<std::uint32_t(const std::string&)>& interner);

  private:
    std::vector<PathVariant> variants_;
    std::vector<double> cumulative_;

    void rebuildCumulative();
};

}  // namespace uqsim

#endif  // UQSIM_CORE_APP_PATH_TREE_H_
