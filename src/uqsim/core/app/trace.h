#ifndef UQSIM_CORE_APP_TRACE_H_
#define UQSIM_CORE_APP_TRACE_H_

/**
 * @file
 * Per-request distributed tracing.
 *
 * One of the paper's motivations for microservices is that bugs can
 * be isolated to specific components; the simulator counterpart is a
 * request trace: one span per path node a request visits, with enter
 * and leave timestamps.  The recorder samples a fraction of root
 * requests (deterministically, by root id) and keeps the most recent
 * traces; spans can be rendered as an ASCII waterfall for latency
 * debugging.
 *
 * Spans store the interned service id, not the name — the recorder
 * sits on the dispatcher's hot path and must not copy strings per
 * hop.  Bind a NameInterner (the dispatcher does this in
 * attachTracer) to render names at inspection time.
 */

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "uqsim/core/engine/sim_time.h"
#include "uqsim/core/service/job.h"
#include "uqsim/core/service/name_interner.h"

namespace uqsim {

/** Sentinel for "still open / in flight" timestamps.  Valid
 *  SimTimes are >= 0, so 0 itself stays a legitimate close time. */
inline constexpr SimTime kTraceOpen = -1;

/** One tier visit of one request. */
struct TraceSpan {
    JobId job = 0;
    /** Interned service id (render via TraceRecorder::serviceName). */
    std::uint32_t serviceId = 0xFFFFFFFFu;
    int pathNode = -1;
    SimTime enter = 0;
    /** kTraceOpen while the span is still open. */
    SimTime leave = kTraceOpen;
};

/** A sampled request's spans, in enter order. */
struct RequestTrace {
    JobId root = 0;
    SimTime started = 0;
    SimTime completed = kTraceOpen;  ///< kTraceOpen while in flight
    std::vector<TraceSpan> spans;
};

/** Samples and stores request traces. */
class TraceRecorder {
  public:
    /**
     * @param sampling_rate  fraction of root requests traced
     *                       (deterministic in the root id)
     * @param capacity       completed traces retained (FIFO)
     */
    explicit TraceRecorder(double sampling_rate = 0.01,
                           std::size_t capacity = 128);

    /** True when @p root is selected by the sampler. */
    bool sampled(JobId root) const;

    /** Binds the interner used to render span service names.  The
     *  dispatcher calls this from attachTracer. */
    void bindNames(const NameInterner* names) { names_ = names; }

    /** Renders a span's service id ("svc#N" when unbound). */
    std::string serviceName(std::uint32_t service_id) const;

    // Hooks driven by the Dispatcher ---------------------------------

    void recordStart(const Job& job, SimTime now);
    void recordEnter(const Job& job, std::uint32_t service_id,
                     SimTime now);
    void recordLeave(const Job& job, SimTime now);
    void recordComplete(const Job& job, SimTime now);

    // Inspection -------------------------------------------------

    /** Completed traces, oldest first. */
    const std::deque<RequestTrace>& traces() const { return done_; }

    /** Traces still in flight (diagnostics). */
    std::size_t activeTraces() const { return active_.size(); }

    /**
     * ASCII waterfall of one trace: one row per span with an
     * offset/duration bar, e.g.
     *
     *   nginx      [0]      0.0us +---------------------|  210.3us
     *   memcached  [1]     80.1us      +----|             41.2us
     */
    std::string waterfall(const RequestTrace& trace,
                          int width = 48) const;

  private:
    double samplingRate_;
    std::size_t capacity_;
    const NameInterner* names_ = nullptr;
    std::map<JobId, RequestTrace> active_;
    std::deque<RequestTrace> done_;
};

}  // namespace uqsim

#endif  // UQSIM_CORE_APP_TRACE_H_
