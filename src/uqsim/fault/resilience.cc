#include "uqsim/fault/resilience.h"

#include <stdexcept>

#include "uqsim/json/validation.h"
#include "uqsim/snapshot/snapshot.h"

namespace uqsim {
namespace fault {

const char*
failReasonName(FailReason reason)
{
    switch (reason) {
      case FailReason::Crash:
        return "crash";
      case FailReason::Refused:
        return "refused";
      case FailReason::QueueFull:
        return "queue_full";
      case FailReason::Shed:
        return "shed";
      case FailReason::NetworkLoss:
        return "network_loss";
      case FailReason::HopTimeout:
        return "hop_timeout";
      case FailReason::BreakerOpen:
        return "breaker_open";
      case FailReason::Unreachable:
        return "unreachable";
    }
    return "unknown";
}

CircuitBreakerConfig
CircuitBreakerConfig::fromJson(const json::JsonValue& doc)
{
    json::requireKnownKeys(doc,
                           {"window", "failure_ratio", "min_samples",
                            "open_s", "half_open_probes"},
                           "breaker policy");
    CircuitBreakerConfig config;
    config.enabled = true;
    config.windowSize = doc.getOr("window", config.windowSize);
    config.failureRatio =
        doc.getOr("failure_ratio", config.failureRatio);
    config.minSamples = doc.getOr("min_samples", config.minSamples);
    config.openSeconds = doc.getOr("open_s", config.openSeconds);
    config.halfOpenProbes =
        doc.getOr("half_open_probes", config.halfOpenProbes);
    if (config.windowSize <= 0)
        throw json::JsonError("breaker window must be > 0");
    if (!(config.failureRatio > 0.0 && config.failureRatio <= 1.0))
        throw json::JsonError("breaker failure_ratio must be in (0, 1]");
    if (config.openSeconds <= 0.0)
        throw json::JsonError("breaker open_s must be > 0");
    if (config.halfOpenProbes <= 0)
        throw json::JsonError("breaker half_open_probes must be > 0");
    return config;
}

CircuitBreaker::CircuitBreaker(const CircuitBreakerConfig& config)
    : config_(config)
{
}

bool
CircuitBreaker::allowRequest(SimTime now)
{
    switch (state_) {
      case State::Closed:
        return true;
      case State::Open:
        if (now - openedAt_ <
            secondsToSimTime(config_.openSeconds)) {
            return false;
        }
        state_ = State::HalfOpen;
        probesInFlight_ = 0;
        probeSuccesses_ = 0;
        [[fallthrough]];
      case State::HalfOpen:
        if (probesInFlight_ >= config_.halfOpenProbes)
            return false;
        ++probesInFlight_;
        return true;
    }
    return true;
}

void
CircuitBreaker::recordSuccess(SimTime now)
{
    (void)now;
    if (state_ == State::HalfOpen) {
        ++probeSuccesses_;
        if (probeSuccesses_ >= config_.halfOpenProbes) {
            state_ = State::Closed;
            window_.clear();
            windowFailures_ = 0;
        }
        return;
    }
    if (state_ != State::Closed)
        return;
    window_.push_back(false);
    if (static_cast<int>(window_.size()) > config_.windowSize) {
        if (window_.front())
            --windowFailures_;
        window_.pop_front();
    }
}

void
CircuitBreaker::recordFailure(SimTime now)
{
    if (state_ == State::HalfOpen) {
        // A failed probe re-opens immediately.
        trip(now);
        return;
    }
    if (state_ != State::Closed)
        return;
    window_.push_back(true);
    ++windowFailures_;
    if (static_cast<int>(window_.size()) > config_.windowSize) {
        if (window_.front())
            --windowFailures_;
        window_.pop_front();
    }
    if (static_cast<int>(window_.size()) >= config_.minSamples &&
        static_cast<double>(windowFailures_) /
                static_cast<double>(window_.size()) >=
            config_.failureRatio) {
        trip(now);
    }
}

std::uint64_t
CircuitBreaker::stateDigest() const
{
    snapshot::Digest digest;
    digest.u32(static_cast<std::uint32_t>(state_));
    digest.u64(window_.size());
    for (const bool failed : window_)
        digest.boolean(failed);
    digest.i64(windowFailures_);
    digest.i64(openedAt_);
    digest.i64(probesInFlight_);
    digest.i64(probeSuccesses_);
    digest.u64(trips_);
    return digest.value();
}

void
CircuitBreaker::trip(SimTime now)
{
    state_ = State::Open;
    openedAt_ = now;
    ++trips_;
    window_.clear();
    windowFailures_ = 0;
    probesInFlight_ = 0;
    probeSuccesses_ = 0;
}

EdgePolicy
EdgePolicy::fromJson(const json::JsonValue& doc)
{
    json::requireKnownKeys(
        doc,
        {"timeout_s", "retries", "backoff_base_s", "backoff_mult",
         "jitter", "hedge_delay_s", "hedge_percentile", "hedge_max",
         "hedge_min_samples", "breaker"},
        "edge policy");
    EdgePolicy policy;
    policy.timeoutSeconds = doc.getOr("timeout_s", 0.0);
    policy.retries = doc.getOr("retries", 0);
    policy.backoffBaseSeconds = doc.getOr("backoff_base_s", 0.0);
    policy.backoffMultiplier =
        doc.getOr("backoff_mult", policy.backoffMultiplier);
    policy.jitter = doc.getOr("jitter", 0.0);
    policy.hedgeDelaySeconds = doc.getOr("hedge_delay_s", 0.0);
    policy.hedgePercentile = doc.getOr("hedge_percentile", 0.0);
    policy.hedgeMax = doc.getOr("hedge_max", policy.hedgeMax);
    policy.hedgeMinSamples =
        doc.getOr("hedge_min_samples", policy.hedgeMinSamples);
    if (const json::JsonValue* breaker = doc.find("breaker"))
        policy.breaker = CircuitBreakerConfig::fromJson(*breaker);
    if (policy.retries < 0)
        throw json::JsonError("policy retries must be >= 0");
    if (policy.hedgeMax < 0)
        throw json::JsonError("policy hedge_max must be >= 0");
    if (policy.hedgePercentile < 0.0 || policy.hedgePercentile >= 1.0)
        throw json::JsonError(
            "policy hedge_percentile must be a fraction in [0, 1)");
    if (policy.retries > 0 && policy.timeoutSeconds <= 0.0)
        throw json::JsonError("policy retries require timeout_s > 0");
    return policy;
}

AdmissionConfig
AdmissionConfig::fromJson(const json::JsonValue& doc)
{
    json::requireKnownKeys(doc, {"max_inflight"}, "admission policy");
    AdmissionConfig config;
    config.maxInflight = doc.getOr("max_inflight", 0);
    if (config.maxInflight < 0)
        throw json::JsonError("admission max_inflight must be >= 0");
    return config;
}

}  // namespace fault
}  // namespace uqsim
