#ifndef UQSIM_FAULT_FAULT_SCHEDULER_H_
#define UQSIM_FAULT_FAULT_SCHEDULER_H_

/**
 * @file
 * Executes a FaultPlan against a deployed simulation.
 *
 * The scheduler turns fault specs into simulator events at start():
 * scripted crashes become (crash, recover) event pairs, stochastic
 * crashes become a chain of exponential up/down intervals drawn from
 * a per-instance seed-split stream ("fault/<instance>"), slow-node
 * windows toggle the instance's processing-time factor, and network
 * windows toggle cluster-wide degradation in hw::Network.
 *
 * Topology kinds (link_down, link_degraded, switch_down, partition)
 * drive per-link and partition state on the cluster's FlowModel;
 * planning one against a ConstantModel run is a configuration error
 * reported at start().  Stochastic link timelines draw from
 * "fault/link/<name>" streams; partition groups name machines, which
 * are resolved (and validated) against the cluster at start().
 *
 * Determinism: each stochastic timeline draws only from its own
 * stream, so adding a fault never perturbs service-time or client
 * arrival sampling, and an empty plan schedules nothing at all.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "uqsim/core/app/deployment.h"
#include "uqsim/core/engine/simulator.h"
#include "uqsim/fault/fault_plan.h"
#include "uqsim/hw/flow_model.h"
#include "uqsim/hw/network.h"
#include "uqsim/random/rng.h"

namespace uqsim {
namespace fault {

/** Drives fault injection for one run. */
class FaultScheduler {
  public:
    FaultScheduler(Simulator& sim, Deployment& deployment,
                   hw::Network& network, const FaultPlan& plan);

    FaultScheduler(const FaultScheduler&) = delete;
    FaultScheduler& operator=(const FaultScheduler&) = delete;

    /**
     * Schedules all fault events.  @p horizonSeconds bounds
     * stochastic crash timelines (no events are generated past it).
     */
    void start(double horizonSeconds);

    std::uint64_t crashesInjected() const { return crashes_; }

    /**
     * Writes the FAULTS snapshot section: injected-crash counter,
     * horizon, and every stochastic timeline stream's RNG position
     * (streams are created in plan order at start(), so the order is
     * deterministic).
     */
    void saveState(snapshot::SnapshotWriter& writer) const;

    /** Validates the live (replayed) state against a snapshot's
     *  FAULTS section; throws SnapshotStateError on divergence. */
    void loadState(snapshot::SnapshotReader& reader) const;

  private:
    /** Instances matching a spec's instance/service target. */
    std::vector<MicroserviceInstance*>
    resolveTargets(const FaultSpec& spec) const;

    /**
     * Onset shift for one fault window, decided by the simulator's
     * attached Chooser (choice.h).  Zero with no chooser, with the
     * FaultJitter kind disabled, or when the chooser answers 0 — so
     * default runs and all-default schedules are unshifted.  The
     * shift moves the *whole* window (onset and close together),
     * preserving its duration — a shifted window can therefore never
     * close before it opens.  @p windowEndSeconds is the window's
     * last scripted event: the shift is clamped so that event never
     * lands past the start() horizon (a window already at or past
     * the horizon is not shifted at all).
     */
    SimTime windowShift(const char* label, double windowEndSeconds);

    /** The cluster's FlowModel; throws std::runtime_error naming
     *  @p kind when the run uses a model without link state. */
    hw::FlowModel& requireFlowModel(const char* kind) const;
    /** Link id for @p name; unknown names throw with a did-you-mean
     *  suggestion over the fabric's link names. */
    int resolveLinkId(hw::FlowModel& flow,
                      const std::string& name) const;

    void scheduleScriptedCrash(MicroserviceInstance& target,
                               const FaultSpec& spec, SimTime shift);
    void scheduleStochasticCrash(MicroserviceInstance& target,
                                 const FaultSpec& spec, SimTime shift);
    void scheduleNextStochasticFailure(MicroserviceInstance& target,
                                       const FaultSpec& spec,
                                       random::Rng& rng,
                                       SimTime shift);
    void scheduleSlowWindow(MicroserviceInstance& target,
                            const FaultSpec& spec, SimTime shift);
    void scheduleNetworkWindow(const FaultSpec& spec, SimTime shift);
    void scheduleLinkWindow(const FaultSpec& spec, SimTime shift);
    void scheduleStochasticLink(hw::FlowModel& flow, int linkId,
                                const FaultSpec& spec, SimTime shift);
    void scheduleNextLinkFailure(hw::FlowModel& flow, int linkId,
                                 const FaultSpec& spec,
                                 random::Rng& rng, SimTime shift);
    void scheduleLinkDegradedWindow(const FaultSpec& spec,
                                    SimTime shift);
    void scheduleSwitchWindow(const FaultSpec& spec, SimTime shift);
    void schedulePartitionWindow(const FaultSpec& spec, SimTime shift);

    void crash(MicroserviceInstance& target);

    Simulator& sim_;
    Deployment& deployment_;
    hw::Network& network_;
    FaultPlan plan_;
    SimTime horizon_ = 0;
    /** One stream per stochastic timeline; stable addresses for the
     *  event chain. */
    std::vector<std::unique_ptr<random::RngStream>> streams_;
    std::uint64_t crashes_ = 0;
};

}  // namespace fault
}  // namespace uqsim

#endif  // UQSIM_FAULT_FAULT_SCHEDULER_H_
