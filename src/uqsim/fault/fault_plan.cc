#include "uqsim/fault/fault_plan.h"

#include "uqsim/json/validation.h"

namespace uqsim {
namespace fault {

namespace {

FaultSpec::Kind
kindFromString(const std::string& name)
{
    if (name == "crash")
        return FaultSpec::Kind::Crash;
    if (name == "slow")
        return FaultSpec::Kind::Slow;
    if (name == "network")
        return FaultSpec::Kind::Network;
    if (name == "link_down")
        return FaultSpec::Kind::LinkDown;
    if (name == "link_degraded")
        return FaultSpec::Kind::LinkDegraded;
    if (name == "switch_down")
        return FaultSpec::Kind::SwitchDown;
    if (name == "partition")
        return FaultSpec::Kind::Partition;
    std::string message = "unknown fault type \"" + name + "\"";
    const std::string suggestion = json::suggestClosest(
        name, {"crash", "slow", "network", "link_down",
               "link_degraded", "switch_down", "partition"});
    if (!suggestion.empty())
        message += "; did you mean \"" + suggestion + "\"?";
    throw json::JsonError(message);
}

/** Shared window validation for the scripted topology kinds. */
void
requireWindow(const FaultSpec& spec, const char* kind)
{
    if (spec.endSeconds <= spec.startSeconds) {
        throw json::JsonError(std::string(kind) +
                              " fault end_s must exceed start_s");
    }
}

}  // namespace

FaultSpec
FaultSpec::fromJson(const json::JsonValue& doc)
{
    FaultSpec spec;
    spec.kind = kindFromString(doc.at("type").asString());
    switch (spec.kind) {
      case Kind::Crash:
        json::requireKnownKeys(doc,
                               {"type", "instance", "service", "at_s",
                                "recover_s", "mtbf_s", "mttr_s"},
                               "crash fault");
        spec.instance = doc.getOr("instance", std::string());
        spec.service = doc.getOr("service", std::string());
        spec.atSeconds = doc.getOr("at_s", 0.0);
        spec.recoverSeconds = doc.getOr("recover_s", 0.0);
        spec.mtbfSeconds = doc.getOr("mtbf_s", 0.0);
        spec.mttrSeconds = doc.getOr("mttr_s", 0.0);
        if (spec.instance.empty() == spec.service.empty())
            throw json::JsonError(
                "crash fault needs exactly one of \"instance\" or "
                "\"service\"");
        if (spec.stochastic()) {
            if (spec.mttrSeconds <= 0.0)
                throw json::JsonError(
                    "stochastic crash fault needs mttr_s > 0");
        } else if (spec.recoverSeconds > 0.0 &&
                   spec.recoverSeconds <= spec.atSeconds) {
            throw json::JsonError(
                "crash fault recover_s must exceed at_s");
        }
        break;
      case Kind::Slow:
        json::requireKnownKeys(doc,
                               {"type", "instance", "service",
                                "start_s", "end_s", "factor"},
                               "slow fault");
        spec.instance = doc.getOr("instance", std::string());
        spec.service = doc.getOr("service", std::string());
        spec.startSeconds = doc.getOr("start_s", 0.0);
        spec.endSeconds = doc.getOr("end_s", 0.0);
        spec.factor = doc.getOr("factor", 1.0);
        if (spec.instance.empty() == spec.service.empty())
            throw json::JsonError(
                "slow fault needs exactly one of \"instance\" or "
                "\"service\"");
        if (spec.factor <= 0.0)
            throw json::JsonError("slow fault factor must be > 0");
        if (spec.endSeconds > 0.0 &&
            spec.endSeconds <= spec.startSeconds)
            throw json::JsonError(
                "slow fault end_s must exceed start_s");
        break;
      case Kind::Network:
        json::requireKnownKeys(doc,
                               {"type", "start_s", "end_s",
                                "extra_latency_us", "loss_prob"},
                               "network fault");
        spec.startSeconds = doc.getOr("start_s", 0.0);
        spec.endSeconds = doc.getOr("end_s", 0.0);
        spec.extraLatencySeconds =
            doc.getOr("extra_latency_us", 0.0) * 1e-6;
        spec.lossProbability = doc.getOr("loss_prob", 0.0);
        if (spec.lossProbability < 0.0 || spec.lossProbability > 1.0)
            throw json::JsonError(
                "network fault loss_prob must be in [0, 1]");
        if (spec.endSeconds > 0.0 &&
            spec.endSeconds <= spec.startSeconds)
            throw json::JsonError(
                "network fault end_s must exceed start_s");
        break;
      case Kind::LinkDown:
        json::requireKnownKeys(doc,
                               {"type", "link", "start_s", "end_s",
                                "mtbf_s", "mttr_s"},
                               "link_down fault");
        spec.link = doc.getOr("link", std::string());
        spec.startSeconds = doc.getOr("start_s", 0.0);
        spec.endSeconds = doc.getOr("end_s", 0.0);
        spec.mtbfSeconds = doc.getOr("mtbf_s", 0.0);
        spec.mttrSeconds = doc.getOr("mttr_s", 0.0);
        if (spec.link.empty())
            throw json::JsonError("link_down fault needs \"link\"");
        if (spec.stochastic()) {
            if (spec.mttrSeconds <= 0.0)
                throw json::JsonError(
                    "stochastic link_down fault needs mttr_s > 0");
        } else {
            requireWindow(spec, "link_down");
        }
        break;
      case Kind::LinkDegraded:
        json::requireKnownKeys(doc,
                               {"type", "link", "start_s", "end_s",
                                "capacity_factor", "latency_factor"},
                               "link_degraded fault");
        spec.link = doc.getOr("link", std::string());
        spec.startSeconds = doc.getOr("start_s", 0.0);
        spec.endSeconds = doc.getOr("end_s", 0.0);
        spec.capacityFactor = doc.getOr("capacity_factor", 1.0);
        spec.latencyFactor = doc.getOr("latency_factor", 1.0);
        if (spec.link.empty())
            throw json::JsonError(
                "link_degraded fault needs \"link\"");
        if (!(spec.capacityFactor > 0.0) || spec.capacityFactor > 1.0)
            throw json::JsonError(
                "link_degraded capacity_factor must be in (0, 1]");
        if (spec.latencyFactor < 1.0)
            throw json::JsonError(
                "link_degraded latency_factor must be >= 1");
        requireWindow(spec, "link_degraded");
        break;
      case Kind::SwitchDown:
        json::requireKnownKeys(doc,
                               {"type", "switch", "start_s", "end_s"},
                               "switch_down fault");
        spec.switchName = doc.getOr("switch", std::string());
        spec.startSeconds = doc.getOr("start_s", 0.0);
        spec.endSeconds = doc.getOr("end_s", 0.0);
        if (spec.switchName.empty())
            throw json::JsonError(
                "switch_down fault needs \"switch\"");
        requireWindow(spec, "switch_down");
        break;
      case Kind::Partition: {
        json::requireKnownKeys(doc,
                               {"type", "groups", "start_s", "end_s"},
                               "partition fault");
        spec.startSeconds = doc.getOr("start_s", 0.0);
        spec.endSeconds = doc.getOr("end_s", 0.0);
        const json::JsonValue* groups = doc.find("groups");
        if (groups != nullptr) {
            for (const json::JsonValue& group : groups->asArray()) {
                std::vector<std::string> hosts;
                for (const json::JsonValue& host : group.asArray())
                    hosts.push_back(host.asString());
                if (hosts.empty())
                    throw json::JsonError(
                        "partition fault groups must be non-empty");
                spec.groups.push_back(std::move(hosts));
            }
        }
        if (spec.groups.size() < 2)
            throw json::JsonError(
                "partition fault needs at least two groups");
        requireWindow(spec, "partition");
        break;
      }
    }
    return spec;
}

FaultPlan
FaultPlan::fromJson(const json::JsonValue& doc)
{
    json::requireKnownKeys(doc, {"faults"}, "faults.json");
    FaultPlan plan;
    if (const json::JsonValue* faults = doc.find("faults")) {
        for (const json::JsonValue& entry : faults->asArray())
            plan.faults.push_back(FaultSpec::fromJson(entry));
    }
    return plan;
}

}  // namespace fault
}  // namespace uqsim
