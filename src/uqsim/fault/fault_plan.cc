#include "uqsim/fault/fault_plan.h"

#include "uqsim/json/validation.h"

namespace uqsim {
namespace fault {

namespace {

FaultSpec::Kind
kindFromString(const std::string& name)
{
    if (name == "crash")
        return FaultSpec::Kind::Crash;
    if (name == "slow")
        return FaultSpec::Kind::Slow;
    if (name == "network")
        return FaultSpec::Kind::Network;
    std::string message = "unknown fault type \"" + name + "\"";
    const std::string suggestion =
        json::suggestClosest(name, {"crash", "slow", "network"});
    if (!suggestion.empty())
        message += "; did you mean \"" + suggestion + "\"?";
    throw json::JsonError(message);
}

}  // namespace

FaultSpec
FaultSpec::fromJson(const json::JsonValue& doc)
{
    FaultSpec spec;
    spec.kind = kindFromString(doc.at("type").asString());
    switch (spec.kind) {
      case Kind::Crash:
        json::requireKnownKeys(doc,
                               {"type", "instance", "service", "at_s",
                                "recover_s", "mtbf_s", "mttr_s"},
                               "crash fault");
        spec.instance = doc.getOr("instance", std::string());
        spec.service = doc.getOr("service", std::string());
        spec.atSeconds = doc.getOr("at_s", 0.0);
        spec.recoverSeconds = doc.getOr("recover_s", 0.0);
        spec.mtbfSeconds = doc.getOr("mtbf_s", 0.0);
        spec.mttrSeconds = doc.getOr("mttr_s", 0.0);
        if (spec.instance.empty() == spec.service.empty())
            throw json::JsonError(
                "crash fault needs exactly one of \"instance\" or "
                "\"service\"");
        if (spec.stochastic()) {
            if (spec.mttrSeconds <= 0.0)
                throw json::JsonError(
                    "stochastic crash fault needs mttr_s > 0");
        } else if (spec.recoverSeconds > 0.0 &&
                   spec.recoverSeconds <= spec.atSeconds) {
            throw json::JsonError(
                "crash fault recover_s must exceed at_s");
        }
        break;
      case Kind::Slow:
        json::requireKnownKeys(doc,
                               {"type", "instance", "service",
                                "start_s", "end_s", "factor"},
                               "slow fault");
        spec.instance = doc.getOr("instance", std::string());
        spec.service = doc.getOr("service", std::string());
        spec.startSeconds = doc.getOr("start_s", 0.0);
        spec.endSeconds = doc.getOr("end_s", 0.0);
        spec.factor = doc.getOr("factor", 1.0);
        if (spec.instance.empty() == spec.service.empty())
            throw json::JsonError(
                "slow fault needs exactly one of \"instance\" or "
                "\"service\"");
        if (spec.factor <= 0.0)
            throw json::JsonError("slow fault factor must be > 0");
        if (spec.endSeconds > 0.0 &&
            spec.endSeconds <= spec.startSeconds)
            throw json::JsonError(
                "slow fault end_s must exceed start_s");
        break;
      case Kind::Network:
        json::requireKnownKeys(doc,
                               {"type", "start_s", "end_s",
                                "extra_latency_us", "loss_prob"},
                               "network fault");
        spec.startSeconds = doc.getOr("start_s", 0.0);
        spec.endSeconds = doc.getOr("end_s", 0.0);
        spec.extraLatencySeconds =
            doc.getOr("extra_latency_us", 0.0) * 1e-6;
        spec.lossProbability = doc.getOr("loss_prob", 0.0);
        if (spec.lossProbability < 0.0 || spec.lossProbability > 1.0)
            throw json::JsonError(
                "network fault loss_prob must be in [0, 1]");
        if (spec.endSeconds > 0.0 &&
            spec.endSeconds <= spec.startSeconds)
            throw json::JsonError(
                "network fault end_s must exceed start_s");
        break;
    }
    return spec;
}

FaultPlan
FaultPlan::fromJson(const json::JsonValue& doc)
{
    json::requireKnownKeys(doc, {"faults"}, "faults.json");
    FaultPlan plan;
    if (const json::JsonValue* faults = doc.find("faults")) {
        for (const json::JsonValue& entry : faults->asArray())
            plan.faults.push_back(FaultSpec::fromJson(entry));
    }
    return plan;
}

}  // namespace fault
}  // namespace uqsim
