#include "uqsim/fault/fault_scheduler.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "uqsim/hw/cluster.h"
#include "uqsim/json/validation.h"
#include "uqsim/snapshot/state_io.h"

namespace uqsim {
namespace fault {

namespace {

/** Exponential variate with mean @p meanSeconds. */
SimTime
sampleExponential(random::Rng& rng, double meanSeconds)
{
    const double u = rng.nextDoubleOpenLeft();
    return secondsToSimTime(-meanSeconds * std::log(u));
}

}  // namespace

FaultScheduler::FaultScheduler(Simulator& sim, Deployment& deployment,
                               hw::Network& network,
                               const FaultPlan& plan)
    : sim_(sim), deployment_(deployment), network_(network), plan_(plan)
{
}

std::vector<MicroserviceInstance*>
FaultScheduler::resolveTargets(const FaultSpec& spec) const
{
    if (!spec.service.empty())
        return deployment_.instances(spec.service);
    const std::size_t dot = spec.instance.rfind('.');
    if (dot == std::string::npos)
        throw std::runtime_error(
            "fault target \"" + spec.instance +
            "\" is not of the form service.index");
    const std::string service = spec.instance.substr(0, dot);
    const int index = std::stoi(spec.instance.substr(dot + 1));
    return {&deployment_.instance(service, index)};
}

SimTime
FaultScheduler::windowShift(const char* label,
                            double windowEndSeconds)
{
    Chooser* chooser = sim_.chooser();
    if (chooser == nullptr)
        return 0;
    const int cap = chooser->maxChoices(ChoiceKind::FaultJitter);
    if (cap <= 1)
        return 0;
    const int pick =
        chooser->choose(ChoiceKind::FaultJitter, cap, label);
    SimTime shift = static_cast<SimTime>(pick) *
                    chooser->jitterStep(ChoiceKind::FaultJitter);
    // Clamp so the window's last scripted event never slides past
    // the horizon: a jittered window must stay observable inside the
    // run it perturbs.  Windows already at/past the horizon keep
    // their (unreachable) nominal position.
    const SimTime lastEvent = secondsToSimTime(windowEndSeconds);
    if (shift > 0 && lastEvent + shift > horizon_)
        shift = lastEvent >= horizon_ ? 0 : horizon_ - lastEvent;
    return shift;
}

void
FaultScheduler::start(double horizonSeconds)
{
    horizon_ = secondsToSimTime(horizonSeconds);
    for (const FaultSpec& spec : plan_.faults) {
        // One onset-jitter choice per fault spec: every target of the
        // spec shifts together, keeping the branching factor tied to
        // the plan size rather than the deployment size.
        switch (spec.kind) {
          case FaultSpec::Kind::Crash: {
            const SimTime shift = windowShift(
                "fault-window/crash",
                spec.stochastic()
                    ? 0.0
                    : std::max(spec.atSeconds, spec.recoverSeconds));
            for (MicroserviceInstance* target : resolveTargets(spec)) {
                if (spec.stochastic())
                    scheduleStochasticCrash(*target, spec, shift);
                else
                    scheduleScriptedCrash(*target, spec, shift);
            }
            break;
          }
          case FaultSpec::Kind::Slow: {
            const SimTime shift = windowShift(
                "fault-window/slow",
                std::max(spec.startSeconds, spec.endSeconds));
            for (MicroserviceInstance* target : resolveTargets(spec))
                scheduleSlowWindow(*target, spec, shift);
            break;
          }
          case FaultSpec::Kind::Network:
            scheduleNetworkWindow(
                spec,
                windowShift("fault-window/net",
                            std::max(spec.startSeconds,
                                     spec.endSeconds)));
            break;
          case FaultSpec::Kind::LinkDown:
            scheduleLinkWindow(
                spec,
                windowShift("fault-window/link",
                            spec.stochastic()
                                ? 0.0
                                : std::max(spec.startSeconds,
                                           spec.endSeconds)));
            break;
          case FaultSpec::Kind::LinkDegraded:
            scheduleLinkDegradedWindow(
                spec,
                windowShift("fault-window/link-degraded",
                            std::max(spec.startSeconds,
                                     spec.endSeconds)));
            break;
          case FaultSpec::Kind::SwitchDown:
            scheduleSwitchWindow(
                spec,
                windowShift("fault-window/switch",
                            std::max(spec.startSeconds,
                                     spec.endSeconds)));
            break;
          case FaultSpec::Kind::Partition:
            schedulePartitionWindow(
                spec,
                windowShift("fault-window/partition",
                            std::max(spec.startSeconds,
                                     spec.endSeconds)));
            break;
        }
    }
}

hw::FlowModel&
FaultScheduler::requireFlowModel(const char* kind) const
{
    auto* flow = dynamic_cast<hw::FlowModel*>(&network_.model());
    if (flow == nullptr) {
        throw std::runtime_error(
            std::string(kind) +
            " faults need the flow network model (this run uses \"" +
            network_.model().modelName() + "\"); see docs/FORMATS.md");
    }
    return *flow;
}

int
FaultScheduler::resolveLinkId(hw::FlowModel& flow,
                              const std::string& name) const
{
    const int id = flow.linkId(name);
    if (id >= 0)
        return id;
    std::string message = "fault plan names unknown link \"" + name +
                          "\"";
    std::vector<std::string> candidates;
    candidates.reserve(flow.linkCount());
    for (std::size_t l = 0; l < flow.linkCount(); ++l)
        candidates.push_back(flow.link(static_cast<int>(l)).name);
    const std::string suggestion =
        json::suggestClosest(name, candidates);
    if (!suggestion.empty())
        message += "; did you mean \"" + suggestion + "\"?";
    throw std::runtime_error(message);
}

void
FaultScheduler::scheduleScriptedCrash(MicroserviceInstance& target,
                                      const FaultSpec& spec,
                                      SimTime shift)
{
    sim_.scheduleAt(
        secondsToSimTime(spec.atSeconds) + shift,
        [this, &target]() { crash(target); }, "fault/crash");
    if (spec.recoverSeconds > 0.0) {
        sim_.scheduleAt(
            secondsToSimTime(spec.recoverSeconds) + shift,
            [&target]() { target.recover(); }, "fault/recover");
    }
}

void
FaultScheduler::scheduleStochasticCrash(MicroserviceInstance& target,
                                        const FaultSpec& spec,
                                        SimTime shift)
{
    streams_.push_back(std::make_unique<random::RngStream>(
        sim_.masterSeed(), "fault/" + target.name()));
    random::Rng& rng = *streams_.back();
    scheduleNextStochasticFailure(target, spec, rng, shift);
}

void
FaultScheduler::scheduleNextStochasticFailure(
    MicroserviceInstance& target, const FaultSpec& spec,
    random::Rng& rng, SimTime shift)
{
    // Draw the whole (up, down) pair now so the stream's consumption
    // is a pure function of the failure count, then chain the next
    // draw off the recovery event.  The jitter shift delays only the
    // first failure of the timeline; the chain after it is relative,
    // so the whole timeline slides together.
    const SimTime up = sampleExponential(rng, spec.mtbfSeconds);
    const SimTime down = sampleExponential(rng, spec.mttrSeconds);
    const SimTime failAt = sim_.now() + up + shift;
    if (failAt >= horizon_)
        return;
    sim_.scheduleAt(
        failAt, [this, &target]() { crash(target); }, "fault/crash");
    sim_.scheduleAt(
        failAt + down,
        [this, &target, &spec, &rng]() {
            target.recover();
            scheduleNextStochasticFailure(target, spec, rng, 0);
        },
        "fault/recover");
}

void
FaultScheduler::scheduleSlowWindow(MicroserviceInstance& target,
                                   const FaultSpec& spec,
                                   SimTime shift)
{
    sim_.scheduleAt(
        secondsToSimTime(spec.startSeconds) + shift,
        [&target, factor = spec.factor]() {
            target.setSlowFactor(factor);
        },
        "fault/slow");
    if (spec.endSeconds > 0.0) {
        sim_.scheduleAt(
            secondsToSimTime(spec.endSeconds) + shift,
            [&target]() { target.setSlowFactor(1.0); },
            "fault/slow-end");
    }
}

void
FaultScheduler::scheduleNetworkWindow(const FaultSpec& spec,
                                      SimTime shift)
{
    sim_.scheduleAt(
        secondsToSimTime(spec.startSeconds) + shift,
        [this, extra = spec.extraLatencySeconds,
         loss = spec.lossProbability]() {
            network_.setDegradation(extra, loss);
        },
        "fault/net");
    if (spec.endSeconds > 0.0) {
        sim_.scheduleAt(
            secondsToSimTime(spec.endSeconds) + shift,
            [this]() { network_.clearDegradation(); },
            "fault/net-end");
    }
}

void
FaultScheduler::scheduleLinkWindow(const FaultSpec& spec,
                                   SimTime shift)
{
    hw::FlowModel& flow = requireFlowModel("link_down");
    const int linkId = resolveLinkId(flow, spec.link);
    if (spec.stochastic()) {
        scheduleStochasticLink(flow, linkId, spec, shift);
        return;
    }
    sim_.scheduleAt(
        secondsToSimTime(spec.startSeconds) + shift,
        [&flow, linkId]() { flow.setLinkDown(linkId); },
        "fault/link-down");
    sim_.scheduleAt(
        secondsToSimTime(spec.endSeconds) + shift,
        [&flow, linkId]() { flow.setLinkUp(linkId); },
        "fault/link-up");
}

void
FaultScheduler::scheduleStochasticLink(hw::FlowModel& flow,
                                       int linkId,
                                       const FaultSpec& spec,
                                       SimTime shift)
{
    // Per-link stream: adding (or removing) one link's timeline
    // never perturbs any other stream's draws.
    streams_.push_back(std::make_unique<random::RngStream>(
        sim_.masterSeed(), "fault/link/" + spec.link));
    random::Rng& rng = *streams_.back();
    scheduleNextLinkFailure(flow, linkId, spec, rng, shift);
}

void
FaultScheduler::scheduleNextLinkFailure(hw::FlowModel& flow,
                                        int linkId,
                                        const FaultSpec& spec,
                                        random::Rng& rng,
                                        SimTime shift)
{
    // Same structure as the stochastic crash chain: draw the whole
    // (up, down) pair now, chain the next draw off the repair.
    const SimTime up = sampleExponential(rng, spec.mtbfSeconds);
    const SimTime down = sampleExponential(rng, spec.mttrSeconds);
    const SimTime failAt = sim_.now() + up + shift;
    if (failAt >= horizon_)
        return;
    sim_.scheduleAt(
        failAt, [&flow, linkId]() { flow.setLinkDown(linkId); },
        "fault/link-down");
    sim_.scheduleAt(
        failAt + down,
        [this, &flow, linkId, &spec, &rng]() {
            flow.setLinkUp(linkId);
            scheduleNextLinkFailure(flow, linkId, spec, rng, 0);
        },
        "fault/link-up");
}

void
FaultScheduler::scheduleLinkDegradedWindow(const FaultSpec& spec,
                                           SimTime shift)
{
    hw::FlowModel& flow = requireFlowModel("link_degraded");
    const int linkId = resolveLinkId(flow, spec.link);
    sim_.scheduleAt(
        secondsToSimTime(spec.startSeconds) + shift,
        [&flow, linkId, cap = spec.capacityFactor,
         lat = spec.latencyFactor]() {
            flow.setLinkDegradation(linkId, cap, lat);
        },
        "fault/link-degrade");
    sim_.scheduleAt(
        secondsToSimTime(spec.endSeconds) + shift,
        [&flow, linkId]() { flow.clearLinkDegradation(linkId); },
        "fault/link-degrade-end");
}

void
FaultScheduler::scheduleSwitchWindow(const FaultSpec& spec,
                                     SimTime shift)
{
    hw::FlowModel& flow = requireFlowModel("switch_down");
    if (!flow.hasSwitch(spec.switchName)) {
        std::string message =
            "fault plan names unknown switch \"" + spec.switchName +
            "\"";
        const std::string suggestion =
            json::suggestClosest(spec.switchName, flow.switchNames());
        if (!suggestion.empty())
            message += "; did you mean \"" + suggestion + "\"?";
        throw std::runtime_error(message);
    }
    // Copy the link set: the switch registry outlives the window,
    // but a value capture keeps the events self-contained.
    const std::vector<int> links = flow.switchLinks(spec.switchName);
    sim_.scheduleAt(
        secondsToSimTime(spec.startSeconds) + shift,
        [&flow, links]() {
            for (int link : links)
                flow.setLinkDown(link);
        },
        "fault/switch-down");
    sim_.scheduleAt(
        secondsToSimTime(spec.endSeconds) + shift,
        [&flow, links]() {
            for (int link : links)
                flow.setLinkUp(link);
        },
        "fault/switch-up");
}

void
FaultScheduler::schedulePartitionWindow(const FaultSpec& spec,
                                        SimTime shift)
{
    hw::FlowModel& flow = requireFlowModel("partition");
    // Resolve machine names now so a typo fails at start(), not at
    // the window onset deep into the run.
    hw::Cluster& cluster = deployment_.cluster();
    std::vector<std::vector<int>> groups;
    groups.reserve(spec.groups.size());
    for (const std::vector<std::string>& names : spec.groups) {
        std::vector<int> ids;
        ids.reserve(names.size());
        for (const std::string& name : names)
            ids.push_back(cluster.machine(name).netId());
        groups.push_back(std::move(ids));
    }
    sim_.scheduleAt(
        secondsToSimTime(spec.startSeconds) + shift,
        [&flow, groups]() { flow.setPartition(groups); },
        "fault/partition");
    sim_.scheduleAt(
        secondsToSimTime(spec.endSeconds) + shift,
        [&flow]() { flow.clearPartition(); },
        "fault/partition-end");
}

void
FaultScheduler::crash(MicroserviceInstance& target)
{
    if (target.isDown())
        return;
    ++crashes_;
    target.crash();
}

void
FaultScheduler::saveState(snapshot::SnapshotWriter& writer) const
{
    writer.beginSection(snapshot::SectionId::Faults);
    writer.putU64(crashes_);
    writer.putI64(horizon_);
    writer.putU64(plan_.faults.size());
    writer.putU64(streams_.size());
    snapshot::Digest streams;
    for (const auto& stream : streams_) {
        streams.str(stream->label());
        snapshot::digestRngState(streams, stream->state());
    }
    writer.putU64(streams.value());
    writer.endSection();
}

void
FaultScheduler::loadState(snapshot::SnapshotReader& reader) const
{
    reader.openSection(snapshot::SectionId::Faults);
    reader.requireU64("crashes", crashes_);
    reader.requireI64("horizon", horizon_);
    reader.requireU64("plan_size", plan_.faults.size());
    reader.requireU64("streams", streams_.size());
    snapshot::Digest streams;
    for (const auto& stream : streams_) {
        streams.str(stream->label());
        snapshot::digestRngState(streams, stream->state());
    }
    reader.requireU64("stream_digest", streams.value());
    reader.closeSection();
}

}  // namespace fault
}  // namespace uqsim
