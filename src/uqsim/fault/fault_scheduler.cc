#include "uqsim/fault/fault_scheduler.h"

#include <cmath>
#include <stdexcept>

namespace uqsim {
namespace fault {

namespace {

/** Exponential variate with mean @p meanSeconds. */
SimTime
sampleExponential(random::Rng& rng, double meanSeconds)
{
    const double u = rng.nextDoubleOpenLeft();
    return secondsToSimTime(-meanSeconds * std::log(u));
}

}  // namespace

FaultScheduler::FaultScheduler(Simulator& sim, Deployment& deployment,
                               hw::Network& network,
                               const FaultPlan& plan)
    : sim_(sim), deployment_(deployment), network_(network), plan_(plan)
{
}

std::vector<MicroserviceInstance*>
FaultScheduler::resolveTargets(const FaultSpec& spec) const
{
    if (!spec.service.empty())
        return deployment_.instances(spec.service);
    const std::size_t dot = spec.instance.rfind('.');
    if (dot == std::string::npos)
        throw std::runtime_error(
            "fault target \"" + spec.instance +
            "\" is not of the form service.index");
    const std::string service = spec.instance.substr(0, dot);
    const int index = std::stoi(spec.instance.substr(dot + 1));
    return {&deployment_.instance(service, index)};
}

SimTime
FaultScheduler::windowShift(const char* label)
{
    Chooser* chooser = sim_.chooser();
    if (chooser == nullptr)
        return 0;
    const int cap = chooser->maxChoices(ChoiceKind::FaultJitter);
    if (cap <= 1)
        return 0;
    const int pick =
        chooser->choose(ChoiceKind::FaultJitter, cap, label);
    return static_cast<SimTime>(pick) *
           chooser->jitterStep(ChoiceKind::FaultJitter);
}

void
FaultScheduler::start(double horizonSeconds)
{
    horizon_ = secondsToSimTime(horizonSeconds);
    for (const FaultSpec& spec : plan_.faults) {
        // One onset-jitter choice per fault spec: every target of the
        // spec shifts together, keeping the branching factor tied to
        // the plan size rather than the deployment size.
        switch (spec.kind) {
          case FaultSpec::Kind::Crash: {
            const SimTime shift = windowShift("fault-window/crash");
            for (MicroserviceInstance* target : resolveTargets(spec)) {
                if (spec.stochastic())
                    scheduleStochasticCrash(*target, spec, shift);
                else
                    scheduleScriptedCrash(*target, spec, shift);
            }
            break;
          }
          case FaultSpec::Kind::Slow: {
            const SimTime shift = windowShift("fault-window/slow");
            for (MicroserviceInstance* target : resolveTargets(spec))
                scheduleSlowWindow(*target, spec, shift);
            break;
          }
          case FaultSpec::Kind::Network:
            scheduleNetworkWindow(spec,
                                  windowShift("fault-window/net"));
            break;
        }
    }
}

void
FaultScheduler::scheduleScriptedCrash(MicroserviceInstance& target,
                                      const FaultSpec& spec,
                                      SimTime shift)
{
    sim_.scheduleAt(
        secondsToSimTime(spec.atSeconds) + shift,
        [this, &target]() { crash(target); }, "fault/crash");
    if (spec.recoverSeconds > 0.0) {
        sim_.scheduleAt(
            secondsToSimTime(spec.recoverSeconds) + shift,
            [&target]() { target.recover(); }, "fault/recover");
    }
}

void
FaultScheduler::scheduleStochasticCrash(MicroserviceInstance& target,
                                        const FaultSpec& spec,
                                        SimTime shift)
{
    streams_.push_back(std::make_unique<random::RngStream>(
        sim_.masterSeed(), "fault/" + target.name()));
    random::Rng& rng = *streams_.back();
    scheduleNextStochasticFailure(target, spec, rng, shift);
}

void
FaultScheduler::scheduleNextStochasticFailure(
    MicroserviceInstance& target, const FaultSpec& spec,
    random::Rng& rng, SimTime shift)
{
    // Draw the whole (up, down) pair now so the stream's consumption
    // is a pure function of the failure count, then chain the next
    // draw off the recovery event.  The jitter shift delays only the
    // first failure of the timeline; the chain after it is relative,
    // so the whole timeline slides together.
    const SimTime up = sampleExponential(rng, spec.mtbfSeconds);
    const SimTime down = sampleExponential(rng, spec.mttrSeconds);
    const SimTime failAt = sim_.now() + up + shift;
    if (failAt >= horizon_)
        return;
    sim_.scheduleAt(
        failAt, [this, &target]() { crash(target); }, "fault/crash");
    sim_.scheduleAt(
        failAt + down,
        [this, &target, &spec, &rng]() {
            target.recover();
            scheduleNextStochasticFailure(target, spec, rng, 0);
        },
        "fault/recover");
}

void
FaultScheduler::scheduleSlowWindow(MicroserviceInstance& target,
                                   const FaultSpec& spec,
                                   SimTime shift)
{
    sim_.scheduleAt(
        secondsToSimTime(spec.startSeconds) + shift,
        [&target, factor = spec.factor]() {
            target.setSlowFactor(factor);
        },
        "fault/slow");
    if (spec.endSeconds > 0.0) {
        sim_.scheduleAt(
            secondsToSimTime(spec.endSeconds) + shift,
            [&target]() { target.setSlowFactor(1.0); },
            "fault/slow-end");
    }
}

void
FaultScheduler::scheduleNetworkWindow(const FaultSpec& spec,
                                      SimTime shift)
{
    sim_.scheduleAt(
        secondsToSimTime(spec.startSeconds) + shift,
        [this, extra = spec.extraLatencySeconds,
         loss = spec.lossProbability]() {
            network_.setDegradation(extra, loss);
        },
        "fault/net");
    if (spec.endSeconds > 0.0) {
        sim_.scheduleAt(
            secondsToSimTime(spec.endSeconds) + shift,
            [this]() { network_.clearDegradation(); },
            "fault/net-end");
    }
}

void
FaultScheduler::crash(MicroserviceInstance& target)
{
    if (target.isDown())
        return;
    ++crashes_;
    target.crash();
}

}  // namespace fault
}  // namespace uqsim
