#ifndef UQSIM_FAULT_RESILIENCE_H_
#define UQSIM_FAULT_RESILIENCE_H_

/**
 * @file
 * Resilience policies on the RPC path.
 *
 * Real microservice meshes wrap every inter-tier hop in mitigation
 * machinery: per-attempt timeouts with bounded retry budgets and
 * exponential backoff, hedged (duplicate) requests fired after a
 * tail-latency delay, circuit breakers that fail fast when a
 * downstream is unhealthy, and admission control that sheds load at
 * the entry tier instead of queueing without bound.  This header
 * defines the policy configuration (parsed from per-edge blocks in
 * graph.json) and the circuit-breaker state machine; the Dispatcher
 * executes the policies on each hop.
 *
 * Everything here is deterministic: backoff jitter is drawn from a
 * seed-split RngStream owned by the dispatcher, and breaker state
 * advances only on simulation events.
 */

#include <cstdint>
#include <deque>
#include <string>

#include "uqsim/core/engine/sim_time.h"
#include "uqsim/json/json_value.h"

namespace uqsim {
namespace fault {

/** Why a job or request failed. */
enum class FailReason {
    /** Instance crashed with the job in flight (queued or running). */
    Crash,
    /** Delivery to an instance that is currently down. */
    Refused,
    /** Bounded stage queue was full (reject-on-full). */
    QueueFull,
    /** Admission control shed the request at the entry tier. */
    Shed,
    /** Message lost in a network fault window. */
    NetworkLoss,
    /** Per-hop timeout expired with the retry budget exhausted. */
    HopTimeout,
    /** Circuit breaker was open; the hop failed fast. */
    BreakerOpen,
    /** No surviving network route (every candidate path crosses a
     *  dead link, or a partition separates the endpoints). */
    Unreachable,
};

const char* failReasonName(FailReason reason);

/** Circuit-breaker configuration (graph.json "breaker" block). */
struct CircuitBreakerConfig {
    bool enabled = false;
    /** Rolling window of the last N hop outcomes. */
    int windowSize = 20;
    /** Open when failures/window >= ratio (once minSamples seen). */
    double failureRatio = 0.5;
    int minSamples = 10;
    /** Open duration before probing (seconds). */
    double openSeconds = 1.0;
    /** Consecutive half-open successes needed to close. */
    int halfOpenProbes = 3;

    static CircuitBreakerConfig fromJson(const json::JsonValue& doc);
};

/**
 * Per-downstream circuit breaker (closed / open / half-open).
 *
 * Closed: outcomes feed a rolling window; too many failures trips
 * the breaker open.  Open: every request is rejected until
 * openSeconds elapse.  Half-open: up to halfOpenProbes requests are
 * let through; if they all succeed the breaker closes, any failure
 * re-opens it.
 */
class CircuitBreaker {
  public:
    enum class State { Closed, Open, HalfOpen };

    explicit CircuitBreaker(const CircuitBreakerConfig& config);

    /** True when a request may proceed now (may move Open to
     *  HalfOpen when the open window has elapsed). */
    bool allowRequest(SimTime now);

    void recordSuccess(SimTime now);
    void recordFailure(SimTime now);

    State state() const { return state_; }
    /** Closed -> Open transitions so far. */
    std::uint64_t trips() const { return trips_; }

    /** Order-sensitive FNV-1a fold of the full breaker state
     *  (snapshot validation). */
    std::uint64_t stateDigest() const;

  private:
    void trip(SimTime now);

    CircuitBreakerConfig config_;
    State state_ = State::Closed;
    /** Rolling outcome window; true = failure. */
    std::deque<bool> window_;
    int windowFailures_ = 0;
    SimTime openedAt_ = 0;
    int probesInFlight_ = 0;
    int probeSuccesses_ = 0;
    std::uint64_t trips_ = 0;
};

/**
 * Resilience policy for one (upstream service -> downstream service)
 * edge, parsed from the upstream's "policies" block in graph.json.
 */
struct EdgePolicy {
    /** Per-attempt hop timeout (seconds); <= 0 disables timeouts
     *  and with them retries. */
    double timeoutSeconds = 0.0;
    /** Retry budget after the first attempt. */
    int retries = 0;
    /** Backoff before a retry resend (seconds); 0 = immediate. */
    double backoffBaseSeconds = 0.0;
    double backoffMultiplier = 2.0;
    /** Uniform jitter fraction added to each backoff in
     *  [0, jitter); drawn from the dispatcher's retry stream. */
    double jitter = 0.0;

    /** Fixed hedge delay (seconds); <= 0 disables fixed hedging. */
    double hedgeDelaySeconds = 0.0;
    /**
     * Adaptive hedging: hedge after this percentile of observed hop
     * latencies on the edge (e.g. 0.95).  Takes effect once
     * hedgeMinSamples completions have been observed; before that
     * the fixed delay (if any) applies.
     */
    double hedgePercentile = 0.0;
    /** Extra hedged attempts per hop. */
    int hedgeMax = 1;
    int hedgeMinSamples = 32;

    CircuitBreakerConfig breaker;

    bool retriesEnabled() const { return timeoutSeconds > 0.0; }
    bool hedgingEnabled() const
    {
        return hedgeDelaySeconds > 0.0 || hedgePercentile > 0.0;
    }
    /** True when the policy changes any hop behavior at all. */
    bool active() const
    {
        return retriesEnabled() || hedgingEnabled() || breaker.enabled;
    }

    static EdgePolicy fromJson(const json::JsonValue& doc);
};

/** Entry-tier admission control (graph.json "admission" block). */
struct AdmissionConfig {
    /** Maximum concurrently active root requests entering through
     *  this service; 0 = unlimited. */
    int maxInflight = 0;

    static AdmissionConfig fromJson(const json::JsonValue& doc);
};

}  // namespace fault
}  // namespace uqsim

#endif  // UQSIM_FAULT_RESILIENCE_H_
