#ifndef UQSIM_FAULT_FAULT_PLAN_H_
#define UQSIM_FAULT_FAULT_PLAN_H_

/**
 * @file
 * Fault timelines parsed from faults.json.
 *
 * A plan is a list of fault specs.  Crashes target an instance (or
 * every instance of a service) and are either scripted (at_s +
 * recover_s) or stochastic (mtbf_s + mttr_s with exponential up/down
 * times from a per-instance seed-split stream).  Slow-node faults
 * inflate processing time by a factor over a window; network faults
 * add latency and message-loss probability cluster-wide over a
 * window.
 *
 * Topology-granular kinds (FlowModel runs only; docs/FORMATS.md):
 * link_down fails one named fabric link over a window (scripted or
 * stochastic, seed-split per link as "fault/link/<name>");
 * link_degraded scales a link's capacity/latency over a window;
 * switch_down fails every link of a registered fat-tree switch; and
 * partition makes named host groups mutually unreachable.
 */

#include <string>
#include <vector>

#include "uqsim/json/json_value.h"

namespace uqsim {
namespace fault {

/** One fault timeline entry. */
struct FaultSpec {
    enum class Kind {
        Crash,
        Slow,
        Network,
        LinkDown,
        LinkDegraded,
        SwitchDown,
        Partition,
    };

    Kind kind = Kind::Crash;

    /** Target "service.index" (e.g. "leaf.3"); empty when the spec
     *  targets a whole service or, for network faults, the cluster. */
    std::string instance;
    /** Target service name (all its instances); empty when a single
     *  instance is named. */
    std::string service;

    // Scripted crash.
    double atSeconds = 0.0;
    double recoverSeconds = 0.0;

    // Stochastic crash (exponential up/down times).
    double mtbfSeconds = 0.0;
    double mttrSeconds = 0.0;

    // Slow-node and network windows.
    double startSeconds = 0.0;
    double endSeconds = 0.0;

    /** Slow-node processing-time multiplier. */
    double factor = 1.0;

    // Network degradation.
    double extraLatencySeconds = 0.0;
    double lossProbability = 0.0;

    // Topology faults (FlowModel).
    /** Fabric link name (link_down / link_degraded). */
    std::string link;
    /** Registered switch name (switch_down). */
    std::string switchName;
    /** Host-name groups that lose mutual reachability (partition). */
    std::vector<std::vector<std::string>> groups;
    /** link_degraded capacity multiplier, in (0, 1]. */
    double capacityFactor = 1.0;
    /** link_degraded latency multiplier, >= 1. */
    double latencyFactor = 1.0;

    bool stochastic() const { return mtbfSeconds > 0.0; }

    /** True for the kinds that need a FlowModel fabric. */
    bool topologyFault() const
    {
        return kind == Kind::LinkDown || kind == Kind::LinkDegraded ||
               kind == Kind::SwitchDown || kind == Kind::Partition;
    }

    static FaultSpec fromJson(const json::JsonValue& doc);
};

/** The full fault timeline for a run. */
struct FaultPlan {
    std::vector<FaultSpec> faults;

    bool empty() const { return faults.empty(); }

    /** Parses a faults.json document: {"faults": [ ... ]}. */
    static FaultPlan fromJson(const json::JsonValue& doc);
};

}  // namespace fault
}  // namespace uqsim

#endif  // UQSIM_FAULT_FAULT_PLAN_H_
