#include "uqsim/runner/watchdog.h"

#include <algorithm>

namespace uqsim {
namespace runner {

StallWatchdog::StallWatchdog(WatchdogLimits limits) : limits_(limits)
{
}

StallWatchdog::~StallWatchdog()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    wake_.notify_all();
    if (thread_.joinable())
        thread_.join();
}

void
StallWatchdog::watch(RunControl* control)
{
    if (control == nullptr || !limits_.watchdogNeeded())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    WatchedRun run;
    run.control = control;
    run.started = Clock::now();
    run.lastEvents = control->eventWatermark();
    run.lastSimTime = control->simTimeWatermark();
    run.lastProgress = run.started;
    runs_.push_back(run);
    if (!started_) {
        started_ = true;
        thread_ = std::thread([this]() { threadMain(); });
    }
}

void
StallWatchdog::unwatch(RunControl* control)
{
    if (control == nullptr)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    runs_.erase(std::remove_if(runs_.begin(), runs_.end(),
                               [control](const WatchedRun& run) {
                                   return run.control == control;
                               }),
                runs_.end());
}

void
StallWatchdog::sample(WatchedRun& run, Clock::time_point now)
{
    const std::uint64_t events = run.control->eventWatermark();
    const std::int64_t sim_time = run.control->simTimeWatermark();
    const auto age =
        std::chrono::duration<double>(now - run.started).count();
    if (limits_.wallTimeoutSeconds > 0.0 &&
        age >= limits_.wallTimeoutSeconds) {
        run.control->requestAbort(AbortReason::WallTimeout);
        return;
    }
    // Progress means simulated time moved.  Events firing with a
    // frozen clock is a zero-delay livelock; no events at all is a
    // blocked or wedged worker.  Either way the stall window
    // applies.  (The event watermark is still tracked so diagnostic
    // readers can tell the two apart.)
    if (sim_time != run.lastSimTime) {
        run.lastSimTime = sim_time;
        run.lastEvents = events;
        run.lastProgress = now;
        return;
    }
    run.lastEvents = events;
    const auto stalled =
        std::chrono::duration<double>(now - run.lastProgress).count();
    if (limits_.stallWindowSeconds > 0.0 &&
        stalled >= limits_.stallWindowSeconds) {
        run.control->requestAbort(AbortReason::Stall);
    }
}

void
StallWatchdog::threadMain()
{
    const auto poll = std::chrono::duration<double>(
        std::max(limits_.pollIntervalSeconds, 1e-3));
    std::unique_lock<std::mutex> lock(mutex_);
    while (!shutdown_) {
        wake_.wait_for(lock,
                       std::chrono::duration_cast<
                           std::chrono::milliseconds>(poll));
        if (shutdown_)
            return;
        const Clock::time_point now = Clock::now();
        for (WatchedRun& run : runs_)
            sample(run, now);
    }
}

}  // namespace runner
}  // namespace uqsim
