#ifndef UQSIM_RUNNER_RUN_JOURNAL_H_
#define UQSIM_RUNNER_RUN_JOURNAL_H_

/**
 * @file
 * Append-only run journal (JSONL) for crash-resumable sweeps.
 *
 * Every finished grid job — succeeded or failed — appends one JSON
 * line recording its identity (sweep label, point index,
 * replication, load, seed), its status in the harness error
 * taxonomy, and for successes a stat digest: the event-trace digest
 * plus the headline metrics.  Lines are flushed as they are
 * written, so a journal survives a crashed or killed harness with
 * at worst one truncated trailing line, which the reader tolerates.
 *
 * Resume (`--resume <journal>`): the reader indexes the journal by
 * (sweep, point, replication) — last write wins, so re-runs append
 * corrections — and the SweepRunner skips jobs whose journaled
 * entry is ok with a matching (qps, seed), restoring their stat
 * digests instead of re-simulating.  Failed or missing jobs re-run
 * with their original seeds, so a resumed grid is deterministically
 * identical to a clean one wherever results exist.
 *
 * File format: docs/FORMATS.md §"run journal (JSONL)".  The journal
 * is a log, not a deterministic artifact — concurrent workers
 * append in completion order.
 */

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "uqsim/json/json_value.h"
#include "uqsim/runner/failure.h"

namespace uqsim {
namespace runner {

/** Schema tag of the journal header line. */
inline constexpr const char* kJournalSchema = "uqsim-run-journal-v1";

/** One journal line: the fate of one (sweep, point, replication). */
struct JournalEntry {
    std::string sweep;
    std::size_t point = 0;
    int replication = 0;
    double qps = 0.0;
    std::uint64_t seed = 0;

    FailureKind status = FailureKind::None;
    /** Error message for failed entries; empty when ok. */
    std::string error;

    // Stat digest (meaningful for ok entries only).
    std::uint64_t traceDigest = 0;
    double achievedQps = 0.0;
    double meanMs = 0.0;
    double p50Ms = 0.0;
    double p95Ms = 0.0;
    double p99Ms = 0.0;
    double maxMs = 0.0;
    std::uint64_t completed = 0;
    std::uint64_t generated = 0;
    std::uint64_t events = 0;

    bool ok() const { return status == FailureKind::None; }

    /** Identity within a grid; the journal index key. */
    std::string key() const;
    static std::string key(const std::string& sweep, std::size_t point,
                           int replication);

    json::JsonValue toJson() const;
    /** @throws json::JsonError when required fields are missing. */
    static JournalEntry fromJson(const json::JsonValue& doc);
};

/**
 * Appends entries to a journal file, creating it (with the schema
 * header line) when absent or empty.  Thread-safe: workers append
 * from the pool as jobs finish; every line is flushed immediately.
 */
class JournalWriter {
  public:
    /** @throws std::runtime_error when the file cannot be opened. */
    explicit JournalWriter(const std::string& path);

    JournalWriter(const JournalWriter&) = delete;
    JournalWriter& operator=(const JournalWriter&) = delete;

    void append(const JournalEntry& entry);

    const std::string& path() const { return path_; }

  private:
    std::string path_;
    std::mutex mutex_;
    /** pImpl-free: keep <fstream> out of this header. */
    struct Stream;
    std::shared_ptr<Stream> stream_;
};

/** In-memory index of a journal, keyed by job identity. */
struct JournalIndex {
    /** Last write wins: a re-run's entry supersedes the failure. */
    std::map<std::string, JournalEntry> entries;
    /** Unparsable lines skipped by the reader (e.g. a line
     *  truncated by a crash mid-write). */
    std::size_t skippedLines = 0;
    /** One human-readable warning per skipped line ("line N: ...");
     *  the SweepRunner surfaces these when resuming, so dropped
     *  data is visible instead of silent. */
    std::vector<std::string> warnings;

    const JournalEntry* find(const std::string& sweep,
                             std::size_t point, int replication) const;

    /**
     * Reads and indexes @p path.
     * @throws std::runtime_error when the file cannot be read or
     *         does not start with a uqsim-run-journal header.
     */
    static JournalIndex load(const std::string& path);
};

}  // namespace runner
}  // namespace uqsim

#endif  // UQSIM_RUNNER_RUN_JOURNAL_H_
