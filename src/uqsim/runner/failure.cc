#include "uqsim/runner/failure.h"

#include <stdexcept>

#include "uqsim/core/engine/audit.h"
#include "uqsim/core/engine/run_control.h"
#include "uqsim/json/json_value.h"

namespace uqsim {
namespace runner {

const char*
failureKindName(FailureKind kind)
{
    switch (kind) {
      case FailureKind::None: return "ok";
      case FailureKind::ConfigError: return "config_error";
      case FailureKind::InvariantViolation: return "invariant";
      case FailureKind::Timeout: return "timeout";
      case FailureKind::InternalError: return "internal";
    }
    return "?";
}

FailureKind
failureKindFromName(const std::string& name)
{
    if (name == "ok")
        return FailureKind::None;
    if (name == "config_error")
        return FailureKind::ConfigError;
    if (name == "invariant")
        return FailureKind::InvariantViolation;
    if (name == "timeout")
        return FailureKind::Timeout;
    if (name == "internal")
        return FailureKind::InternalError;
    throw std::invalid_argument("unknown failure kind: " + name);
}

FailureKind
classifyException(const std::exception_ptr& error,
                  std::string* message)
{
    try {
        std::rethrow_exception(error);
    } catch (const EngineInvariantError& e) {
        // Before logic_error: EngineInvariantError derives from it.
        *message = e.what();
        return FailureKind::InvariantViolation;
    } catch (const SimulationAbortError& e) {
        *message = e.what();
        return FailureKind::Timeout;
    } catch (const json::JsonError& e) {
        *message = e.what();
        return FailureKind::ConfigError;
    } catch (const std::invalid_argument& e) {
        *message = e.what();
        return FailureKind::ConfigError;
    } catch (const std::logic_error& e) {
        // Build-protocol violations (finalize() misuse, null
        // factories) are configuration mistakes, not engine bugs.
        *message = e.what();
        return FailureKind::ConfigError;
    } catch (const std::exception& e) {
        *message = e.what();
        return FailureKind::InternalError;
    } catch (...) {
        *message = "unknown exception";
        return FailureKind::InternalError;
    }
}

}  // namespace runner
}  // namespace uqsim
