#include "uqsim/runner/run_journal.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "uqsim/json/json_parser.h"
#include "uqsim/json/json_writer.h"

namespace uqsim {
namespace runner {

namespace {

/** Unit separator: cannot appear in a JSON string's parsed value
 *  by accident in sweep labels used as identifiers. */
constexpr char kKeySeparator = '\x1f';

std::string
toHex(std::uint64_t value)
{
    char buffer[19];
    std::snprintf(buffer, sizeof buffer, "0x%016llx",
                  static_cast<unsigned long long>(value));
    return buffer;
}

std::uint64_t
fromHex(const std::string& text)
{
    if (text.empty())
        throw json::JsonError("empty hex field in journal entry");
    char* end = nullptr;
    const unsigned long long value =
        std::strtoull(text.c_str(), &end, 16);
    if (end != text.c_str() + text.size())
        throw json::JsonError("malformed hex field in journal entry: " +
                              text);
    return static_cast<std::uint64_t>(value);
}

}  // namespace

std::string
JournalEntry::key(const std::string& sweep, std::size_t point,
                  int replication)
{
    return sweep + kKeySeparator + std::to_string(point) +
           kKeySeparator + std::to_string(replication);
}

std::string
JournalEntry::key() const
{
    return key(sweep, point, replication);
}

json::JsonValue
JournalEntry::toJson() const
{
    json::JsonValue doc = json::JsonValue::makeObject();
    json::JsonObject& object = doc.asObject();
    object["sweep"] = sweep;
    object["point"] = static_cast<std::int64_t>(point);
    object["replication"] = replication;
    object["qps"] = qps;
    object["seed"] = toHex(seed);
    object["status"] = failureKindName(status);
    if (!error.empty())
        object["error"] = error;
    if (ok()) {
        object["trace_digest"] = toHex(traceDigest);
        object["achieved_qps"] = achievedQps;
        object["mean_ms"] = meanMs;
        object["p50_ms"] = p50Ms;
        object["p95_ms"] = p95Ms;
        object["p99_ms"] = p99Ms;
        object["max_ms"] = maxMs;
        object["completed"] = completed;
        object["generated"] = generated;
        object["events"] = events;
    }
    return doc;
}

JournalEntry
JournalEntry::fromJson(const json::JsonValue& doc)
{
    JournalEntry entry;
    entry.sweep = doc.at("sweep").asString();
    entry.point =
        static_cast<std::size_t>(doc.at("point").asInt());
    entry.replication = static_cast<int>(doc.at("replication").asInt());
    entry.qps = doc.at("qps").asDouble();
    entry.seed = fromHex(doc.at("seed").asString());
    entry.status = failureKindFromName(doc.at("status").asString());
    entry.error = doc.getOr("error", "");
    if (entry.ok()) {
        entry.traceDigest = fromHex(doc.at("trace_digest").asString());
        entry.achievedQps = doc.getOr("achieved_qps", 0.0);
        entry.meanMs = doc.getOr("mean_ms", 0.0);
        entry.p50Ms = doc.getOr("p50_ms", 0.0);
        entry.p95Ms = doc.getOr("p95_ms", 0.0);
        entry.p99Ms = doc.getOr("p99_ms", 0.0);
        entry.maxMs = doc.getOr("max_ms", 0.0);
        entry.completed = static_cast<std::uint64_t>(
            doc.getOr("completed", std::int64_t{0}));
        entry.generated = static_cast<std::uint64_t>(
            doc.getOr("generated", std::int64_t{0}));
        entry.events = static_cast<std::uint64_t>(
            doc.getOr("events", std::int64_t{0}));
    }
    return entry;
}

struct JournalWriter::Stream {
    std::ofstream out;
};

JournalWriter::JournalWriter(const std::string& path)
    : path_(path), stream_(std::make_shared<Stream>())
{
    // Detect a fresh (absent or empty) journal before opening for
    // append, so resumed runs do not write a second header.
    bool fresh = true;
    {
        std::ifstream existing(path, std::ios::binary);
        if (existing && existing.peek() != std::ifstream::traits_type::eof())
            fresh = false;
    }
    stream_->out.open(path, std::ios::app | std::ios::binary);
    if (!stream_->out) {
        throw std::runtime_error("cannot open run journal for append: " +
                                 path);
    }
    if (fresh) {
        json::JsonValue header = json::JsonValue::makeObject();
        header.asObject()["schema"] = kJournalSchema;
        stream_->out << json::write(header) << '\n';
        stream_->out.flush();
    }
}

void
JournalWriter::append(const JournalEntry& entry)
{
    const std::string line = json::write(entry.toJson());
    std::lock_guard<std::mutex> lock(mutex_);
    stream_->out << line << '\n';
    // One replication's fate per line, durable immediately: the
    // journal must survive the harness dying right after this job.
    stream_->out.flush();
    if (!stream_->out) {
        throw std::runtime_error("failed writing run journal: " +
                                 path_);
    }
}

const JournalEntry*
JournalIndex::find(const std::string& sweep, std::size_t point,
                   int replication) const
{
    const auto it =
        entries.find(JournalEntry::key(sweep, point, replication));
    return it == entries.end() ? nullptr : &it->second;
}

JournalIndex
JournalIndex::load(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("cannot read run journal: " + path);

    JournalIndex index;
    std::string line;
    std::size_t line_number = 0;
    bool saw_header = false;
    while (std::getline(in, line)) {
        ++line_number;
        if (line.empty())
            continue;
        json::JsonValue doc;
        try {
            doc = json::parse(line);
        } catch (const json::JsonError& error) {
            // A crash mid-append leaves at most a truncated trailing
            // line; tolerate (and report) anything unparsable rather
            // than losing the whole journal.
            ++index.skippedLines;
            index.warnings.push_back(
                path + ":" + std::to_string(line_number) +
                ": dropped unparsable journal line (" + error.what() +
                ")");
            continue;
        }
        if (!saw_header) {
            const json::JsonValue* schema = doc.find("schema");
            if (schema == nullptr || !schema->isString() ||
                schema->asString() != kJournalSchema) {
                throw std::runtime_error(
                    path + ": not a " + std::string(kJournalSchema) +
                    " journal (bad or missing header line)");
            }
            saw_header = true;
            continue;
        }
        try {
            JournalEntry entry = JournalEntry::fromJson(doc);
            // Last write wins: a resumed run's re-run entry
            // supersedes the original failure.
            index.entries[entry.key()] = std::move(entry);
        } catch (const std::exception& error) {
            ++index.skippedLines;
            index.warnings.push_back(
                path + ":" + std::to_string(line_number) +
                ": dropped malformed journal entry (" + error.what() +
                ")");
        }
    }
    if (!saw_header) {
        throw std::runtime_error(path +
                                 ": empty or headerless run journal");
    }
    return index;
}

}  // namespace runner
}  // namespace uqsim
