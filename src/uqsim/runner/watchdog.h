#ifndef UQSIM_RUNNER_WATCHDOG_H_
#define UQSIM_RUNNER_WATCHDOG_H_

/**
 * @file
 * Stall watchdog for supervised sweep replications.
 *
 * One background thread samples the RunControl progress watermarks
 * of every active replication on a fixed poll interval and requests
 * a cooperative abort when:
 *
 *   - the wall-clock budget for the replication is exhausted
 *     (WallTimeout), or
 *   - the sim-time watermark has not advanced within the stall
 *     window while events keep firing — a zero-delay event livelock
 *     — or no events fire at all (Stall).
 *
 * The abort is honored by the Simulator between events (see
 * run_control.h), so a killed replication's engine state stays
 * consistent and the harness reports it as a timeout instead of
 * hanging ctest/CI.  The event budget (--max-events) is enforced
 * inline by the Simulator itself, deterministically; the watchdog
 * only covers the wall-clock-based limits.
 *
 * Lifetime: watch() before Simulation::run(), unwatch() in all exit
 * paths (the WatchGuard RAII helper does both).  The watchdog
 * thread only starts when at least one limit is configured.
 */

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "uqsim/core/engine/run_control.h"

namespace uqsim {
namespace runner {

/** Watchdog / budget knobs (0 disables each limit). */
struct WatchdogLimits {
    /** Kill a replication after this much wall time (seconds). */
    double wallTimeoutSeconds = 0.0;
    /** Kill a replication whose sim-time watermark is frozen for
     *  this long (seconds of wall time). */
    double stallWindowSeconds = 0.0;
    /** Event budget per replication, enforced inline by the
     *  Simulator at control-poll granularity (deterministic). */
    std::uint64_t maxEventsPerReplication = 0;
    /** Watchdog sampling period (seconds). */
    double pollIntervalSeconds = 0.05;

    /** True when the watchdog thread has anything to do. */
    bool
    watchdogNeeded() const
    {
        return wallTimeoutSeconds > 0.0 || stallWindowSeconds > 0.0;
    }
};

/** Samples RunControls and aborts stalled / over-budget runs. */
class StallWatchdog {
  public:
    explicit StallWatchdog(WatchdogLimits limits);
    ~StallWatchdog();

    StallWatchdog(const StallWatchdog&) = delete;
    StallWatchdog& operator=(const StallWatchdog&) = delete;

    /** Registers @p control for supervision (starts the thread
     *  lazily on first watch). */
    void watch(RunControl* control);

    /** Stops supervising @p control; safe if never watched. */
    void unwatch(RunControl* control);

    const WatchdogLimits& limits() const { return limits_; }

  private:
    using Clock = std::chrono::steady_clock;

    struct WatchedRun {
        RunControl* control = nullptr;
        Clock::time_point started;
        /** Last observed watermarks and when sim time last moved. */
        std::uint64_t lastEvents = 0;
        std::int64_t lastSimTime = 0;
        Clock::time_point lastProgress;
    };

    void threadMain();
    void sample(WatchedRun& run, Clock::time_point now);

    WatchdogLimits limits_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::vector<WatchedRun> runs_;
    bool shutdown_ = false;
    bool started_ = false;
    std::thread thread_;
};

/** RAII watch()/unwatch() around one replication. */
class WatchGuard {
  public:
    WatchGuard(StallWatchdog* watchdog, RunControl* control)
        : watchdog_(watchdog), control_(control)
    {
        if (watchdog_ != nullptr)
            watchdog_->watch(control_);
    }

    ~WatchGuard()
    {
        if (watchdog_ != nullptr)
            watchdog_->unwatch(control_);
    }

    WatchGuard(const WatchGuard&) = delete;
    WatchGuard& operator=(const WatchGuard&) = delete;

  private:
    StallWatchdog* watchdog_;
    RunControl* control_;
};

}  // namespace runner
}  // namespace uqsim

#endif  // UQSIM_RUNNER_WATCHDOG_H_
