#ifndef UQSIM_RUNNER_SWEEP_RUNNER_H_
#define UQSIM_RUNNER_SWEEP_RUNNER_H_

/**
 * @file
 * Parallel experiment harness.
 *
 * Every figure in the paper is a grid of independent simulations:
 * (configuration × offered-load point × seed replication).  The
 * SweepRunner executes that grid on a thread pool, one isolated
 * Simulation per job, and aggregates each point's replications with
 * the mergeable statistics (Summary::merge, PercentileRecorder::
 * merge) plus Student-t confidence intervals.
 *
 * Determinism contract (docs/ARCHITECTURE.md §"Parallel execution"):
 * a job's result is a pure function of (load, seed) — Simulation
 * instances share no mutable state, and every replication gets its
 * own seed split off the base seed — so the per-(seed, load) results
 * and all aggregates are bitwise identical no matter how many worker
 * threads execute the grid, including `jobs = 1`.  Aggregation runs
 * single-threaded in replication order after the pool drains, so
 * floating-point merge order is fixed.
 *
 * Robustness contract (docs/ARCHITECTURE.md §"Harness
 * failure-handling contract"): under the default Isolate policy a
 * worker failure never tears down the pool.  The failure is caught,
 * classified into the harness error taxonomy (runner/failure.h),
 * journaled, and the surviving replications of every point are
 * salvaged — their aggregates flagged degraded when short of the
 * planned replication count.  A run journal (runner/run_journal.h)
 * plus `resumePath` re-runs only failed/missing jobs with their
 * original seeds; the stall watchdog (runner/watchdog.h) converts
 * livelocked or runaway replications into classified timeouts.
 *
 * The factory is invoked concurrently from pool threads and must be
 * thread-safe: it should only read shared immutable parameters and
 * build a fresh Simulation from them.
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "uqsim/core/sim/report.h"
#include "uqsim/core/sim/simulation.h"
#include "uqsim/core/sim/sweep.h"
#include "uqsim/runner/failure.h"
#include "uqsim/runner/watchdog.h"
#include "uqsim/snapshot/checkpoint.h"
#include "uqsim/stats/confidence.h"
#include "uqsim/stats/percentile_recorder.h"
#include "uqsim/stats/summary.h"

namespace uqsim {
namespace runner {

/**
 * Builds a finalized Simulation offering @p qps with master seed
 * @p seed.  Called once per grid job, possibly from several threads
 * at once.
 */
using ReplicatedFactory = std::function<std::unique_ptr<Simulation>(
    double qps, std::uint64_t seed)>;

/** What the runner does when a grid job fails. */
enum class FailurePolicy {
    /**
     * Catch, classify, journal, and salvage: the pool keeps
     * draining, surviving replications aggregate normally, and
     * affected points are flagged degraded.  The default.
     */
    Isolate,
    /**
     * Legacy strict mode: after the pool drains, rethrow the first
     * failure in grid order.  Failures are still journaled first,
     * so even a strict run can be resumed.
     */
    Propagate,
};

/** Runner knobs. */
struct RunnerOptions {
    /** Worker threads; 0 means hardware concurrency. */
    int jobs = 1;
    /** Seed replications per load point (>= 1). */
    int replications = 1;
    /** Base seed the replication seeds are split from. */
    std::uint64_t baseSeed = 1;
    /** Confidence level for across-replication intervals. */
    double confidence = 0.95;
    /** Failure isolation policy (see FailurePolicy). */
    FailurePolicy failurePolicy = FailurePolicy::Isolate;
    /** Stall watchdog / budget limits (all 0 = unsupervised). */
    WatchdogLimits watchdog;
    /** Append the fate of every job to this JSONL journal
     *  (empty = no journal). */
    std::string journalPath;
    /** Resume from this journal: jobs recorded ok with matching
     *  (qps, seed) are restored instead of re-simulated
     *  (empty = run everything). */
    std::string resumePath;
    /**
     * Mid-run checkpointing (snapshot/checkpoint.h): when enabled,
     * every replication writes periodic snapshots under
     * "<prefix>-<sweep>-p<point>-r<replication>", so a killed sweep
     * loses at most one checkpoint interval per in-flight job.
     * Checkpointing never changes results: segment boundaries do
     * not move the clock, so trace digests match an uncheckpointed
     * run exactly.
     */
    snapshot::CheckpointOptions checkpoint;
    /**
     * With checkpointing enabled: before simulating a job from
     * scratch, look for its newest valid snapshot and restore from
     * it (replay-validated).  A snapshot that fails restore is
     * reported on stderr and the job runs fresh — resume is an
     * optimization, never a correctness risk.
     */
    bool resumeFromSnapshot = false;
};

/**
 * Seed of replication @p replication: the base seed itself for
 * replication 0 (so a single-replication campaign reproduces a plain
 * run with that seed), and an independent split derived from
 * (base seed, "replication/<r>") otherwise.
 */
std::uint64_t replicationSeed(std::uint64_t base_seed, int replication);

/** Outcome of one (load, seed) job. */
struct ReplicationResult {
    std::uint64_t seed = 0;
    /** Event-trace digest of the run (Simulator::traceDigest). */
    std::uint64_t traceDigest = 0;
    RunReport report;
    /** FailureKind::None when the replication completed. */
    FailureKind failure = FailureKind::None;
    /** Classified error message; empty when ok. */
    std::string error;
    /** True when the result was restored from a resume journal's
     *  stat digest instead of re-simulated: the headline metrics
     *  and digest are exact, the full latency sample stream is
     *  not available for pooling. */
    bool restored = false;

    bool ok() const { return failure == FailureKind::None; }
};

/** One load point with all its replications and their aggregates. */
struct ReplicatedPoint {
    double offeredQps = 0.0;
    /** Per-replication results, in replication order — including
     *  failed ones (check ReplicationResult::ok()). */
    std::vector<ReplicationResult> replications;

    /** Replications the grid planned for this point. */
    int planned = 0;
    /** Replications that completed (fresh or restored) and were
     *  merged into the aggregates below. */
    int merged = 0;
    /** Of `merged`, how many were restored from a journal. */
    int restoredCount = 0;

    /** True when failures left this point short of planned data:
     *  its CIs rest on fewer observations than requested. */
    bool degraded() const { return merged < planned; }

    /** Across-replication distributions of the headline metrics
     *  (one observation per merged replication; latency in ms). */
    stats::Summary achievedQps;
    stats::Summary meanMs;
    stats::Summary p50Ms;
    stats::Summary p95Ms;
    stats::Summary p99Ms;

    /** Student-t confidence intervals on the across-replication
     *  means; valid() is false with fewer than 2 merged
     *  replications. */
    stats::ConfidenceInterval meanCi;
    stats::ConfidenceInterval p99Ci;
    stats::ConfidenceInterval achievedCi;

    /** All end-to-end latencies (seconds) of the fresh (non-
     *  restored) merged replications, pooled with
     *  PercentileRecorder::merge in replication order. */
    stats::PercentileRecorder pooled;

    /**
     * Report of the pooled point: across-replication mean throughput
     * and exact percentiles of the pooled latency stream; counts and
     * events are summed over merged replications.  When restored
     * replications left the pool partial, the end-to-end percentiles
     * fall back to the across-replication means of the per-run
     * percentiles and the report is marked degraded.
     */
    RunReport mergedReport() const;
};

/** A labelled curve of replicated points. */
struct ReplicatedCurve {
    std::string label;
    std::vector<ReplicatedPoint> points;

    /** Failed replications summed over all points. */
    int failedReplications() const;

    /**
     * Collapses each point to its pooled report, yielding the
     * SweepCurve shape the figure benches and saturation helpers
     * consume.  With one replication this is exactly the serial
     * runLoadSweep result for the same seed.
     */
    SweepCurve toSweepCurve() const;
};

/** Thread-pool executor for (config × load × seed) grids. */
class SweepRunner {
  public:
    explicit SweepRunner(RunnerOptions options = {});

    /** Queues one curve: @p loads points × options.replications. */
    void addSweep(std::string label, std::vector<double> loads,
                  ReplicatedFactory factory);

    /**
     * Executes all queued jobs and returns the curves in addSweep
     * order.  May be called once.
     *
     * Isolate policy: always returns; inspect the per-replication
     * results / degraded flags for failures.  Propagate policy: the
     * first job exception (in grid order) is rethrown after the
     * pool drains.
     */
    std::vector<ReplicatedCurve> run();

    /** Resolved worker count (options.jobs, or the hardware). */
    int effectiveJobs() const;

    /** After run(): jobs skipped because the resume journal already
     *  recorded them ok. */
    int restoredJobs() const { return restoredJobs_; }
    /** After run(): jobs that failed (by taxonomy, all kinds). */
    int failedJobs() const { return failedJobs_; }

    /** After run(): warnings surfaced while loading the resume
     *  journal (dropped truncated/corrupt lines).  Also printed to
     *  stderr during run(). */
    const std::vector<std::string>& resumeWarnings() const
    {
        return resumeWarnings_;
    }

    const RunnerOptions& options() const { return options_; }

  private:
    struct SweepSpec {
        std::string label;
        std::vector<double> loads;
        ReplicatedFactory factory;
    };

    RunnerOptions options_;
    std::vector<SweepSpec> sweeps_;
    bool ran_ = false;
    int restoredJobs_ = 0;
    int failedJobs_ = 0;
    std::vector<std::string> resumeWarnings_;
};

/**
 * Convenience: runs @p replications seeded replications of one
 * configuration at one load on @p jobs threads and returns the
 * aggregated point.
 */
ReplicatedPoint runReplicated(const ReplicatedFactory& factory,
                              double qps, const RunnerOptions& options);

/**
 * Text table of replicated curves: one row per load with
 * "mean ± hw" / "p99 ± hw" columns per curve (half-widths at the
 * runner's confidence level; "-" when fewer than 2 replications).
 * Degraded points are marked with a trailing '!'.
 */
std::string
formatReplicatedTable(const std::vector<ReplicatedCurve>& curves);

}  // namespace runner
}  // namespace uqsim

#endif  // UQSIM_RUNNER_SWEEP_RUNNER_H_
