#ifndef UQSIM_RUNNER_SWEEP_RUNNER_H_
#define UQSIM_RUNNER_SWEEP_RUNNER_H_

/**
 * @file
 * Parallel experiment harness.
 *
 * Every figure in the paper is a grid of independent simulations:
 * (configuration × offered-load point × seed replication).  The
 * SweepRunner executes that grid on a thread pool, one isolated
 * Simulation per job, and aggregates each point's replications with
 * the mergeable statistics (Summary::merge, PercentileRecorder::
 * merge) plus Student-t confidence intervals.
 *
 * Determinism contract (docs/ARCHITECTURE.md §"Parallel execution"):
 * a job's result is a pure function of (load, seed) — Simulation
 * instances share no mutable state, and every replication gets its
 * own seed split off the base seed — so the per-(seed, load) results
 * and all aggregates are bitwise identical no matter how many worker
 * threads execute the grid, including `jobs = 1`.  Aggregation runs
 * single-threaded in replication order after the pool drains, so
 * floating-point merge order is fixed.
 *
 * The factory is invoked concurrently from pool threads and must be
 * thread-safe: it should only read shared immutable parameters and
 * build a fresh Simulation from them.
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "uqsim/core/sim/report.h"
#include "uqsim/core/sim/simulation.h"
#include "uqsim/core/sim/sweep.h"
#include "uqsim/stats/confidence.h"
#include "uqsim/stats/percentile_recorder.h"
#include "uqsim/stats/summary.h"

namespace uqsim {
namespace runner {

/**
 * Builds a finalized Simulation offering @p qps with master seed
 * @p seed.  Called once per grid job, possibly from several threads
 * at once.
 */
using ReplicatedFactory = std::function<std::unique_ptr<Simulation>(
    double qps, std::uint64_t seed)>;

/** Runner knobs. */
struct RunnerOptions {
    /** Worker threads; 0 means hardware concurrency. */
    int jobs = 1;
    /** Seed replications per load point (>= 1). */
    int replications = 1;
    /** Base seed the replication seeds are split from. */
    std::uint64_t baseSeed = 1;
    /** Confidence level for across-replication intervals. */
    double confidence = 0.95;
};

/**
 * Seed of replication @p replication: the base seed itself for
 * replication 0 (so a single-replication campaign reproduces a plain
 * run with that seed), and an independent split derived from
 * (base seed, "replication/<r>") otherwise.
 */
std::uint64_t replicationSeed(std::uint64_t base_seed, int replication);

/** Outcome of one (load, seed) job. */
struct ReplicationResult {
    std::uint64_t seed = 0;
    /** Event-trace digest of the run (Simulator::traceDigest). */
    std::uint64_t traceDigest = 0;
    RunReport report;
};

/** One load point with all its replications and their aggregates. */
struct ReplicatedPoint {
    double offeredQps = 0.0;
    /** Per-replication results, in replication order. */
    std::vector<ReplicationResult> replications;

    /** Across-replication distributions of the headline metrics
     *  (one observation per replication; latency in ms). */
    stats::Summary achievedQps;
    stats::Summary meanMs;
    stats::Summary p50Ms;
    stats::Summary p95Ms;
    stats::Summary p99Ms;

    /** Student-t confidence intervals on the across-replication
     *  means; valid() is false with fewer than 2 replications. */
    stats::ConfidenceInterval meanCi;
    stats::ConfidenceInterval p99Ci;
    stats::ConfidenceInterval achievedCi;

    /** All end-to-end latencies (seconds) of all replications,
     *  pooled with PercentileRecorder::merge in replication order. */
    stats::PercentileRecorder pooled;

    /**
     * Report of the pooled point: across-replication mean throughput
     * and exact percentiles of the pooled latency stream; counts and
     * events are summed over replications.
     */
    RunReport mergedReport() const;
};

/** A labelled curve of replicated points. */
struct ReplicatedCurve {
    std::string label;
    std::vector<ReplicatedPoint> points;

    /**
     * Collapses each point to its pooled report, yielding the
     * SweepCurve shape the figure benches and saturation helpers
     * consume.  With one replication this is exactly the serial
     * runLoadSweep result for the same seed.
     */
    SweepCurve toSweepCurve() const;
};

/** Thread-pool executor for (config × load × seed) grids. */
class SweepRunner {
  public:
    explicit SweepRunner(RunnerOptions options = {});

    /** Queues one curve: @p loads points × options.replications. */
    void addSweep(std::string label, std::vector<double> loads,
                  ReplicatedFactory factory);

    /**
     * Executes all queued jobs and returns the curves in addSweep
     * order.  May be called once.  The first job exception (in grid
     * order) is rethrown after the pool drains.
     */
    std::vector<ReplicatedCurve> run();

    /** Resolved worker count (options.jobs, or the hardware). */
    int effectiveJobs() const;

    const RunnerOptions& options() const { return options_; }

  private:
    struct SweepSpec {
        std::string label;
        std::vector<double> loads;
        ReplicatedFactory factory;
    };

    RunnerOptions options_;
    std::vector<SweepSpec> sweeps_;
    bool ran_ = false;
};

/**
 * Convenience: runs @p replications seeded replications of one
 * configuration at one load on @p jobs threads and returns the
 * aggregated point.
 */
ReplicatedPoint runReplicated(const ReplicatedFactory& factory,
                              double qps, const RunnerOptions& options);

/**
 * Text table of replicated curves: one row per load with
 * "mean ± hw" / "p99 ± hw" columns per curve (half-widths at the
 * runner's confidence level; "-" when fewer than 2 replications).
 */
std::string
formatReplicatedTable(const std::vector<ReplicatedCurve>& curves);

}  // namespace runner
}  // namespace uqsim

#endif  // UQSIM_RUNNER_SWEEP_RUNNER_H_
