#ifndef UQSIM_RUNNER_FAILURE_H_
#define UQSIM_RUNNER_FAILURE_H_

/**
 * @file
 * Harness error taxonomy.
 *
 * A multi-hour sweep must not die wholesale because one replication
 * threw: the SweepRunner catches every worker failure and classifies
 * it into this taxonomy so reports, journals, and exit paths can
 * treat them differently (docs/ARCHITECTURE.md §"Harness
 * failure-handling contract"):
 *
 *   - ConfigError: the inputs are wrong (malformed JSON, invalid
 *     option, a factory that violates the runner protocol).
 *     Deterministic — re-running cannot help.
 *   - InvariantViolation: the engine auditor caught corrupted
 *     bookkeeping.  A simulator bug; results of this replication
 *     are untrustworthy.
 *   - Timeout: the stall watchdog, wall-clock budget, or event
 *     budget killed the replication (SimulationAbortError).
 *   - InternalError: any other exception — unclassified bug.
 *
 * Journal status strings use the same names (failureKindName), so a
 * resumed run re-derives the taxonomy loss-free.
 */

#include <exception>
#include <string>

namespace uqsim {
namespace runner {

/** How a replication failed; None means it completed. */
enum class FailureKind {
    None = 0,
    ConfigError,
    InvariantViolation,
    Timeout,
    InternalError,
};

/** Stable lowercase name ("ok", "config_error", "invariant",
 *  "timeout", "internal"); used as the journal status string. */
const char* failureKindName(FailureKind kind);

/** Inverse of failureKindName; throws std::invalid_argument on an
 *  unknown name. */
FailureKind failureKindFromName(const std::string& name);

/**
 * Classifies the in-flight exception held by @p error and renders
 * its message into @p message (best effort; "unknown exception" for
 * non-std exceptions).  @p error must not be null.
 */
FailureKind classifyException(const std::exception_ptr& error,
                              std::string* message);

}  // namespace runner
}  // namespace uqsim

#endif  // UQSIM_RUNNER_FAILURE_H_
