#include "uqsim/runner/sweep_runner.h"

#include <atomic>
#include <exception>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "uqsim/random/rng.h"

namespace uqsim {
namespace runner {

std::uint64_t
replicationSeed(std::uint64_t base_seed, int replication)
{
    if (replication < 0)
        throw std::invalid_argument("replication index must be >= 0");
    if (replication == 0)
        return base_seed;
    return random::RngStream::deriveSeed(
        base_seed, "replication/" + std::to_string(replication));
}

RunReport
ReplicatedPoint::mergedReport() const
{
    RunReport report;
    // A zero grid load means "whatever the bundle offers" (the CLI's
    // replicated mode); report what the replications measured.
    report.offeredQps = offeredQps > 0.0 || replications.empty()
                            ? offeredQps
                            : replications.front().report.offeredQps;
    report.achievedQps = achievedQps.mean();
    for (const ReplicationResult& rep : replications) {
        report.generated += rep.report.generated;
        report.completed += rep.report.completed;
        report.timeouts += rep.report.timeouts;
        report.failed += rep.report.failed;
        report.shed += rep.report.shed;
        report.retries += rep.report.retries;
        report.hedges += rep.report.hedges;
        report.breakerTrips += rep.report.breakerTrips;
        report.netDropped += rep.report.netDropped;
        report.crashes += rep.report.crashes;
        for (const auto& [tier, stats] : rep.report.tierFaults) {
            TierFaultStats& merged = report.tierFaults[tier];
            merged.errors += stats.errors;
            merged.timeouts += stats.timeouts;
            merged.hopTimeouts += stats.hopTimeouts;
            merged.retries += stats.retries;
            merged.hedges += stats.hedges;
            merged.shed += stats.shed;
            merged.rejected += stats.rejected;
            merged.crashKills += stats.crashKills;
        }
        report.events += rep.report.events;
        report.wallSeconds += rep.report.wallSeconds;
    }
    {
        // Pooled availability over all replications.
        const std::uint64_t denom =
            report.completed + report.failed + report.shed;
        report.availability =
            denom > 0 ? static_cast<double>(report.completed) /
                            static_cast<double>(denom)
                      : 1.0;
    }
    report.endToEnd.count = pooled.count();
    report.endToEnd.meanMs = pooled.mean() * 1e3;
    report.endToEnd.p50Ms = pooled.p50() * 1e3;
    report.endToEnd.p95Ms = pooled.p95() * 1e3;
    report.endToEnd.p99Ms = pooled.p99() * 1e3;
    report.endToEnd.maxMs = pooled.max() * 1e3;
    // Per-tier stats are not pooled: percentiles cannot be rebuilt
    // from the per-run LatencyStats.  Consumers needing tiers read
    // the individual replications.
    return report;
}

SweepCurve
ReplicatedCurve::toSweepCurve() const
{
    SweepCurve curve;
    curve.label = label;
    curve.points.reserve(points.size());
    for (const ReplicatedPoint& point : points) {
        SweepPoint out;
        out.offeredQps = point.offeredQps;
        out.report = point.mergedReport();
        curve.points.push_back(std::move(out));
    }
    return curve;
}

SweepRunner::SweepRunner(RunnerOptions options)
    : options_(options)
{
    if (options_.jobs < 0)
        throw std::invalid_argument("jobs must be >= 0");
    if (options_.replications < 1)
        throw std::invalid_argument("replications must be >= 1");
    if (!(options_.confidence > 0.0 && options_.confidence < 1.0))
        throw std::invalid_argument("confidence must be in (0, 1)");
}

int
SweepRunner::effectiveJobs() const
{
    if (options_.jobs > 0)
        return options_.jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

void
SweepRunner::addSweep(std::string label, std::vector<double> loads,
                      ReplicatedFactory factory)
{
    if (ran_)
        throw std::logic_error("cannot add sweeps after run()");
    if (loads.empty())
        throw std::invalid_argument("sweep needs at least one load");
    if (!factory)
        throw std::invalid_argument("sweep needs a factory");
    sweeps_.push_back(SweepSpec{std::move(label), std::move(loads),
                                std::move(factory)});
}

namespace {

struct JobSpec {
    std::size_t sweep = 0;
    std::size_t point = 0;
    int replication = 0;
    double qps = 0.0;
    std::uint64_t seed = 0;
};

struct JobSlot {
    ReplicationResult result;
    stats::PercentileRecorder latencies;
    std::exception_ptr error;
};

}  // namespace

std::vector<ReplicatedCurve>
SweepRunner::run()
{
    if (ran_)
        throw std::logic_error("run() called twice");
    ran_ = true;

    // Lay the grid out sweep-major, then point, then replication, so
    // slot indices (and with them aggregation order) are independent
    // of execution interleaving.
    std::vector<JobSpec> grid;
    for (std::size_t s = 0; s < sweeps_.size(); ++s) {
        for (std::size_t p = 0; p < sweeps_[s].loads.size(); ++p) {
            for (int r = 0; r < options_.replications; ++r) {
                JobSpec job;
                job.sweep = s;
                job.point = p;
                job.replication = r;
                job.qps = sweeps_[s].loads[p];
                job.seed = replicationSeed(options_.baseSeed, r);
                grid.push_back(job);
            }
        }
    }

    std::vector<JobSlot> slots(grid.size());
    std::atomic<std::size_t> next{0};

    auto worker = [&]() {
        while (true) {
            const std::size_t index =
                next.fetch_add(1, std::memory_order_relaxed);
            if (index >= grid.size())
                return;
            const JobSpec& job = grid[index];
            JobSlot& slot = slots[index];
            try {
                std::unique_ptr<Simulation> simulation =
                    sweeps_[job.sweep].factory(job.qps, job.seed);
                if (!simulation || !simulation->finalized()) {
                    throw std::logic_error(
                        "runner factory must return a finalized "
                        "simulation");
                }
                slot.result.seed = job.seed;
                slot.result.report = simulation->run();
                slot.result.traceDigest =
                    simulation->sim().traceDigest();
                slot.latencies = simulation->latencies();
            } catch (...) {
                slot.error = std::current_exception();
            }
        }
    };

    const int thread_count = std::min<std::size_t>(
        static_cast<std::size_t>(effectiveJobs()), grid.size());
    if (thread_count <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(thread_count));
        for (int t = 0; t < thread_count; ++t)
            pool.emplace_back(worker);
        for (std::thread& thread : pool)
            thread.join();
    }

    for (const JobSlot& slot : slots) {
        if (slot.error)
            std::rethrow_exception(slot.error);
    }

    // Single-threaded aggregation in grid order: merge order (and
    // with it floating-point rounding) never depends on the pool.
    std::vector<ReplicatedCurve> curves(sweeps_.size());
    for (std::size_t s = 0; s < sweeps_.size(); ++s) {
        curves[s].label = sweeps_[s].label;
        curves[s].points.resize(sweeps_[s].loads.size());
        for (std::size_t p = 0; p < sweeps_[s].loads.size(); ++p)
            curves[s].points[p].offeredQps = sweeps_[s].loads[p];
    }
    for (std::size_t index = 0; index < grid.size(); ++index) {
        const JobSpec& job = grid[index];
        JobSlot& slot = slots[index];
        ReplicatedPoint& point = curves[job.sweep].points[job.point];
        const RunReport& report = slot.result.report;
        point.achievedQps.add(report.achievedQps);
        point.meanMs.add(report.endToEnd.meanMs);
        point.p50Ms.add(report.endToEnd.p50Ms);
        point.p95Ms.add(report.endToEnd.p95Ms);
        point.p99Ms.add(report.endToEnd.p99Ms);
        point.pooled.merge(slot.latencies);
        slot.latencies.reset();
        point.replications.push_back(std::move(slot.result));
    }
    for (ReplicatedCurve& curve : curves) {
        for (ReplicatedPoint& point : curve.points) {
            point.meanCi = stats::meanConfidenceInterval(
                point.meanMs, options_.confidence);
            point.p99Ci = stats::meanConfidenceInterval(
                point.p99Ms, options_.confidence);
            point.achievedCi = stats::meanConfidenceInterval(
                point.achievedQps, options_.confidence);
        }
    }
    return curves;
}

ReplicatedPoint
runReplicated(const ReplicatedFactory& factory, double qps,
              const RunnerOptions& options)
{
    SweepRunner runner(options);
    runner.addSweep("replications", {qps}, factory);
    std::vector<ReplicatedCurve> curves = runner.run();
    return std::move(curves.front().points.front());
}

namespace {

std::string
ciCell(double mean, const stats::ConfidenceInterval& ci)
{
    std::ostringstream out;
    out << std::fixed << std::setprecision(3) << mean;
    if (ci.valid())
        out << "±" << std::setprecision(3) << ci.halfWidth;
    return out.str();
}

}  // namespace

std::string
formatReplicatedTable(const std::vector<ReplicatedCurve>& curves)
{
    std::ostringstream out;
    out << std::fixed;
    out << std::setw(12) << "load_qps";
    for (const ReplicatedCurve& curve : curves) {
        out << " | " << std::setw(10) << (curve.label + ".ach")
            << ' ' << std::setw(14) << (curve.label + ".mean")
            << ' ' << std::setw(14) << (curve.label + ".p99");
    }
    out << '\n';
    std::size_t rows = 0;
    for (const ReplicatedCurve& curve : curves)
        rows = std::max(rows, curve.points.size());
    for (std::size_t row = 0; row < rows; ++row) {
        double load = 0.0;
        for (const ReplicatedCurve& curve : curves) {
            if (row < curve.points.size()) {
                load = curve.points[row].offeredQps;
                break;
            }
        }
        out << std::setprecision(0) << std::setw(12) << load;
        for (const ReplicatedCurve& curve : curves) {
            if (row >= curve.points.size()) {
                out << " | " << std::setw(10) << '-' << ' '
                    << std::setw(14) << '-' << ' ' << std::setw(14)
                    << '-';
                continue;
            }
            const ReplicatedPoint& point = curve.points[row];
            out << std::setprecision(0) << " | " << std::setw(10)
                << point.achievedQps.mean() << ' ' << std::setw(14)
                << ciCell(point.meanMs.mean(), point.meanCi) << ' '
                << std::setw(14)
                << ciCell(point.p99Ms.mean(), point.p99Ci);
        }
        out << '\n';
    }
    return out.str();
}

}  // namespace runner
}  // namespace uqsim
