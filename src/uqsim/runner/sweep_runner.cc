#include "uqsim/runner/sweep_runner.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <exception>
#include <iomanip>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "uqsim/core/engine/audit.h"
#include "uqsim/random/rng.h"
#include "uqsim/runner/run_journal.h"

namespace uqsim {
namespace runner {

std::uint64_t
replicationSeed(std::uint64_t base_seed, int replication)
{
    if (replication < 0)
        throw std::invalid_argument("replication index must be >= 0");
    if (replication == 0)
        return base_seed;
    return random::RngStream::deriveSeed(
        base_seed, "replication/" + std::to_string(replication));
}

RunReport
ReplicatedPoint::mergedReport() const
{
    RunReport report;
    report.replicationsPlanned = planned;
    report.replicationsMerged = merged;
    report.degraded = degraded() || restoredCount > 0;
    report.offeredQps = offeredQps;
    if (offeredQps <= 0.0) {
        // A zero grid load means "whatever the bundle offers" (the
        // CLI's replicated mode); report what a surviving
        // replication measured.
        for (const ReplicationResult& rep : replications) {
            if (rep.ok()) {
                report.offeredQps = rep.report.offeredQps;
                break;
            }
        }
    }
    report.achievedQps = achievedQps.mean();
    for (const ReplicationResult& rep : replications) {
        if (!rep.ok())
            continue;
        report.generated += rep.report.generated;
        report.completed += rep.report.completed;
        report.timeouts += rep.report.timeouts;
        report.failed += rep.report.failed;
        report.shed += rep.report.shed;
        report.retries += rep.report.retries;
        report.hedges += rep.report.hedges;
        report.breakerTrips += rep.report.breakerTrips;
        report.netDropped += rep.report.netDropped;
        report.crashes += rep.report.crashes;
        report.failovers += rep.report.failovers;
        report.unreachable += rep.report.unreachable;
        report.linkDrops += rep.report.linkDrops;
        for (const auto& [tier, stats] : rep.report.tierFaults) {
            TierFaultStats& merged_tier = report.tierFaults[tier];
            merged_tier.errors += stats.errors;
            merged_tier.timeouts += stats.timeouts;
            merged_tier.hopTimeouts += stats.hopTimeouts;
            merged_tier.retries += stats.retries;
            merged_tier.hedges += stats.hedges;
            merged_tier.shed += stats.shed;
            merged_tier.rejected += stats.rejected;
            merged_tier.crashKills += stats.crashKills;
            merged_tier.unreachable += stats.unreachable;
        }
        for (const auto& [link, stats] : rep.report.linkFaults) {
            LinkFaultStats& merged_link = report.linkFaults[link];
            merged_link.downSeconds += stats.downSeconds;
            merged_link.drops += stats.drops;
        }
        report.events += rep.report.events;
        report.wallSeconds += rep.report.wallSeconds;
    }
    {
        // Pooled availability over the merged replications.
        const std::uint64_t denom =
            report.completed + report.failed + report.shed;
        report.availability =
            denom > 0 ? static_cast<double>(report.completed) /
                            static_cast<double>(denom)
                      : 1.0;
    }
    if (restoredCount == 0) {
        report.endToEnd.count = pooled.count();
        report.endToEnd.meanMs = pooled.mean() * 1e3;
        report.endToEnd.p50Ms = pooled.p50() * 1e3;
        report.endToEnd.p95Ms = pooled.p95() * 1e3;
        report.endToEnd.p99Ms = pooled.p99() * 1e3;
        report.endToEnd.maxMs = pooled.max() * 1e3;
    } else {
        // Journal-restored replications carry headline metrics but
        // not their latency sample stream, so the pool is partial:
        // approximate the point's percentiles with the
        // across-replication means of the per-run percentiles (the
        // report is already marked degraded above).
        std::uint64_t samples = 0;
        double max_ms = 0.0;
        for (const ReplicationResult& rep : replications) {
            if (!rep.ok())
                continue;
            samples += rep.report.endToEnd.count;
            max_ms = std::max(max_ms, rep.report.endToEnd.maxMs);
        }
        report.endToEnd.count = samples;
        report.endToEnd.meanMs = meanMs.mean();
        report.endToEnd.p50Ms = p50Ms.mean();
        report.endToEnd.p95Ms = p95Ms.mean();
        report.endToEnd.p99Ms = p99Ms.mean();
        report.endToEnd.maxMs = max_ms;
    }
    // Per-tier stats are not pooled: percentiles cannot be rebuilt
    // from the per-run LatencyStats.  Consumers needing tiers read
    // the individual replications.
    return report;
}

int
ReplicatedCurve::failedReplications() const
{
    int failed = 0;
    for (const ReplicatedPoint& point : points) {
        for (const ReplicationResult& rep : point.replications) {
            if (!rep.ok())
                ++failed;
        }
    }
    return failed;
}

SweepCurve
ReplicatedCurve::toSweepCurve() const
{
    SweepCurve curve;
    curve.label = label;
    curve.points.reserve(points.size());
    for (const ReplicatedPoint& point : points) {
        SweepPoint out;
        out.offeredQps = point.offeredQps;
        out.report = point.mergedReport();
        curve.points.push_back(std::move(out));
    }
    return curve;
}

SweepRunner::SweepRunner(RunnerOptions options)
    : options_(std::move(options))
{
    if (options_.jobs < 0)
        throw std::invalid_argument("jobs must be >= 0");
    if (options_.replications < 1)
        throw std::invalid_argument("replications must be >= 1");
    if (!(options_.confidence > 0.0 && options_.confidence < 1.0))
        throw std::invalid_argument("confidence must be in (0, 1)");
    if (options_.watchdog.wallTimeoutSeconds < 0.0 ||
        options_.watchdog.stallWindowSeconds < 0.0 ||
        options_.watchdog.pollIntervalSeconds <= 0.0) {
        throw std::invalid_argument("watchdog limits must be >= 0 and "
                                    "the poll interval positive");
    }
}

int
SweepRunner::effectiveJobs() const
{
    if (options_.jobs > 0)
        return options_.jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

void
SweepRunner::addSweep(std::string label, std::vector<double> loads,
                      ReplicatedFactory factory)
{
    if (ran_)
        throw std::logic_error("cannot add sweeps after run()");
    if (loads.empty())
        throw std::invalid_argument("sweep needs at least one load");
    if (!factory)
        throw std::invalid_argument("sweep needs a factory");
    sweeps_.push_back(SweepSpec{std::move(label), std::move(loads),
                                std::move(factory)});
}

namespace {

struct JobSpec {
    std::size_t sweep = 0;
    std::size_t point = 0;
    int replication = 0;
    double qps = 0.0;
    std::uint64_t seed = 0;
    /** Restored from the resume journal; the worker skips it. */
    bool restored = false;
};

struct JobSlot {
    ReplicationResult result;
    stats::PercentileRecorder latencies;
    /** Original exception, kept for the Propagate policy. */
    std::exception_ptr raw;
};

JournalEntry
journalEntryFor(const JobSpec& job, const std::string& sweep_label,
                const JobSlot& slot)
{
    JournalEntry entry;
    entry.sweep = sweep_label;
    entry.point = job.point;
    entry.replication = job.replication;
    entry.qps = job.qps;
    entry.seed = job.seed;
    entry.status = slot.result.failure;
    entry.error = slot.result.error;
    if (slot.result.ok()) {
        const RunReport& report = slot.result.report;
        entry.traceDigest = slot.result.traceDigest;
        entry.achievedQps = report.achievedQps;
        entry.meanMs = report.endToEnd.meanMs;
        entry.p50Ms = report.endToEnd.p50Ms;
        entry.p95Ms = report.endToEnd.p95Ms;
        entry.p99Ms = report.endToEnd.p99Ms;
        entry.maxMs = report.endToEnd.maxMs;
        entry.completed = report.completed;
        entry.generated = report.generated;
        entry.events = report.events;
    }
    return entry;
}

/** Filesystem-safe job identity for per-replication snapshot
 *  prefixes: sweep labels may contain anything. */
std::string
sanitizeLabel(const std::string& label)
{
    std::string safe = label;
    for (char& c : safe) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' ||
                        c == '_';
        if (!ok)
            c = '_';
    }
    return safe;
}

std::string
snapshotPrefixFor(const snapshot::CheckpointOptions& base,
                  const std::string& sweep_label, const JobSpec& job)
{
    return base.prefix + "-" + sanitizeLabel(sweep_label) + "-p" +
           std::to_string(job.point) + "-r" +
           std::to_string(job.replication);
}

/** Rebuilds the restorable part of a ReplicationResult from a
 *  journaled stat digest. */
ReplicationResult
restoreResult(const JournalEntry& entry)
{
    ReplicationResult result;
    result.seed = entry.seed;
    result.traceDigest = entry.traceDigest;
    result.restored = true;
    result.report.offeredQps = entry.qps;
    result.report.achievedQps = entry.achievedQps;
    result.report.generated = entry.generated;
    result.report.completed = entry.completed;
    result.report.events = entry.events;
    result.report.endToEnd.count = entry.completed;
    result.report.endToEnd.meanMs = entry.meanMs;
    result.report.endToEnd.p50Ms = entry.p50Ms;
    result.report.endToEnd.p95Ms = entry.p95Ms;
    result.report.endToEnd.p99Ms = entry.p99Ms;
    result.report.endToEnd.maxMs = entry.maxMs;
    return result;
}

}  // namespace

std::vector<ReplicatedCurve>
SweepRunner::run()
{
    if (ran_)
        throw std::logic_error("run() called twice");
    ran_ = true;

    // Lay the grid out sweep-major, then point, then replication, so
    // slot indices (and with them aggregation order) are independent
    // of execution interleaving.
    std::vector<JobSpec> grid;
    for (std::size_t s = 0; s < sweeps_.size(); ++s) {
        for (std::size_t p = 0; p < sweeps_[s].loads.size(); ++p) {
            for (int r = 0; r < options_.replications; ++r) {
                JobSpec job;
                job.sweep = s;
                job.point = p;
                job.replication = r;
                job.qps = sweeps_[s].loads[p];
                job.seed = replicationSeed(options_.baseSeed, r);
                grid.push_back(job);
            }
        }
    }

    std::vector<JobSlot> slots(grid.size());

    std::unique_ptr<JournalWriter> journal;
    if (!options_.journalPath.empty())
        journal = std::make_unique<JournalWriter>(options_.journalPath);

    // Resume: restore jobs the journal already recorded ok, provided
    // their identity (load, seed) still matches this grid — a changed
    // base seed or load list silently invalidates nothing, the
    // mismatched jobs simply re-run.
    if (!options_.resumePath.empty()) {
        const JournalIndex index = JournalIndex::load(options_.resumePath);
        // Crash-safety surfacing: a journal truncated mid-append is
        // usable, but the dropped lines must be visible.
        resumeWarnings_ = index.warnings;
        for (const std::string& warning : resumeWarnings_)
            std::fprintf(stderr, "uqsim: %s\n", warning.c_str());
        const bool copy_forward =
            journal != nullptr && options_.journalPath != options_.resumePath;
        for (std::size_t i = 0; i < grid.size(); ++i) {
            JobSpec& job = grid[i];
            const JournalEntry* entry = index.find(
                sweeps_[job.sweep].label, job.point, job.replication);
            if (entry == nullptr || !entry->ok() ||
                entry->seed != job.seed || entry->qps != job.qps) {
                continue;
            }
            job.restored = true;
            slots[i].result = restoreResult(*entry);
            ++restoredJobs_;
            // When writing a different journal than we resumed from,
            // carry the restored entries forward so the new journal
            // is complete on its own.
            if (copy_forward)
                journal->append(*entry);
        }
    }

    std::size_t pending = 0;
    for (const JobSpec& job : grid) {
        if (!job.restored)
            ++pending;
    }

    StallWatchdog watchdog(options_.watchdog);

    // A failure to *journal* is a harness/IO problem, not a job
    // failure: it is collected here and always thrown, because a
    // journal the user asked for that silently stopped recording
    // would make a later --resume quietly wrong.
    std::mutex journal_error_mutex;
    std::string journal_error;

    std::atomic<std::size_t> next{0};

    auto worker = [&]() {
        while (true) {
            const std::size_t index =
                next.fetch_add(1, std::memory_order_relaxed);
            if (index >= grid.size())
                return;
            const JobSpec& job = grid[index];
            if (job.restored)
                continue;
            JobSlot& slot = slots[index];
            slot.result.seed = job.seed;

            RunControl control;
            control.setMaxEvents(
                options_.watchdog.maxEventsPerReplication);
            std::unique_ptr<Simulation> simulation;
            try {
                simulation = sweeps_[job.sweep].factory(job.qps, job.seed);
                if (!simulation || !simulation->finalized()) {
                    throw std::logic_error(
                        "runner factory must return a finalized "
                        "simulation");
                }
                simulation->setRunControl(&control);
                WatchGuard guard(&watchdog, &control);
                if (options_.checkpoint.enabled()) {
                    snapshot::CheckpointOptions ckpt =
                        options_.checkpoint;
                    ckpt.prefix = snapshotPrefixFor(
                        options_.checkpoint,
                        sweeps_[job.sweep].label, job);
                    if (options_.resumeFromSnapshot) {
                        const auto found = snapshot::newestValidSnapshot(
                            ckpt.dir, ckpt.prefix);
                        if (found) {
                            try {
                                snapshot::restoreFromSnapshot(
                                    *simulation, found->path);
                            } catch (const std::exception& error) {
                                // Resume is an optimization: a
                                // snapshot that fails validation is
                                // reported and the job simply runs
                                // fresh from a rebuilt simulation
                                // (the failed restore may have
                                // advanced this one).
                                std::fprintf(
                                    stderr,
                                    "uqsim: snapshot %s not "
                                    "restorable (%s); running job "
                                    "fresh\n",
                                    found->path.c_str(),
                                    error.what());
                                simulation = sweeps_[job.sweep].factory(
                                    job.qps, job.seed);
                                if (!simulation ||
                                    !simulation->finalized()) {
                                    throw std::logic_error(
                                        "runner factory must return "
                                        "a finalized simulation");
                                }
                                simulation->setRunControl(&control);
                            }
                        }
                    }
                    snapshot::CheckpointManager manager(*simulation,
                                                        ckpt);
                    slot.result.report = manager.run();
                } else {
                    slot.result.report = simulation->run();
                }
                slot.result.traceDigest =
                    simulation->sim().traceDigest();
                slot.latencies = simulation->latencies();
            } catch (...) {
                slot.raw = std::current_exception();
                slot.result.failure =
                    classifyException(slot.raw, &slot.result.error);
                // Abort-path leak check: whatever threw, the engine's
                // pooled storage must have been released by RAII
                // (FiredEvent slots in particular).  A violation here
                // means salvage would merge against a corrupted pool,
                // so escalate it over the original classification.
                if (simulation && simulation->finalized()) {
                    const audit::AuditReport engine_audit =
                        simulation->sim().auditEngine();
                    if (!engine_audit.clean()) {
                        slot.result.failure =
                            FailureKind::InvariantViolation;
                        slot.result.error +=
                            "; post-failure engine audit: " +
                            engine_audit.describe();
                    }
                }
            }
            if (journal != nullptr) {
                try {
                    journal->append(journalEntryFor(
                        job, sweeps_[job.sweep].label, slot));
                } catch (const std::exception& error) {
                    std::lock_guard<std::mutex> lock(journal_error_mutex);
                    if (journal_error.empty())
                        journal_error = error.what();
                }
            }
        }
    };

    const int thread_count = static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(effectiveJobs()), pending));
    if (thread_count <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(thread_count));
        for (int t = 0; t < thread_count; ++t)
            pool.emplace_back(worker);
        for (std::thread& thread : pool)
            thread.join();
    }

    if (!journal_error.empty()) {
        throw std::runtime_error("failed writing run journal: " +
                                 journal_error);
    }

    for (const JobSlot& slot : slots) {
        if (!slot.result.ok())
            ++failedJobs_;
    }
    if (options_.failurePolicy == FailurePolicy::Propagate) {
        for (const JobSlot& slot : slots) {
            if (slot.raw)
                std::rethrow_exception(slot.raw);
        }
    }

    // Single-threaded aggregation in grid order: merge order (and
    // with it floating-point rounding) never depends on the pool.
    // Failed replications are kept for inspection but contribute
    // nothing to the aggregates; restored ones contribute their
    // stat digests but cannot refill the latency pool.
    std::vector<ReplicatedCurve> curves(sweeps_.size());
    for (std::size_t s = 0; s < sweeps_.size(); ++s) {
        curves[s].label = sweeps_[s].label;
        curves[s].points.resize(sweeps_[s].loads.size());
        for (std::size_t p = 0; p < sweeps_[s].loads.size(); ++p) {
            curves[s].points[p].offeredQps = sweeps_[s].loads[p];
            curves[s].points[p].planned = options_.replications;
        }
    }
    for (std::size_t index = 0; index < grid.size(); ++index) {
        const JobSpec& job = grid[index];
        JobSlot& slot = slots[index];
        ReplicatedPoint& point = curves[job.sweep].points[job.point];
        if (slot.result.ok()) {
            const RunReport& report = slot.result.report;
            point.achievedQps.add(report.achievedQps);
            point.meanMs.add(report.endToEnd.meanMs);
            point.p50Ms.add(report.endToEnd.p50Ms);
            point.p95Ms.add(report.endToEnd.p95Ms);
            point.p99Ms.add(report.endToEnd.p99Ms);
            if (slot.result.restored)
                ++point.restoredCount;
            else
                point.pooled.merge(slot.latencies);
            ++point.merged;
        }
        slot.latencies.reset();
        point.replications.push_back(std::move(slot.result));
    }
    for (ReplicatedCurve& curve : curves) {
        for (ReplicatedPoint& point : curve.points) {
            point.meanCi = stats::meanConfidenceInterval(
                point.meanMs, options_.confidence);
            point.p99Ci = stats::meanConfidenceInterval(
                point.p99Ms, options_.confidence);
            point.achievedCi = stats::meanConfidenceInterval(
                point.achievedQps, options_.confidence);
        }
    }
    return curves;
}

ReplicatedPoint
runReplicated(const ReplicatedFactory& factory, double qps,
              const RunnerOptions& options)
{
    SweepRunner runner(options);
    runner.addSweep("replications", {qps}, factory);
    std::vector<ReplicatedCurve> curves = runner.run();
    return std::move(curves.front().points.front());
}

namespace {

std::string
ciCell(double mean, const stats::ConfidenceInterval& ci)
{
    std::ostringstream out;
    out << std::fixed << std::setprecision(3) << mean;
    if (ci.valid())
        out << "±" << std::setprecision(3) << ci.halfWidth;
    return out.str();
}

}  // namespace

std::string
formatReplicatedTable(const std::vector<ReplicatedCurve>& curves)
{
    std::ostringstream out;
    out << std::fixed;
    out << std::setw(12) << "load_qps";
    for (const ReplicatedCurve& curve : curves) {
        out << " | " << std::setw(10) << (curve.label + ".ach")
            << ' ' << std::setw(14) << (curve.label + ".mean")
            << ' ' << std::setw(14) << (curve.label + ".p99");
    }
    out << '\n';
    std::size_t rows = 0;
    for (const ReplicatedCurve& curve : curves)
        rows = std::max(rows, curve.points.size());
    for (std::size_t row = 0; row < rows; ++row) {
        double load = 0.0;
        for (const ReplicatedCurve& curve : curves) {
            if (row < curve.points.size()) {
                load = curve.points[row].offeredQps;
                break;
            }
        }
        out << std::setprecision(0) << std::setw(12) << load;
        for (const ReplicatedCurve& curve : curves) {
            if (row >= curve.points.size()) {
                out << " | " << std::setw(10) << '-' << ' '
                    << std::setw(14) << '-' << ' ' << std::setw(14)
                    << '-';
                continue;
            }
            const ReplicatedPoint& point = curve.points[row];
            // Degraded points (failures left them short of planned
            // replications) are marked with a trailing '!'.
            const std::string p99_cell =
                ciCell(point.p99Ms.mean(), point.p99Ci) +
                (point.degraded() ? "!" : "");
            out << std::setprecision(0) << " | " << std::setw(10)
                << point.achievedQps.mean() << ' ' << std::setw(14)
                << ciCell(point.meanMs.mean(), point.meanCi) << ' '
                << std::setw(14) << p99_cell;
        }
        out << '\n';
    }
    return out.str();
}

}  // namespace runner
}  // namespace uqsim
