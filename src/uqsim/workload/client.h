#ifndef UQSIM_WORKLOAD_CLIENT_H_
#define UQSIM_WORKLOAD_CLIENT_H_

/**
 * @file
 * Open-loop workload generator modeled after the paper's modified
 * wrk2 client: a fixed set of persistent connections to the
 * front-end tier, with request issue times drawn from an arrival
 * process regardless of completions (client.json, Table I).
 */

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "uqsim/core/app/dispatcher.h"
#include "uqsim/core/engine/simulator.h"
#include "uqsim/random/distribution.h"
#include "uqsim/workload/arrival_process.h"
#include "uqsim/workload/load_pattern.h"

namespace uqsim {

namespace snapshot {
class SnapshotWriter;
class SnapshotReader;
}  // namespace snapshot

namespace workload {

/** How the generator paces requests. */
enum class ClientMode {
    /** Open loop (wrk2-style): arrivals never wait for completions;
     *  the paper's validation setup. */
    Open,
    /** Closed loop: each connection holds one outstanding request
     *  and issues the next one a think time after the response. */
    Closed,
};

/** Client configuration (client.json). */
struct ClientConfig {
    /** Front-end service the client connects to. */
    std::string frontService;
    /** Number of persistent client connections. */
    int connections = 320;
    /** Open vs closed loop ("mode": "open" | "closed"). */
    ClientMode mode = ClientMode::Open;
    /** Closed-loop think time between response and next request
     *  (seconds); sampled exponentially when > 0. */
    double thinkTime = 0.0;
    /** Request payload size distribution (bytes). */
    random::DistributionPtr requestBytes;
    /** Inter-arrival process. */
    ArrivalProcessPtr arrivals;
    /** Offered load over time. */
    LoadPatternPtr load;
    /** Time generation starts (seconds). */
    double startTime = 0.0;
    /** Time generation stops (seconds); <= 0 = never. */
    double stopTime = 0.0;
    /**
     * Client-side request timeout (seconds); <= 0 disables.  A
     * request not answered within the timeout is recorded as timed
     * out; its eventual completion is ignored.  Models the
     * timeout/reconnect behavior the paper notes real clients add
     * beyond saturation (§IV-C).
     */
    double timeout = 0.0;
    /** Reissue attempts after a timeout or failure (requires
     *  timeout > 0 for the timeout path). */
    int retries = 0;
    /** First-retry backoff (seconds); <= 0 reissues immediately. */
    double retryBackoffSeconds = 0.0;
    /** Backoff growth per retry. */
    double retryBackoffMult = 2.0;
    /** Multiplicative jitter fraction on the backoff; 0 disables
     *  (and then no RNG is drawn for it). */
    double retryJitter = 0.0;

    /** Parses a client.json document. */
    static ClientConfig fromJson(const json::JsonValue& doc);
};

/** Open-loop request generator. */
class Client {
  public:
    /**
     * Creates the client's connections (spread round-robin across
     * the front service's instances) but does not start generating;
     * call start().
     */
    Client(Simulator& sim, Dispatcher& dispatcher,
           Deployment& deployment, ClientConfig config);

    /** Schedules the first arrival. */
    void start();

    /** Requests issued so far (including retry reissues). */
    std::uint64_t generated() const { return generated_; }

    /** Requests that exceeded the client timeout. */
    std::uint64_t timeouts() const { return timeouts_; }

    /** Requests reported failed by the dispatcher (crash, loss,
     *  shed, exhausted hop retries, open breaker). */
    std::uint64_t errors() const { return errors_; }

    /** Retry requests issued after timeouts or failures. */
    std::uint64_t retriesIssued() const { return retriesIssued_; }

    /**
     * Tag identifying this client's jobs (set by the owning
     * Simulation; -1 when unmanaged).
     */
    int tag() const { return tag_; }
    void setTag(int tag) { tag_ = tag; }

    /**
     * Notifies the client that one of its requests completed.  Used
     * by the timeout machinery; returns false when the request had
     * already timed out (its latency should not be recorded).
     */
    bool onCompletion(JobId root);

    /**
     * Notifies the client that one of its requests failed.  Cancels
     * the pending timeout, counts an error, reissues when the retry
     * budget allows, and keeps a closed loop running.
     */
    void onFailure(JobId root);

    const ClientConfig& config() const { return config_; }

    /** Instantaneous offered load at the current simulation time. */
    double currentOfferedLoad() const;

    /**
     * Serializes this client's state into the open snapshot section:
     * counters, arrival cursor, RNG position, and deterministic folds
     * of the outstanding-request and closed-loop maps.
     */
    void saveState(snapshot::SnapshotWriter& writer) const;

    /** Validates the live (replayed) state against saveState()'s
     *  fields; @p name prefixes field names in error messages. */
    void loadState(snapshot::SnapshotReader& reader,
                   const std::string& name) const;

    /**
     * Re-derives the arrival RNG from a different master seed
     * (stream label unchanged).  Warm-state forking uses this after
     * restore so forks explore different arrival sequences from the
     * same warmed state; see snapshot/checkpoint.h.
     */
    void reseed(std::uint64_t master_seed);

    /** Wraps the configured load pattern in a ScaledLoad decorator
     *  (fork-time load perturbation; no-op pattern required). */
    void scaleLoad(double scale);

  private:
    void scheduleNext();
    void issueRequest();
    void issueOn(std::size_t endpoint_index, int retries_left);
    void onTimeout(JobId root);
    void reissueAfterBackoff(std::size_t endpoint_index,
                             int retries_left);
    void scheduleClosedLoopNext(std::size_t endpoint_index);

    struct Endpoint {
        MicroserviceInstance* instance;
        ConnectionId connection;
    };

    struct Outstanding {
        EventHandle timeout;
        std::size_t endpoint;
        int retriesLeft;
    };

    Simulator& sim_;
    Dispatcher& dispatcher_;
    ClientConfig config_;
    std::vector<Endpoint> endpoints_;
    std::size_t cursor_ = 0;
    random::RngStream rng_;
    std::uint64_t generated_ = 0;
    std::uint64_t timeouts_ = 0;
    std::uint64_t errors_ = 0;
    std::uint64_t retriesIssued_ = 0;
    int tag_ = -1;
    std::map<JobId, Outstanding> outstanding_;
    /** Closed loop: root request -> issuing endpoint. */
    std::map<JobId, std::size_t> closedLoopEndpoints_;
};

}  // namespace workload
}  // namespace uqsim

#endif  // UQSIM_WORKLOAD_CLIENT_H_
