#ifndef UQSIM_WORKLOAD_ARRIVAL_PROCESS_H_
#define UQSIM_WORKLOAD_ARRIVAL_PROCESS_H_

/**
 * @file
 * Inter-arrival sampling for the open-loop workload generator.
 *
 * The validation experiments use exponentially distributed
 * inter-arrival times (Poisson arrivals) whose rate follows a load
 * pattern.  Deterministic and uniform processes are available for
 * sensitivity studies.
 */

#include <memory>
#include <string>

#include "uqsim/random/rng.h"
#include "uqsim/workload/load_pattern.h"

namespace uqsim {
namespace workload {

/** Inter-arrival time process parameterized by a load pattern. */
class ArrivalProcess {
  public:
    virtual ~ArrivalProcess() = default;

    /**
     * Samples the gap (seconds) until the next arrival given the
     * instantaneous rate @p rate_qps (> 0).
     */
    virtual double nextGap(double rate_qps, random::Rng& rng) const = 0;

    virtual std::string describe() const = 0;

    /** Parses "poisson" / "deterministic" / "uniform". */
    static std::shared_ptr<ArrivalProcess>
    fromName(const std::string& name);
};

using ArrivalProcessPtr = std::shared_ptr<ArrivalProcess>;

/** Exponential gaps (memoryless Poisson arrivals). */
class PoissonArrivals : public ArrivalProcess {
  public:
    double nextGap(double rate_qps, random::Rng& rng) const override;
    std::string describe() const override { return "poisson"; }
};

/** Fixed gaps of 1/rate. */
class DeterministicArrivals : public ArrivalProcess {
  public:
    double nextGap(double rate_qps, random::Rng& rng) const override;
    std::string describe() const override { return "deterministic"; }
};

/** Uniform gaps on [0, 2/rate) (same mean, lower variance). */
class UniformArrivals : public ArrivalProcess {
  public:
    double nextGap(double rate_qps, random::Rng& rng) const override;
    std::string describe() const override { return "uniform"; }
};

}  // namespace workload
}  // namespace uqsim

#endif  // UQSIM_WORKLOAD_ARRIVAL_PROCESS_H_
