#include "uqsim/workload/client.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "uqsim/json/validation.h"
#include "uqsim/random/distribution_factory.h"
#include "uqsim/random/distributions.h"
#include "uqsim/snapshot/state_io.h"

namespace uqsim {
namespace workload {

ClientConfig
ClientConfig::fromJson(const json::JsonValue& doc)
{
    json::requireKnownKeys(doc,
                           {"front_service", "connections",
                            "request_bytes", "arrival", "load",
                            "start_s", "stop_s", "timeout_s", "retries",
                            "retry_backoff_s", "retry_backoff_mult",
                            "retry_jitter", "mode", "think_time_s"},
                           "client.json");
    ClientConfig config;
    config.frontService = doc.at("front_service").asString();
    config.connections = doc.getOr("connections", 320);
    if (const json::JsonValue* bytes = doc.find("request_bytes")) {
        config.requestBytes = random::makeDistribution(*bytes);
    } else {
        config.requestBytes =
            std::make_shared<random::DeterministicDistribution>(128.0);
    }
    config.arrivals =
        ArrivalProcess::fromName(doc.getOr("arrival", "poisson"));
    if (const json::JsonValue* load = doc.find("load"))
        config.load = LoadPattern::fromJson(*load);
    config.startTime = doc.getOr("start_s", 0.0);
    config.stopTime = doc.getOr("stop_s", 0.0);
    config.timeout = doc.getOr("timeout_s", 0.0);
    config.retries = doc.getOr("retries", 0);
    config.retryBackoffSeconds = doc.getOr("retry_backoff_s", 0.0);
    config.retryBackoffMult = doc.getOr("retry_backoff_mult", 2.0);
    config.retryJitter = doc.getOr("retry_jitter", 0.0);
    if (config.retries < 0)
        throw json::JsonError("client retries must be >= 0");
    if (config.retryJitter < 0.0)
        throw json::JsonError("client retry_jitter must be >= 0");
    const std::string mode = doc.getOr("mode", "open");
    if (mode == "open") {
        config.mode = ClientMode::Open;
    } else if (mode == "closed") {
        config.mode = ClientMode::Closed;
    } else {
        throw json::JsonError("unknown client mode: \"" + mode + "\"");
    }
    config.thinkTime = doc.getOr("think_time_s", 0.0);
    return config;
}

Client::Client(Simulator& sim, Dispatcher& dispatcher,
               Deployment& deployment, ClientConfig config)
    : sim_(sim), dispatcher_(dispatcher), config_(std::move(config)),
      rng_(sim.masterSeed(), "client/" + config_.frontService)
{
    if (config_.connections <= 0)
        throw std::invalid_argument("client needs >= 1 connection");
    if (!config_.load && config_.mode == ClientMode::Open)
        throw std::invalid_argument(
            "open-loop client needs a load pattern");
    if (!config_.arrivals)
        config_.arrivals = std::make_shared<PoissonArrivals>();
    if (!config_.requestBytes) {
        config_.requestBytes =
            std::make_shared<random::DeterministicDistribution>(128.0);
    }
    const auto& fronts = deployment.instances(config_.frontService);
    if (fronts.empty()) {
        throw std::invalid_argument("front service \"" +
                                    config_.frontService +
                                    "\" has no instances");
    }
    endpoints_.reserve(static_cast<std::size_t>(config_.connections));
    for (int i = 0; i < config_.connections; ++i) {
        endpoints_.push_back(Endpoint{
            fronts[static_cast<std::size_t>(i) % fronts.size()],
            deployment.connectionIds().next()});
    }
}

void
Client::start()
{
    const SimTime start = secondsToSimTime(config_.startTime);
    if (config_.mode == ClientMode::Closed) {
        // One outstanding request per connection from the start.
        sim_.scheduleAt(
            std::max(start, sim_.now()),
            [this]() {
                for (std::size_t i = 0; i < endpoints_.size(); ++i)
                    issueOn(i, config_.retries);
            },
            "client/start");
        return;
    }
    sim_.scheduleAt(std::max(start, sim_.now()),
                    [this]() { scheduleNext(); }, "client/start");
}

void
Client::saveState(snapshot::SnapshotWriter& writer) const
{
    writer.putU64(generated_);
    writer.putU64(timeouts_);
    writer.putU64(errors_);
    writer.putU64(retriesIssued_);
    writer.putU64(cursor_);
    snapshot::putRngState(writer, rng_.state());
    // Outstanding requests in JobId order: id, endpoint, retry
    // budget, and whether the timeout event is still pending.  The
    // handles themselves replay; the fold pins that the same requests
    // are in flight with the same budgets.
    writer.putU64(outstanding_.size());
    snapshot::Digest out;
    for (const auto& [root, state] : outstanding_) {
        out.u64(root);
        out.u64(state.endpoint);
        out.i64(state.retriesLeft);
        out.boolean(state.timeout.pending());
    }
    writer.putU64(out.value());
    writer.putU64(closedLoopEndpoints_.size());
    snapshot::Digest closed;
    for (const auto& [root, endpoint] : closedLoopEndpoints_) {
        closed.u64(root);
        closed.u64(endpoint);
    }
    writer.putU64(closed.value());
}

void
Client::loadState(snapshot::SnapshotReader& reader,
                  const std::string& name) const
{
    const auto field = [&name](const char* suffix) {
        return name + "." + suffix;
    };
    reader.requireU64(field("generated").c_str(), generated_);
    reader.requireU64(field("timeouts").c_str(), timeouts_);
    reader.requireU64(field("errors").c_str(), errors_);
    reader.requireU64(field("retries_issued").c_str(),
                      retriesIssued_);
    reader.requireU64(field("cursor").c_str(), cursor_);
    snapshot::requireRngState(reader, field("rng"), rng_.state());
    reader.requireU64(field("outstanding").c_str(),
                      outstanding_.size());
    snapshot::Digest out;
    for (const auto& [root, state] : outstanding_) {
        out.u64(root);
        out.u64(state.endpoint);
        out.i64(state.retriesLeft);
        out.boolean(state.timeout.pending());
    }
    reader.requireU64(field("outstanding_digest").c_str(),
                      out.value());
    reader.requireU64(field("closed_loop").c_str(),
                      closedLoopEndpoints_.size());
    snapshot::Digest closed;
    for (const auto& [root, endpoint] : closedLoopEndpoints_) {
        closed.u64(root);
        closed.u64(endpoint);
    }
    reader.requireU64(field("closed_loop_digest").c_str(),
                      closed.value());
}

void
Client::reseed(std::uint64_t master_seed)
{
    rng_ = random::RngStream(master_seed,
                             "client/" + config_.frontService);
}

void
Client::scaleLoad(double scale)
{
    if (!config_.load) {
        throw std::logic_error(
            "cannot scale the load of a client with no load pattern");
    }
    config_.load = std::make_shared<ScaledLoad>(config_.load, scale);
}

double
Client::currentOfferedLoad() const
{
    if (!config_.load)
        return 0.0;
    return config_.load->rateAt(simTimeToSeconds(sim_.now()));
}

void
Client::scheduleNext()
{
    const double now = simTimeToSeconds(sim_.now());
    if (config_.stopTime > 0.0 && now >= config_.stopTime)
        return;
    const double rate = config_.load->rateAt(now);
    if (rate <= 0.0) {
        // Idle period: poll the pattern again shortly.
        sim_.scheduleAfter(10 * kMillisecond,
                           [this]() { scheduleNext(); }, "client/idle");
        return;
    }
    const double gap = config_.arrivals->nextGap(rate, rng_);
    sim_.scheduleAfter(secondsToSimTime(gap),
                       [this]() { issueRequest(); }, "client/arrival");
}

void
Client::issueRequest()
{
    const double now = simTimeToSeconds(sim_.now());
    if (config_.stopTime > 0.0 && now >= config_.stopTime)
        return;
    const std::size_t endpoint_index = cursor_;
    cursor_ = (cursor_ + 1) % endpoints_.size();
    issueOn(endpoint_index, config_.retries);
    scheduleNext();
}

void
Client::issueOn(std::size_t endpoint_index, int retries_left)
{
    const Endpoint& endpoint = endpoints_[endpoint_index];
    const double sampled = config_.requestBytes->sample(rng_);
    const auto bytes =
        static_cast<std::uint32_t>(std::max(1.0, sampled));
    JobPtr job = dispatcher_.jobs().createRoot(sim_.now(), bytes);
    job->clientTag = tag_;
    ++generated_;
    if (config_.mode == ClientMode::Closed)
        closedLoopEndpoints_[job->rootId] = endpoint_index;
    if (config_.timeout > 0.0) {
        const JobId root = job->rootId;
        Outstanding state;
        state.endpoint = endpoint_index;
        state.retriesLeft = retries_left;
        state.timeout = sim_.scheduleAfter(
            secondsToSimTime(config_.timeout),
            [this, root]() { onTimeout(root); }, "client/timeout");
        outstanding_.emplace(root, std::move(state));
    }
    dispatcher_.startRequest(std::move(job), *endpoint.instance,
                             endpoint.connection);
}

void
Client::onTimeout(JobId root)
{
    const auto it = outstanding_.find(root);
    if (it == outstanding_.end())
        return;
    ++timeouts_;
    const std::size_t endpoint_index = it->second.endpoint;
    const int retries_left = it->second.retriesLeft;
    outstanding_.erase(it);
    if (retries_left > 0) {
        ++retriesIssued_;
        reissueAfterBackoff(endpoint_index, retries_left - 1);
    }
}

void
Client::onFailure(JobId root)
{
    ++errors_;
    std::size_t endpoint_index = 0;
    bool have_endpoint = false;
    int retries_left = 0;
    if (config_.mode == ClientMode::Closed) {
        const auto cit = closedLoopEndpoints_.find(root);
        if (cit != closedLoopEndpoints_.end()) {
            endpoint_index = cit->second;
            have_endpoint = true;
            closedLoopEndpoints_.erase(cit);
        }
    }
    const auto it = outstanding_.find(root);
    if (it != outstanding_.end()) {
        it->second.timeout.cancel();
        endpoint_index = it->second.endpoint;
        retries_left = it->second.retriesLeft;
        have_endpoint = true;
        outstanding_.erase(it);
    }
    if (!have_endpoint)
        return;  // open loop without timeout: count it and move on
    if (retries_left > 0) {
        ++retriesIssued_;
        reissueAfterBackoff(endpoint_index, retries_left - 1);
        return;
    }
    // Out of retries: a closed loop must still issue the next
    // request or the connection would idle forever.
    if (config_.mode == ClientMode::Closed)
        scheduleClosedLoopNext(endpoint_index);
}

void
Client::reissueAfterBackoff(std::size_t endpoint_index, int retries_left)
{
    double backoff = 0.0;
    if (config_.retryBackoffSeconds > 0.0) {
        const int retry_index = config_.retries - retries_left - 1;
        backoff = config_.retryBackoffSeconds *
                  std::pow(config_.retryBackoffMult,
                           static_cast<double>(retry_index));
        if (config_.retryJitter > 0.0)
            backoff *= 1.0 + config_.retryJitter * rng_.nextDouble();
    }
    if (backoff <= 0.0) {
        issueOn(endpoint_index, retries_left);
        return;
    }
    sim_.scheduleAfter(
        secondsToSimTime(backoff),
        [this, endpoint_index, retries_left]() {
            issueOn(endpoint_index, retries_left);
        },
        "client/retry-backoff");
}

bool
Client::onCompletion(JobId root)
{
    if (config_.mode == ClientMode::Closed) {
        const auto it = closedLoopEndpoints_.find(root);
        if (it != closedLoopEndpoints_.end()) {
            const std::size_t endpoint = it->second;
            closedLoopEndpoints_.erase(it);
            scheduleClosedLoopNext(endpoint);
        }
    }
    if (config_.timeout <= 0.0)
        return true;
    const auto it = outstanding_.find(root);
    if (it == outstanding_.end())
        return false;  // already timed out
    it->second.timeout.cancel();
    outstanding_.erase(it);
    return true;
}

void
Client::scheduleClosedLoopNext(std::size_t endpoint_index)
{
    const double now = simTimeToSeconds(sim_.now());
    if (config_.stopTime > 0.0 && now >= config_.stopTime)
        return;
    SimTime gap = 0;
    if (config_.thinkTime > 0.0) {
        gap = secondsToSimTime(
            -config_.thinkTime *
            std::log(rng_.nextDoubleOpenLeft()));
    }
    sim_.scheduleAfter(
        gap,
        [this, endpoint_index]() {
            issueOn(endpoint_index, config_.retries);
        },
        "client/closed-next");
}

}  // namespace workload
}  // namespace uqsim
