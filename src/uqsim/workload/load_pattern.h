#ifndef UQSIM_WORKLOAD_LOAD_PATTERN_H_
#define UQSIM_WORKLOAD_LOAD_PATTERN_H_

/**
 * @file
 * Offered-load patterns: the target request rate as a function of
 * time (client.json).  Patterns include constant load for
 * load-latency sweeps, piecewise steps, and the diurnal pattern
 * driving the power-management case study (paper Fig. 15).
 */

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "uqsim/json/json_value.h"

namespace uqsim {
namespace workload {

/** Target arrival rate over time. */
class LoadPattern {
  public:
    virtual ~LoadPattern() = default;

    /** Offered load (requests/second) at time @p t seconds. */
    virtual double rateAt(double t) const = 0;

    /** Short description for reports. */
    virtual std::string describe() const = 0;

    /**
     * Builds a pattern from JSON:
     *   {"type": "constant", "qps": 10000}
     *   {"type": "steps", "points": [[0, 1000], [5, 8000]]}
     *   {"type": "diurnal", "base_qps": 6000, "amplitude_qps": 4000,
     *    "period_s": 60, "phase": 0}
     */
    static std::shared_ptr<LoadPattern>
    fromJson(const json::JsonValue& doc);
};

using LoadPatternPtr = std::shared_ptr<LoadPattern>;

/** Fixed rate. */
class ConstantLoad : public LoadPattern {
  public:
    explicit ConstantLoad(double qps);

    double rateAt(double) const override { return qps_; }
    std::string describe() const override;

  private:
    double qps_;
};

/** Piecewise-constant steps: rate of the last point at or before t. */
class StepLoad : public LoadPattern {
  public:
    /** @param points (time, qps) pairs sorted by time. */
    explicit StepLoad(std::vector<std::pair<double, double>> points);

    double rateAt(double t) const override;
    std::string describe() const override;

  private:
    std::vector<std::pair<double, double>> points_;
};

/**
 * Sinusoidal diurnal pattern:
 *   rate(t) = base + amplitude * sin(2*pi*t/period + phase)
 * clamped below at zero.
 */
class DiurnalLoad : public LoadPattern {
  public:
    DiurnalLoad(double base_qps, double amplitude_qps, double period_s,
                double phase = 0.0);

    double rateAt(double t) const override;
    std::string describe() const override;

    double baseQps() const { return base_; }
    double amplitudeQps() const { return amplitude_; }
    double periodSeconds() const { return period_; }

  private:
    double base_;
    double amplitude_;
    double period_;
    double phase_;
};

/**
 * Multiplicative decorator over another pattern.  Used by warm-state
 * forking (snapshot/checkpoint.h): a fork re-runs the post-warm-up
 * phase at `scale` times the configured load without changing the
 * configuration itself, so the fork still matches the snapshot's
 * config digest.
 */
class ScaledLoad : public LoadPattern {
  public:
    ScaledLoad(LoadPatternPtr inner, double scale);

    double rateAt(double t) const override;
    std::string describe() const override;

    double scale() const { return scale_; }

  private:
    LoadPatternPtr inner_;
    double scale_;
};

}  // namespace workload
}  // namespace uqsim

#endif  // UQSIM_WORKLOAD_LOAD_PATTERN_H_
