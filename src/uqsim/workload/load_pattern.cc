#include "uqsim/workload/load_pattern.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <sstream>
#include <stdexcept>

namespace uqsim {
namespace workload {

std::shared_ptr<LoadPattern>
LoadPattern::fromJson(const json::JsonValue& doc)
{
    if (doc.isNumber())
        return std::make_shared<ConstantLoad>(doc.asDouble());
    const std::string type = doc.at("type").asString();
    if (type == "constant")
        return std::make_shared<ConstantLoad>(doc.at("qps").asDouble());
    if (type == "steps") {
        std::vector<std::pair<double, double>> points;
        for (const json::JsonValue& point : doc.at("points").asArray()) {
            points.emplace_back(point.at(std::size_t{0}).asDouble(),
                                point.at(std::size_t{1}).asDouble());
        }
        return std::make_shared<StepLoad>(std::move(points));
    }
    if (type == "diurnal") {
        return std::make_shared<DiurnalLoad>(
            doc.at("base_qps").asDouble(),
            doc.at("amplitude_qps").asDouble(),
            doc.at("period_s").asDouble(), doc.getOr("phase", 0.0));
    }
    throw json::JsonError("unknown load pattern type: \"" + type + "\"");
}

ConstantLoad::ConstantLoad(double qps) : qps_(qps)
{
    if (qps < 0.0)
        throw std::invalid_argument("load must be >= 0");
}

std::string
ConstantLoad::describe() const
{
    std::ostringstream out;
    out << "constant(" << qps_ << " qps)";
    return out.str();
}

StepLoad::StepLoad(std::vector<std::pair<double, double>> points)
    : points_(std::move(points))
{
    if (points_.empty())
        throw std::invalid_argument("step load requires >= 1 point");
    if (!std::is_sorted(points_.begin(), points_.end(),
                        [](const auto& a, const auto& b) {
                            return a.first < b.first;
                        })) {
        throw std::invalid_argument("step load points must be sorted");
    }
    for (const auto& [time, qps] : points_) {
        if (qps < 0.0)
            throw std::invalid_argument("step load rates must be >= 0");
    }
}

double
StepLoad::rateAt(double t) const
{
    if (t < points_.front().first)
        return 0.0;
    const auto it = std::upper_bound(
        points_.begin(), points_.end(), t,
        [](double value, const auto& point) {
            return value < point.first;
        });
    return std::prev(it)->second;
}

std::string
StepLoad::describe() const
{
    std::ostringstream out;
    out << "steps(" << points_.size() << " segments)";
    return out.str();
}

DiurnalLoad::DiurnalLoad(double base_qps, double amplitude_qps,
                         double period_s, double phase)
    : base_(base_qps), amplitude_(amplitude_qps), period_(period_s),
      phase_(phase)
{
    if (base_qps < 0.0 || amplitude_qps < 0.0)
        throw std::invalid_argument("diurnal rates must be >= 0");
    if (period_s <= 0.0)
        throw std::invalid_argument("diurnal period must be > 0");
}

double
DiurnalLoad::rateAt(double t) const
{
    const double rate =
        base_ + amplitude_ * std::sin(2.0 * std::numbers::pi * t /
                                          period_ +
                                      phase_);
    return std::max(rate, 0.0);
}

std::string
DiurnalLoad::describe() const
{
    std::ostringstream out;
    out << "diurnal(base=" << base_ << ", amp=" << amplitude_
        << ", period=" << period_ << "s)";
    return out.str();
}

ScaledLoad::ScaledLoad(LoadPatternPtr inner, double scale)
    : inner_(std::move(inner)), scale_(scale)
{
    if (!inner_)
        throw std::invalid_argument("scaled load requires a pattern");
    if (scale < 0.0)
        throw std::invalid_argument("load scale must be >= 0");
}

double
ScaledLoad::rateAt(double t) const
{
    return scale_ * inner_->rateAt(t);
}

std::string
ScaledLoad::describe() const
{
    std::ostringstream out;
    out << "scaled(" << scale_ << "x " << inner_->describe() << ")";
    return out.str();
}

}  // namespace workload
}  // namespace uqsim
