#include "uqsim/workload/arrival_process.h"

#include <cmath>
#include <stdexcept>

namespace uqsim {
namespace workload {

std::shared_ptr<ArrivalProcess>
ArrivalProcess::fromName(const std::string& name)
{
    if (name == "poisson")
        return std::make_shared<PoissonArrivals>();
    if (name == "deterministic")
        return std::make_shared<DeterministicArrivals>();
    if (name == "uniform")
        return std::make_shared<UniformArrivals>();
    throw std::invalid_argument("unknown arrival process: \"" + name +
                                "\"");
}

double
PoissonArrivals::nextGap(double rate_qps, random::Rng& rng) const
{
    if (rate_qps <= 0.0)
        throw std::invalid_argument("arrival rate must be > 0");
    return -std::log(rng.nextDoubleOpenLeft()) / rate_qps;
}

double
DeterministicArrivals::nextGap(double rate_qps, random::Rng&) const
{
    if (rate_qps <= 0.0)
        throw std::invalid_argument("arrival rate must be > 0");
    return 1.0 / rate_qps;
}

double
UniformArrivals::nextGap(double rate_qps, random::Rng& rng) const
{
    if (rate_qps <= 0.0)
        throw std::invalid_argument("arrival rate must be > 0");
    return 2.0 * rng.nextDouble() / rate_qps;
}

}  // namespace workload
}  // namespace uqsim
