#ifndef UQSIM_UQSIM_H_
#define UQSIM_UQSIM_H_

/**
 * @file
 * Umbrella header: the µqSim public API in one include.
 *
 * @mainpage µqSim
 *
 * µqSim is a validated discrete-event queueing-network simulator for
 * interactive microservices (Zhang, Gan, Delimitrou — ISPASS 2019).
 * It models execution stages *inside* each microservice (epoll
 * batching, socket reads, processing, blocking I/O) and the
 * dependency graph *between* microservices (fan-out, fan-in
 * synchronization, HTTP/1.1 connection blocking, connection pools,
 * load balancing, per-machine interrupt processing).
 *
 * Typical entry points:
 *  - uqsim::Simulation — assemble a system from the five JSON inputs
 *    and run it (see docs/FORMATS.md).
 *  - uqsim::models — calibrated service models and complete
 *    application bundles for every system the paper evaluates.
 *  - uqsim::runLoadSweep / uqsim::findSloCapacity — load-latency
 *    curves and SLO capacity planning.
 *  - uqsim::TraceRecorder — sampled per-request waterfalls.
 *  - uqsim::power::PowerManager — the QoS-aware DVFS controller of
 *    the paper's §V-B case study.
 *  - uqsim::bighouse::BigHouseSimulation — the single-queue baseline
 *    used in the Fig. 13 comparison.
 *  - uqsim::fault — deterministic fault injection (crashes, slow
 *    nodes, lossy network windows) and resilience policies (per-hop
 *    retries, hedged requests, circuit breakers, load shedding).
 */

#include "uqsim/bighouse/bighouse.h"
#include "uqsim/core/app/deployment.h"
#include "uqsim/core/app/dispatcher.h"
#include "uqsim/core/app/path_tree.h"
#include "uqsim/core/app/trace.h"
#include "uqsim/core/engine/simulator.h"
#include "uqsim/core/service/instance.h"
#include "uqsim/core/service/service_model.h"
#include "uqsim/core/sim/config.h"
#include "uqsim/core/sim/report.h"
#include "uqsim/core/sim/simulation.h"
#include "uqsim/core/sim/sweep.h"
#include "uqsim/fault/fault_plan.h"
#include "uqsim/fault/fault_scheduler.h"
#include "uqsim/fault/resilience.h"
#include "uqsim/hw/cluster.h"
#include "uqsim/json/json_parser.h"
#include "uqsim/json/json_writer.h"
#include "uqsim/json/validation.h"
#include "uqsim/models/applications.h"
#include "uqsim/power/energy_model.h"
#include "uqsim/power/power_manager.h"
#include "uqsim/random/distribution_factory.h"
#include "uqsim/random/distributions.h"
#include "uqsim/random/histogram_distribution.h"
#include "uqsim/runner/sweep_runner.h"
#include "uqsim/stats/confidence.h"
#include "uqsim/stats/percentile_recorder.h"
#include "uqsim/stats/queueing_theory.h"
#include "uqsim/workload/client.h"

#endif  // UQSIM_UQSIM_H_
