#ifndef UQSIM_BIGHOUSE_BIGHOUSE_H_
#define UQSIM_BIGHOUSE_BIGHOUSE_H_

/**
 * @file
 * BigHouse-style baseline simulator (Meisner et al., ISPASS 2012),
 * re-implemented for the paper's Fig. 13 comparison.
 *
 * BigHouse represents each application as a *single queue* with an
 * inter-arrival and a service distribution: all intra-service stages
 * collapse into one service time, so per-stage batching cannot be
 * amortized — every request pays the full epoll cost, which is why
 * BigHouse saturates far below the real system for event-driven
 * services (paper §IV-E).  Multi-tier systems are modeled as a
 * chain of such stations.
 */

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "uqsim/core/engine/simulator.h"
#include "uqsim/core/sim/report.h"
#include "uqsim/random/distribution.h"
#include "uqsim/random/rng.h"
#include "uqsim/stats/percentile_recorder.h"

namespace uqsim {
namespace bighouse {

/** One single-queue, k-server station. */
struct StationConfig {
    std::string name;
    /** Parallel servers (threads in the modeled application). */
    int servers = 1;
    /** Aggregated per-request service time. */
    random::DistributionPtr serviceTime;
};

/** Options of one BigHouse run. */
struct BigHouseOptions {
    std::uint64_t seed = 1;
    double warmupSeconds = 1.0;
    double durationSeconds = 11.0;
};

/**
 * A chain of G/G/k stations driven by open-loop Poisson arrivals.
 * Each request visits every station in order; its latency is the
 * total sojourn time.
 */
class BigHouseSimulation {
  public:
    explicit BigHouseSimulation(const BigHouseOptions& options = {});

    /** Appends a station to the chain. */
    void addStation(StationConfig config);

    /**
     * Runs at the given offered load and returns a report (only the
     * end-to-end fields and tier means are populated).
     */
    RunReport run(double offered_qps);

  private:
    struct Station {
        StationConfig config;
        std::deque<std::size_t> queue;  // waiting request indices
        int busy = 0;
        /** Stable service-event label; events reference it by
         *  pointer. */
        std::string serviceLabel;
    };

    struct Request {
        SimTime created = 0;
        std::size_t stationIndex = 0;
    };

    void arrive(std::size_t request, std::size_t station);
    void tryStart(std::size_t station);
    void finish(std::size_t request, std::size_t station);
    void scheduleNextArrival();

    BigHouseOptions options_;
    Simulator sim_;
    random::RngStream arrivalRng_;
    random::RngStream serviceRng_;
    std::vector<Station> stations_;
    std::vector<Request> requests_;
    double offeredQps_ = 0.0;
    stats::PercentileRecorder latencies_;
    std::uint64_t measuredCompletions_ = 0;
    bool ran_ = false;
};

}  // namespace bighouse
}  // namespace uqsim

#endif  // UQSIM_BIGHOUSE_BIGHOUSE_H_
