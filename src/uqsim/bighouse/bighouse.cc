#include "uqsim/bighouse/bighouse.h"

#include <cmath>
#include <stdexcept>

namespace uqsim {
namespace bighouse {

BigHouseSimulation::BigHouseSimulation(const BigHouseOptions& options)
    : options_(options), sim_(options.seed),
      arrivalRng_(options.seed, "bighouse/arrivals"),
      serviceRng_(options.seed, "bighouse/service")
{
}

void
BigHouseSimulation::addStation(StationConfig config)
{
    if (ran_)
        throw std::logic_error("cannot add stations after run()");
    if (config.servers <= 0)
        throw std::invalid_argument("station needs >= 1 server");
    if (!config.serviceTime)
        throw std::invalid_argument("station needs a service time");
    Station station{std::move(config), {}, 0, {}};
    station.serviceLabel = "bighouse/" + station.config.name;
    stations_.push_back(std::move(station));
}

void
BigHouseSimulation::scheduleNextArrival()
{
    const double gap =
        -std::log(arrivalRng_.nextDoubleOpenLeft()) / offeredQps_;
    sim_.scheduleAfter(
        secondsToSimTime(gap),
        [this]() {
            const std::size_t index = requests_.size();
            requests_.push_back(Request{sim_.now(), 0});
            arrive(index, 0);
            scheduleNextArrival();
        },
        "bighouse/arrival");
}

void
BigHouseSimulation::arrive(std::size_t request, std::size_t station)
{
    Station& st = stations_[station];
    st.queue.push_back(request);
    tryStart(station);
}

void
BigHouseSimulation::tryStart(std::size_t station)
{
    Station& st = stations_[station];
    while (!st.queue.empty() && st.busy < st.config.servers) {
        const std::size_t request = st.queue.front();
        st.queue.pop_front();
        ++st.busy;
        const double seconds =
            st.config.serviceTime->sample(serviceRng_);
        sim_.scheduleAfter(
            secondsToSimTime(seconds),
            [this, request, station]() { finish(request, station); },
            st.serviceLabel.c_str());
    }
}

void
BigHouseSimulation::finish(std::size_t request, std::size_t station)
{
    Station& st = stations_[station];
    --st.busy;
    Request& req = requests_[request];
    if (station + 1 < stations_.size()) {
        req.stationIndex = station + 1;
        arrive(request, station + 1);
    } else {
        const double latency =
            simTimeToSeconds(sim_.now() - req.created);
        if (simTimeToSeconds(req.created) >= options_.warmupSeconds) {
            latencies_.add(latency);
            ++measuredCompletions_;
        }
    }
    tryStart(station);
}

RunReport
BigHouseSimulation::run(double offered_qps)
{
    if (ran_)
        throw std::logic_error("run() called twice");
    if (stations_.empty())
        throw std::logic_error("no stations configured");
    if (offered_qps <= 0.0)
        throw std::invalid_argument("offered load must be > 0");
    ran_ = true;
    offeredQps_ = offered_qps;
    scheduleNextArrival();
    sim_.run(secondsToSimTime(options_.durationSeconds));

    RunReport report;
    report.offeredQps = offered_qps;
    const double window =
        options_.durationSeconds - options_.warmupSeconds;
    report.achievedQps =
        window > 0.0
            ? static_cast<double>(measuredCompletions_) / window
            : 0.0;
    report.completed = measuredCompletions_;
    report.endToEnd.count = latencies_.count();
    report.endToEnd.meanMs = latencies_.mean() * 1e3;
    report.endToEnd.p50Ms = latencies_.p50() * 1e3;
    report.endToEnd.p95Ms = latencies_.p95() * 1e3;
    report.endToEnd.p99Ms = latencies_.p99() * 1e3;
    report.endToEnd.maxMs = latencies_.max() * 1e3;
    report.events = sim_.executedEvents();
    return report;
}

}  // namespace bighouse
}  // namespace uqsim
