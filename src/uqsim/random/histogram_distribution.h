#ifndef UQSIM_RANDOM_HISTOGRAM_DISTRIBUTION_H_
#define UQSIM_RANDOM_HISTOGRAM_DISTRIBUTION_H_

/**
 * @file
 * Empirical (histogram) distributions.
 *
 * The paper drives each execution stage with a processing-time PDF
 * collected by profiling the real application (Table I, "histograms"
 * input).  A HistogramDistribution holds such a PDF as a set of bins
 * with weights and samples by inverse-CDF with uniform interpolation
 * inside the selected bin.
 */

#include <string>
#include <vector>

#include "uqsim/random/distribution.h"

namespace uqsim {
namespace random {

/** One histogram bin: values in [lower, upper) carrying @p weight. */
struct HistogramBin {
    double lower = 0.0;
    double upper = 0.0;
    double weight = 0.0;
};

/** Empirical distribution over histogram bins. */
class HistogramDistribution : public Distribution {
  public:
    /**
     * @param bins  non-empty, non-overlapping, sorted by lower edge,
     *              each with non-negative weight; total weight > 0.
     * @throws std::invalid_argument when the bins are malformed.
     */
    explicit HistogramDistribution(std::vector<HistogramBin> bins);

    /**
     * Builds a histogram from raw profiled samples using
     * equal-width bins.
     */
    static std::shared_ptr<HistogramDistribution>
    fromSamples(const std::vector<double>& samples, int bin_count);

    /**
     * Loads a profiled histogram from a text file: one
     * "<lower> <upper> <weight>" triple per line; blank lines and
     * lines starting with '#' are ignored.  This is the paper's
     * Table I "histograms" input (processing-time PDF per
     * microservice collected by instrumenting the application).
     *
     * @throws std::runtime_error when the file cannot be read or a
     *         line is malformed.
     */
    static std::shared_ptr<HistogramDistribution>
    fromFile(const std::string& path);

    double sample(Rng& rng) const override;
    double mean() const override { return mean_; }
    std::string describe() const override;

    const std::vector<HistogramBin>& bins() const { return bins_; }

    /** Empirical CDF evaluated at @p x. */
    double cdf(double x) const;

    /** Returns a copy with every bin edge multiplied by @p factor. */
    std::shared_ptr<HistogramDistribution> scaled(double factor) const;

  private:
    std::vector<HistogramBin> bins_;
    std::vector<double> cumulative_;  // normalized cumulative weights
    double mean_ = 0.0;
    double totalWeight_ = 0.0;
};

}  // namespace random
}  // namespace uqsim

#endif  // UQSIM_RANDOM_HISTOGRAM_DISTRIBUTION_H_
