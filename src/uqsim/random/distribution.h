#ifndef UQSIM_RANDOM_DISTRIBUTION_H_
#define UQSIM_RANDOM_DISTRIBUTION_H_

/**
 * @file
 * Abstract sampling interface for processing-time and inter-arrival
 * distributions.
 *
 * Samples are plain doubles; by µqSim convention a sample is a
 * duration in seconds unless a caller documents otherwise.
 */

#include <memory>
#include <string>

#include "uqsim/random/rng.h"

namespace uqsim {
namespace random {

/**
 * A positive real-valued distribution.
 *
 * Implementations must be stateless with respect to sampling (all
 * state lives in the Rng), so one distribution object can be shared
 * by many stages and streams.
 */
class Distribution {
  public:
    virtual ~Distribution() = default;

    /** Draws one sample using @p rng. */
    virtual double sample(Rng& rng) const = 0;

    /** Analytic (or empirical) mean of the distribution. */
    virtual double mean() const = 0;

    /** Short human-readable description, e.g. "exp(mean=0.001)". */
    virtual std::string describe() const = 0;
};

using DistributionPtr = std::shared_ptr<const Distribution>;

}  // namespace random
}  // namespace uqsim

#endif  // UQSIM_RANDOM_DISTRIBUTION_H_
