#include "uqsim/random/histogram_distribution.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace uqsim {
namespace random {

HistogramDistribution::HistogramDistribution(std::vector<HistogramBin> bins)
    : bins_(std::move(bins))
{
    if (bins_.empty())
        throw std::invalid_argument("histogram requires at least one bin");
    double cumulative = 0.0;
    double weighted_sum = 0.0;
    double previous_upper = -1.0;
    cumulative_.reserve(bins_.size());
    for (const HistogramBin& bin : bins_) {
        if (bin.lower < 0.0 || bin.upper < bin.lower) {
            throw std::invalid_argument(
                "histogram bin edges must satisfy 0 <= lower <= upper");
        }
        if (bin.lower < previous_upper) {
            throw std::invalid_argument(
                "histogram bins must be sorted and non-overlapping");
        }
        if (bin.weight < 0.0)
            throw std::invalid_argument("histogram weight must be >= 0");
        previous_upper = bin.upper;
        cumulative += bin.weight;
        cumulative_.push_back(cumulative);
        weighted_sum += bin.weight * 0.5 * (bin.lower + bin.upper);
    }
    totalWeight_ = cumulative;
    if (totalWeight_ <= 0.0)
        throw std::invalid_argument("histogram total weight must be > 0");
    for (double& c : cumulative_)
        c /= totalWeight_;
    mean_ = weighted_sum / totalWeight_;
}

std::shared_ptr<HistogramDistribution>
HistogramDistribution::fromSamples(const std::vector<double>& samples,
                                   int bin_count)
{
    if (samples.empty())
        throw std::invalid_argument("fromSamples requires samples");
    if (bin_count <= 0)
        throw std::invalid_argument("fromSamples requires bin_count > 0");
    const auto [min_it, max_it] =
        std::minmax_element(samples.begin(), samples.end());
    double lo = *min_it;
    double hi = *max_it;
    if (hi <= lo)
        hi = lo + 1e-12;  // all samples equal: single degenerate bin
    const double width = (hi - lo) / bin_count;
    std::vector<HistogramBin> bins(static_cast<std::size_t>(bin_count));
    for (int i = 0; i < bin_count; ++i) {
        bins[static_cast<std::size_t>(i)] = {lo + i * width,
                                             lo + (i + 1) * width, 0.0};
    }
    for (double sample : samples) {
        int index = static_cast<int>((sample - lo) / width);
        index = std::clamp(index, 0, bin_count - 1);
        bins[static_cast<std::size_t>(index)].weight += 1.0;
    }
    // Remove empty leading/trailing mass is unnecessary: zero-weight
    // bins are legal and never selected.
    return std::make_shared<HistogramDistribution>(std::move(bins));
}

std::shared_ptr<HistogramDistribution>
HistogramDistribution::fromFile(const std::string& path)
{
    std::ifstream stream(path);
    if (!stream)
        throw std::runtime_error("cannot open histogram file: " + path);
    std::vector<HistogramBin> bins;
    std::string line;
    int line_number = 0;
    while (std::getline(stream, line)) {
        ++line_number;
        const auto first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#')
            continue;
        std::istringstream fields(line);
        HistogramBin bin;
        if (!(fields >> bin.lower >> bin.upper >> bin.weight)) {
            throw std::runtime_error(
                path + ":" + std::to_string(line_number) +
                ": expected \"<lower> <upper> <weight>\"");
        }
        bins.push_back(bin);
    }
    std::sort(bins.begin(), bins.end(),
              [](const HistogramBin& a, const HistogramBin& b) {
                  return a.lower < b.lower;
              });
    return std::make_shared<HistogramDistribution>(std::move(bins));
}

double
HistogramDistribution::sample(Rng& rng) const
{
    const double u = rng.nextDouble();
    const auto it =
        std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
    std::size_t index =
        std::min(static_cast<std::size_t>(it - cumulative_.begin()),
                 bins_.size() - 1);
    const HistogramBin& bin = bins_[index];
    // Uniform interpolation within the selected bin.
    const double prev = index == 0 ? 0.0 : cumulative_[index - 1];
    const double span = cumulative_[index] - prev;
    const double frac = span > 0.0 ? (u - prev) / span : rng.nextDouble();
    return bin.lower + frac * (bin.upper - bin.lower);
}

double
HistogramDistribution::cdf(double x) const
{
    double acc = 0.0;
    for (const HistogramBin& bin : bins_) {
        if (x >= bin.upper) {
            acc += bin.weight;
        } else if (x > bin.lower) {
            const double width = bin.upper - bin.lower;
            const double frac = width > 0.0 ? (x - bin.lower) / width : 1.0;
            acc += bin.weight * frac;
            break;
        } else {
            break;
        }
    }
    return acc / totalWeight_;
}

std::shared_ptr<HistogramDistribution>
HistogramDistribution::scaled(double factor) const
{
    if (factor < 0.0)
        throw std::invalid_argument("histogram scale must be >= 0");
    std::vector<HistogramBin> scaled_bins = bins_;
    for (HistogramBin& bin : scaled_bins) {
        bin.lower *= factor;
        bin.upper *= factor;
    }
    return std::make_shared<HistogramDistribution>(std::move(scaled_bins));
}

std::string
HistogramDistribution::describe() const
{
    std::ostringstream out;
    out << "histogram(bins=" << bins_.size() << ", mean=" << mean_ << ')';
    return out.str();
}

}  // namespace random
}  // namespace uqsim
