#include "uqsim/random/rng.h"

#include <cmath>

namespace uqsim {
namespace random {

std::uint64_t
splitmix64(std::uint64_t& state)
{
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto& word : state_)
        word = splitmix64(sm);
    // xoshiro must not start from the all-zero state; SplitMix64 of
    // any seed cannot produce four zero words, but guard anyway.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0)
        state_[0] = 0x9E3779B97F4A7C15ULL;
}

std::uint64_t
Rng::nextU64()
{
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::nextDouble()
{
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

double
Rng::nextDoubleOpenLeft()
{
    return 1.0 - nextDouble();
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    if (bound <= 1)
        return 0;
    // Rejection sampling on the top of the range to avoid modulo bias.
    const std::uint64_t threshold = (0ULL - bound) % bound;
    while (true) {
        std::uint64_t value = nextU64();
        if (value >= threshold)
            return value % bound;
    }
}

bool
Rng::nextBool(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

double
Rng::nextGaussian()
{
    if (hasSpareGaussian_) {
        hasSpareGaussian_ = false;
        return spareGaussian_;
    }
    double u, v, s;
    do {
        u = 2.0 * nextDouble() - 1.0;
        v = 2.0 * nextDouble() - 1.0;
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spareGaussian_ = v * factor;
    hasSpareGaussian_ = true;
    return u * factor;
}

std::uint64_t
RngStream::deriveSeed(std::uint64_t master_seed, std::string_view label)
{
    // FNV-1a over the label folded with the master seed through
    // SplitMix64.  Stable across platforms.
    std::uint64_t hash = 0xCBF29CE484222325ULL;
    for (char c : label) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001B3ULL;
    }
    std::uint64_t state = master_seed ^ hash;
    std::uint64_t derived = splitmix64(state);
    return splitmix64(state) ^ derived;
}

RngStream::RngStream(std::uint64_t master_seed, std::string_view label)
    : Rng(deriveSeed(master_seed, label)),
      label_(label),
      derivedSeed_(deriveSeed(master_seed, label))
{
}

}  // namespace random
}  // namespace uqsim
