#ifndef UQSIM_RANDOM_DISTRIBUTION_FACTORY_H_
#define UQSIM_RANDOM_DISTRIBUTION_FACTORY_H_

/**
 * @file
 * Builds Distribution objects from their JSON specification.
 *
 * The accepted shapes (all durations in seconds):
 *
 *   {"type": "deterministic", "value": 1e-5}
 *   {"type": "uniform", "low": 1e-6, "high": 5e-6}
 *   {"type": "exponential", "mean": 1e-3}
 *   {"type": "lognormal", "mu": -9.2, "sigma": 0.5}
 *   {"type": "lognormal", "mean": 2e-3, "cv": 1.5}
 *   {"type": "bounded_pareto", "scale": 1e-5, "shape": 1.3, "cap": 1e-2}
 *   {"type": "mixture", "a": {...}, "b": {...}, "p_b": 0.1}
 *   {"type": "scaled", "base": {...}, "factor": 2.0}
 *   {"type": "histogram",
 *    "bins": [[lower, upper, weight], ...]}
 *   {"type": "histogram_file", "path": "profiles/memcached_proc.hist"}
 */

#include <array>
#include <vector>

#include "uqsim/json/json_value.h"
#include "uqsim/random/distribution.h"

namespace uqsim {
namespace random {

/**
 * Constructs the distribution described by @p spec.
 *
 * @throws json::JsonError on unknown type or missing fields;
 *         std::invalid_argument on invalid parameter values.
 */
DistributionPtr makeDistribution(const json::JsonValue& spec);

/** Serializes analytic distributions cannot be recovered generically,
 *  but the factory helpers below build common specs. */
json::JsonValue exponentialSpec(double mean);
json::JsonValue deterministicSpec(double value);
json::JsonValue lognormalMeanCvSpec(double mean, double cv);
json::JsonValue histogramSpec(
    const std::vector<std::array<double, 3>>& bins);

}  // namespace random
}  // namespace uqsim

#endif  // UQSIM_RANDOM_DISTRIBUTION_FACTORY_H_
