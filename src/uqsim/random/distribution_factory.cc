#include "uqsim/random/distribution_factory.h"

#include <array>

#include "uqsim/random/distributions.h"
#include "uqsim/random/histogram_distribution.h"

namespace uqsim {
namespace random {

using json::JsonArray;
using json::JsonError;
using json::JsonValue;

DistributionPtr
makeDistribution(const JsonValue& spec)
{
    if (spec.isNumber()) {
        // A bare number is shorthand for a deterministic duration.
        return std::make_shared<DeterministicDistribution>(spec.asDouble());
    }
    const std::string type = spec.at("type").asString();
    if (type == "deterministic") {
        return std::make_shared<DeterministicDistribution>(
            spec.at("value").asDouble());
    }
    if (type == "uniform") {
        return std::make_shared<UniformDistribution>(
            spec.at("low").asDouble(), spec.at("high").asDouble());
    }
    if (type == "exponential") {
        return std::make_shared<ExponentialDistribution>(
            spec.at("mean").asDouble());
    }
    if (type == "lognormal") {
        if (spec.contains("mean")) {
            return LogNormalDistribution::fromMeanCv(
                spec.at("mean").asDouble(), spec.at("cv").asDouble());
        }
        return std::make_shared<LogNormalDistribution>(
            spec.at("mu").asDouble(), spec.at("sigma").asDouble());
    }
    if (type == "bounded_pareto") {
        return std::make_shared<BoundedParetoDistribution>(
            spec.at("scale").asDouble(), spec.at("shape").asDouble(),
            spec.at("cap").asDouble());
    }
    if (type == "mixture") {
        return std::make_shared<MixtureDistribution>(
            makeDistribution(spec.at("a")), makeDistribution(spec.at("b")),
            spec.at("p_b").asDouble());
    }
    if (type == "scaled") {
        return std::make_shared<ScaledDistribution>(
            makeDistribution(spec.at("base")),
            spec.at("factor").asDouble());
    }
    if (type == "histogram_file") {
        return HistogramDistribution::fromFile(
            spec.at("path").asString());
    }
    if (type == "histogram") {
        const JsonArray& rows = spec.at("bins").asArray();
        std::vector<HistogramBin> bins;
        bins.reserve(rows.size());
        for (const JsonValue& row : rows) {
            if (row.size() != 3) {
                throw JsonError(
                    "histogram bin must be [lower, upper, weight]");
            }
            bins.push_back({row.at(std::size_t{0}).asDouble(),
                            row.at(std::size_t{1}).asDouble(),
                            row.at(std::size_t{2}).asDouble()});
        }
        return std::make_shared<HistogramDistribution>(std::move(bins));
    }
    throw JsonError("unknown distribution type: \"" + type + "\"");
}

JsonValue
exponentialSpec(double mean)
{
    JsonValue spec = JsonValue::makeObject();
    spec.asObject()["type"] = "exponential";
    spec.asObject()["mean"] = mean;
    return spec;
}

JsonValue
deterministicSpec(double value)
{
    JsonValue spec = JsonValue::makeObject();
    spec.asObject()["type"] = "deterministic";
    spec.asObject()["value"] = value;
    return spec;
}

JsonValue
lognormalMeanCvSpec(double mean, double cv)
{
    JsonValue spec = JsonValue::makeObject();
    spec.asObject()["type"] = "lognormal";
    spec.asObject()["mean"] = mean;
    spec.asObject()["cv"] = cv;
    return spec;
}

JsonValue
histogramSpec(const std::vector<std::array<double, 3>>& bins)
{
    JsonValue spec = JsonValue::makeObject();
    spec.asObject()["type"] = "histogram";
    JsonArray rows;
    rows.reserve(bins.size());
    for (const auto& bin : bins) {
        JsonArray row;
        row.emplace_back(bin[0]);
        row.emplace_back(bin[1]);
        row.emplace_back(bin[2]);
        rows.emplace_back(std::move(row));
    }
    spec.asObject()["bins"] = JsonValue(std::move(rows));
    return spec;
}

}  // namespace random
}  // namespace uqsim
