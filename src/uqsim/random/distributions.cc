#include "uqsim/random/distributions.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace uqsim {
namespace random {

namespace {

std::string
formatParams(const char* name, std::initializer_list<double> params)
{
    std::ostringstream out;
    out << name << '(';
    bool first = true;
    for (double p : params) {
        if (!first)
            out << ", ";
        first = false;
        out << p;
    }
    out << ')';
    return out.str();
}

}  // namespace

DeterministicDistribution::DeterministicDistribution(double value)
    : value_(value)
{
    if (value < 0.0)
        throw std::invalid_argument("deterministic value must be >= 0");
}

double
DeterministicDistribution::sample(Rng&) const
{
    return value_;
}

std::string
DeterministicDistribution::describe() const
{
    return formatParams("det", {value_});
}

UniformDistribution::UniformDistribution(double low, double high)
    : low_(low), high_(high)
{
    if (low < 0.0 || high < low)
        throw std::invalid_argument("uniform requires 0 <= low <= high");
}

double
UniformDistribution::sample(Rng& rng) const
{
    return low_ + (high_ - low_) * rng.nextDouble();
}

std::string
UniformDistribution::describe() const
{
    return formatParams("uniform", {low_, high_});
}

ExponentialDistribution::ExponentialDistribution(double mean) : mean_(mean)
{
    if (mean <= 0.0)
        throw std::invalid_argument("exponential mean must be > 0");
}

double
ExponentialDistribution::sample(Rng& rng) const
{
    return -mean_ * std::log(rng.nextDoubleOpenLeft());
}

std::string
ExponentialDistribution::describe() const
{
    return formatParams("exp", {mean_});
}

LogNormalDistribution::LogNormalDistribution(double mu, double sigma)
    : mu_(mu), sigma_(sigma)
{
    if (sigma < 0.0)
        throw std::invalid_argument("lognormal sigma must be >= 0");
}

std::shared_ptr<LogNormalDistribution>
LogNormalDistribution::fromMeanCv(double mean, double cv)
{
    if (mean <= 0.0 || cv < 0.0) {
        throw std::invalid_argument(
            "lognormal fromMeanCv requires mean > 0 and cv >= 0");
    }
    const double sigma2 = std::log(1.0 + cv * cv);
    const double mu = std::log(mean) - 0.5 * sigma2;
    return std::make_shared<LogNormalDistribution>(mu, std::sqrt(sigma2));
}

double
LogNormalDistribution::sample(Rng& rng) const
{
    return std::exp(mu_ + sigma_ * rng.nextGaussian());
}

double
LogNormalDistribution::mean() const
{
    return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

std::string
LogNormalDistribution::describe() const
{
    return formatParams("lognormal", {mu_, sigma_});
}

BoundedParetoDistribution::BoundedParetoDistribution(double scale,
                                                     double shape,
                                                     double cap)
    : scale_(scale), shape_(shape), cap_(cap)
{
    if (scale <= 0.0 || shape <= 0.0 || cap < scale) {
        throw std::invalid_argument(
            "bounded pareto requires scale > 0, shape > 0, cap >= scale");
    }
}

double
BoundedParetoDistribution::sample(Rng& rng) const
{
    // Inverse CDF of the bounded Pareto.
    const double u = rng.nextDouble();
    const double la = std::pow(scale_, shape_);
    const double ha = std::pow(cap_, shape_);
    const double x =
        std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / shape_);
    return x;
}

double
BoundedParetoDistribution::mean() const
{
    if (shape_ == 1.0) {
        return scale_ * cap_ / (cap_ - scale_) * std::log(cap_ / scale_);
    }
    const double la = std::pow(scale_, shape_);
    const double ha = std::pow(cap_, shape_);
    return la / (1.0 - la / ha) * (shape_ / (shape_ - 1.0)) *
           (1.0 / std::pow(scale_, shape_ - 1.0) -
            1.0 / std::pow(cap_, shape_ - 1.0));
}

std::string
BoundedParetoDistribution::describe() const
{
    return formatParams("bounded_pareto", {scale_, shape_, cap_});
}

MixtureDistribution::MixtureDistribution(DistributionPtr a,
                                         DistributionPtr b, double p_b)
    : a_(std::move(a)), b_(std::move(b)), pB_(p_b)
{
    if (!a_ || !b_)
        throw std::invalid_argument("mixture components must be non-null");
    if (p_b < 0.0 || p_b > 1.0)
        throw std::invalid_argument("mixture probability must be in [0,1]");
}

double
MixtureDistribution::sample(Rng& rng) const
{
    return rng.nextBool(pB_) ? b_->sample(rng) : a_->sample(rng);
}

double
MixtureDistribution::mean() const
{
    return (1.0 - pB_) * a_->mean() + pB_ * b_->mean();
}

std::string
MixtureDistribution::describe() const
{
    std::ostringstream out;
    out << "mixture(" << a_->describe() << ", " << b_->describe()
        << ", p_b=" << pB_ << ')';
    return out.str();
}

ScaledDistribution::ScaledDistribution(DistributionPtr base, double factor)
    : base_(std::move(base)), factor_(factor)
{
    if (!base_)
        throw std::invalid_argument("scaled base must be non-null");
    if (factor < 0.0)
        throw std::invalid_argument("scale factor must be >= 0");
}

double
ScaledDistribution::sample(Rng& rng) const
{
    return base_->sample(rng) * factor_;
}

std::string
ScaledDistribution::describe() const
{
    std::ostringstream out;
    out << "scaled(" << base_->describe() << ", x" << factor_ << ')';
    return out.str();
}

}  // namespace random
}  // namespace uqsim
