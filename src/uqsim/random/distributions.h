#ifndef UQSIM_RANDOM_DISTRIBUTIONS_H_
#define UQSIM_RANDOM_DISTRIBUTIONS_H_

/**
 * @file
 * Closed-form distributions used for service times and inter-arrival
 * times: deterministic, uniform, exponential, log-normal, shifted and
 * bounded Pareto, and a two-point "bimodal" mixture used to model
 * slow-server / hiccup behavior.
 */

#include <memory>
#include <string>
#include <vector>

#include "uqsim/random/distribution.h"

namespace uqsim {
namespace random {

/** Always returns the same value. */
class DeterministicDistribution : public Distribution {
  public:
    explicit DeterministicDistribution(double value);

    double sample(Rng& rng) const override;
    double mean() const override { return value_; }
    std::string describe() const override;

  private:
    double value_;
};

/** Uniform on [low, high). */
class UniformDistribution : public Distribution {
  public:
    UniformDistribution(double low, double high);

    double sample(Rng& rng) const override;
    double mean() const override { return 0.5 * (low_ + high_); }
    std::string describe() const override;

  private:
    double low_;
    double high_;
};

/** Exponential with the given mean (rate = 1/mean). */
class ExponentialDistribution : public Distribution {
  public:
    explicit ExponentialDistribution(double mean);

    double sample(Rng& rng) const override;
    double mean() const override { return mean_; }
    std::string describe() const override;

  private:
    double mean_;
};

/** Log-normal parameterized by the mean and sigma of log-space. */
class LogNormalDistribution : public Distribution {
  public:
    /**
     * @param mu     mean of ln(X)
     * @param sigma  standard deviation of ln(X); must be >= 0
     */
    LogNormalDistribution(double mu, double sigma);

    /** Convenience: choose (mu, sigma) to hit a target mean with the
     *  given coefficient of variation. */
    static std::shared_ptr<LogNormalDistribution>
    fromMeanCv(double mean, double cv);

    double sample(Rng& rng) const override;
    double mean() const override;
    std::string describe() const override;

    double mu() const { return mu_; }
    double sigma() const { return sigma_; }

  private:
    double mu_;
    double sigma_;
};

/** Pareto with scale x_m and shape alpha, truncated at @p cap. */
class BoundedParetoDistribution : public Distribution {
  public:
    BoundedParetoDistribution(double scale, double shape, double cap);

    double sample(Rng& rng) const override;
    double mean() const override;
    std::string describe() const override;

  private:
    double scale_;
    double shape_;
    double cap_;
};

/**
 * Mixture of two component distributions; component B is chosen with
 * probability @p p_b.  Used e.g. for "90 % fast path / 10 % slow
 * path" service behavior when a full path split is overkill.
 */
class MixtureDistribution : public Distribution {
  public:
    MixtureDistribution(DistributionPtr a, DistributionPtr b, double p_b);

    double sample(Rng& rng) const override;
    double mean() const override;
    std::string describe() const override;

  private:
    DistributionPtr a_;
    DistributionPtr b_;
    double pB_;
};

/**
 * A base distribution multiplied by a constant factor.  The DVFS
 * model wraps stage distributions this way when per-frequency
 * histograms are not provided.
 */
class ScaledDistribution : public Distribution {
  public:
    ScaledDistribution(DistributionPtr base, double factor);

    double sample(Rng& rng) const override;
    double mean() const override { return base_->mean() * factor_; }
    std::string describe() const override;

    double factor() const { return factor_; }
    const DistributionPtr& base() const { return base_; }

  private:
    DistributionPtr base_;
    double factor_;
};

}  // namespace random
}  // namespace uqsim

#endif  // UQSIM_RANDOM_DISTRIBUTIONS_H_
