#ifndef UQSIM_RANDOM_RNG_H_
#define UQSIM_RANDOM_RNG_H_

/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * µqSim requires bit-reproducible simulations: the same seed must
 * yield the same event trace on every platform.  We therefore avoid
 * std::mt19937 + std::*_distribution (whose algorithms are
 * implementation-defined) and implement xoshiro256++ plus explicit
 * sampling transforms.
 *
 * Streams: every simulator component draws from its own RngStream,
 * derived from the master seed and a component label, so adding a
 * component never perturbs the samples another component sees.
 */

#include <cstdint>
#include <string>
#include <string_view>

namespace uqsim {
namespace random {

/** SplitMix64 step; used for seeding and stream derivation. */
std::uint64_t splitmix64(std::uint64_t& state);

/**
 * xoshiro256++ generator.
 *
 * Passes BigCrush; period 2^256 - 1.  All µqSim randomness flows
 * through this type.
 */
class Rng {
  public:
    /** Seeds the four state words via SplitMix64. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

    /** Next raw 64-bit output. */
    std::uint64_t nextU64();

    /** Uniform double in [0, 1) with 53 bits of precision. */
    double nextDouble();

    /** Uniform double in (0, 1]; safe as an argument to log(). */
    double nextDoubleOpenLeft();

    /** Uniform integer in [0, bound) without modulo bias. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Bernoulli trial with success probability @p p. */
    bool nextBool(double p);

    /**
     * Standard normal variate (Marsaglia polar method with one value
     * of carry-over state).
     */
    double nextGaussian();

    /** Raw generator state, exposed for snapshot save/validate: the
     *  four xoshiro256++ state words plus the Gaussian carry. */
    struct State {
        std::uint64_t words[4];
        bool hasSpareGaussian;
        double spareGaussian;
    };
    State
    state() const
    {
        return State{{state_[0], state_[1], state_[2], state_[3]},
                     hasSpareGaussian_,
                     spareGaussian_};
    }

  private:
    std::uint64_t state_[4];
    bool hasSpareGaussian_ = false;
    double spareGaussian_ = 0.0;
};

/**
 * A named, independently seeded random stream.
 *
 * The stream seed is derived from (master seed, label) with a string
 * hash folded through SplitMix64, so streams are stable across runs
 * and independent of creation order.
 */
class RngStream : public Rng {
  public:
    RngStream(std::uint64_t master_seed, std::string_view label);

    const std::string& label() const { return label_; }

    /** The derived seed, exposed for diagnostics. */
    std::uint64_t derivedSeed() const { return derivedSeed_; }

    /** Derivation function (also used by tests). */
    static std::uint64_t deriveSeed(std::uint64_t master_seed,
                                    std::string_view label);

  private:
    std::string label_;
    std::uint64_t derivedSeed_;
};

}  // namespace random
}  // namespace uqsim

#endif  // UQSIM_RANDOM_RNG_H_
