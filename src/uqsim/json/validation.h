#ifndef UQSIM_JSON_VALIDATION_H_
#define UQSIM_JSON_VALIDATION_H_

/**
 * @file
 * Configuration validation helpers.
 *
 * A silently ignored key is the worst failure mode a simulator
 * config can have: the run "works" but models something else.  These
 * helpers reject unknown keys (and unknown CLI flags) with a
 * did-you-mean suggestion based on edit distance.
 */

#include <string>
#include <vector>

#include "uqsim/json/json_value.h"

namespace uqsim {
namespace json {

/** Levenshtein edit distance between @p a and @p b. */
std::size_t editDistance(const std::string& a, const std::string& b);

/**
 * The candidate closest to @p name by edit distance, or "" when
 * nothing is plausibly close (distance > max(2, |name| / 3)).
 */
std::string suggestClosest(const std::string& name,
                           const std::vector<std::string>& candidates);

/**
 * Throws JsonError when @p doc (an object) contains a key not in
 * @p allowed.  The message names the offending key, the @p context
 * (e.g. "client.json"), and the closest allowed key when one is
 * plausible.  Non-object documents pass (callers validate shape
 * separately).
 */
void requireKnownKeys(const JsonValue& doc,
                      const std::vector<std::string>& allowed,
                      const std::string& context);

}  // namespace json
}  // namespace uqsim

#endif  // UQSIM_JSON_VALIDATION_H_
