#ifndef UQSIM_JSON_JSON_WRITER_H_
#define UQSIM_JSON_JSON_WRITER_H_

/**
 * @file
 * JSON serialization.  Output parses back to a structurally equal
 * value (integers stay integers; doubles use shortest round-trip
 * formatting).
 */

#include <string>

#include "uqsim/json/json_value.h"

namespace uqsim {
namespace json {

/** Serialization options. */
struct WriteOptions {
    /** Pretty-print with newlines and this many spaces per level. */
    bool pretty = false;
    int indent = 2;
};

/** Serializes @p value to a JSON string. */
std::string write(const JsonValue& value, const WriteOptions& options = {});

/** Serializes @p value with pretty-printing enabled. */
std::string writePretty(const JsonValue& value);

}  // namespace json
}  // namespace uqsim

#endif  // UQSIM_JSON_JSON_WRITER_H_
