#include "uqsim/json/json_parser.h"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace uqsim {
namespace json {

JsonParseError::JsonParseError(const std::string& message, int line,
                               int column)
    : JsonError(message + " at line " + std::to_string(line) + ", column " +
                std::to_string(column)),
      line_(line), column_(column)
{
}

namespace {

/** Internal cursor over the input text tracking line/column. */
class Parser {
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    JsonValue
    parseDocument()
    {
        skipWhitespace();
        JsonValue value = parseValue();
        skipWhitespace();
        if (!atEnd())
            fail("trailing characters after JSON document");
        return value;
    }

  private:
    bool atEnd() const { return pos_ >= text_.size(); }

    char
    peek() const
    {
        return atEnd() ? '\0' : text_[pos_];
    }

    char
    advance()
    {
        char c = text_[pos_++];
        if (c == '\n') {
            ++line_;
            column_ = 1;
        } else {
            ++column_;
        }
        return c;
    }

    [[noreturn]] void
    fail(const std::string& message) const
    {
        throw JsonParseError(message, line_, column_);
    }

    void
    expect(char wanted)
    {
        if (atEnd() || peek() != wanted) {
            fail(std::string("expected '") + wanted + "'" +
                 (atEnd() ? " but reached end of input"
                          : std::string(" but found '") + peek() + "'"));
        }
        advance();
    }

    void
    skipWhitespace()
    {
        while (!atEnd()) {
            char c = peek();
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
                advance();
            } else if (c == '/' && pos_ + 1 < text_.size()) {
                if (text_[pos_ + 1] == '/') {
                    while (!atEnd() && peek() != '\n')
                        advance();
                } else if (text_[pos_ + 1] == '*') {
                    advance();
                    advance();
                    while (!atEnd()) {
                        if (peek() == '*' && pos_ + 1 < text_.size() &&
                            text_[pos_ + 1] == '/') {
                            advance();
                            advance();
                            break;
                        }
                        advance();
                    }
                } else {
                    return;
                }
            } else {
                return;
            }
        }
    }

    JsonValue
    parseValue()
    {
        if (atEnd())
            fail("unexpected end of input; expected a value");
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return JsonValue(parseString());
          case 't': return parseKeyword("true", JsonValue(true));
          case 'f': return parseKeyword("false", JsonValue(false));
          case 'n': return parseKeyword("null", JsonValue(nullptr));
          default: return parseNumber();
        }
    }

    /** RAII nesting-depth guard: parseObject/parseArray recurse
     *  through parseValue, so a hostile document of kMaxDepth+1
     *  brackets would otherwise overflow the C++ stack instead of
     *  failing cleanly. */
    class DepthGuard {
      public:
        explicit DepthGuard(Parser& parser) : parser_(parser)
        {
            if (++parser_.depth_ > kMaxParseDepth) {
                parser_.fail(
                    "JSON nesting exceeds the maximum depth of " +
                    std::to_string(kMaxParseDepth));
            }
        }
        ~DepthGuard() { --parser_.depth_; }

      private:
        Parser& parser_;
    };

    JsonValue
    parseKeyword(std::string_view keyword, JsonValue value)
    {
        for (char wanted : keyword) {
            if (atEnd() || peek() != wanted)
                fail("invalid keyword; expected \"" + std::string(keyword) +
                     "\"");
            advance();
        }
        return value;
    }

    JsonValue
    parseObject()
    {
        DepthGuard depth(*this);
        expect('{');
        JsonObject object;
        skipWhitespace();
        if (peek() == '}') {
            advance();
            return JsonValue(std::move(object));
        }
        while (true) {
            skipWhitespace();
            if (peek() == '}') {  // trailing comma
                advance();
                return JsonValue(std::move(object));
            }
            if (peek() != '"')
                fail("expected string key in object");
            std::string key = parseString();
            skipWhitespace();
            expect(':');
            skipWhitespace();
            object[key] = parseValue();
            skipWhitespace();
            if (peek() == ',') {
                advance();
                continue;
            }
            expect('}');
            return JsonValue(std::move(object));
        }
    }

    JsonValue
    parseArray()
    {
        DepthGuard depth(*this);
        expect('[');
        JsonArray array;
        skipWhitespace();
        if (peek() == ']') {
            advance();
            return JsonValue(std::move(array));
        }
        while (true) {
            skipWhitespace();
            if (peek() == ']') {  // trailing comma
                advance();
                return JsonValue(std::move(array));
            }
            array.push_back(parseValue());
            skipWhitespace();
            if (peek() == ',') {
                advance();
                continue;
            }
            expect(']');
            return JsonValue(std::move(array));
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string result;
        while (true) {
            if (atEnd())
                fail("unterminated string");
            char c = advance();
            if (c == '"')
                return result;
            if (c == '\\') {
                if (atEnd())
                    fail("unterminated escape sequence");
                char esc = advance();
                switch (esc) {
                  case '"': result += '"'; break;
                  case '\\': result += '\\'; break;
                  case '/': result += '/'; break;
                  case 'b': result += '\b'; break;
                  case 'f': result += '\f'; break;
                  case 'n': result += '\n'; break;
                  case 'r': result += '\r'; break;
                  case 't': result += '\t'; break;
                  case 'u': result += parseUnicodeEscape(); break;
                  default: fail("invalid escape character");
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                fail("unescaped control character in string");
            } else {
                result += c;
            }
        }
    }

    unsigned
    parseHex4()
    {
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
            if (atEnd())
                fail("unterminated \\u escape");
            char c = advance();
            code <<= 4;
            if (c >= '0' && c <= '9')
                code |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                code |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                code |= static_cast<unsigned>(c - 'A' + 10);
            else
                fail("invalid hex digit in \\u escape");
        }
        return code;
    }

    std::string
    parseUnicodeEscape()
    {
        unsigned code = parseHex4();
        // Combine surrogate pairs.
        if (code >= 0xD800 && code <= 0xDBFF) {
            if (pos_ + 1 < text_.size() && peek() == '\\' &&
                text_[pos_ + 1] == 'u') {
                advance();
                advance();
                unsigned low = parseHex4();
                if (low >= 0xDC00 && low <= 0xDFFF) {
                    code = 0x10000 + ((code - 0xD800) << 10) +
                           (low - 0xDC00);
                } else {
                    fail("invalid low surrogate in \\u escape");
                }
            } else {
                fail("unpaired high surrogate in \\u escape");
            }
        }
        return encodeUtf8(code);
    }

    static std::string
    encodeUtf8(unsigned code)
    {
        std::string out;
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else if (code < 0x10000) {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        }
        return out;
    }

    JsonValue
    parseNumber()
    {
        std::size_t start = pos_;
        bool is_double = false;
        if (peek() == '-')
            advance();
        if (atEnd() || !std::isdigit(static_cast<unsigned char>(peek())))
            fail("invalid number");
        while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
            advance();
        if (!atEnd() && peek() == '.') {
            is_double = true;
            advance();
            if (atEnd() || !std::isdigit(static_cast<unsigned char>(peek())))
                fail("digit expected after decimal point");
            while (!atEnd() &&
                   std::isdigit(static_cast<unsigned char>(peek()))) {
                advance();
            }
        }
        if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
            is_double = true;
            advance();
            if (!atEnd() && (peek() == '+' || peek() == '-'))
                advance();
            if (atEnd() || !std::isdigit(static_cast<unsigned char>(peek())))
                fail("digit expected in exponent");
            while (!atEnd() &&
                   std::isdigit(static_cast<unsigned char>(peek()))) {
                advance();
            }
        }
        std::string_view token = text_.substr(start, pos_ - start);
        if (!is_double) {
            std::int64_t int_value = 0;
            auto [ptr, ec] = std::from_chars(
                token.data(), token.data() + token.size(), int_value);
            if (ec == std::errc() && ptr == token.data() + token.size())
                return JsonValue(int_value);
            // Fall through to double on overflow.
        }
        std::string buffer(token);
        errno = 0;
        char* end = nullptr;
        double double_value = std::strtod(buffer.c_str(), &end);
        if (end != buffer.c_str() + buffer.size() || errno == ERANGE)
            fail("number out of range");
        return JsonValue(double_value);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    int line_ = 1;
    int column_ = 1;
    /** Current container nesting depth (objects + arrays). */
    int depth_ = 0;
};

}  // namespace

JsonValue
parse(std::string_view text)
{
    Parser parser(text);
    return parser.parseDocument();
}

JsonValue
parseFile(const std::string& path)
{
    std::ifstream stream(path, std::ios::binary);
    if (!stream)
        throw JsonError("cannot open JSON file: " + path);
    std::ostringstream buffer;
    buffer << stream.rdbuf();
    try {
        return parse(buffer.str());
    } catch (const JsonParseError& error) {
        throw JsonParseError(path + ": " + error.what(), error.line(),
                             error.column());
    }
}

}  // namespace json
}  // namespace uqsim
