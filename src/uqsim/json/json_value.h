#ifndef UQSIM_JSON_JSON_VALUE_H_
#define UQSIM_JSON_JSON_VALUE_H_

/**
 * @file
 * JSON value model used for every µqSim configuration input
 * (service.json, graph.json, path.json, machines.json, client.json).
 *
 * The model is a small, self-contained variant type.  Numbers keep
 * track of whether they were written as integers so that ids and
 * counts round-trip exactly.
 */

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace uqsim {
namespace json {

class JsonValue;

/** Ordered key/value object.  Insertion order is preserved. */
using JsonArray = std::vector<JsonValue>;

/** Error thrown on any malformed access or parse failure. */
class JsonError : public std::runtime_error {
  public:
    explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

/** The JSON value kinds. */
enum class JsonType {
    Null,
    Bool,
    Int,
    Double,
    String,
    Array,
    Object,
};

/** Human-readable name of a JSON type (for error messages). */
const char* jsonTypeName(JsonType type);

/**
 * A JSON document node.
 *
 * Accessors come in two flavors: checked converters (asInt(),
 * asString(), ...) that throw JsonError on type mismatch, and lookup
 * helpers (at(), get(), contains()) for object members.  The
 * getOr() family returns a default when a key is absent, which is the
 * common pattern for optional configuration fields.
 */
class JsonValue {
  public:
    /** Object representation preserving insertion order. */
    class Object {
      public:
        using Entry = std::pair<std::string, JsonValue>;

        Object() = default;

        /** Number of members. */
        std::size_t size() const { return entries_.size(); }
        bool empty() const { return entries_.empty(); }

        /** True when a member with @p key exists. */
        bool contains(const std::string& key) const;

        /** Returns the member, inserting a Null member if absent. */
        JsonValue& operator[](const std::string& key);

        /** Returns the member or throws JsonError when absent. */
        const JsonValue& at(const std::string& key) const;
        JsonValue& at(const std::string& key);

        /** Returns a pointer to the member or nullptr when absent. */
        const JsonValue* find(const std::string& key) const;

        /** Removes a member; returns true if it existed. */
        bool erase(const std::string& key);

        std::vector<Entry>::const_iterator begin() const
        {
            return entries_.begin();
        }
        std::vector<Entry>::const_iterator end() const
        {
            return entries_.end();
        }

      private:
        std::vector<Entry> entries_;
    };

    JsonValue() : data_(std::monostate{}) {}
    JsonValue(std::nullptr_t) : data_(std::monostate{}) {}
    JsonValue(bool value) : data_(value) {}
    JsonValue(int value) : data_(static_cast<std::int64_t>(value)) {}
    JsonValue(unsigned value) : data_(static_cast<std::int64_t>(value)) {}
    JsonValue(std::int64_t value) : data_(value) {}
    JsonValue(std::uint64_t value)
        : data_(static_cast<std::int64_t>(value)) {}
    JsonValue(double value) : data_(value) {}
    JsonValue(const char* value) : data_(std::string(value)) {}
    JsonValue(std::string value) : data_(std::move(value)) {}
    JsonValue(JsonArray value) : data_(std::move(value)) {}
    JsonValue(Object value) : data_(std::move(value)) {}

    /** Creates an empty array value. */
    static JsonValue makeArray() { return JsonValue(JsonArray{}); }
    /** Creates an empty object value. */
    static JsonValue makeObject() { return JsonValue(Object{}); }

    JsonType type() const;

    bool isNull() const { return type() == JsonType::Null; }
    bool isBool() const { return type() == JsonType::Bool; }
    bool isInt() const { return type() == JsonType::Int; }
    bool isDouble() const { return type() == JsonType::Double; }
    /** True for both Int and Double. */
    bool isNumber() const { return isInt() || isDouble(); }
    bool isString() const { return type() == JsonType::String; }
    bool isArray() const { return type() == JsonType::Array; }
    bool isObject() const { return type() == JsonType::Object; }

    /** Checked converters; throw JsonError on type mismatch. */
    bool asBool() const;
    std::int64_t asInt() const;
    /** Accepts Int or Double. */
    double asDouble() const;
    const std::string& asString() const;
    const JsonArray& asArray() const;
    JsonArray& asArray();
    const Object& asObject() const;
    Object& asObject();

    /** Object member lookup; throws when not an object or key absent. */
    const JsonValue& at(const std::string& key) const;
    /** Array element lookup; throws when not an array or out of range. */
    const JsonValue& at(std::size_t index) const;

    /** True when this is an object containing @p key (non-null). */
    bool contains(const std::string& key) const;

    /** Pointer to member, or nullptr when absent / not an object. */
    const JsonValue* find(const std::string& key) const;

    /** Optional-field accessors returning @p fallback when absent. */
    bool getOr(const std::string& key, bool fallback) const;
    std::int64_t getOr(const std::string& key, std::int64_t fallback) const;
    int getOr(const std::string& key, int fallback) const;
    double getOr(const std::string& key, double fallback) const;
    std::string getOr(const std::string& key, const char* fallback) const;
    std::string getOr(const std::string& key,
                      const std::string& fallback) const;

    /** Number of elements (array) or members (object); 0 otherwise. */
    std::size_t size() const;

    /** Structural equality (Int 3 != Double 3.0). */
    bool operator==(const JsonValue& other) const;
    bool operator!=(const JsonValue& other) const
    {
        return !(*this == other);
    }

  private:
    using Storage = std::variant<std::monostate, bool, std::int64_t, double,
                                 std::string, JsonArray, Object>;

    [[noreturn]] void typeMismatch(JsonType wanted) const;

    Storage data_;
};

using JsonObject = JsonValue::Object;

}  // namespace json
}  // namespace uqsim

#endif  // UQSIM_JSON_JSON_VALUE_H_
