#ifndef UQSIM_JSON_JSON_PARSER_H_
#define UQSIM_JSON_JSON_PARSER_H_

/**
 * @file
 * Recursive-descent JSON parser with line/column error reporting.
 *
 * The parser implements RFC 8259 JSON plus two conveniences that show
 * up in hand-written simulator configuration files:
 *   - `//` line comments and C-style block comments, and
 *   - trailing commas in arrays and objects.
 */

#include <string>
#include <string_view>

#include "uqsim/json/json_value.h"

namespace uqsim {
namespace json {

/**
 * Maximum container nesting (objects + arrays) the parser accepts.
 * Deeper documents fail with a JsonParseError at the offending
 * bracket instead of overflowing the C++ call stack — the parser is
 * recursive-descent, so depth maps directly to stack frames.
 */
inline constexpr int kMaxParseDepth = 256;

/** Parse error carrying the 1-based line and column of the failure. */
class JsonParseError : public JsonError {
  public:
    JsonParseError(const std::string& message, int line, int column);

    int line() const { return line_; }
    int column() const { return column_; }

  private:
    int line_;
    int column_;
};

/**
 * Parses a complete JSON document from @p text.
 *
 * @throws JsonParseError on malformed input or trailing garbage.
 */
JsonValue parse(std::string_view text);

/**
 * Parses the JSON document stored in the file at @p path.
 *
 * @throws JsonError when the file cannot be read; JsonParseError on
 *         malformed content (message is prefixed with the path).
 */
JsonValue parseFile(const std::string& path);

}  // namespace json
}  // namespace uqsim

#endif  // UQSIM_JSON_JSON_PARSER_H_
