#include "uqsim/json/json_writer.h"

#include <array>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace uqsim {
namespace json {

namespace {

void
writeEscapedString(std::string& out, const std::string& text)
{
    out += '"';
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                std::array<char, 8> buffer{};
                std::snprintf(buffer.data(), buffer.size(), "\\u%04x",
                              static_cast<unsigned>(c) & 0xFF);
                out += buffer.data();
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
writeDouble(std::string& out, double value)
{
    if (std::isnan(value) || std::isinf(value)) {
        // JSON has no NaN/Inf; emit null like most tolerant writers.
        out += "null";
        return;
    }
    std::array<char, 32> buffer{};
    auto [ptr, ec] =
        std::to_chars(buffer.data(), buffer.data() + buffer.size(), value);
    out.append(buffer.data(), ptr);
    // Guarantee the token re-parses as a double, not an int.
    std::string_view token(buffer.data(),
                           static_cast<std::size_t>(ptr - buffer.data()));
    if (token.find('.') == std::string_view::npos &&
        token.find('e') == std::string_view::npos &&
        token.find('E') == std::string_view::npos &&
        token.find("inf") == std::string_view::npos &&
        token.find("nan") == std::string_view::npos) {
        out += ".0";
    }
}

class Writer {
  public:
    explicit Writer(const WriteOptions& options) : options_(options) {}

    std::string
    serialize(const JsonValue& value)
    {
        writeValue(value, 0);
        return std::move(out_);
    }

  private:
    void
    newline(int depth)
    {
        if (!options_.pretty)
            return;
        out_ += '\n';
        out_.append(static_cast<std::size_t>(depth * options_.indent), ' ');
    }

    void
    writeValue(const JsonValue& value, int depth)
    {
        switch (value.type()) {
          case JsonType::Null:
            out_ += "null";
            break;
          case JsonType::Bool:
            out_ += value.asBool() ? "true" : "false";
            break;
          case JsonType::Int:
            out_ += std::to_string(value.asInt());
            break;
          case JsonType::Double:
            writeDouble(out_, value.asDouble());
            break;
          case JsonType::String:
            writeEscapedString(out_, value.asString());
            break;
          case JsonType::Array: {
            const JsonArray& array = value.asArray();
            if (array.empty()) {
                out_ += "[]";
                break;
            }
            out_ += '[';
            bool first = true;
            for (const JsonValue& element : array) {
                if (!first)
                    out_ += options_.pretty ? "," : ",";
                first = false;
                newline(depth + 1);
                writeValue(element, depth + 1);
            }
            newline(depth);
            out_ += ']';
            break;
          }
          case JsonType::Object: {
            const JsonObject& object = value.asObject();
            if (object.empty()) {
                out_ += "{}";
                break;
            }
            out_ += '{';
            bool first = true;
            for (const auto& entry : object) {
                if (!first)
                    out_ += ",";
                first = false;
                newline(depth + 1);
                writeEscapedString(out_, entry.first);
                out_ += options_.pretty ? ": " : ":";
                writeValue(entry.second, depth + 1);
            }
            newline(depth);
            out_ += '}';
            break;
          }
        }
    }

    WriteOptions options_;
    std::string out_;
};

}  // namespace

std::string
write(const JsonValue& value, const WriteOptions& options)
{
    Writer writer(options);
    return writer.serialize(value);
}

std::string
writePretty(const JsonValue& value)
{
    WriteOptions options;
    options.pretty = true;
    return write(value, options);
}

}  // namespace json
}  // namespace uqsim
