#include "uqsim/json/json_value.h"

#include <algorithm>

namespace uqsim {
namespace json {

const char*
jsonTypeName(JsonType type)
{
    switch (type) {
      case JsonType::Null: return "null";
      case JsonType::Bool: return "bool";
      case JsonType::Int: return "int";
      case JsonType::Double: return "double";
      case JsonType::String: return "string";
      case JsonType::Array: return "array";
      case JsonType::Object: return "object";
    }
    return "unknown";
}

bool
JsonValue::Object::contains(const std::string& key) const
{
    return find(key) != nullptr;
}

JsonValue&
JsonValue::Object::operator[](const std::string& key)
{
    for (auto& entry : entries_) {
        if (entry.first == key)
            return entry.second;
    }
    entries_.emplace_back(key, JsonValue());
    return entries_.back().second;
}

const JsonValue&
JsonValue::Object::at(const std::string& key) const
{
    const JsonValue* value = find(key);
    if (value == nullptr)
        throw JsonError("missing object key: \"" + key + "\"");
    return *value;
}

JsonValue&
JsonValue::Object::at(const std::string& key)
{
    for (auto& entry : entries_) {
        if (entry.first == key)
            return entry.second;
    }
    throw JsonError("missing object key: \"" + key + "\"");
}

const JsonValue*
JsonValue::Object::find(const std::string& key) const
{
    for (const auto& entry : entries_) {
        if (entry.first == key)
            return &entry.second;
    }
    return nullptr;
}

bool
JsonValue::Object::erase(const std::string& key)
{
    auto it = std::find_if(entries_.begin(), entries_.end(),
                           [&](const Entry& e) { return e.first == key; });
    if (it == entries_.end())
        return false;
    entries_.erase(it);
    return true;
}

JsonType
JsonValue::type() const
{
    switch (data_.index()) {
      case 0: return JsonType::Null;
      case 1: return JsonType::Bool;
      case 2: return JsonType::Int;
      case 3: return JsonType::Double;
      case 4: return JsonType::String;
      case 5: return JsonType::Array;
      case 6: return JsonType::Object;
    }
    return JsonType::Null;
}

void
JsonValue::typeMismatch(JsonType wanted) const
{
    throw JsonError(std::string("expected ") + jsonTypeName(wanted) +
                    " but value is " + jsonTypeName(type()));
}

bool
JsonValue::asBool() const
{
    if (const bool* value = std::get_if<bool>(&data_))
        return *value;
    typeMismatch(JsonType::Bool);
}

std::int64_t
JsonValue::asInt() const
{
    if (const std::int64_t* value = std::get_if<std::int64_t>(&data_))
        return *value;
    typeMismatch(JsonType::Int);
}

double
JsonValue::asDouble() const
{
    if (const double* value = std::get_if<double>(&data_))
        return *value;
    if (const std::int64_t* value = std::get_if<std::int64_t>(&data_))
        return static_cast<double>(*value);
    typeMismatch(JsonType::Double);
}

const std::string&
JsonValue::asString() const
{
    if (const std::string* value = std::get_if<std::string>(&data_))
        return *value;
    typeMismatch(JsonType::String);
}

const JsonArray&
JsonValue::asArray() const
{
    if (const JsonArray* value = std::get_if<JsonArray>(&data_))
        return *value;
    typeMismatch(JsonType::Array);
}

JsonArray&
JsonValue::asArray()
{
    if (JsonArray* value = std::get_if<JsonArray>(&data_))
        return *value;
    typeMismatch(JsonType::Array);
}

const JsonValue::Object&
JsonValue::asObject() const
{
    if (const Object* value = std::get_if<Object>(&data_))
        return *value;
    typeMismatch(JsonType::Object);
}

JsonValue::Object&
JsonValue::asObject()
{
    if (Object* value = std::get_if<Object>(&data_))
        return *value;
    typeMismatch(JsonType::Object);
}

const JsonValue&
JsonValue::at(const std::string& key) const
{
    return asObject().at(key);
}

const JsonValue&
JsonValue::at(std::size_t index) const
{
    const JsonArray& array = asArray();
    if (index >= array.size()) {
        throw JsonError("array index " + std::to_string(index) +
                        " out of range (size " +
                        std::to_string(array.size()) + ")");
    }
    return array[index];
}

bool
JsonValue::contains(const std::string& key) const
{
    const JsonValue* value = find(key);
    return value != nullptr && !value->isNull();
}

const JsonValue*
JsonValue::find(const std::string& key) const
{
    if (const Object* object = std::get_if<Object>(&data_))
        return object->find(key);
    return nullptr;
}

bool
JsonValue::getOr(const std::string& key, bool fallback) const
{
    const JsonValue* value = find(key);
    return (value != nullptr && !value->isNull()) ? value->asBool()
                                                  : fallback;
}

std::int64_t
JsonValue::getOr(const std::string& key, std::int64_t fallback) const
{
    const JsonValue* value = find(key);
    return (value != nullptr && !value->isNull()) ? value->asInt()
                                                  : fallback;
}

int
JsonValue::getOr(const std::string& key, int fallback) const
{
    return static_cast<int>(
        getOr(key, static_cast<std::int64_t>(fallback)));
}

double
JsonValue::getOr(const std::string& key, double fallback) const
{
    const JsonValue* value = find(key);
    return (value != nullptr && !value->isNull()) ? value->asDouble()
                                                  : fallback;
}

std::string
JsonValue::getOr(const std::string& key, const char* fallback) const
{
    return getOr(key, std::string(fallback));
}

std::string
JsonValue::getOr(const std::string& key, const std::string& fallback) const
{
    const JsonValue* value = find(key);
    return (value != nullptr && !value->isNull()) ? value->asString()
                                                  : fallback;
}

std::size_t
JsonValue::size() const
{
    if (const JsonArray* array = std::get_if<JsonArray>(&data_))
        return array->size();
    if (const Object* object = std::get_if<Object>(&data_))
        return object->size();
    return 0;
}

bool
JsonValue::operator==(const JsonValue& other) const
{
    if (type() != other.type())
        return false;
    switch (type()) {
      case JsonType::Null:
        return true;
      case JsonType::Bool:
        return asBool() == other.asBool();
      case JsonType::Int:
        return asInt() == other.asInt();
      case JsonType::Double:
        return asDouble() == other.asDouble();
      case JsonType::String:
        return asString() == other.asString();
      case JsonType::Array: {
        const JsonArray& a = asArray();
        const JsonArray& b = other.asArray();
        if (a.size() != b.size())
            return false;
        for (std::size_t i = 0; i < a.size(); ++i) {
            if (!(a[i] == b[i]))
                return false;
        }
        return true;
      }
      case JsonType::Object: {
        const Object& a = asObject();
        const Object& b = other.asObject();
        if (a.size() != b.size())
            return false;
        for (const auto& entry : a) {
            const JsonValue* match = b.find(entry.first);
            if (match == nullptr || !(*match == entry.second))
                return false;
        }
        return true;
      }
    }
    return false;
}

}  // namespace json
}  // namespace uqsim
