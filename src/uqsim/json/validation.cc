#include "uqsim/json/validation.h"

#include <algorithm>

namespace uqsim {
namespace json {

std::size_t
editDistance(const std::string& a, const std::string& b)
{
    const std::size_t rows = a.size() + 1;
    const std::size_t cols = b.size() + 1;
    std::vector<std::size_t> prev(cols), curr(cols);
    for (std::size_t j = 0; j < cols; ++j)
        prev[j] = j;
    for (std::size_t i = 1; i < rows; ++i) {
        curr[0] = i;
        for (std::size_t j = 1; j < cols; ++j) {
            const std::size_t subst =
                prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, subst});
        }
        std::swap(prev, curr);
    }
    return prev[cols - 1];
}

std::string
suggestClosest(const std::string& name,
               const std::vector<std::string>& candidates)
{
    const std::size_t limit = std::max<std::size_t>(2, name.size() / 3);
    std::string best;
    std::size_t best_distance = limit + 1;
    for (const std::string& candidate : candidates) {
        const std::size_t distance = editDistance(name, candidate);
        if (distance < best_distance) {
            best_distance = distance;
            best = candidate;
        }
    }
    return best;
}

void
requireKnownKeys(const JsonValue& doc,
                 const std::vector<std::string>& allowed,
                 const std::string& context)
{
    if (!doc.isObject())
        return;
    for (const auto& [key, value] : doc.asObject()) {
        if (std::find(allowed.begin(), allowed.end(), key) !=
            allowed.end()) {
            continue;
        }
        std::string message =
            "unknown key \"" + key + "\" in " + context;
        const std::string suggestion = suggestClosest(key, allowed);
        if (!suggestion.empty())
            message += "; did you mean \"" + suggestion + "\"?";
        throw JsonError(message);
    }
}

}  // namespace json
}  // namespace uqsim
