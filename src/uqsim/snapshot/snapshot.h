#ifndef UQSIM_SNAPSHOT_SNAPSHOT_H_
#define UQSIM_SNAPSHOT_SNAPSHOT_H_

/**
 * @file
 * Versioned, checksummed binary simulation snapshots
 * (`uqsim-snapshot-v1`, docs/FORMATS.md).
 *
 * A snapshot pins a deterministic run at an exact executed-event
 * count.  The file carries (a) the *replay coordinates* — config
 * digest, master seed, simulation clock, executed-event count, and
 * the engine's running trace digest at the pin — and (b) one
 * *section* per stateful layer (engine, clients, dispatcher,
 * network, disks, faults, stats) holding that layer's serialized
 * state: scalar fields verbatim, large collections as
 * deterministic-order FNV-1a folds.
 *
 * Restore is replay-validated (docs/ARCHITECTURE.md §"Checkpoint /
 * restore"): events are closures, so the pending-event set is not
 * re-materialized from bytes.  Instead the restorer rebuilds the
 * simulation from the identical configuration, replays
 * deterministically to the pinned event count, and then *validates*
 * every layer's live state against its section field by field.  Any
 * divergence — config drift, nondeterminism, corruption that slipped
 * past the checksums — is a hard SnapshotStateError naming the
 * section, the field, and both values.
 *
 * File integrity is layered: magic + version, per-section CRC-64,
 * and a whole-file CRC-64 footer, so truncated or bit-flipped files
 * are rejected at open (SnapshotFormatError) before any replay
 * happens.  Unknown or duplicate section ids are rejected too —
 * a v2 writer's file never half-loads under a v1 reader.
 */

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace uqsim {
namespace snapshot {

/** Leading file magic ("UQSNAP01") of uqsim-snapshot-v1. */
inline constexpr char kMagic[8] = {'U', 'Q', 'S', 'N',
                                   'A', 'P', '0', '1'};
/** Trailing footer magic. */
inline constexpr char kFooterMagic[8] = {'U', 'Q', 'S', 'N',
                                         'A', 'P', 'E', 'D'};
/** Format version this build reads and writes. */
inline constexpr std::uint32_t kFormatVersion = 1;

/** Base class of every snapshot failure. */
class SnapshotError : public std::runtime_error {
  public:
    using std::runtime_error::runtime_error;
};

/** The file itself is unusable: bad magic, unsupported version,
 *  checksum mismatch, truncation, unknown/duplicate section ids. */
class SnapshotFormatError : public SnapshotError {
  public:
    using SnapshotError::SnapshotError;
};

/** The file parsed, but its state disagrees with the live
 *  simulation: config-digest mismatch, replay divergence, or a
 *  field-level validation failure. */
class SnapshotStateError : public SnapshotError {
  public:
    using SnapshotError::SnapshotError;
};

/** Section identities; ids are part of the on-disk format and must
 *  never be renumbered. */
enum class SectionId : std::uint32_t {
    Engine = 1,      ///< clock, event counters, queue + pool digests
    Clients = 2,     ///< workload generators (RNG, outstanding, counters)
    Dispatcher = 3,  ///< router state, edges, connection pools
    Network = 4,     ///< façade + model (constant / flow) state
    Disks = 5,       ///< per-disk in-flight operations and counters
    Faults = 6,      ///< fault scheduler streams and counters
    Stats = 7,       ///< recorders and measurement counters
};

/** Stable uppercase section name for error messages. */
const char* sectionName(SectionId id);

/** CRC-64/XZ (ECMA-182, reflected) over @p size bytes. */
std::uint64_t crc64(const void* data, std::size_t size);

/**
 * Order-sensitive FNV-1a fold helper for digesting collections into
 * a single u64 section field (byte-wise, endian-independent — the
 * same folding the engine's trace digest uses).
 */
class Digest {
  public:
    void u64(std::uint64_t value);
    void i64(std::int64_t value);
    void u32(std::uint32_t value) { u64(value); }
    /** Folds the exact bit pattern, so -0.0 != +0.0 and NaNs are
     *  compared representation-wise. */
    void f64(double value);
    void boolean(bool value) { u64(value ? 1 : 0); }
    void str(std::string_view text);

    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = 0xCBF29CE484222325ULL;  // FNV offset basis
};

/** Replay coordinates stored in the snapshot header. */
struct SnapshotMeta {
    /** Simulation composition fingerprint
     *  (Simulation::configDigest). */
    std::uint64_t configDigest = 0;
    /** Master seed of the run. */
    std::uint64_t masterSeed = 0;
    /** Simulation clock at the pin (SimTime ticks). */
    std::int64_t simTime = 0;
    /** Executed-event count at the pin. */
    std::uint64_t executedEvents = 0;
    /** Engine trace digest at the pin. */
    std::uint64_t traceDigest = 0;
};

/**
 * Builds a snapshot: set the meta, then for each layer
 * beginSection() / put fields / endSection(), then writeFile().
 * All integers are serialized little-endian at fixed width.
 */
class SnapshotWriter {
  public:
    SnapshotWriter() = default;

    void setMeta(const SnapshotMeta& meta) { meta_ = meta; }
    const SnapshotMeta& meta() const { return meta_; }

    /** Starts section @p id; throws std::logic_error on a duplicate
     *  id or an unclosed previous section. */
    void beginSection(SectionId id);
    void endSection();

    void putU8(std::uint8_t value);
    void putU32(std::uint32_t value);
    void putU64(std::uint64_t value);
    void putI64(std::int64_t value);
    /** Exact bit pattern of @p value. */
    void putF64(double value);
    void putBool(bool value) { putU8(value ? 1 : 0); }
    /** u32 length + raw bytes. */
    void putString(std::string_view text);

    /** Serializes header + section table + payloads + CRC footer. */
    std::vector<std::uint8_t> assemble() const;

    /**
     * Atomically writes the snapshot: the bytes go to
     * "<path>.tmp" (fsynced) and are renamed over @p path, so a
     * crash mid-write never leaves a half-written file under the
     * final name.  @throws SnapshotError on I/O failure.
     */
    void writeFile(const std::string& path) const;

  private:
    struct Section {
        SectionId id;
        std::vector<std::uint8_t> bytes;
    };

    SnapshotMeta meta_;
    std::vector<Section> sections_;
    bool sectionOpen_ = false;
};

/**
 * Parses and fully validates a snapshot, then hands out per-section
 * read cursors.  Layer loadState() implementations read fields in
 * write order and use the require* helpers to compare against live
 * state; a mismatch throws SnapshotStateError naming the section,
 * field, and both values.
 */
class SnapshotReader {
  public:
    /** Reads and validates @p path (magic, version, section table,
     *  per-section and whole-file CRCs).
     *  @throws SnapshotFormatError on any structural defect. */
    static SnapshotReader fromFile(const std::string& path);

    /** Same, from an in-memory image (tests, fuzzing). */
    static SnapshotReader fromBytes(std::vector<std::uint8_t> bytes);

    const SnapshotMeta& meta() const { return meta_; }

    bool hasSection(SectionId id) const;
    /** Section ids present, in file order. */
    const std::vector<SectionId>& sections() const { return order_; }

    /** Positions the read cursor at the start of section @p id;
     *  throws SnapshotFormatError when absent. */
    void openSection(SectionId id);
    /** Asserts the open section was fully consumed. */
    void closeSection();

    std::uint8_t getU8(const char* field);
    std::uint32_t getU32(const char* field);
    std::uint64_t getU64(const char* field);
    std::int64_t getI64(const char* field);
    double getF64(const char* field);
    bool getBool(const char* field);
    std::string getString(const char* field);

    // Validation helpers: read the stored value and require it to
    // equal @p live, else throw SnapshotStateError.
    void requireU64(const char* field, std::uint64_t live);
    void requireU32(const char* field, std::uint32_t live);
    void requireI64(const char* field, std::int64_t live);
    /** Bitwise comparison (floating-point state must replay to the
     *  exact same representation). */
    void requireF64(const char* field, double live);
    void requireBool(const char* field, bool live);
    void requireString(const char* field, std::string_view live);

  private:
    struct SectionView {
        std::size_t offset = 0;
        std::size_t length = 0;
    };

    SnapshotReader() = default;
    void parse();
    const std::uint8_t* need(const char* field, std::size_t bytes);
    [[noreturn]] void mismatch(const char* field,
                               const std::string& stored,
                               const std::string& live) const;

    std::vector<std::uint8_t> bytes_;
    SnapshotMeta meta_;
    std::map<SectionId, SectionView> sectionsById_;
    std::vector<SectionId> order_;

    SectionId current_ = SectionId::Engine;
    bool sectionOpen_ = false;
    std::size_t cursor_ = 0;
    std::size_t end_ = 0;
};

}  // namespace snapshot
}  // namespace uqsim

#endif  // UQSIM_SNAPSHOT_SNAPSHOT_H_
