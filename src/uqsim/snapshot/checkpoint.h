#ifndef UQSIM_SNAPSHOT_CHECKPOINT_H_
#define UQSIM_SNAPSHOT_CHECKPOINT_H_

/**
 * @file
 * Checkpointed execution, crash recovery, and warm-state forking on
 * top of the snapshot format (snapshot.h, docs/FORMATS.md).
 *
 * CheckpointManager runs a finalized Simulation to completion while
 * writing a snapshot every N executed events or every S simulated
 * seconds.  Files land as "<dir>/<prefix>-e<events>.uqsnap" via the
 * writer's atomic write-then-rename, and only the newest `keep` are
 * retained.  Checkpointing rides entirely on the segmented-run API
 * (Simulation::advanceToEvents / advanceToTime), whose segment
 * boundaries never move the clock — a checkpointed run fires the
 * exact same event sequence, and therefore produces the exact same
 * trace digest, as an uncheckpointed one.
 *
 * Abort ordering: when a supervisor aborts the run cooperatively
 * (RunControl → SimulationAbortError, raised *between* events), the
 * manager writes one final checkpoint at the abort point before
 * letting the exception continue to the harness.  A failure to
 * write that last-gasp snapshot is reported on stderr but never
 * masks the abort itself.
 *
 * Restore is replay-validated (see snapshot.h): the caller rebuilds
 * a Simulation from the identical configuration, and
 * restoreFromSnapshot() replays it to the snapshot's executed-event
 * count, checks the trace digest, and validates every layer's state
 * field by field.  forkFromSnapshot() additionally re-seeds the
 * client workload streams and/or scales the offered load — the
 * warm-state forking workflow (examples/warm_fork.cpp): pay for
 * warm-up once, then explore many what-if continuations.
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "uqsim/core/sim/simulation.h"
#include "uqsim/snapshot/snapshot.h"

namespace uqsim {
namespace snapshot {

/** Where and how often to checkpoint. */
struct CheckpointOptions {
    /** Directory for snapshot files; created on first write.
     *  Empty disables checkpointing. */
    std::string dir;
    /** Filename stem: "<prefix>-e<events>.uqsnap". */
    std::string prefix = "ckpt";
    /** Checkpoint every N executed events; 0 disables the event
     *  cadence. */
    std::uint64_t everyEvents = 0;
    /** Checkpoint every S simulated seconds; 0 disables the time
     *  cadence.  Ignored when everyEvents is set. */
    double everySimSeconds = 0.0;
    /** Snapshots retained per prefix; older ones are pruned after
     *  each write.  <= 0 keeps everything. */
    int keep = 2;

    bool enabled() const
    {
        return !dir.empty() &&
               (everyEvents > 0 || everySimSeconds > 0.0);
    }
};

/**
 * Serializes @p simulation and atomically writes it to
 * "<dir>/<prefix>-e<events>.uqsnap" (directories created as
 * needed).  Returns the final path.
 */
std::string writeCheckpoint(const Simulation& simulation,
                            const std::string& dir,
                            const std::string& prefix);

/** Deletes all but the newest @p keep "<prefix>-e*.uqsnap" files in
 *  @p dir (newest = highest event count).  @p keep <= 0 is a no-op. */
void pruneCheckpoints(const std::string& dir,
                      const std::string& prefix, int keep);

/** A structurally valid on-disk snapshot. */
struct FoundSnapshot {
    std::string path;
    SnapshotMeta meta;
};

/**
 * Scans @p dir for "<prefix>-e*.uqsnap" files and returns the one
 * with the highest executed-event count whose structure fully
 * validates (magic, version, CRCs).  Corrupt or truncated files —
 * e.g. a snapshot half-written by a crashed process under a stale
 * .tmp name — are skipped, never fatal.  Empty when nothing valid
 * is found.
 */
std::optional<FoundSnapshot>
newestValidSnapshot(const std::string& dir,
                    const std::string& prefix);

/**
 * Runs a finalized Simulation to completion with periodic
 * checkpoints; see the file comment for cadence, retention, and
 * abort ordering.  With options.enabled() false this degenerates to
 * exactly Simulation::run().
 */
class CheckpointManager {
  public:
    CheckpointManager(Simulation& simulation,
                      CheckpointOptions options);

    /**
     * Runs to the configured duration, checkpointing on the way,
     * and returns the final report.  On SimulationAbortError a
     * final checkpoint is written before the exception propagates.
     */
    RunReport run();

    /** Paths written so far, oldest first (pruned files included). */
    const std::vector<std::string>& written() const
    {
        return written_;
    }

  private:
    void checkpoint();

    Simulation& simulation_;
    CheckpointOptions options_;
    std::vector<std::string> written_;
};

/**
 * Replay-validated restore of @p path into @p simulation, which must
 * be freshly finalized (zero executed events) from the *identical*
 * configuration.  Verifies the config digest and master seed against
 * the snapshot meta, replays to the pinned event count, verifies the
 * trace digest, then validates every layer via loadState().  In
 * audit mode (UQSIM_AUDIT) a full post-restore invariant pass runs
 * on top.  On success the simulation stands exactly where the
 * checkpointed run stood and can be continued with advance* /
 * finishRun().
 *
 * @throws SnapshotFormatError  unreadable/corrupt file
 * @throws SnapshotStateError   config mismatch or replay divergence
 */
void restoreFromSnapshot(Simulation& simulation,
                         const std::string& path);

/** What to change in a forked continuation. */
struct ForkOptions {
    /** Re-seed every client's workload stream from this master seed;
     *  0 keeps the original streams (the fork then replays the
     *  original run exactly). */
    std::uint64_t reseedToken = 0;
    /** Multiply every client's offered-load pattern; 1.0 keeps the
     *  original load. */
    double loadScale = 1.0;
};

/**
 * Warm-state fork: builds a fresh Simulation via @p factory (which
 * must reproduce the checkpointed configuration and finalize() it),
 * restores @p path into it, then applies @p options.  The divergence
 * knobs are applied *after* restore validation, so the restore still
 * checks against the original configuration.
 */
std::unique_ptr<Simulation>
forkFromSnapshot(
    const std::function<std::unique_ptr<Simulation>()>& factory,
    const std::string& path, const ForkOptions& options = {});

}  // namespace snapshot
}  // namespace uqsim

#endif  // UQSIM_SNAPSHOT_CHECKPOINT_H_
