#include "uqsim/snapshot/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "uqsim/core/engine/run_control.h"
#include "uqsim/core/sim/audit.h"

namespace uqsim {
namespace snapshot {

namespace fs = std::filesystem;

namespace {

std::string
checkpointFileName(const std::string& prefix, std::uint64_t events)
{
    return prefix + "-e" + std::to_string(events) + ".uqsnap";
}

/** Parses "<prefix>-e<digits>.uqsnap"; nullopt when the name does
 *  not match (foreign files in the directory are left alone). */
std::optional<std::uint64_t>
eventsFromFileName(const std::string& name, const std::string& prefix)
{
    const std::string head = prefix + "-e";
    const std::string tail = ".uqsnap";
    if (name.size() <= head.size() + tail.size())
        return std::nullopt;
    if (name.compare(0, head.size(), head) != 0)
        return std::nullopt;
    if (name.compare(name.size() - tail.size(), tail.size(), tail) !=
        0) {
        return std::nullopt;
    }
    const std::string digits = name.substr(
        head.size(), name.size() - head.size() - tail.size());
    if (digits.empty())
        return std::nullopt;
    std::uint64_t events = 0;
    for (char c : digits) {
        if (c < '0' || c > '9')
            return std::nullopt;
        events = events * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return events;
}

}  // namespace

std::string
writeCheckpoint(const Simulation& simulation, const std::string& dir,
                const std::string& prefix)
{
    SnapshotWriter writer;
    simulation.saveState(writer);
    std::error_code ec;
    fs::create_directories(dir, ec);  // writeFile reports failures
    const std::string path =
        (fs::path(dir) /
         checkpointFileName(prefix, simulation.sim().executedEvents()))
            .string();
    writer.writeFile(path);
    return path;
}

void
pruneCheckpoints(const std::string& dir, const std::string& prefix,
                 int keep)
{
    if (keep <= 0)
        return;
    std::error_code ec;
    std::vector<std::pair<std::uint64_t, fs::path>> found;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
        const auto events = eventsFromFileName(
            entry.path().filename().string(), prefix);
        if (events)
            found.emplace_back(*events, entry.path());
    }
    if (found.size() <= static_cast<std::size_t>(keep))
        return;
    std::sort(found.begin(), found.end());
    const std::size_t doomed =
        found.size() - static_cast<std::size_t>(keep);
    for (std::size_t i = 0; i < doomed; ++i)
        fs::remove(found[i].second, ec);
}

std::optional<FoundSnapshot>
newestValidSnapshot(const std::string& dir, const std::string& prefix)
{
    std::error_code ec;
    std::vector<std::pair<std::uint64_t, fs::path>> found;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
        const auto events = eventsFromFileName(
            entry.path().filename().string(), prefix);
        if (events)
            found.emplace_back(*events, entry.path());
    }
    // Newest first so the most recent structurally valid file wins;
    // a half-written or bit-rotted newest falls through to the next.
    std::sort(found.begin(), found.end(),
              [](const auto& a, const auto& b) { return b < a; });
    for (const auto& [events, path] : found) {
        try {
            SnapshotReader reader =
                SnapshotReader::fromFile(path.string());
            return FoundSnapshot{path.string(), reader.meta()};
        } catch (const SnapshotError&) {
            continue;
        }
    }
    return std::nullopt;
}

CheckpointManager::CheckpointManager(Simulation& simulation,
                                     CheckpointOptions options)
    : simulation_(simulation), options_(std::move(options))
{
}

void
CheckpointManager::checkpoint()
{
    written_.push_back(
        writeCheckpoint(simulation_, options_.dir, options_.prefix));
    pruneCheckpoints(options_.dir, options_.prefix, options_.keep);
}

RunReport
CheckpointManager::run()
{
    if (!options_.enabled())
        return simulation_.run();
    try {
        if (options_.everyEvents > 0) {
            while (true) {
                const std::uint64_t target =
                    simulation_.sim().executedEvents() +
                    options_.everyEvents;
                const StopReason reason =
                    simulation_.advanceToEvents(target);
                // Anything short of the cadence target means the run
                // itself is over (horizon, drain, global budget).
                if (reason != StopReason::EventLimit ||
                    simulation_.sim().executedEvents() < target) {
                    break;
                }
                checkpoint();
            }
        } else {
            const SimTime period =
                secondsToSimTime(options_.everySimSeconds);
            const SimTime horizon = secondsToSimTime(
                simulation_.options().durationSeconds);
            // Absolute marks (k * period), not now+period, so the
            // cadence does not drift with event timing.
            SimTime mark = period;
            while (mark < horizon) {
                const StopReason reason =
                    simulation_.advanceToTime(mark);
                if (reason != StopReason::TimeLimit)
                    break;
                checkpoint();
                // Segment boundaries never move the clock, so now()
                // sits *before* the mark here; step to the next mark
                // unconditionally (and past any marks a single long
                // event jumped over) or the loop would re-run a
                // zero-event segment forever.
                do {
                    mark += period;
                } while (mark <= simulation_.sim().now());
            }
        }
        return simulation_.finishRun();
    } catch (const SimulationAbortError&) {
        // Last-gasp checkpoint at the abort point: the abort was
        // raised between events, so the state is consistent.  An
        // I/O failure here must not mask the abort.
        try {
            checkpoint();
        } catch (const std::exception& error) {
            std::fprintf(
                stderr,
                "uqsim: checkpoint after abort failed: %s\n",
                error.what());
        }
        throw;
    }
}

void
restoreFromSnapshot(Simulation& simulation, const std::string& path)
{
    SnapshotReader reader = SnapshotReader::fromFile(path);
    const SnapshotMeta& meta = reader.meta();

    if (!simulation.finalized()) {
        throw std::logic_error(
            "restoreFromSnapshot: simulation must be finalized");
    }
    if (simulation.sim().executedEvents() != 0) {
        throw std::logic_error(
            "restoreFromSnapshot: simulation must be fresh "
            "(zero executed events)");
    }
    if (meta.configDigest != simulation.configDigest()) {
        throw SnapshotStateError(
            "snapshot \"" + path +
            "\" was taken from a different configuration: stored "
            "config digest " + std::to_string(meta.configDigest) +
            ", live " + std::to_string(simulation.configDigest()));
    }
    if (meta.masterSeed != simulation.sim().masterSeed()) {
        throw SnapshotStateError(
            "snapshot \"" + path + "\" master seed " +
            std::to_string(meta.masterSeed) +
            " differs from live seed " +
            std::to_string(simulation.sim().masterSeed()));
    }

    const StopReason reason =
        simulation.advanceToEvents(meta.executedEvents);
    if (simulation.sim().executedEvents() != meta.executedEvents) {
        throw SnapshotStateError(
            "replay stopped early (" +
            std::string(stopReasonName(reason)) + " after " +
            std::to_string(simulation.sim().executedEvents()) +
            " events, snapshot pinned at " +
            std::to_string(meta.executedEvents) + ")");
    }
    if (simulation.sim().traceDigest() != meta.traceDigest) {
        throw SnapshotStateError(
            "replay diverged: trace digest " +
            std::to_string(simulation.sim().traceDigest()) +
            " after " + std::to_string(meta.executedEvents) +
            " events, snapshot recorded " +
            std::to_string(meta.traceDigest));
    }

    simulation.loadState(reader);

    if (audit::auditModeEnabled()) {
        simulation.sim().auditEngine().raise("post-restore");
        audit::auditSimulation(simulation, /*at_drain=*/false)
            .raise("post-restore");
    }
}

std::unique_ptr<Simulation>
forkFromSnapshot(
    const std::function<std::unique_ptr<Simulation>()>& factory,
    const std::string& path, const ForkOptions& options)
{
    std::unique_ptr<Simulation> forked = factory();
    if (!forked) {
        throw std::logic_error(
            "forkFromSnapshot: factory returned null");
    }
    restoreFromSnapshot(*forked, path);
    // Divergence knobs apply only after the restore validated the
    // original configuration.
    for (auto& client : forked->clients()) {
        if (options.reseedToken != 0)
            client->reseed(options.reseedToken);
        if (options.loadScale != 1.0)
            client->scaleLoad(options.loadScale);
    }
    return forked;
}

}  // namespace snapshot
}  // namespace uqsim
