#include "uqsim/snapshot/snapshot.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace uqsim {
namespace snapshot {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

// Header: magic(8) version(4) section_count(4) config(8) seed(8)
// sim_time(8) executed(8) trace(8) = 56 bytes.
constexpr std::size_t kHeaderSize = 56;
// Section table entry: id(4) flags(4) offset(8) length(8) crc(8).
constexpr std::size_t kTableEntrySize = 32;
// Footer: file crc(8) + footer magic(8).
constexpr std::size_t kFooterSize = 16;

void
putLe32(std::vector<std::uint8_t>& out, std::uint32_t value)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
}

void
putLe64(std::vector<std::uint8_t>& out, std::uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
}

std::uint32_t
getLe32(const std::uint8_t* p)
{
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i)
        value |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return value;
}

std::uint64_t
getLe64(const std::uint8_t* p)
{
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i)
        value |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return value;
}

std::uint64_t
f64Bits(double value)
{
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof value);
    std::memcpy(&bits, &value, sizeof bits);
    return bits;
}

double
f64FromBits(std::uint64_t bits)
{
    double value = 0.0;
    std::memcpy(&value, &bits, sizeof value);
    return value;
}

std::string
hex(std::uint64_t value)
{
    char buffer[19];
    std::snprintf(buffer, sizeof buffer, "0x%016llx",
                  static_cast<unsigned long long>(value));
    return buffer;
}

bool
knownSection(std::uint32_t id)
{
    return id >= static_cast<std::uint32_t>(SectionId::Engine) &&
           id <= static_cast<std::uint32_t>(SectionId::Stats);
}

}  // namespace

const char*
sectionName(SectionId id)
{
    switch (id) {
      case SectionId::Engine: return "ENGINE";
      case SectionId::Clients: return "CLIENTS";
      case SectionId::Dispatcher: return "DISPATCHER";
      case SectionId::Network: return "NETWORK";
      case SectionId::Disks: return "DISKS";
      case SectionId::Faults: return "FAULTS";
      case SectionId::Stats: return "STATS";
    }
    return "?";
}

std::uint64_t
crc64(const void* data, std::size_t size)
{
    // CRC-64/XZ: reflected ECMA-182 polynomial, init/xorout ~0.
    static const std::uint64_t* table = []() {
        static std::uint64_t t[256];
        constexpr std::uint64_t kPoly = 0xC96C5795D7870F42ULL;
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint64_t crc = i;
            for (int bit = 0; bit < 8; ++bit) {
                crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
            }
            t[i] = crc;
        }
        return t;
    }();
    std::uint64_t crc = ~std::uint64_t{0};
    const auto* bytes = static_cast<const std::uint8_t*>(data);
    for (std::size_t i = 0; i < size; ++i)
        crc = table[(crc ^ bytes[i]) & 0xFF] ^ (crc >> 8);
    return ~crc;
}

void
Digest::u64(std::uint64_t value)
{
    std::uint64_t h = hash_;
    for (int i = 0; i < 8; ++i)
        h = (h ^ ((value >> (8 * i)) & 0xFF)) * kFnvPrime;
    hash_ = h;
}

void
Digest::i64(std::int64_t value)
{
    u64(static_cast<std::uint64_t>(value));
}

void
Digest::f64(double value)
{
    u64(f64Bits(value));
}

void
Digest::str(std::string_view text)
{
    std::uint64_t h = hash_;
    for (const char c : text)
        h = (h ^ static_cast<std::uint8_t>(c)) * kFnvPrime;
    // Length terminator so "ab"+"c" != "a"+"bc" across str() calls.
    hash_ = (h ^ 0xFF) * kFnvPrime;
}

// ------------------------------------------------------ SnapshotWriter

void
SnapshotWriter::beginSection(SectionId id)
{
    if (sectionOpen_)
        throw std::logic_error("beginSection with a section open");
    for (const Section& section : sections_) {
        if (section.id == id) {
            throw std::logic_error(std::string("duplicate section ") +
                                   sectionName(id));
        }
    }
    sections_.push_back(Section{id, {}});
    sectionOpen_ = true;
}

void
SnapshotWriter::endSection()
{
    if (!sectionOpen_)
        throw std::logic_error("endSection without beginSection");
    sectionOpen_ = false;
}

void
SnapshotWriter::putU8(std::uint8_t value)
{
    if (!sectionOpen_)
        throw std::logic_error("put outside a section");
    sections_.back().bytes.push_back(value);
}

void
SnapshotWriter::putU32(std::uint32_t value)
{
    if (!sectionOpen_)
        throw std::logic_error("put outside a section");
    putLe32(sections_.back().bytes, value);
}

void
SnapshotWriter::putU64(std::uint64_t value)
{
    if (!sectionOpen_)
        throw std::logic_error("put outside a section");
    putLe64(sections_.back().bytes, value);
}

void
SnapshotWriter::putI64(std::int64_t value)
{
    putU64(static_cast<std::uint64_t>(value));
}

void
SnapshotWriter::putF64(double value)
{
    putU64(f64Bits(value));
}

void
SnapshotWriter::putString(std::string_view text)
{
    putU32(static_cast<std::uint32_t>(text.size()));
    if (!sectionOpen_)
        throw std::logic_error("put outside a section");
    std::vector<std::uint8_t>& bytes = sections_.back().bytes;
    bytes.insert(bytes.end(), text.begin(), text.end());
}

std::vector<std::uint8_t>
SnapshotWriter::assemble() const
{
    if (sectionOpen_)
        throw std::logic_error("assemble with a section open");
    std::vector<std::uint8_t> out;
    out.insert(out.end(), kMagic, kMagic + 8);
    putLe32(out, kFormatVersion);
    putLe32(out, static_cast<std::uint32_t>(sections_.size()));
    putLe64(out, meta_.configDigest);
    putLe64(out, meta_.masterSeed);
    putLe64(out, static_cast<std::uint64_t>(meta_.simTime));
    putLe64(out, meta_.executedEvents);
    putLe64(out, meta_.traceDigest);

    std::size_t offset =
        kHeaderSize + sections_.size() * kTableEntrySize;
    for (const Section& section : sections_) {
        putLe32(out, static_cast<std::uint32_t>(section.id));
        putLe32(out, 0);  // flags, reserved
        putLe64(out, offset);
        putLe64(out, section.bytes.size());
        putLe64(out, crc64(section.bytes.data(), section.bytes.size()));
        offset += section.bytes.size();
    }
    for (const Section& section : sections_) {
        out.insert(out.end(), section.bytes.begin(),
                   section.bytes.end());
    }
    putLe64(out, crc64(out.data(), out.size()));
    out.insert(out.end(), kFooterMagic, kFooterMagic + 8);
    return out;
}

void
SnapshotWriter::writeFile(const std::string& path) const
{
    const std::vector<std::uint8_t> bytes = assemble();
    const std::string tmp = path + ".tmp";
    std::FILE* file = std::fopen(tmp.c_str(), "wb");
    if (file == nullptr) {
        throw SnapshotError("cannot open snapshot for writing: " +
                            tmp + ": " + std::strerror(errno));
    }
    const std::size_t written =
        std::fwrite(bytes.data(), 1, bytes.size(), file);
    const bool flushed = std::fflush(file) == 0;
    std::fclose(file);
    if (written != bytes.size() || !flushed) {
        std::remove(tmp.c_str());
        throw SnapshotError("short write to snapshot: " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw SnapshotError("cannot rename snapshot into place: " +
                            path + ": " + std::strerror(errno));
    }
}

// ------------------------------------------------------ SnapshotReader

SnapshotReader
SnapshotReader::fromFile(const std::string& path)
{
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
        throw SnapshotError("cannot open snapshot: " + path + ": " +
                            std::strerror(errno));
    }
    std::vector<std::uint8_t> bytes;
    std::uint8_t buffer[1 << 16];
    std::size_t got = 0;
    while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0)
        bytes.insert(bytes.end(), buffer, buffer + got);
    const bool read_error = std::ferror(file) != 0;
    std::fclose(file);
    if (read_error)
        throw SnapshotError("cannot read snapshot: " + path);
    try {
        return fromBytes(std::move(bytes));
    } catch (const SnapshotFormatError& error) {
        throw SnapshotFormatError(path + ": " + error.what());
    }
}

SnapshotReader
SnapshotReader::fromBytes(std::vector<std::uint8_t> bytes)
{
    SnapshotReader reader;
    reader.bytes_ = std::move(bytes);
    reader.parse();
    return reader;
}

void
SnapshotReader::parse()
{
    if (bytes_.size() < kHeaderSize + kFooterSize) {
        throw SnapshotFormatError(
            "truncated snapshot: " + std::to_string(bytes_.size()) +
            " bytes, smaller than header + footer");
    }
    if (std::memcmp(bytes_.data(), kMagic, 8) != 0)
        throw SnapshotFormatError("bad magic: not a uqsim snapshot");
    const std::size_t footer_start = bytes_.size() - kFooterSize;
    if (std::memcmp(bytes_.data() + footer_start + 8, kFooterMagic,
                    8) != 0) {
        throw SnapshotFormatError(
            "bad footer magic: truncated or corrupt snapshot");
    }
    const std::uint64_t stored_crc =
        getLe64(bytes_.data() + footer_start);
    const std::uint64_t actual_crc = crc64(bytes_.data(), footer_start);
    if (stored_crc != actual_crc) {
        throw SnapshotFormatError("file checksum mismatch: stored " +
                                  hex(stored_crc) + ", computed " +
                                  hex(actual_crc));
    }

    const std::uint32_t version = getLe32(bytes_.data() + 8);
    if (version != kFormatVersion) {
        throw SnapshotFormatError(
            "unsupported snapshot version " + std::to_string(version) +
            " (this build reads version " +
            std::to_string(kFormatVersion) + ")");
    }
    const std::uint32_t section_count = getLe32(bytes_.data() + 12);
    meta_.configDigest = getLe64(bytes_.data() + 16);
    meta_.masterSeed = getLe64(bytes_.data() + 24);
    meta_.simTime =
        static_cast<std::int64_t>(getLe64(bytes_.data() + 32));
    meta_.executedEvents = getLe64(bytes_.data() + 40);
    meta_.traceDigest = getLe64(bytes_.data() + 48);

    const std::size_t table_end =
        kHeaderSize +
        static_cast<std::size_t>(section_count) * kTableEntrySize;
    if (table_end > footer_start) {
        throw SnapshotFormatError(
            "section table overruns the file (" +
            std::to_string(section_count) + " sections)");
    }
    for (std::uint32_t i = 0; i < section_count; ++i) {
        const std::uint8_t* entry =
            bytes_.data() + kHeaderSize + i * kTableEntrySize;
        const std::uint32_t raw_id = getLe32(entry);
        if (!knownSection(raw_id)) {
            throw SnapshotFormatError("unknown section id " +
                                      std::to_string(raw_id));
        }
        const auto id = static_cast<SectionId>(raw_id);
        const std::uint64_t offset = getLe64(entry + 8);
        const std::uint64_t length = getLe64(entry + 16);
        const std::uint64_t section_crc = getLe64(entry + 24);
        if (offset < table_end || offset + length > footer_start ||
            offset + length < offset) {
            throw SnapshotFormatError(
                std::string("section ") + sectionName(id) +
                " out of bounds (offset " + std::to_string(offset) +
                ", length " + std::to_string(length) + ")");
        }
        const std::uint64_t actual = crc64(
            bytes_.data() + offset, static_cast<std::size_t>(length));
        if (actual != section_crc) {
            throw SnapshotFormatError(
                std::string("section ") + sectionName(id) +
                " checksum mismatch: stored " + hex(section_crc) +
                ", computed " + hex(actual));
        }
        if (!sectionsById_
                 .emplace(id,
                          SectionView{static_cast<std::size_t>(offset),
                                      static_cast<std::size_t>(length)})
                 .second) {
            throw SnapshotFormatError(std::string("duplicate section ") +
                                      sectionName(id));
        }
        order_.push_back(id);
    }
}

bool
SnapshotReader::hasSection(SectionId id) const
{
    return sectionsById_.count(id) != 0;
}

void
SnapshotReader::openSection(SectionId id)
{
    const auto it = sectionsById_.find(id);
    if (it == sectionsById_.end()) {
        throw SnapshotFormatError(std::string("snapshot has no ") +
                                  sectionName(id) + " section");
    }
    current_ = id;
    sectionOpen_ = true;
    cursor_ = it->second.offset;
    end_ = it->second.offset + it->second.length;
}

void
SnapshotReader::closeSection()
{
    if (!sectionOpen_)
        throw std::logic_error("closeSection without openSection");
    if (cursor_ != end_) {
        throw SnapshotFormatError(
            std::string(sectionName(current_)) + " section has " +
            std::to_string(end_ - cursor_) + " unread trailing bytes");
    }
    sectionOpen_ = false;
}

const std::uint8_t*
SnapshotReader::need(const char* field, std::size_t bytes)
{
    if (!sectionOpen_)
        throw std::logic_error("read outside a section");
    if (cursor_ + bytes > end_) {
        throw SnapshotFormatError(
            std::string(sectionName(current_)) + " section truncated "
            "reading field '" + field + "'");
    }
    const std::uint8_t* p = bytes_.data() + cursor_;
    cursor_ += bytes;
    return p;
}

std::uint8_t
SnapshotReader::getU8(const char* field)
{
    return *need(field, 1);
}

std::uint32_t
SnapshotReader::getU32(const char* field)
{
    return getLe32(need(field, 4));
}

std::uint64_t
SnapshotReader::getU64(const char* field)
{
    return getLe64(need(field, 8));
}

std::int64_t
SnapshotReader::getI64(const char* field)
{
    return static_cast<std::int64_t>(getU64(field));
}

double
SnapshotReader::getF64(const char* field)
{
    return f64FromBits(getU64(field));
}

bool
SnapshotReader::getBool(const char* field)
{
    return getU8(field) != 0;
}

std::string
SnapshotReader::getString(const char* field)
{
    const std::uint32_t length = getU32(field);
    const std::uint8_t* p = need(field, length);
    return std::string(reinterpret_cast<const char*>(p), length);
}

void
SnapshotReader::mismatch(const char* field, const std::string& stored,
                         const std::string& live) const
{
    throw SnapshotStateError(
        std::string(sectionName(current_)) + " section: field '" +
        field + "': snapshot " + stored + " != live " + live);
}

void
SnapshotReader::requireU64(const char* field, std::uint64_t live)
{
    const std::uint64_t stored = getU64(field);
    if (stored != live)
        mismatch(field, std::to_string(stored), std::to_string(live));
}

void
SnapshotReader::requireU32(const char* field, std::uint32_t live)
{
    const std::uint32_t stored = getU32(field);
    if (stored != live)
        mismatch(field, std::to_string(stored), std::to_string(live));
}

void
SnapshotReader::requireI64(const char* field, std::int64_t live)
{
    const std::int64_t stored = getI64(field);
    if (stored != live)
        mismatch(field, std::to_string(stored), std::to_string(live));
}

void
SnapshotReader::requireF64(const char* field, double live)
{
    const std::uint64_t stored = getU64(field);
    if (stored != f64Bits(live)) {
        mismatch(field,
                 std::to_string(f64FromBits(stored)) + " (" +
                     hex(stored) + ")",
                 std::to_string(live) + " (" + hex(f64Bits(live)) +
                     ")");
    }
}

void
SnapshotReader::requireBool(const char* field, bool live)
{
    const bool stored = getBool(field);
    if (stored != live) {
        mismatch(field, stored ? "true" : "false",
                 live ? "true" : "false");
    }
}

void
SnapshotReader::requireString(const char* field, std::string_view live)
{
    const std::string stored = getString(field);
    if (stored != live) {
        mismatch(field, "\"" + stored + "\"",
                 "\"" + std::string(live) + "\"");
    }
}

}  // namespace snapshot
}  // namespace uqsim
