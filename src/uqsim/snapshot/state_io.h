#ifndef UQSIM_SNAPSHOT_STATE_IO_H_
#define UQSIM_SNAPSHOT_STATE_IO_H_

/**
 * @file
 * Shared helpers for layer saveState()/loadState() implementations.
 *
 * Every stateful layer owns one or more xoshiro256++ streams whose
 * position must be pinned by a snapshot: a replayed run that drew one
 * sample more or less than the original would diverge from the first
 * post-restore event.  These helpers serialize the full generator
 * state (four state words plus the Gaussian carry) verbatim, so a
 * divergence points at the exact stream rather than only showing up
 * later in the trace digest.
 */

#include <string>

#include "uqsim/random/rng.h"
#include "uqsim/snapshot/snapshot.h"

namespace uqsim {
namespace snapshot {

/** Writes an RNG's full state into the open section. */
inline void
putRngState(SnapshotWriter& writer, const random::Rng::State& state)
{
    for (int i = 0; i < 4; ++i)
        writer.putU64(state.words[i]);
    writer.putBool(state.hasSpareGaussian);
    writer.putF64(state.spareGaussian);
}

/** Validates a live RNG's state against putRngState()'s fields;
 *  @p name prefixes the field names in error messages. */
inline void
requireRngState(SnapshotReader& reader, const std::string& name,
                const random::Rng::State& state)
{
    for (int i = 0; i < 4; ++i) {
        const std::string field =
            name + ".word" + std::to_string(i);
        reader.requireU64(field.c_str(), state.words[i]);
    }
    reader.requireBool((name + ".has_spare_gaussian").c_str(),
                       state.hasSpareGaussian);
    reader.requireF64((name + ".spare_gaussian").c_str(),
                      state.spareGaussian);
}

/** Folds an RNG's full state into a collection digest. */
inline void
digestRngState(Digest& digest, const random::Rng::State& state)
{
    for (int i = 0; i < 4; ++i)
        digest.u64(state.words[i]);
    digest.boolean(state.hasSpareGaussian);
    digest.f64(state.spareGaussian);
}

}  // namespace snapshot
}  // namespace uqsim

#endif  // UQSIM_SNAPSHOT_STATE_IO_H_
