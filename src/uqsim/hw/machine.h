#ifndef UQSIM_HW_MACHINE_H_
#define UQSIM_HW_MACHINE_H_

/**
 * @file
 * Server machine model: a named pool of cores, a DVFS domain, and an
 * optional IRQ (network processing) service.  Instances allocate
 * dedicated core sets from a machine, matching the paper's pinned
 * deployment.
 */

#include <memory>
#include <string>
#include <vector>

#include "uqsim/core/engine/simulator.h"
#include "uqsim/hw/core_set.h"
#include "uqsim/hw/disk.h"
#include "uqsim/hw/dvfs.h"
#include "uqsim/hw/irq_service.h"
#include "uqsim/random/distribution.h"

namespace uqsim {
namespace hw {

/** Static description of one machine. */
struct MachineConfig {
    std::string name = "server";
    int cores = 20;
    /** Soft-irq cores; 0 disables the per-machine network service. */
    int irqCores = 0;
    /** DVFS steps in GHz (ascending). */
    std::vector<double> dvfsGhz = {1.2, 1.4, 1.6, 1.8,
                                   2.0, 2.2, 2.4, 2.6};
    /** Base interrupt processing time per packet (seconds). */
    double irqPerPacket = 2e-6;
    /** Additional interrupt processing per payload byte (seconds). */
    double irqPerByte = 0.0;
    /** Attached shared-bandwidth disks (names unique per machine);
     *  empty = no storage tier, disk stages fall back to the legacy
     *  per-instance channel model. */
    std::vector<Disk::Config> disks;
};

/** One server. */
class Machine {
  public:
    Machine(Simulator& sim, const MachineConfig& config);

    Machine(const Machine&) = delete;
    Machine& operator=(const Machine&) = delete;

    const std::string& name() const { return name_; }

    /** Dense id in cluster insertion order, used by routed network
     *  models to key routing tables; -1 until the machine joins a
     *  cluster.  Assigned by Cluster::addMachine. */
    int netId() const { return netId_; }
    void setNetId(int id) { netId_ = id; }

    int totalCores() const { return totalCores_; }
    int allocatedCores() const { return allocatedCores_; }
    int freeCores() const { return totalCores_ - allocatedCores_; }

    /** The machine-wide frequency domain. */
    DvfsDomain& dvfs() { return dvfs_; }
    const DvfsDomain& dvfs() const { return dvfs_; }

    /**
     * Creates an additional frequency domain on this machine (for
     * per-tier DVFS control when tiers share a server).  The domain
     * is owned by the machine.
     */
    DvfsDomain& makeDvfsDomain(const std::string& label);

    /** The network processing service, or nullptr when irqCores=0. */
    IrqService* irq() { return irq_.get(); }

    /** The named disk, or nullptr when absent. */
    Disk* disk(const std::string& name);
    /** The first configured disk, or nullptr when the machine has
     *  none (instances with unnamed disk stages bind to it). */
    Disk* defaultDisk();
    /** Attached disks in configuration order. */
    const std::vector<std::unique_ptr<Disk>>& disks() const
    {
        return disks_;
    }

    /**
     * Allocates @p count dedicated cores.  The returned CoreSet is
     * owned by the machine and lives as long as it.
     *
     * @throws std::runtime_error when not enough cores remain.
     */
    CoreSet& allocateCores(int count, const std::string& label);

  private:
    Simulator& sim_;
    std::string name_;
    int netId_ = -1;
    int totalCores_;
    int allocatedCores_ = 0;
    DvfsDomain dvfs_;
    std::vector<std::unique_ptr<DvfsDomain>> extraDomains_;
    std::unique_ptr<IrqService> irq_;
    std::vector<std::unique_ptr<CoreSet>> allocations_;
    std::vector<std::unique_ptr<Disk>> disks_;
};

}  // namespace hw
}  // namespace uqsim

#endif  // UQSIM_HW_MACHINE_H_
