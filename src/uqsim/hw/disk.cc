#include "uqsim/hw/disk.h"

#include <stdexcept>
#include <utility>

#include "uqsim/snapshot/snapshot.h"

namespace uqsim {
namespace hw {

Disk::Disk(Simulator& sim, const std::string& owner,
           const Config& config)
    : sim_(sim), config_(config),
      label_(owner + "/" + config.name)
{
    if (config_.readBytesPerSecond <= 0.0) {
        throw std::invalid_argument("disk \"" + label_ +
                                    "\": read bandwidth must be > 0");
    }
    if (config_.writeBytesPerSecond < 0.0) {
        throw std::invalid_argument(
            "disk \"" + label_ + "\": write bandwidth must be >= 0");
    }
    if (config_.writeBytesPerSecond == 0.0)
        config_.writeBytesPerSecond = config_.readBytesPerSecond;
    if (config_.queueDepth < 0) {
        throw std::invalid_argument(
            "disk \"" + label_ + "\": queue depth must be >= 0");
    }
    lastUpdate_ = sim_.now();
}

double
Disk::capacity(OpKind kind) const
{
    return kind == OpKind::Read ? config_.readBytesPerSecond
                                : config_.writeBytesPerSecond;
}

void
Disk::submit(OpKind kind, std::uint64_t bytes,
             double extraLatencySeconds, Callback done,
             const char* label)
{
    Op op;
    op.kind = kind;
    op.sizeBytes = bytes;
    op.remainingBytes = static_cast<double>(bytes);
    op.tailLatency = extraLatencySeconds;
    op.done = std::move(done);
    op.label = label;
    const std::uint64_t id = nextOpId_++;
    ++submitted_;
    if (config_.queueDepth > 0 &&
        inService_.size() >=
            static_cast<std::size_t>(config_.queueDepth)) {
        ++queuedOps_;
        waiting_.emplace_back(id, std::move(op));
        if (waiting_.size() > peakQueued_)
            peakQueued_ = waiting_.size();
        return;
    }
    start(id, std::move(op));
}

void
Disk::start(std::uint64_t id, Op op)
{
    advance();
    inService_.emplace(id, std::move(op));
    allocate();
}

void
Disk::advance()
{
    const SimTime now = sim_.now();
    if (now > lastUpdate_) {
        if (!inService_.empty()) {
            busyTicks_ += static_cast<double>(now - lastUpdate_);
            const double dt = simTimeToSeconds(now - lastUpdate_);
            for (auto& [id, op] : inService_) {
                op.remainingBytes -= op.rate * dt;
                if (op.remainingBytes < 0.0)
                    op.remainingBytes = 0.0;
            }
        }
        lastUpdate_ = now;
    }
}

void
Disk::allocate()
{
    ++reshares_;
    // Every operation occupies exactly one direction, so the max-min
    // fair allocation is an equal split per direction.
    int reads = 0;
    int writes = 0;
    for (const auto& [id, op] : inService_) {
        if (op.kind == OpKind::Read)
            ++reads;
        else
            ++writes;
    }
    // Reschedule completions in operation-id order.  An operation
    // whose rate did not change keeps its pending event: the
    // remaining bytes shrank exactly in step with the old schedule,
    // so the old finish time still holds (and skipping the
    // reschedule avoids rounding drift).
    for (auto it = inService_.begin(); it != inService_.end(); ++it) {
        Op& op = it->second;
        const int sharing = op.kind == OpKind::Read ? reads : writes;
        const double rate = capacity(op.kind) / sharing;
        if (rate == op.rate && op.completion.pending())
            continue;
        op.rate = rate;
        op.completion.cancel();
        const SimTime remaining =
            secondsToSimTime(op.remainingBytes / op.rate);
        const std::uint64_t id = it->first;
        op.completion = sim_.scheduleAfter(
            remaining, [this, id]() { finishOp(id); }, "disk/op");
    }
}

void
Disk::finishOp(std::uint64_t id)
{
    auto it = inService_.find(id);
    if (it == inService_.end())
        return;
    advance();
    Op op = std::move(it->second);
    inService_.erase(it);
    if (op.kind == OpKind::Read) {
        ++readsCompleted_;
        bytesRead_ += op.sizeBytes;
    } else {
        ++writesCompleted_;
        bytesWritten_ += op.sizeBytes;
    }
    // FIFO admission: each completion frees exactly one slot.
    if (!waiting_.empty()) {
        auto [nextId, nextOp] = std::move(waiting_.front());
        waiting_.pop_front();
        inService_.emplace(nextId, std::move(nextOp));
    }
    // Release the finished operation's share first, then pay the
    // access-latency tail: siblings speed up the moment the last
    // byte moves.
    allocate();
    sim_.scheduleAfter(secondsToSimTime(op.tailLatency),
                       std::move(op.done), op.label);
}

double
Disk::busySeconds(SimTime now) const
{
    double busy = busyTicks_;
    if (!inService_.empty() && now > lastUpdate_)
        busy += static_cast<double>(now - lastUpdate_);
    return busy / static_cast<double>(kSecond);
}

double
Disk::utilization(SimTime now) const
{
    if (now <= 0)
        return 0.0;
    double busy = busyTicks_;
    if (!inService_.empty() && now > lastUpdate_)
        busy += static_cast<double>(now - lastUpdate_);
    return busy / static_cast<double>(now);
}

namespace {

template <typename Op>
void
digestOp(uqsim::snapshot::Digest& digest, std::uint64_t id,
         const Op& op)
{
    digest.u64(id);
    digest.u32(op.kind == Disk::OpKind::Read ? 0 : 1);
    digest.u64(op.sizeBytes);
    digest.f64(op.remainingBytes);
    digest.f64(op.rate);
    digest.f64(op.tailLatency);
    digest.str(op.label);
}

}  // namespace

void
Disk::saveState(snapshot::SnapshotWriter& writer) const
{
    writer.putString(label_);
    writer.putU64(submitted_);
    writer.putU64(readsCompleted_);
    writer.putU64(writesCompleted_);
    writer.putU64(bytesRead_);
    writer.putU64(bytesWritten_);
    writer.putU64(queuedOps_);
    writer.putU64(peakQueued_);
    writer.putU64(reshares_);
    writer.putU64(nextOpId_);
    writer.putI64(lastUpdate_);
    writer.putF64(busyTicks_);
    writer.putU64(inService_.size());
    writer.putU64(waiting_.size());
    snapshot::Digest ops;
    for (const auto& [id, op] : inService_)
        digestOp(ops, id, op);
    for (const auto& [id, op] : waiting_)
        digestOp(ops, id, op);
    writer.putU64(ops.value());
}

void
Disk::loadState(snapshot::SnapshotReader& reader,
                const std::string& name) const
{
    const auto field = [&name](const char* suffix) {
        return name + "." + suffix;
    };
    reader.requireString(field("label").c_str(), label_);
    reader.requireU64(field("submitted").c_str(), submitted_);
    reader.requireU64(field("reads_completed").c_str(),
                      readsCompleted_);
    reader.requireU64(field("writes_completed").c_str(),
                      writesCompleted_);
    reader.requireU64(field("bytes_read").c_str(), bytesRead_);
    reader.requireU64(field("bytes_written").c_str(), bytesWritten_);
    reader.requireU64(field("queued_ops").c_str(), queuedOps_);
    reader.requireU64(field("peak_queued").c_str(), peakQueued_);
    reader.requireU64(field("reshares").c_str(), reshares_);
    reader.requireU64(field("next_op_id").c_str(), nextOpId_);
    reader.requireI64(field("last_update").c_str(), lastUpdate_);
    reader.requireF64(field("busy_ticks").c_str(), busyTicks_);
    reader.requireU64(field("in_service").c_str(), inService_.size());
    reader.requireU64(field("waiting").c_str(), waiting_.size());
    snapshot::Digest ops;
    for (const auto& [id, op] : inService_)
        digestOp(ops, id, op);
    for (const auto& [id, op] : waiting_)
        digestOp(ops, id, op);
    reader.requireU64(field("op_digest").c_str(), ops.value());
}

}  // namespace hw
}  // namespace uqsim
