#ifndef UQSIM_HW_DVFS_H_
#define UQSIM_HW_DVFS_H_

/**
 * @file
 * DVFS (dynamic voltage and frequency scaling) model.
 *
 * A DvfsTable is the discrete set of frequency steps a platform
 * supports (the validation server spans 1.2-2.6 GHz).  A DvfsDomain
 * is a group of cores sharing one frequency setting; the power
 * manager actuates domains.  CPU-bound stage service times scale by
 * (f_nominal / f)^alpha.
 */

#include <functional>
#include <string>
#include <vector>

namespace uqsim {
namespace hw {

/** Immutable, ascending list of supported frequencies in GHz. */
class DvfsTable {
  public:
    /** @param frequencies_ghz ascending, all > 0; at least one. */
    explicit DvfsTable(std::vector<double> frequencies_ghz);

    /** Default table matching the paper's server: 1.2-2.6 GHz in
     *  0.2 GHz steps. */
    static DvfsTable paperDefault();

    /**
     * Evenly spaced table from @p lo to @p hi GHz with @p steps
     * entries.  With many steps this approximates fine-grained
     * mechanisms like RAPL, which the paper names as the way to
     * bring the converged tail closer to the QoS target (§V-B).
     */
    static DvfsTable linear(double lo, double hi, int steps);

    std::size_t stepCount() const { return frequencies_.size(); }
    double frequencyAt(std::size_t index) const;

    /** Highest (nominal) frequency. */
    double nominal() const { return frequencies_.back(); }
    double lowest() const { return frequencies_.front(); }

    /** Index of the step closest to @p frequency_ghz. */
    std::size_t closestIndex(double frequency_ghz) const;

  private:
    std::vector<double> frequencies_;
};

/** A frequency domain; instances reference one and scale times by it. */
class DvfsDomain {
  public:
    /** Starts at the nominal (highest) frequency. */
    explicit DvfsDomain(DvfsTable table, std::string name = "dvfs");

    const std::string& name() const { return name_; }
    const DvfsTable& table() const { return table_; }

    double frequency() const { return table_.frequencyAt(index_); }
    std::size_t index() const { return index_; }
    bool atNominal() const { return index_ + 1 == table_.stepCount(); }
    bool atLowest() const { return index_ == 0; }

    /**
     * Service-time multiplier relative to nominal frequency:
     * nominal / current (>= 1).  Stages apply this raised to their
     * frequency-sensitivity exponent.
     */
    double slowdown() const { return table_.nominal() / frequency(); }

    /** Sets the step index directly. */
    void setIndex(std::size_t index);
    /** Sets the closest step to @p frequency_ghz. */
    void setFrequency(double frequency_ghz);
    /** Moves one step up (faster); returns false at the top. */
    bool stepUp();
    /** Moves one step down (slower); returns false at the bottom. */
    bool stepDown();

    /** Observer invoked after every frequency change. */
    void onChange(std::function<void(const DvfsDomain&)> observer);

  private:
    void notify();

    DvfsTable table_;
    std::string name_;
    std::size_t index_;
    std::vector<std::function<void(const DvfsDomain&)>> observers_;
};

}  // namespace hw
}  // namespace uqsim

#endif  // UQSIM_HW_DVFS_H_
