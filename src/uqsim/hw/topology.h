#ifndef UQSIM_HW_TOPOLOGY_H_
#define UQSIM_HW_TOPOLOGY_H_

/**
 * @file
 * Datacenter topology generator.
 *
 * Builds k-ary fat-tree (folded Clos) fabrics as FlowModel link sets
 * plus routing tables, so `machines.json`-scale clusters can be
 * *generated* instead of hand-written: k pods, each with k/2 edge
 * and k/2 aggregation switches, (k/2)^2 core switches, and a
 * configurable number of hosts per edge switch.  An oversubscription
 * ratio r puts (k/2)*r hosts under each edge switch: r=1 is the
 * classic rearrangeably non-blocking fat tree, r>1 models the
 * under-provisioned edge uplinks real clusters have (and is what
 * makes incast interesting).
 *
 * Routing is deterministic and destination-based (no ECMP
 * randomness, preserving the determinism contract): traffic to host
 * d always climbs toward aggregation switch d mod k/2 and core
 * offset (d / (k/2)) mod k/2, which spreads destinations across the
 * fabric like ECMP hashing does while keeping every route a pure
 * function of (source, destination).
 *
 * For fault tolerance the builder also emits, per host pair, the
 * *backup* candidate paths through every other (aggregation, core)
 * choice in a fixed rotation order starting just after the primary —
 * so failover is deterministic — plus a switch registry mapping each
 * switch name ("pod0:edge1", "pod2:agg0", "core3") to the links that
 * die with it (switch_down faults).  Edge switches are single-homed:
 * taking one down legitimately disconnects its hosts, while any
 * aggregation or core switch loss leaves all pairs connected via the
 * backups.
 */

#include <memory>
#include <string>
#include <vector>

#include "uqsim/hw/flow_model.h"
#include "uqsim/hw/machine.h"

namespace uqsim {
namespace hw {

class Cluster;

/** Fat-tree generation parameters. */
struct FatTreeConfig {
    /** Switch arity k; must be even and >= 2. */
    int arity = 4;
    /** Hosts per edge switch = (k/2) * oversubscription (rounded,
     *  min 1).  Ignored when hostsPerEdge is set explicitly. */
    double oversubscription = 1.0;
    /** Explicit hosts per edge switch; 0 derives it from the
     *  oversubscription ratio. */
    int hostsPerEdge = 0;
    /** Host NIC speed (gigabits per second). */
    double hostGbps = 10.0;
    /** Fabric (edge-agg and agg-core) link speed (Gb/s). */
    double fabricGbps = 10.0;
    /** Per-link propagation latency (seconds). */
    double linkLatencySeconds = 1e-6;
    /** Host machine names are prefix + host index ("h0", "h1", …). */
    std::string hostPrefix = "h";
    /** Also generate backup candidate paths per host pair (used by
     *  FlowModel failover); disable to model a fabric with no
     *  rerouting. */
    bool backupRoutes = true;
};

/** A generated fabric: links, host names, and all-pairs routes. */
struct Topology {
    int arity = 0;
    int hostsPerEdge = 0;
    int hostCount = 0;
    int edgeCount = 0;
    int aggCount = 0;
    int coreCount = 0;

    /** Directional links in creation order (host NICs first). */
    std::vector<FlowModel::LinkSpec> links;
    std::vector<std::string> hostNames;

    /** One named switch and the link ids incident to it. */
    struct SwitchSpec {
        std::string name;
        std::vector<int> linkIds;
    };
    /** Edge, aggregation, and core switches in creation order. */
    std::vector<SwitchSpec> switches;

    /** Route between two host indices (link ids in traversal
     *  order); empty for from == to. */
    const std::vector<int>& route(int from, int to) const;

    /** Backup candidates for a pair, in failover order (primary
     *  excluded); empty when backupRoutes was disabled or the pair
     *  shares an edge switch. */
    const std::vector<std::vector<int>>& backupRoutes(int from,
                                                      int to) const;

    /** Builds a FlowModel with every link, route, backup candidate,
     *  and switch installed.  Host index i must become machine net
     *  id i — add machines via populateCluster() (or in hostNames
     *  order) and nothing else. */
    std::unique_ptr<FlowModel> makeModel(
        const FlowModel::Config& config = FlowModel::Config{}) const;

    /** Adds one machine per host to @p cluster from @p prototype,
     *  overriding the name with hostNames[i].  The cluster must be
     *  empty so host indices line up with machine net ids. */
    void populateCluster(Cluster& cluster,
                         MachineConfig prototype) const;

    /** All-pairs routes, indexed from * hostCount + to. */
    std::vector<std::vector<int>> routes;
    /** All-pairs backup candidates, same indexing; empty when
     *  backupRoutes generation was disabled. */
    std::vector<std::vector<std::vector<int>>> backups;
};

class TopologyBuilder {
  public:
    static Topology fatTree(const FatTreeConfig& config);
};

/** 10 Gb/s -> 1.25e9 bytes/s. */
constexpr double
gbpsToBytesPerSecond(double gbps)
{
    return gbps * 1e9 / 8.0;
}

}  // namespace hw
}  // namespace uqsim

#endif  // UQSIM_HW_TOPOLOGY_H_
