#ifndef UQSIM_HW_NETWORK_H_
#define UQSIM_HW_NETWORK_H_

/**
 * @file
 * Cross-machine message transport.
 *
 * A transfer from machine A to machine B passes through A's IRQ
 * service (TX interrupt handling), a constant wire latency, and B's
 * IRQ service (RX).  Transfers within the same machine take the
 * loopback path: a smaller constant latency and a single pass
 * through the local IRQ service (kernel loopback work).
 */

#include <cstdint>
#include <functional>

#include "uqsim/core/engine/simulator.h"
#include "uqsim/hw/machine.h"

namespace uqsim {
namespace hw {

/** Network parameters. */
struct NetworkConfig {
    /** One-way wire latency between distinct machines (seconds). */
    double wireLatency = 20e-6;
    /** Latency for same-machine (loopback) messages (seconds). */
    double loopbackLatency = 5e-6;
};

/** Message transport between machines. */
class Network {
  public:
    Network(Simulator& sim, const NetworkConfig& config);

    /**
     * Moves a message of @p bytes from @p from to @p to, then calls
     * @p done.  Either endpoint may be nullptr, meaning "outside the
     * cluster" (e.g. the client); that leg then only pays wire
     * latency.
     */
    void transfer(Machine* from, Machine* to, std::uint32_t bytes,
                  std::function<void()> done);

    std::uint64_t transferCount() const { return transfers_; }

  private:
    void deliver(Machine* to, std::uint32_t bytes,
                 std::function<void()> done);

    Simulator& sim_;
    NetworkConfig config_;
    std::uint64_t transfers_ = 0;
};

}  // namespace hw
}  // namespace uqsim

#endif  // UQSIM_HW_NETWORK_H_
