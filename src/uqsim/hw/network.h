#ifndef UQSIM_HW_NETWORK_H_
#define UQSIM_HW_NETWORK_H_

/**
 * @file
 * Cross-machine message transport façade.
 *
 * A transfer from machine A to machine B passes through A's IRQ
 * service (TX interrupt handling), an in-flight wire leg simulated
 * by a pluggable NetworkModel, and B's IRQ service (RX).  Transfers
 * within the same machine take the loopback path: a smaller latency
 * and a single pass through the local IRQ service (kernel loopback
 * work).
 *
 * The façade owns everything that is model-independent — IRQ
 * hand-off, fault/degradation windows, and counters — and delegates
 * latency/ordering to the model (network_model.h): ConstantModel
 * reproduces the paper's single constant hop bit-identically;
 * FlowModel (flow_model.h) adds routed links with max-min fair
 * bandwidth sharing.
 *
 * A FaultScheduler may open a degradation window: every transfer
 * then pays extra wire latency, and cross-machine messages are lost
 * with a configured probability (the @p dropped callback fires
 * instead of delivery).  Loss coin flips come from a seed-split
 * stream that is only drawn inside a window, so fault-free runs are
 * bitwise identical to builds without fault support.
 */

#include <cstdint>
#include <memory>

#include "uqsim/core/engine/simulator.h"
#include "uqsim/hw/machine.h"
#include "uqsim/hw/network_model.h"
#include "uqsim/random/rng.h"

namespace uqsim {
namespace hw {

/**
 * Deprecated (one release, see docs/FORMATS.md): construct the
 * model explicitly via ConstantModel::Config / ConstantModel::make()
 * instead of a free-floating latency pair.
 */
using NetworkConfig = ConstantModel::Config;

/** Message transport between machines. */
class Network {
  public:
    /** Takes ownership of @p model; nullptr selects a default
     *  ConstantModel. */
    Network(Simulator& sim, std::unique_ptr<NetworkModel> model);

    /** Deprecated shim: a ConstantModel built from @p config. */
    Network(Simulator& sim, const NetworkConfig& config);

    /**
     * Moves a message of @p bytes from @p from to @p to, then calls
     * @p done.  Either endpoint may be nullptr, meaning "outside the
     * cluster" (e.g. the client); that leg then only pays wire
     * latency.  When the message is lost — a degradation-window coin
     * flip here in the façade, or a model-level verdict (dead link,
     * no surviving route, partition) — @p dropped fires exactly once
     * instead of @p done, carrying the DropReason (or the message
     * silently vanishes when no @p dropped is given).
     */
    void transfer(Machine* from, Machine* to, std::uint32_t bytes,
                  Callback done, DropCallback dropped = {});

    /** Opens a degradation window: adds @p extraLatencySeconds to
     *  every transfer and loses cross-machine messages with
     *  probability @p lossProbability. */
    void setDegradation(double extraLatencySeconds,
                        double lossProbability);
    void clearDegradation();
    bool degraded() const { return degraded_; }

    NetworkModel& model() { return *model_; }
    const NetworkModel& model() const { return *model_; }

    std::uint64_t transferCount() const { return transfers_; }
    std::uint64_t droppedMessages() const { return dropped_; }

    /**
     * Writes the NETWORK snapshot section: façade counters,
     * degradation-window state, loss-stream RNG position, and the
     * model's own state (NetworkModel::saveState).
     */
    void saveState(snapshot::SnapshotWriter& writer) const;

    /** Validates the live (replayed) state against a snapshot's
     *  NETWORK section; throws SnapshotStateError on divergence. */
    void loadState(snapshot::SnapshotReader& reader) const;

  private:
    void deliver(Machine* to, std::uint32_t bytes, Callback done);

    Simulator& sim_;
    std::unique_ptr<NetworkModel> model_;
    std::uint64_t transfers_ = 0;
    bool degraded_ = false;
    double extraLatency_ = 0.0;
    double lossProb_ = 0.0;
    std::uint64_t dropped_ = 0;
    random::RngStream faultRng_;
};

}  // namespace hw
}  // namespace uqsim

#endif  // UQSIM_HW_NETWORK_H_
