#ifndef UQSIM_HW_FLOW_MODEL_H_
#define UQSIM_HW_FLOW_MODEL_H_

/**
 * @file
 * Flow-level network model: named links with capacity and latency,
 * routed machine→machine paths, and max-min fair bandwidth sharing.
 *
 * Each cross-machine message becomes a *flow* that occupies every
 * link on its route for the duration of its transmission.  Rates are
 * the max-min fair allocation (progressive filling) over all active
 * flows; the allocation is recomputed incrementally whenever a flow
 * starts or finishes, and each flow's completion event is
 * rescheduled only when its rate actually changed.  Delivery fires
 * one path latency after the last byte leaves the sender.
 *
 * Everything advances through engine events ("net/flow" transmission
 * completions), so the determinism contract and the explorer's
 * same-timestamp choice points apply unchanged.  Flow bookkeeping
 * iterates in flow-id order (a std::map), never in hash order, to
 * keep floating-point accumulation bit-reproducible.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "uqsim/core/engine/event.h"
#include "uqsim/hw/network_model.h"

namespace uqsim {
namespace hw {

/**
 * Max-min fair allocation by progressive filling, exposed for unit
 * testing against closed-form cases.  @p capacities holds link
 * capacities (bytes/s); @p paths holds, per flow, the link indices
 * it crosses.  Returns one rate per flow.  Flows with empty paths
 * get an unbounded rate of 0 (they consume no link).
 */
std::vector<double> maxMinFairShares(
    const std::vector<double>& capacities,
    const std::vector<std::vector<int>>& paths);

/** Bandwidth-sharing flow model; see file comment. */
class FlowModel final : public NetworkModel {
  public:
    struct Config {
        /** Latency for same-machine (loopback) messages (seconds). */
        double loopbackLatency = 5e-6;
        /** Constant latency for legs that enter or leave the
         *  cluster (nullptr endpoints, e.g. the load generator);
         *  such legs do not consume fabric bandwidth. */
        double externalLatency = 20e-6;
    };

    /** One directional link. */
    struct LinkSpec {
        std::string name;
        /** Capacity in bytes per second; must be > 0. */
        double bytesPerSecond = 0.0;
        /** Propagation latency contributed to every route that
         *  crosses this link (seconds). */
        double latencySeconds = 0.0;
    };

    FlowModel();
    explicit FlowModel(const Config& config);

    static std::unique_ptr<FlowModel> make();
    static std::unique_ptr<FlowModel> make(const Config& config);

    const Config& config() const { return config_; }

    // ------------------------------------------ fabric construction
    // Links and routes must be installed before the simulation runs;
    // route storage is referenced by in-flight flows and must not be
    // mutated afterwards.

    /** Adds a directional link; the name must be unique.  Returns
     *  the link id used in routes. */
    int addLink(const LinkSpec& spec);

    /** Link id for @p name, or -1 when absent. */
    int linkId(const std::string& name) const;

    std::size_t linkCount() const { return links_.size(); }
    const LinkSpec& link(int id) const { return links_.at(id); }

    /**
     * Installs the directional route between two machines,
     * identified by their cluster-assigned net ids
     * (Machine::netId()).  @p path lists link ids in traversal
     * order; it may be empty (zero-latency direct path).
     */
    void setRoute(int fromId, int toId, std::vector<int> path);

    bool hasRoute(int fromId, int toId) const;
    const std::vector<int>& route(int fromId, int toId) const;

    // ------------------------------------------------- NetworkModel

    const char* modelName() const override { return "flow"; }
    void bind(Simulator& sim) override;
    void onMachineAdded(const Machine& machine) override;
    void transit(const Machine* from, const Machine* to,
                 std::uint32_t bytes, double extraLatencySeconds,
                 Callback done, const char* label) override;
    void loopback(const Machine* machine, std::uint32_t bytes,
                  double extraLatencySeconds, Callback done,
                  const char* label) override;

    // ------------------------------------------------ observability

    std::uint64_t flowsStarted() const { return started_; }
    std::uint64_t flowsFinished() const { return finished_; }
    std::size_t activeFlowCount() const { return flows_.size(); }
    /** Number of fair-share recomputations (flow starts+finishes). */
    std::uint64_t reshareCount() const { return reshares_; }

  private:
    struct Flow {
        const std::vector<int>* path = nullptr;
        double remainingBytes = 0.0;
        double rate = 0.0;
        /** Propagation latency + fault-window extra, paid after the
         *  last byte is transmitted. */
        double tailLatency = 0.0;
        Callback done;
        const char* label = "net/flow";
        EventHandle completion;
    };

    const std::vector<int>& routeOrThrow(const Machine& from,
                                         const Machine& to) const;
    /** Advances in-flight flows to now, recomputes the max-min
     *  allocation, and reschedules completions whose rate changed. */
    void reshare();
    void finishFlow(std::uint64_t id);

    Config config_;
    Simulator* sim_ = nullptr;
    std::vector<LinkSpec> links_;
    std::map<std::string, int> linkIds_;
    std::map<std::pair<int, int>, std::vector<int>> routes_;
    std::vector<std::string> machineNames_;

    std::map<std::uint64_t, Flow> flows_;
    std::uint64_t nextFlowId_ = 0;
    SimTime lastUpdate_ = 0;
    std::uint64_t started_ = 0;
    std::uint64_t finished_ = 0;
    std::uint64_t reshares_ = 0;

    // Scratch reused across reshare() calls.
    std::vector<double> capLeft_;
    std::vector<int> flowsOn_;
    std::vector<Flow*> active_;
};

}  // namespace hw
}  // namespace uqsim

#endif  // UQSIM_HW_FLOW_MODEL_H_
