#ifndef UQSIM_HW_FLOW_MODEL_H_
#define UQSIM_HW_FLOW_MODEL_H_

/**
 * @file
 * Flow-level network model: named links with capacity and latency,
 * routed machine→machine paths, and max-min fair bandwidth sharing.
 *
 * Each cross-machine message becomes a *flow* that occupies every
 * link on its route for the duration of its transmission.  Rates are
 * the max-min fair allocation (progressive filling) over all active
 * flows; the allocation is recomputed incrementally whenever a flow
 * starts or finishes, and each flow's completion event is
 * rescheduled only when its rate actually changed.  Delivery fires
 * one path latency after the last byte leaves the sender.
 *
 * Topology-granular faults (docs/ARCHITECTURE.md §failure handling):
 * every link carries up/down and degradation state.  A transition
 * (setLinkDown / setLinkUp / setLinkDegradation) triggers an
 * incremental re-share — a downed link contributes zero capacity, a
 * degraded one its capacity multiplied down.  New transfers whose
 * primary route crosses a dead link *fail over* deterministically to
 * the first all-up backup route (installed in fixed candidate
 * order); when no candidate survives, or a partition separates the
 * endpoints, the transfer gets an *unreachable* verdict (the drop
 * callback fires with DropReason::Unreachable).  Flows already in
 * flight across a link that dies follow the configured in-flight
 * policy: Drop (callback fires with DropReason::LinkDown, feeding
 * the dispatcher's retry/timeout machinery) or Stall (rate pinned to
 * zero until the link repairs; progressive filling does this
 * naturally).
 *
 * Everything advances through engine events ("net/flow" transmission
 * completions), so the determinism contract and the explorer's
 * same-timestamp choice points apply unchanged.  Flow bookkeeping
 * iterates in flow-id order (a std::map), never in hash order, to
 * keep floating-point accumulation bit-reproducible.  Fault-free
 * runs never touch the link-state branches: capacities and latencies
 * multiply by exactly 1.0, so digests stay bit-identical to builds
 * without fault support.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "uqsim/core/engine/event.h"
#include "uqsim/hw/network_model.h"

namespace uqsim {
namespace hw {

/**
 * Max-min fair allocation by progressive filling, exposed for unit
 * testing against closed-form cases.  @p capacities holds link
 * capacities (bytes/s); @p paths holds, per flow, the link indices
 * it crosses.  Returns one rate per flow.  Flows with empty paths
 * get an unbounded rate of 0 (they consume no link).
 */
std::vector<double> maxMinFairShares(
    const std::vector<double>& capacities,
    const std::vector<std::vector<int>>& paths);

/** Bandwidth-sharing flow model; see file comment. */
class FlowModel final : public NetworkModel {
  public:
    /** What happens to flows in flight across a link that dies. */
    enum class InFlightPolicy {
        /** Drop the flow; its drop callback fires with
         *  DropReason::LinkDown (default — feeds the dispatcher's
         *  timeout/retry/breaker machinery). */
        Drop,
        /** Keep the flow at rate zero until the link repairs; the
         *  transfer finishes late instead of failing. */
        Stall,
    };

    struct Config {
        /** Latency for same-machine (loopback) messages (seconds). */
        double loopbackLatency = 5e-6;
        /** Constant latency for legs that enter or leave the
         *  cluster (nullptr endpoints, e.g. the load generator);
         *  such legs do not consume fabric bandwidth. */
        double externalLatency = 20e-6;
        /** In-flight policy for link failures. */
        InFlightPolicy onLinkDown = InFlightPolicy::Drop;
    };

    /** One directional link. */
    struct LinkSpec {
        std::string name;
        /** Capacity in bytes per second; must be > 0. */
        double bytesPerSecond = 0.0;
        /** Propagation latency contributed to every route that
         *  crosses this link (seconds). */
        double latencySeconds = 0.0;
    };

    /** Per-link fault summary for reporting. */
    struct LinkFaultSummary {
        std::string name;
        /** Accumulated downtime (seconds), open intervals included. */
        double downSeconds = 0.0;
        /** In-flight flows dropped when this link died. */
        std::uint64_t drops = 0;
    };

    FlowModel();
    explicit FlowModel(const Config& config);

    static std::unique_ptr<FlowModel> make();
    static std::unique_ptr<FlowModel> make(const Config& config);

    const Config& config() const { return config_; }

    // ------------------------------------------ fabric construction
    // Links and routes must be installed before the simulation runs;
    // route storage is referenced by in-flight flows and must not be
    // mutated afterwards.

    /** Adds a directional link; the name must be unique.  Returns
     *  the link id used in routes. */
    int addLink(const LinkSpec& spec);

    /** Link id for @p name, or -1 when absent. */
    int linkId(const std::string& name) const;

    std::size_t linkCount() const { return links_.size(); }
    const LinkSpec& link(int id) const { return links_.at(id); }

    /**
     * Installs the directional *primary* route between two machines,
     * identified by their cluster-assigned net ids
     * (Machine::netId()).  @p path lists link ids in traversal
     * order; it may be empty (zero-latency direct path).  Replaces
     * any previously installed candidates for the pair.
     */
    void setRoute(int fromId, int toId, std::vector<int> path);

    /**
     * Appends a backup candidate for the pair.  Failover tries
     * candidates in installation order — primary first, then each
     * backup — and uses the first whose links are all up.
     */
    void addBackupRoute(int fromId, int toId, std::vector<int> path);

    bool hasRoute(int fromId, int toId) const;
    /** The primary route (candidate 0). */
    const std::vector<int>& route(int fromId, int toId) const;
    /** All candidates in failover order; throws when absent. */
    const std::vector<std::vector<int>>& routeCandidates(
        int fromId, int toId) const;

    /**
     * Registers a named switch as the set of link ids that die with
     * it (switch_down faults fail them all).  Names must be unique.
     */
    void registerSwitch(const std::string& name,
                        std::vector<int> linkIds);
    bool hasSwitch(const std::string& name) const;
    /** Link ids of @p name; throws std::out_of_range when absent. */
    const std::vector<int>& switchLinks(const std::string& name) const;
    /** Registered switch names, in registration order. */
    const std::vector<std::string>& switchNames() const
    {
        return switchNames_;
    }

    // ---------------------------------------------- topology faults
    // Each transition triggers an incremental max-min re-share.
    // Down states nest (a link downed twice needs two repairs), so
    // overlapping link_down and switch_down windows compose.

    void setLinkDown(int id);
    void setLinkUp(int id);
    /** Multiplies capacity by @p capacityFactor (in (0, 1]) and
     *  latency by @p latencyFactor (>= 1) until cleared. */
    void setLinkDegradation(int id, double capacityFactor,
                            double latencyFactor);
    void clearLinkDegradation(int id);
    bool linkUp(int id) const;

    /**
     * Opens a partition: machines in different groups (net ids)
     * cannot reach each other; machines in no group are unaffected.
     * A new partition replaces any active one.
     */
    void setPartition(const std::vector<std::vector<int>>& groups);
    void clearPartition();
    bool partitionActive() const { return partitionActive_; }

    /** True when a message from @p fromId to @p toId would be
     *  deliverable right now (some candidate route survives and no
     *  partition separates the pair). */
    bool reachable(int fromId, int toId) const;

    // ------------------------------------------------- NetworkModel

    const char* modelName() const override { return "flow"; }
    void bind(Simulator& sim) override;
    void onMachineAdded(const Machine& machine) override;
    void transit(const Machine* from, const Machine* to,
                 std::uint32_t bytes, double extraLatencySeconds,
                 Callback done, DropCallback dropped,
                 const char* label) override;
    void loopback(const Machine* machine, std::uint32_t bytes,
                  double extraLatencySeconds, Callback done,
                  const char* label) override;

    /** FlowModel state in the NETWORK section: flow counters,
     *  per-link nested-down/degradation state, partition and sticky
     *  failover-pick state, and an active-flow fold in id order. */
    void saveState(snapshot::SnapshotWriter& writer) const override;
    void loadState(snapshot::SnapshotReader& reader) const override;

    // ------------------------------------------------ observability

    std::uint64_t flowsStarted() const { return started_; }
    std::uint64_t flowsFinished() const { return finished_; }
    std::size_t activeFlowCount() const { return flows_.size(); }
    /** Number of fair-share recomputations (flow starts+finishes). */
    std::uint64_t reshareCount() const { return reshares_; }

    /** Transfers routed over a backup candidate (primary dead). */
    std::uint64_t failovers() const { return failovers_; }
    /** Transfers with an unreachable verdict (no surviving route or
     *  partition-blocked). */
    std::uint64_t unreachableMessages() const { return unreachable_; }
    /** In-flight flows dropped by link failures (policy Drop). */
    std::uint64_t linkDropsTotal() const { return linkDrops_; }
    /** Accumulated downtime of @p id in seconds; a still-open
     *  outage counts up to now. */
    double linkDownSeconds(int id) const;
    /** Per-link fault summaries for links that saw downtime or
     *  drops, in link-id order. */
    std::vector<LinkFaultSummary> linkFaultSummaries() const;
    /** Current rates of the active flows, in flow-id order (exposed
     *  so tests can pin exact allocation restore after repair). */
    std::vector<double> activeFlowRates() const;

  private:
    struct Flow {
        const std::vector<int>* path = nullptr;
        double remainingBytes = 0.0;
        double rate = 0.0;
        /** Propagation latency + fault-window extra, paid after the
         *  last byte is transmitted. */
        double tailLatency = 0.0;
        Callback done;
        DropCallback dropped;
        const char* label = "net/flow";
        EventHandle completion;
    };

    struct LinkState {
        /** Nested down count; the link is up when 0. */
        int downCount = 0;
        double capacityFactor = 1.0;
        double latencyFactor = 1.0;
        SimTime downSince = 0;
        double downSecondsTotal = 0.0;
        std::uint64_t drops = 0;
    };

    const std::vector<std::vector<int>>& routeOrThrow(
        const Machine& from, const Machine& to) const;
    bool pathUp(const std::vector<int>& path) const;
    /** First all-up candidate (a RouteFailover choice point when
     *  several survive and a chooser is attached); nullptr when none
     *  survives. */
    const std::vector<int>* pickSurvivingPath(
        const std::vector<std::vector<int>>& candidates);
    bool crossesPartition(int fromId, int toId) const;
    double pathLatencySeconds(const std::vector<int>& path) const;
    void dropMessage(DropCallback dropped, DropReason reason,
                     const char* label);
    /** Advances in-flight flows to now, recomputes the max-min
     *  allocation, and reschedules completions whose rate changed.
     *  Stalled flows (rate 0, bytes left) keep no pending event. */
    void reshare();
    void finishFlow(std::uint64_t id);

    Config config_;
    Simulator* sim_ = nullptr;
    std::vector<LinkSpec> links_;
    std::vector<LinkState> linkStates_;
    std::map<std::string, int> linkIds_;
    /** Candidate paths per (from, to) pair in failover order;
     *  index 0 is the primary. */
    std::map<std::pair<int, int>, std::vector<std::vector<int>>>
        routes_;
    std::map<std::string, std::vector<int>> switches_;
    std::vector<std::string> switchNames_;
    std::vector<std::string> machineNames_;

    /** Links currently down (downCount > 0); fast-path guard so
     *  fault-free transits never scan candidates. */
    int downLinkCount_ = 0;
    bool partitionActive_ = false;
    /** Partition group per net id; -1 = not in any group. */
    std::vector<int> partitionOf_;

    std::map<std::uint64_t, Flow> flows_;
    std::uint64_t nextFlowId_ = 0;
    SimTime lastUpdate_ = 0;
    std::uint64_t started_ = 0;
    std::uint64_t finished_ = 0;
    std::uint64_t reshares_ = 0;
    std::uint64_t failovers_ = 0;
    std::uint64_t unreachable_ = 0;
    std::uint64_t linkDrops_ = 0;

    // Scratch reused across reshare() / failover calls.
    std::vector<double> capLeft_;
    std::vector<int> flowsOn_;
    std::vector<Flow*> active_;
    std::vector<const std::vector<int>*> survivorScratch_;

    /** Failover pick per (from, to) pair, sticky until the next
     *  link up/down transition (nullptr = unreachable verdict) —
     *  one RouteFailover decision per route per outage epoch, like
     *  a router installing a backup route, rather than one per
     *  transfer. */
    std::map<std::pair<int, int>, const std::vector<int>*>
        failoverPicks_;
};

}  // namespace hw
}  // namespace uqsim

#endif  // UQSIM_HW_FLOW_MODEL_H_
