#ifndef UQSIM_HW_DISK_H_
#define UQSIM_HW_DISK_H_

/**
 * @file
 * Shared-bandwidth disk model: a machine-attached storage device
 * with separate read and write bandwidth, max-min fair sharing
 * across in-flight operations, and a bounded service queue with
 * deterministic FIFO admission.
 *
 * Each sized disk access becomes an *operation* that holds a share
 * of its direction's bandwidth until its last byte moves.  Because
 * every operation occupies exactly one resource (the read or the
 * write head), the max-min fair allocation degenerates to an equal
 * split per direction: rate = direction capacity / operations in
 * that direction.  The allocation is recomputed incrementally with
 * the same machinery as the flow-level network model — advance
 * in-flight bytes to now, recompute shares, and reschedule a
 * completion event only when its rate actually changed (skipping
 * the reschedule avoids rounding drift).  Operation bookkeeping
 * iterates in operation-id order (a std::map), never in hash order,
 * so floating-point accumulation is bit-reproducible and the
 * determinism contract (trace-digest equality across worker counts)
 * holds.
 *
 * When the configured queue depth is reached, further submissions
 * wait in a FIFO; each completion admits the head of the queue, so
 * admission order is deterministic and independent of rates.  The
 * completion callback fires @c extraLatencySeconds after the last
 * byte (the sampled per-access latency rides on top of the
 * bandwidth term, like the flow model's propagation tail).
 *
 * Machines without a @c disks section never construct a Disk, so
 * existing configurations keep their event sequence — and their
 * trace digests — bit-identical.
 */

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "uqsim/core/engine/simulator.h"
#include "uqsim/hw/irq_service.h"

namespace uqsim {
namespace hw {

/** One shared-bandwidth disk; see file comment. */
class Disk {
  public:
    struct Config {
        std::string name = "disk0";
        /** Read bandwidth in bytes per second; must be > 0. */
        double readBytesPerSecond = 0.0;
        /** Write bandwidth in bytes per second; 0 mirrors the read
         *  bandwidth. */
        double writeBytesPerSecond = 0.0;
        /** Operations serviced concurrently; further submissions
         *  wait in FIFO order.  0 = unbounded. */
        int queueDepth = 0;
    };

    enum class OpKind { Read, Write };

    /** @p owner is the machine name, used for diagnostic labels. */
    Disk(Simulator& sim, const std::string& owner,
         const Config& config);

    Disk(const Disk&) = delete;
    Disk& operator=(const Disk&) = delete;

    const std::string& name() const { return config_.name; }
    /** "machine/disk" label used in reports. */
    const std::string& label() const { return label_; }
    const Config& config() const { return config_; }

    /**
     * Submits a sized operation.  @p done fires through the event
     * queue @p extraLatencySeconds after the operation's last byte;
     * zero-byte operations still occupy a queue-depth slot for the
     * latency window, so admission semantics do not depend on size.
     */
    void submit(OpKind kind, std::uint64_t bytes,
                double extraLatencySeconds, Callback done,
                const char* label);

    // ------------------------------------------------ observability

    std::uint64_t opsSubmitted() const { return submitted_; }
    std::uint64_t readsCompleted() const { return readsCompleted_; }
    std::uint64_t writesCompleted() const
    {
        return writesCompleted_;
    }
    std::uint64_t bytesRead() const { return bytesRead_; }
    std::uint64_t bytesWritten() const { return bytesWritten_; }
    /** Operations that had to wait for a queue-depth slot. */
    std::uint64_t queuedOps() const { return queuedOps_; }
    /** High-water mark of the waiting FIFO. */
    std::uint64_t peakQueueDepth() const { return peakQueued_; }
    /** Number of share recomputations (op starts + finishes). */
    std::uint64_t reshareCount() const { return reshares_; }
    std::size_t inServiceCount() const { return inService_.size(); }
    std::size_t waitingCount() const { return waiting_.size(); }

    /** Wall-clock seconds with at least one operation in service. */
    double busySeconds(SimTime now) const;
    /** busySeconds over the elapsed simulated time. */
    double utilization(SimTime now) const;

    /**
     * Serializes this disk's state into the open DISKS snapshot
     * section: counters, busy integral, and deterministic folds of
     * the in-service map (id order) and waiting FIFO.
     */
    void saveState(snapshot::SnapshotWriter& writer) const;

    /** Validates the live (replayed) state against saveState()'s
     *  fields; @p name prefixes field names in error messages. */
    void loadState(snapshot::SnapshotReader& reader,
                   const std::string& name) const;

  private:
    struct Op {
        OpKind kind = OpKind::Read;
        std::uint64_t sizeBytes = 0;
        double remainingBytes = 0.0;
        double rate = 0.0;
        /** Sampled access latency, paid after the last byte. */
        double tailLatency = 0.0;
        Callback done;
        const char* label = "disk/op";
        EventHandle completion;
    };

    double capacity(OpKind kind) const;
    /** Advances in-service bytes and the busy integral to now.
     *  Call *before* mutating the operation table so the preceding
     *  interval is accounted under the old occupancy. */
    void advance();
    /** Recomputes per-direction shares and reschedules completions
     *  whose rate changed. */
    void allocate();
    void start(std::uint64_t id, Op op);
    void finishOp(std::uint64_t id);

    Simulator& sim_;
    Config config_;
    std::string label_;

    std::map<std::uint64_t, Op> inService_;
    std::deque<std::pair<std::uint64_t, Op>> waiting_;
    std::uint64_t nextOpId_ = 0;
    SimTime lastUpdate_ = 0;
    double busyTicks_ = 0.0;  // integral of (inService > 0) in ticks

    std::uint64_t submitted_ = 0;
    std::uint64_t readsCompleted_ = 0;
    std::uint64_t writesCompleted_ = 0;
    std::uint64_t bytesRead_ = 0;
    std::uint64_t bytesWritten_ = 0;
    std::uint64_t queuedOps_ = 0;
    std::uint64_t peakQueued_ = 0;
    std::uint64_t reshares_ = 0;
};

}  // namespace hw
}  // namespace uqsim

#endif  // UQSIM_HW_DISK_H_
