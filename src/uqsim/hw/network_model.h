#ifndef UQSIM_HW_NETWORK_MODEL_H_
#define UQSIM_HW_NETWORK_MODEL_H_

/**
 * @file
 * Pluggable wire-level network models.
 *
 * The transport façade (hw::Network) owns everything a message hop
 * shares regardless of how the wire behaves: IRQ hand-off on both
 * ends, fault/degradation windows, and counters.  What happens *on*
 * the wire — how long a message is in flight and how concurrent
 * messages interact — is delegated to a NetworkModel:
 *
 *  - ConstantModel: every cross-machine hop pays one constant
 *    latency (the paper's model).  Bit-identical to the historical
 *    hw::Network behaviour: same event labels, same schedule order,
 *    same trace digests.
 *  - FlowModel (flow_model.h): routed links with capacities and
 *    max-min fair bandwidth sharing, for incast/oversubscription
 *    studies at cluster scale.
 *
 * Models simulate latency exclusively through engine events, so the
 * determinism contract (docs/ARCHITECTURE.md) and the explorer's
 * choice points apply to every model.
 */

#include <cstdint>
#include <memory>

#include "uqsim/core/engine/simulator.h"
#include "uqsim/hw/irq_service.h"

namespace uqsim {
namespace hw {

class Machine;

/** Why the wire leg of a message never delivered. */
enum class DropReason {
    /** Lost to a cluster-wide degradation window (façade coin
     *  flip). */
    FaultLoss,
    /** In-flight flow crossed a link that went down (FlowModel
     *  in-flight policy "drop"). */
    LinkDown,
    /** No surviving route — every candidate path has a dead link,
     *  or a partition separates the endpoints. */
    Unreachable,
};

/** Stable lowercase name ("fault_loss", "link_down",
 *  "unreachable"). */
const char* dropReasonName(DropReason reason);

/** Invoked exactly once, instead of the delivery callback, when the
 *  wire leg drops a message. */
using DropCallback = InlineFunction<void(DropReason), 64>;

/** Wire-level latency/ordering model; see file comment. */
class NetworkModel {
  public:
    virtual ~NetworkModel() = default;

    /** Short model name for logs and reports. */
    virtual const char* modelName() const = 0;

    /**
     * Binds the model to the simulator whose event queue carries its
     * wire events.  Called once, by the Network façade constructor,
     * before any traffic.
     */
    virtual void bind(Simulator& sim) = 0;

    /**
     * Notification that @p machine joined the cluster.  Routed
     * models use it to size tables and record names for
     * diagnostics; the default ignores it.
     */
    virtual void onMachineAdded(const Machine& machine);

    /**
     * Simulates the in-flight (wire) leg of a cross-machine message
     * and invokes @p done exactly once, via engine events, when the
     * last byte arrives.  Either endpoint may be nullptr ("outside
     * the cluster", e.g. the load generator).  @p extraLatencySeconds
     * is the fault-window penalty decided by the façade at send
     * time.  @p label names the scheduled event in traces.
     *
     * When the model itself cannot deliver the message — no
     * surviving route, a partition, or an in-flight link failure
     * with the drop policy — @p dropped fires exactly once instead
     * of @p done (or the message silently vanishes when @p dropped
     * is empty).  ConstantModel never drops.
     */
    virtual void transit(const Machine* from, const Machine* to,
                         std::uint32_t bytes,
                         double extraLatencySeconds, Callback done,
                         DropCallback dropped, const char* label) = 0;

    /** Same-machine (kernel loopback) leg; cannot lose messages. */
    virtual void loopback(const Machine* machine, std::uint32_t bytes,
                          double extraLatencySeconds, Callback done,
                          const char* label) = 0;

    /**
     * Serializes model-specific state into the open NETWORK snapshot
     * section (snapshot.h).  The default writes nothing — correct
     * for stateless models like ConstantModel, whose in-flight
     * messages live entirely in the engine's event queue.
     */
    virtual void saveState(snapshot::SnapshotWriter& writer) const;

    /** Validates live model state against saveState()'s fields; the
     *  default reads nothing. */
    virtual void loadState(snapshot::SnapshotReader& reader) const;
};

/**
 * Constant-latency model: one wire latency between distinct
 * machines, a smaller one for loopback, no bandwidth interaction.
 */
class ConstantModel final : public NetworkModel {
  public:
    /** Model parameters; the factory-style replacement for the
     *  deprecated free-floating hw::NetworkConfig (docs/FORMATS.md). */
    struct Config {
        /** One-way wire latency between distinct machines (seconds). */
        double wireLatency = 20e-6;
        /** Latency for same-machine (loopback) messages (seconds). */
        double loopbackLatency = 5e-6;
    };

    ConstantModel();
    explicit ConstantModel(const Config& config);

    /** Factory, for symmetry with FlowModel::make(). */
    static std::unique_ptr<ConstantModel> make();
    static std::unique_ptr<ConstantModel> make(const Config& config);

    const Config& config() const { return config_; }

    const char* modelName() const override { return "constant"; }
    void bind(Simulator& sim) override;
    void transit(const Machine* from, const Machine* to,
                 std::uint32_t bytes, double extraLatencySeconds,
                 Callback done, DropCallback dropped,
                 const char* label) override;
    void loopback(const Machine* machine, std::uint32_t bytes,
                  double extraLatencySeconds, Callback done,
                  const char* label) override;

  private:
    Config config_;
    Simulator* sim_ = nullptr;
};

}  // namespace hw
}  // namespace uqsim

#endif  // UQSIM_HW_NETWORK_MODEL_H_
