#include "uqsim/hw/dvfs.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace uqsim {
namespace hw {

DvfsTable::DvfsTable(std::vector<double> frequencies_ghz)
    : frequencies_(std::move(frequencies_ghz))
{
    if (frequencies_.empty())
        throw std::invalid_argument("DVFS table must not be empty");
    if (!std::is_sorted(frequencies_.begin(), frequencies_.end()))
        throw std::invalid_argument("DVFS table must be ascending");
    if (frequencies_.front() <= 0.0)
        throw std::invalid_argument("DVFS frequencies must be > 0");
}

DvfsTable
DvfsTable::paperDefault()
{
    return DvfsTable({1.2, 1.4, 1.6, 1.8, 2.0, 2.2, 2.4, 2.6});
}

DvfsTable
DvfsTable::linear(double lo, double hi, int steps)
{
    if (steps < 2 || lo <= 0.0 || hi <= lo)
        throw std::invalid_argument(
            "linear DVFS table needs steps >= 2 and 0 < lo < hi");
    std::vector<double> frequencies;
    frequencies.reserve(static_cast<std::size_t>(steps));
    const double delta = (hi - lo) / (steps - 1);
    for (int i = 0; i < steps; ++i)
        frequencies.push_back(lo + delta * i);
    return DvfsTable(std::move(frequencies));
}

double
DvfsTable::frequencyAt(std::size_t index) const
{
    if (index >= frequencies_.size())
        throw std::out_of_range("DVFS step index out of range");
    return frequencies_[index];
}

std::size_t
DvfsTable::closestIndex(double frequency_ghz) const
{
    std::size_t best = 0;
    double best_delta = std::abs(frequencies_[0] - frequency_ghz);
    for (std::size_t i = 1; i < frequencies_.size(); ++i) {
        const double delta = std::abs(frequencies_[i] - frequency_ghz);
        if (delta < best_delta) {
            best_delta = delta;
            best = i;
        }
    }
    return best;
}

DvfsDomain::DvfsDomain(DvfsTable table, std::string name)
    : table_(std::move(table)), name_(std::move(name)),
      index_(table_.stepCount() - 1)
{
}

void
DvfsDomain::setIndex(std::size_t index)
{
    if (index >= table_.stepCount())
        throw std::out_of_range("DVFS step index out of range");
    if (index == index_)
        return;
    index_ = index;
    notify();
}

void
DvfsDomain::setFrequency(double frequency_ghz)
{
    setIndex(table_.closestIndex(frequency_ghz));
}

bool
DvfsDomain::stepUp()
{
    if (atNominal())
        return false;
    setIndex(index_ + 1);
    return true;
}

bool
DvfsDomain::stepDown()
{
    if (atLowest())
        return false;
    setIndex(index_ - 1);
    return true;
}

void
DvfsDomain::onChange(std::function<void(const DvfsDomain&)> observer)
{
    observers_.push_back(std::move(observer));
}

void
DvfsDomain::notify()
{
    for (const auto& observer : observers_)
        observer(*this);
}

}  // namespace hw
}  // namespace uqsim
