#ifndef UQSIM_HW_CLUSTER_H_
#define UQSIM_HW_CLUSTER_H_

/**
 * @file
 * The cluster: all machines plus the network connecting them.  Built
 * programmatically or from the `machines.json` input (Table I):
 *
 *   {
 *     "wire_latency_us": 20,
 *     "loopback_latency_us": 5,
 *     "machines": [
 *       {"name": "server0", "cores": 20, "irq_cores": 4,
 *        "dvfs_ghz": [1.2, 1.4, ..., 2.6],
 *        "irq_per_packet_us": 2.0, "irq_per_byte_ns": 0.0}
 *     ]
 *   }
 */

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "uqsim/core/engine/simulator.h"
#include "uqsim/hw/machine.h"
#include "uqsim/hw/network.h"
#include "uqsim/json/json_value.h"

namespace uqsim {
namespace hw {

/** All machines and the network. */
class Cluster {
  public:
    /** Builds an empty cluster with default network parameters. */
    explicit Cluster(Simulator& sim,
                     const NetworkConfig& network = NetworkConfig{});

    /** Builds a cluster from a parsed machines.json document. */
    static std::unique_ptr<Cluster> fromJson(Simulator& sim,
                                             const json::JsonValue& doc);

    /** Adds one machine; the name must be unique. */
    Machine& addMachine(const MachineConfig& config);

    /** Looks a machine up by name; throws when absent. */
    Machine& machine(const std::string& name);
    const Machine& machine(const std::string& name) const;

    /** True when a machine with @p name exists. */
    bool hasMachine(const std::string& name) const;

    std::size_t machineCount() const { return order_.size(); }

    /** Machines in insertion order. */
    const std::vector<Machine*>& machines() const { return order_; }

    Network& network() { return network_; }
    Simulator& sim() { return sim_; }

  private:
    Simulator& sim_;
    Network network_;
    std::map<std::string, std::unique_ptr<Machine>> machines_;
    std::vector<Machine*> order_;
};

/** Parses one machine object from machines.json. */
MachineConfig machineConfigFromJson(const json::JsonValue& doc);

}  // namespace hw
}  // namespace uqsim

#endif  // UQSIM_HW_CLUSTER_H_
