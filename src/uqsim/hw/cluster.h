#ifndef UQSIM_HW_CLUSTER_H_
#define UQSIM_HW_CLUSTER_H_

/**
 * @file
 * The cluster: all machines plus the network connecting them.  Built
 * programmatically or from the `machines.json` input (Table I).
 *
 * Schema v1 (legacy; loads unchanged via ConstantModel):
 *
 *   {
 *     "wire_latency_us": 20,
 *     "loopback_latency_us": 5,
 *     "machines": [
 *       {"name": "server0", "cores": 20, "irq_cores": 4,
 *        "dvfs_ghz": [1.2, 1.4, ..., 2.6],
 *        "irq_per_packet_us": 2.0, "irq_per_byte_ns": 0.0}
 *     ]
 *   }
 *
 * Schema v2 ("schema_version": 2) adds a "network" section that
 * selects the wire model and, for the flow model, either a
 * generated "topology" section (fat tree) or explicit
 * "links"/"routes"/"machines" sections.  Full schema:
 * docs/FORMATS.md.
 */

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "uqsim/core/engine/simulator.h"
#include "uqsim/hw/machine.h"
#include "uqsim/hw/network.h"
#include "uqsim/json/json_value.h"

namespace uqsim {
namespace hw {

/** All machines and the network. */
class Cluster {
  public:
    /** Builds an empty cluster around @p model; nullptr selects a
     *  default ConstantModel. */
    explicit Cluster(Simulator& sim,
                     std::unique_ptr<NetworkModel> model = nullptr);

    /** Deprecated shim (docs/FORMATS.md): a ConstantModel cluster
     *  from the free-floating latency pair. */
    Cluster(Simulator& sim, const NetworkConfig& network);

    /** Builds a cluster from a parsed machines.json document
     *  (schema v1 or v2, see file comment). */
    static std::unique_ptr<Cluster> fromJson(Simulator& sim,
                                             const json::JsonValue& doc);

    /** Adds one machine; the name must be unique.  Assigns the
     *  machine's net id (insertion order) and notifies the network
     *  model. */
    Machine& addMachine(const MachineConfig& config);

    /** Looks a machine up by name; throws when absent. */
    Machine& machine(const std::string& name);
    const Machine& machine(const std::string& name) const;

    /** True when a machine with @p name exists. */
    bool hasMachine(const std::string& name) const;

    std::size_t machineCount() const { return order_.size(); }

    /** Machines in insertion order. */
    const std::vector<Machine*>& machines() const { return order_; }

    Network& network() { return network_; }
    Simulator& sim() { return sim_; }

  private:
    Simulator& sim_;
    Network network_;
    std::map<std::string, std::unique_ptr<Machine>> machines_;
    std::vector<Machine*> order_;
};

/** Parses one machine object from machines.json; rejects unknown
 *  keys with a did-you-mean suggestion. */
MachineConfig machineConfigFromJson(const json::JsonValue& doc);

}  // namespace hw
}  // namespace uqsim

#endif  // UQSIM_HW_CLUSTER_H_
