#include "uqsim/hw/cluster.h"

#include <set>
#include <stdexcept>
#include <utility>

#include "uqsim/hw/flow_model.h"
#include "uqsim/hw/topology.h"
#include "uqsim/json/validation.h"

namespace uqsim {
namespace hw {

namespace {

using json::JsonError;
using json::JsonValue;

constexpr const char* kContext = "machines.json";

/** The machine fields shared by machines[] entries and the
 *  topology.hosts prototype (everything except the name). */
void
applyMachineFields(const JsonValue& doc, MachineConfig& config)
{
    config.cores = doc.getOr("cores", config.cores);
    config.irqCores = doc.getOr("irq_cores", 0);
    if (const JsonValue* steps = doc.find("dvfs_ghz")) {
        config.dvfsGhz.clear();
        for (const JsonValue& step : steps->asArray())
            config.dvfsGhz.push_back(step.asDouble());
    }
    config.irqPerPacket =
        doc.getOr("irq_per_packet_us", config.irqPerPacket * 1e6) * 1e-6;
    config.irqPerByte =
        doc.getOr("irq_per_byte_ns", config.irqPerByte * 1e9) * 1e-9;
    if (const JsonValue* disks = doc.find("disks")) {
        config.disks.clear();
        for (const JsonValue& disk : disks->asArray()) {
            json::requireKnownKeys(
                disk,
                {"name", "read_mbps", "write_mbps", "queue_depth"},
                "machines.json disks[]");
            Disk::Config spec;
            spec.name = disk.getOr("name", spec.name);
            // MB/s, decimal: 1 MB/s = 1e6 bytes/s.
            spec.readBytesPerSecond =
                disk.at("read_mbps").asDouble() * 1e6;
            spec.writeBytesPerSecond =
                disk.getOr("write_mbps", 0.0) * 1e6;
            spec.queueDepth = disk.getOr("queue_depth", 0);
            config.disks.push_back(std::move(spec));
        }
    }
}

ConstantModel::Config
constantConfigFromJson(const JsonValue& doc)
{
    ConstantModel::Config config;
    config.wireLatency =
        doc.getOr("wire_latency_us", config.wireLatency * 1e6) * 1e-6;
    config.loopbackLatency =
        doc.getOr("loopback_latency_us", config.loopbackLatency * 1e6) *
        1e-6;
    return config;
}

std::unique_ptr<Cluster>
fromJsonV1(Simulator& sim, const JsonValue& doc)
{
    json::requireKnownKeys(doc,
                           {"schema_version", "wire_latency_us",
                            "loopback_latency_us", "machines"},
                           kContext);
    if (sim.logger().enabled(LogLevel::Info)) {
        sim.logger().log(LogLevel::Info, sim.now(), "cluster",
                         "machines.json schema v1: constant network "
                         "model assumed");
    }
    auto cluster = std::make_unique<Cluster>(
        sim, ConstantModel::make(constantConfigFromJson(doc)));
    for (const JsonValue& machine : doc.at("machines").asArray())
        cluster->addMachine(machineConfigFromJson(machine));
    return cluster;
}

FlowModel::Config
flowConfigFromJson(const JsonValue& net)
{
    json::requireKnownKeys(net,
                           {"model", "loopback_latency_us",
                            "external_latency_us", "on_link_down"},
                           "machines.json network (flow model)");
    FlowModel::Config config;
    config.loopbackLatency =
        net.getOr("loopback_latency_us", config.loopbackLatency * 1e6) *
        1e-6;
    config.externalLatency =
        net.getOr("external_latency_us", config.externalLatency * 1e6) *
        1e-6;
    const std::string policy = net.getOr("on_link_down", "drop");
    if (policy == "drop") {
        config.onLinkDown = FlowModel::InFlightPolicy::Drop;
    } else if (policy == "stall") {
        config.onLinkDown = FlowModel::InFlightPolicy::Stall;
    } else {
        throw JsonError(
            "machines.json network: unknown on_link_down \"" + policy +
            "\" (expected \"drop\" or \"stall\")");
    }
    return config;
}

Topology
topologyFromJson(const JsonValue& doc, MachineConfig& prototype)
{
    json::requireKnownKeys(doc,
                           {"type", "arity", "oversubscription",
                            "hosts_per_edge", "host_gbps",
                            "fabric_gbps", "link_latency_us",
                            "backup_routes", "hosts"},
                           "machines.json topology");
    const std::string type = doc.getOr("type", "fat_tree");
    if (type != "fat_tree") {
        throw JsonError("machines.json topology: unknown type \"" +
                        type + "\" (supported: \"fat_tree\")");
    }
    FatTreeConfig config;
    config.arity = doc.getOr("arity", config.arity);
    config.oversubscription =
        doc.getOr("oversubscription", config.oversubscription);
    config.hostsPerEdge =
        doc.getOr("hosts_per_edge", config.hostsPerEdge);
    config.hostGbps = doc.getOr("host_gbps", config.hostGbps);
    config.fabricGbps = doc.getOr("fabric_gbps", config.fabricGbps);
    config.linkLatencySeconds =
        doc.getOr("link_latency_us", config.linkLatencySeconds * 1e6) *
        1e-6;
    config.backupRoutes =
        doc.getOr("backup_routes", config.backupRoutes);
    if (const JsonValue* hosts = doc.find("hosts")) {
        json::requireKnownKeys(*hosts,
                               {"prefix", "cores", "irq_cores",
                                "dvfs_ghz", "irq_per_packet_us",
                                "irq_per_byte_ns", "disks"},
                               "machines.json topology.hosts");
        config.hostPrefix = hosts->getOr("prefix", config.hostPrefix);
        applyMachineFields(*hosts, prototype);
    }
    return TopologyBuilder::fatTree(config);
}

std::unique_ptr<FlowModel>
flowFabricFromJson(const JsonValue& doc,
                   const FlowModel::Config& config)
{
    auto model = FlowModel::make(config);
    for (const JsonValue& link : doc.at("links").asArray()) {
        json::requireKnownKeys(link, {"name", "gbps", "latency_us"},
                               "machines.json links[]");
        FlowModel::LinkSpec spec;
        spec.name = link.at("name").asString();
        spec.bytesPerSecond =
            gbpsToBytesPerSecond(link.at("gbps").asDouble());
        spec.latencySeconds = link.getOr("latency_us", 0.0) * 1e-6;
        model->addLink(spec);
    }
    // Net ids follow the machines[] array order (== the insertion
    // order addMachine will use), so routes can be resolved before
    // the machines exist.
    std::map<std::string, int> ids;
    const auto& machines = doc.at("machines").asArray();
    for (std::size_t i = 0; i < machines.size(); ++i) {
        ids[machines[i].at("name").asString()] =
            static_cast<int>(i);
    }
    auto machineId = [&ids](const std::string& name) {
        auto it = ids.find(name);
        if (it == ids.end()) {
            throw JsonError(
                "machines.json routes[]: unknown machine \"" + name +
                "\"");
        }
        return it->second;
    };
    // A repeated (from, to) pair adds a *backup* candidate in file
    // order; the first entry stays the primary route.
    std::set<std::pair<int, int>> routed;
    auto install = [&model, &routed](int from, int to,
                                     std::vector<int> path) {
        if (routed.insert({from, to}).second)
            model->setRoute(from, to, std::move(path));
        else
            model->addBackupRoute(from, to, std::move(path));
    };
    for (const JsonValue& route : doc.at("routes").asArray()) {
        json::requireKnownKeys(route,
                               {"from", "to", "links", "symmetric"},
                               "machines.json routes[]");
        const int from = machineId(route.at("from").asString());
        const int to = machineId(route.at("to").asString());
        std::vector<int> path;
        for (const JsonValue& name : route.at("links").asArray()) {
            const int id = model->linkId(name.asString());
            if (id < 0) {
                throw JsonError(
                    "machines.json routes[]: unknown link \"" +
                    name.asString() + "\"");
            }
            path.push_back(id);
        }
        if (route.getOr("symmetric", false)) {
            // The same duplex links carry the reverse direction.
            std::vector<int> reversed(path.rbegin(), path.rend());
            install(to, from, std::move(reversed));
        }
        install(from, to, std::move(path));
    }
    return model;
}

std::unique_ptr<Cluster>
fromJsonV2(Simulator& sim, const JsonValue& doc)
{
    json::requireKnownKeys(doc,
                           {"schema_version", "network", "topology",
                            "links", "routes", "machines"},
                           kContext);
    const JsonValue* net = doc.find("network");
    const std::string modelName =
        net ? net->getOr("model", "constant")
            : std::string("constant");
    if (modelName == "constant") {
        if (doc.find("topology") != nullptr ||
            doc.find("links") != nullptr ||
            doc.find("routes") != nullptr) {
            throw JsonError(
                "machines.json: \"topology\", \"links\", and "
                "\"routes\" require \"network\": {\"model\": "
                "\"flow\"}");
        }
        ConstantModel::Config config;
        if (net != nullptr) {
            json::requireKnownKeys(
                *net,
                {"model", "wire_latency_us", "loopback_latency_us"},
                "machines.json network (constant model)");
            config = constantConfigFromJson(*net);
        }
        auto cluster = std::make_unique<Cluster>(
            sim, ConstantModel::make(config));
        for (const JsonValue& machine :
             doc.at("machines").asArray())
            cluster->addMachine(machineConfigFromJson(machine));
        return cluster;
    }
    if (modelName != "flow") {
        throw JsonError("machines.json network: unknown model \"" +
                        modelName +
                        "\" (expected \"constant\" or \"flow\")");
    }
    const FlowModel::Config config = flowConfigFromJson(*net);
    if (const JsonValue* topoDoc = doc.find("topology")) {
        if (doc.find("links") != nullptr ||
            doc.find("routes") != nullptr ||
            doc.find("machines") != nullptr) {
            throw JsonError(
                "machines.json: \"topology\" generates links, "
                "routes, and machines; remove the explicit sections");
        }
        MachineConfig prototype;
        const Topology topo = topologyFromJson(*topoDoc, prototype);
        auto cluster =
            std::make_unique<Cluster>(sim, topo.makeModel(config));
        topo.populateCluster(*cluster, prototype);
        return cluster;
    }
    if (doc.find("links") == nullptr ||
        doc.find("routes") == nullptr ||
        doc.find("machines") == nullptr) {
        throw JsonError(
            "machines.json flow model: need either a \"topology\" "
            "section or explicit \"links\", \"routes\", and "
            "\"machines\"");
    }
    auto cluster = std::make_unique<Cluster>(
        sim, flowFabricFromJson(doc, config));
    for (const JsonValue& machine : doc.at("machines").asArray())
        cluster->addMachine(machineConfigFromJson(machine));
    return cluster;
}

}  // namespace

Cluster::Cluster(Simulator& sim, std::unique_ptr<NetworkModel> model)
    : sim_(sim), network_(sim, std::move(model))
{
}

Cluster::Cluster(Simulator& sim, const NetworkConfig& network)
    : Cluster(sim, ConstantModel::make(network))
{
}

MachineConfig
machineConfigFromJson(const json::JsonValue& doc)
{
    json::requireKnownKeys(doc,
                           {"name", "cores", "irq_cores", "dvfs_ghz",
                            "irq_per_packet_us", "irq_per_byte_ns",
                            "disks"},
                           "machines.json machines[]");
    MachineConfig config;
    config.name = doc.at("name").asString();
    applyMachineFields(doc, config);
    return config;
}

std::unique_ptr<Cluster>
Cluster::fromJson(Simulator& sim, const json::JsonValue& doc)
{
    const int version = doc.getOr("schema_version", 1);
    if (version == 1)
        return fromJsonV1(sim, doc);
    if (version == 2)
        return fromJsonV2(sim, doc);
    throw json::JsonError("machines.json: unsupported schema_version " +
                          std::to_string(version) +
                          " (supported: 1, 2)");
}

Machine&
Cluster::addMachine(const MachineConfig& config)
{
    if (machines_.count(config.name) != 0) {
        throw std::invalid_argument("duplicate machine name: " +
                                    config.name);
    }
    auto machine = std::make_unique<Machine>(sim_, config);
    machine->setNetId(static_cast<int>(order_.size()));
    Machine& ref = *machine;
    machines_.emplace(config.name, std::move(machine));
    order_.push_back(&ref);
    network_.model().onMachineAdded(ref);
    return ref;
}

Machine&
Cluster::machine(const std::string& name)
{
    auto it = machines_.find(name);
    if (it == machines_.end())
        throw std::out_of_range("unknown machine: " + name);
    return *it->second;
}

const Machine&
Cluster::machine(const std::string& name) const
{
    auto it = machines_.find(name);
    if (it == machines_.end())
        throw std::out_of_range("unknown machine: " + name);
    return *it->second;
}

bool
Cluster::hasMachine(const std::string& name) const
{
    return machines_.count(name) != 0;
}

}  // namespace hw
}  // namespace uqsim
