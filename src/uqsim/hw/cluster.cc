#include "uqsim/hw/cluster.h"

#include <stdexcept>

namespace uqsim {
namespace hw {

Cluster::Cluster(Simulator& sim, const NetworkConfig& network)
    : sim_(sim), network_(sim, network)
{
}

MachineConfig
machineConfigFromJson(const json::JsonValue& doc)
{
    MachineConfig config;
    config.name = doc.at("name").asString();
    config.cores = doc.getOr("cores", config.cores);
    config.irqCores = doc.getOr("irq_cores", 0);
    if (const json::JsonValue* steps = doc.find("dvfs_ghz")) {
        config.dvfsGhz.clear();
        for (const json::JsonValue& step : steps->asArray())
            config.dvfsGhz.push_back(step.asDouble());
    }
    config.irqPerPacket =
        doc.getOr("irq_per_packet_us", config.irqPerPacket * 1e6) * 1e-6;
    config.irqPerByte =
        doc.getOr("irq_per_byte_ns", config.irqPerByte * 1e9) * 1e-9;
    return config;
}

std::unique_ptr<Cluster>
Cluster::fromJson(Simulator& sim, const json::JsonValue& doc)
{
    NetworkConfig network;
    network.wireLatency =
        doc.getOr("wire_latency_us", network.wireLatency * 1e6) * 1e-6;
    network.loopbackLatency =
        doc.getOr("loopback_latency_us", network.loopbackLatency * 1e6) *
        1e-6;
    auto cluster = std::make_unique<Cluster>(sim, network);
    for (const json::JsonValue& machine : doc.at("machines").asArray())
        cluster->addMachine(machineConfigFromJson(machine));
    return cluster;
}

Machine&
Cluster::addMachine(const MachineConfig& config)
{
    if (machines_.count(config.name) != 0) {
        throw std::invalid_argument("duplicate machine name: " +
                                    config.name);
    }
    auto machine = std::make_unique<Machine>(sim_, config);
    Machine& ref = *machine;
    machines_.emplace(config.name, std::move(machine));
    order_.push_back(&ref);
    return ref;
}

Machine&
Cluster::machine(const std::string& name)
{
    auto it = machines_.find(name);
    if (it == machines_.end())
        throw std::out_of_range("unknown machine: " + name);
    return *it->second;
}

const Machine&
Cluster::machine(const std::string& name) const
{
    auto it = machines_.find(name);
    if (it == machines_.end())
        throw std::out_of_range("unknown machine: " + name);
    return *it->second;
}

bool
Cluster::hasMachine(const std::string& name) const
{
    return machines_.count(name) != 0;
}

}  // namespace hw
}  // namespace uqsim
