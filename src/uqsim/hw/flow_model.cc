#include "uqsim/hw/flow_model.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "uqsim/core/engine/choice.h"
#include "uqsim/hw/machine.h"
#include "uqsim/snapshot/snapshot.h"

namespace uqsim {
namespace hw {

std::vector<double>
maxMinFairShares(const std::vector<double>& capacities,
                 const std::vector<std::vector<int>>& paths)
{
    std::vector<double> rates(paths.size(), 0.0);
    std::vector<double> capLeft = capacities;
    std::vector<int> flowsOn(capacities.size(), 0);
    std::vector<bool> fixed(paths.size(), false);
    std::size_t unfixed = 0;
    for (std::size_t f = 0; f < paths.size(); ++f) {
        if (paths[f].empty()) {
            fixed[f] = true;  // consumes no link; rate stays 0
            continue;
        }
        ++unfixed;
        for (int l : paths[f])
            ++flowsOn[static_cast<std::size_t>(l)];
    }
    // Progressive filling: the tightest link's equal split is a rate
    // no crossing flow can exceed, so those flows are fixed at it;
    // remove them and repeat.  Ties break toward the lowest link
    // index, keeping the arithmetic order deterministic.
    while (unfixed > 0) {
        double best = std::numeric_limits<double>::infinity();
        std::size_t bestLink = capacities.size();
        for (std::size_t l = 0; l < capacities.size(); ++l) {
            if (flowsOn[l] <= 0)
                continue;
            const double share = capLeft[l] / flowsOn[l];
            if (share < best) {
                best = share;
                bestLink = l;
            }
        }
        if (bestLink == capacities.size())
            break;
        for (std::size_t f = 0; f < paths.size(); ++f) {
            if (fixed[f])
                continue;
            bool crosses = false;
            for (int l : paths[f]) {
                if (static_cast<std::size_t>(l) == bestLink) {
                    crosses = true;
                    break;
                }
            }
            if (!crosses)
                continue;
            fixed[f] = true;
            --unfixed;
            rates[f] = best;
            for (int l : paths[f]) {
                const auto li = static_cast<std::size_t>(l);
                capLeft[li] -= best;
                if (capLeft[li] < 0.0)
                    capLeft[li] = 0.0;
                --flowsOn[li];
            }
        }
    }
    return rates;
}

FlowModel::FlowModel() : FlowModel(Config{})
{
}

FlowModel::FlowModel(const Config& config) : config_(config)
{
}

std::unique_ptr<FlowModel>
FlowModel::make()
{
    return make(Config{});
}

std::unique_ptr<FlowModel>
FlowModel::make(const Config& config)
{
    return std::make_unique<FlowModel>(config);
}

int
FlowModel::addLink(const LinkSpec& spec)
{
    if (spec.bytesPerSecond <= 0.0) {
        throw std::invalid_argument("flow model link \"" + spec.name +
                                    "\": capacity must be > 0");
    }
    if (linkIds_.count(spec.name) != 0) {
        throw std::invalid_argument("duplicate flow model link: " +
                                    spec.name);
    }
    const int id = static_cast<int>(links_.size());
    links_.push_back(spec);
    linkStates_.emplace_back();
    linkIds_.emplace(spec.name, id);
    return id;
}

int
FlowModel::linkId(const std::string& name) const
{
    auto it = linkIds_.find(name);
    return it == linkIds_.end() ? -1 : it->second;
}

void
FlowModel::setRoute(int fromId, int toId, std::vector<int> path)
{
    for (int l : path) {
        if (l < 0 || static_cast<std::size_t>(l) >= links_.size())
            throw std::out_of_range("flow model route uses unknown "
                                    "link id " +
                                    std::to_string(l));
    }
    auto& candidates = routes_[{fromId, toId}];
    candidates.clear();
    candidates.push_back(std::move(path));
}

void
FlowModel::addBackupRoute(int fromId, int toId, std::vector<int> path)
{
    auto it = routes_.find({fromId, toId});
    if (it == routes_.end()) {
        throw std::logic_error(
            "flow model: backup route requires a primary route " +
            std::to_string(fromId) + " -> " + std::to_string(toId));
    }
    for (int l : path) {
        if (l < 0 || static_cast<std::size_t>(l) >= links_.size())
            throw std::out_of_range("flow model route uses unknown "
                                    "link id " +
                                    std::to_string(l));
    }
    it->second.push_back(std::move(path));
}

bool
FlowModel::hasRoute(int fromId, int toId) const
{
    return routes_.count({fromId, toId}) != 0;
}

const std::vector<int>&
FlowModel::route(int fromId, int toId) const
{
    return routeCandidates(fromId, toId).front();
}

const std::vector<std::vector<int>>&
FlowModel::routeCandidates(int fromId, int toId) const
{
    auto it = routes_.find({fromId, toId});
    if (it == routes_.end()) {
        throw std::out_of_range(
            "flow model: no route " + std::to_string(fromId) + " -> " +
            std::to_string(toId));
    }
    return it->second;
}

void
FlowModel::registerSwitch(const std::string& name,
                          std::vector<int> linkIds)
{
    if (switches_.count(name) != 0) {
        throw std::invalid_argument("duplicate flow model switch: " +
                                    name);
    }
    for (int l : linkIds) {
        if (l < 0 || static_cast<std::size_t>(l) >= links_.size())
            throw std::out_of_range("flow model switch \"" + name +
                                    "\" uses unknown link id " +
                                    std::to_string(l));
    }
    switches_.emplace(name, std::move(linkIds));
    switchNames_.push_back(name);
}

bool
FlowModel::hasSwitch(const std::string& name) const
{
    return switches_.count(name) != 0;
}

const std::vector<int>&
FlowModel::switchLinks(const std::string& name) const
{
    return switches_.at(name);
}

void
FlowModel::setLinkDown(int id)
{
    LinkState& state = linkStates_.at(static_cast<std::size_t>(id));
    if (++state.downCount > 1)
        return;  // nested outage (e.g. switch_down over link_down)
    ++downLinkCount_;
    failoverPicks_.clear();  // new outage epoch: re-decide failovers
    state.downSince = sim_ != nullptr ? sim_->now() : 0;
    if (config_.onLinkDown == InFlightPolicy::Drop) {
        // Collect first: dropMessage schedules events and the drop
        // callbacks must not observe a half-mutated flow table.
        std::vector<std::uint64_t> doomed;
        for (const auto& [fid, flow] : flows_) {
            for (int l : *flow.path) {
                if (l == id) {
                    doomed.push_back(fid);
                    break;
                }
            }
        }
        for (std::uint64_t fid : doomed) {
            auto it = flows_.find(fid);
            Flow flow = std::move(it->second);
            flows_.erase(it);
            flow.completion.cancel();
            ++state.drops;
            ++linkDrops_;
            dropMessage(std::move(flow.dropped), DropReason::LinkDown,
                        "net/link-drop");
        }
    }
    // Stall policy needs no flow surgery: the dead link's capacity is
    // zero, so progressive filling pins every crossing flow at rate 0
    // and reshare() leaves them without a completion event.
    reshare();
}

void
FlowModel::setLinkUp(int id)
{
    LinkState& state = linkStates_.at(static_cast<std::size_t>(id));
    if (state.downCount <= 0) {
        throw std::logic_error("flow model: setLinkUp on a link that "
                               "is not down: " +
                               links_[static_cast<std::size_t>(id)]
                                   .name);
    }
    if (--state.downCount > 0)
        return;
    --downLinkCount_;
    failoverPicks_.clear();  // repaired: routes revert to primaries
    if (sim_ != nullptr) {
        state.downSecondsTotal +=
            simTimeToSeconds(sim_->now() - state.downSince);
    }
    reshare();
}

void
FlowModel::setLinkDegradation(int id, double capacityFactor,
                              double latencyFactor)
{
    if (!(capacityFactor > 0.0) || capacityFactor > 1.0) {
        throw std::invalid_argument(
            "flow model: capacity factor must be in (0, 1]");
    }
    if (latencyFactor < 1.0) {
        throw std::invalid_argument(
            "flow model: latency factor must be >= 1");
    }
    LinkState& state = linkStates_.at(static_cast<std::size_t>(id));
    state.capacityFactor = capacityFactor;
    state.latencyFactor = latencyFactor;
    reshare();
}

void
FlowModel::clearLinkDegradation(int id)
{
    LinkState& state = linkStates_.at(static_cast<std::size_t>(id));
    state.capacityFactor = 1.0;
    state.latencyFactor = 1.0;
    reshare();
}

bool
FlowModel::linkUp(int id) const
{
    return linkStates_.at(static_cast<std::size_t>(id)).downCount == 0;
}

void
FlowModel::setPartition(const std::vector<std::vector<int>>& groups)
{
    partitionOf_.assign(machineNames_.size(), -1);
    for (std::size_t g = 0; g < groups.size(); ++g) {
        for (int id : groups[g]) {
            const auto idx = static_cast<std::size_t>(id);
            if (id < 0 || idx >= partitionOf_.size()) {
                throw std::out_of_range(
                    "flow model: partition group references unknown "
                    "machine net id " +
                    std::to_string(id));
            }
            partitionOf_[idx] = static_cast<int>(g);
        }
    }
    partitionActive_ = true;
}

void
FlowModel::clearPartition()
{
    partitionActive_ = false;
    partitionOf_.clear();
}

bool
FlowModel::crossesPartition(int fromId, int toId) const
{
    const auto fi = static_cast<std::size_t>(fromId);
    const auto ti = static_cast<std::size_t>(toId);
    if (fi >= partitionOf_.size() || ti >= partitionOf_.size())
        return false;
    const int fromGroup = partitionOf_[fi];
    const int toGroup = partitionOf_[ti];
    return fromGroup >= 0 && toGroup >= 0 && fromGroup != toGroup;
}

bool
FlowModel::reachable(int fromId, int toId) const
{
    if (partitionActive_ && crossesPartition(fromId, toId))
        return false;
    auto it = routes_.find({fromId, toId});
    if (it == routes_.end())
        return false;
    if (downLinkCount_ == 0)
        return true;
    for (const auto& candidate : it->second) {
        if (pathUp(candidate))
            return true;
    }
    return false;
}

void
FlowModel::bind(Simulator& sim)
{
    sim_ = &sim;
    lastUpdate_ = sim.now();
}

void
FlowModel::onMachineAdded(const Machine& machine)
{
    const auto id = static_cast<std::size_t>(machine.netId());
    if (machineNames_.size() <= id)
        machineNames_.resize(id + 1);
    machineNames_[id] = machine.name();
}

const std::vector<std::vector<int>>&
FlowModel::routeOrThrow(const Machine& from, const Machine& to) const
{
    auto it = routes_.find({from.netId(), to.netId()});
    if (it == routes_.end()) {
        throw std::logic_error("flow network model: no route from \"" +
                               from.name() + "\" to \"" + to.name() +
                               "\"");
    }
    return it->second;
}

bool
FlowModel::pathUp(const std::vector<int>& path) const
{
    for (int l : path) {
        if (linkStates_[static_cast<std::size_t>(l)].downCount > 0)
            return false;
    }
    return true;
}

const std::vector<int>*
FlowModel::pickSurvivingPath(
    const std::vector<std::vector<int>>& candidates)
{
    survivorScratch_.clear();
    for (const auto& candidate : candidates) {
        if (pathUp(candidate))
            survivorScratch_.push_back(&candidate);
    }
    if (survivorScratch_.empty())
        return nullptr;
    std::size_t pick = 0;
    Chooser* chooser = sim_->chooser();
    if (survivorScratch_.size() >= 2 && chooser != nullptr) {
        const int cap = chooser->maxChoices(ChoiceKind::RouteFailover);
        const int options = static_cast<int>(
            std::min<std::size_t>(survivorScratch_.size(),
                                  static_cast<std::size_t>(
                                      cap > 0 ? cap : 0)));
        if (options >= 2) {
            pick = static_cast<std::size_t>(
                chooser->choose(ChoiceKind::RouteFailover, options,
                                "net/failover"));
        }
    }
    return survivorScratch_[pick];
}

double
FlowModel::pathLatencySeconds(const std::vector<int>& path) const
{
    double latency = 0.0;
    for (int l : path) {
        const auto li = static_cast<std::size_t>(l);
        // latencyFactor is exactly 1.0 outside degradation windows,
        // and x * 1.0 is IEEE-exact, so fault-free digests are
        // untouched by this multiply.
        latency += links_[li].latencySeconds *
                   linkStates_[li].latencyFactor;
    }
    return latency;
}

void
FlowModel::dropMessage(DropCallback dropped, DropReason reason,
                       const char* label)
{
    if (reason == DropReason::Unreachable)
        ++unreachable_;
    if (!dropped)
        return;  // fire-and-forget send; nothing to notify
    // Deliver the verdict through the event queue so callers never
    // see their callback re-entered from inside transit().
    sim_->scheduleAfter(
        0,
        [cb = std::move(dropped), reason]() mutable { cb(reason); },
        label);
}

void
FlowModel::transit(const Machine* from, const Machine* to,
                   std::uint32_t bytes, double extraLatencySeconds,
                   Callback done, DropCallback dropped,
                   const char* label)
{
    if (from == nullptr || to == nullptr) {
        // External legs (load generator) pay a constant latency and
        // never contend for fabric bandwidth.
        sim_->scheduleAfter(
            secondsToSimTime(config_.externalLatency +
                             extraLatencySeconds),
            std::move(done), label);
        return;
    }
    if (partitionActive_ &&
        crossesPartition(from->netId(), to->netId())) {
        dropMessage(std::move(dropped), DropReason::Unreachable,
                    "net/unreachable");
        return;
    }
    const std::vector<std::vector<int>>& candidates =
        routeOrThrow(*from, *to);
    const std::vector<int>* path = &candidates.front();
    if (downLinkCount_ > 0 && !pathUp(*path)) {
        const std::pair<int, int> key{from->netId(), to->netId()};
        const auto cached = failoverPicks_.find(key);
        if (cached != failoverPicks_.end()) {
            path = cached->second;
        } else {
            path = pickSurvivingPath(candidates);
            failoverPicks_.emplace(key, path);
        }
        if (path == nullptr) {
            dropMessage(std::move(dropped), DropReason::Unreachable,
                        "net/unreachable");
            return;
        }
        ++failovers_;
    }
    const double latency =
        extraLatencySeconds + pathLatencySeconds(*path);
    if (bytes == 0 || path->empty()) {
        sim_->scheduleAfter(secondsToSimTime(latency), std::move(done),
                            label);
        return;
    }
    const std::uint64_t id = nextFlowId_++;
    Flow& flow = flows_[id];
    flow.path = path;
    flow.remainingBytes = static_cast<double>(bytes);
    flow.tailLatency = latency;
    flow.done = std::move(done);
    flow.dropped = std::move(dropped);
    flow.label = label;
    ++started_;
    reshare();
}

void
FlowModel::loopback(const Machine* machine, std::uint32_t bytes,
                    double extraLatencySeconds, Callback done,
                    const char* label)
{
    (void)machine;
    (void)bytes;
    sim_->scheduleAfter(
        secondsToSimTime(config_.loopbackLatency + extraLatencySeconds),
        std::move(done), label);
}

void
FlowModel::reshare()
{
    const SimTime now = sim_->now();
    if (now > lastUpdate_) {
        const double dt = simTimeToSeconds(now - lastUpdate_);
        for (auto& [id, flow] : flows_) {
            flow.remainingBytes -= flow.rate * dt;
            if (flow.remainingBytes < 0.0)
                flow.remainingBytes = 0.0;
        }
    }
    lastUpdate_ = now;
    ++reshares_;

    // Progressive filling over the active flows, in flow-id order.
    // A downed link contributes zero capacity (its flows stall at
    // rate 0 under the Stall policy; under Drop they were already
    // removed); a degraded link its capacity scaled down.  Both
    // factors are exactly 1.0 / count 0 outside fault windows, so the
    // fault-free arithmetic is bit-identical.
    capLeft_.resize(links_.size());
    flowsOn_.assign(links_.size(), 0);
    for (std::size_t l = 0; l < links_.size(); ++l) {
        const LinkState& state = linkStates_[l];
        capLeft_[l] = state.downCount > 0
                          ? 0.0
                          : links_[l].bytesPerSecond *
                                state.capacityFactor;
    }
    active_.clear();
    for (auto& [id, flow] : flows_) {
        active_.push_back(&flow);
        for (int l : *flow.path)
            ++flowsOn_[static_cast<std::size_t>(l)];
    }
    std::vector<double> oldRates;
    oldRates.reserve(active_.size());
    for (Flow* flow : active_) {
        oldRates.push_back(flow->rate);
        flow->rate = -1.0;
    }
    std::size_t unfixed = active_.size();
    while (unfixed > 0) {
        double best = std::numeric_limits<double>::infinity();
        std::size_t bestLink = links_.size();
        for (std::size_t l = 0; l < links_.size(); ++l) {
            if (flowsOn_[l] <= 0)
                continue;
            const double share = capLeft_[l] / flowsOn_[l];
            if (share < best) {
                best = share;
                bestLink = l;
            }
        }
        if (bestLink == links_.size())
            break;
        for (Flow* flow : active_) {
            if (flow->rate >= 0.0)
                continue;
            bool crosses = false;
            for (int l : *flow->path) {
                if (static_cast<std::size_t>(l) == bestLink) {
                    crosses = true;
                    break;
                }
            }
            if (!crosses)
                continue;
            flow->rate = best;
            --unfixed;
            for (int l : *flow->path) {
                const auto li = static_cast<std::size_t>(l);
                capLeft_[li] -= best;
                if (capLeft_[li] < 0.0)
                    capLeft_[li] = 0.0;
                --flowsOn_[li];
            }
        }
    }
    // Flows left unfixed cross only zero-capacity (downed) links:
    // pin them at rate 0 so they stall explicitly.
    if (unfixed > 0) {
        for (Flow* flow : active_) {
            if (flow->rate < 0.0)
                flow->rate = 0.0;
        }
    }

    // Reschedule completions.  A flow whose rate did not change
    // keeps its pending event: the remaining bytes shrank exactly in
    // step with the old schedule, so the old finish time still
    // holds (and skipping the reschedule avoids rounding drift).
    std::size_t index = 0;
    for (auto it = flows_.begin(); it != flows_.end(); ++it) {
        Flow& flow = it->second;
        const double oldRate = oldRates[index++];
        if (flow.rate == oldRate && flow.completion.pending())
            continue;
        flow.completion.cancel();
        if (flow.rate <= 0.0 && flow.remainingBytes > 0.0) {
            // Stalled across a dead link: no completion event until a
            // repair reshare gives it a positive rate again.
            continue;
        }
        const SimTime remaining =
            flow.rate > 0.0
                ? secondsToSimTime(flow.remainingBytes / flow.rate)
                : 0;
        const std::uint64_t fid = it->first;
        flow.completion = sim_->scheduleAfter(
            remaining, [this, fid]() { finishFlow(fid); }, "net/flow");
    }
}

void
FlowModel::finishFlow(std::uint64_t id)
{
    auto it = flows_.find(id);
    if (it == flows_.end())
        return;
    Flow flow = std::move(it->second);
    flows_.erase(it);
    ++finished_;
    // Release the flow's share first, then pay the propagation tail:
    // the remaining flows speed up the moment the last byte leaves.
    reshare();
    sim_->scheduleAfter(secondsToSimTime(flow.tailLatency),
                        std::move(flow.done), flow.label);
}

double
FlowModel::linkDownSeconds(int id) const
{
    const LinkState& state =
        linkStates_.at(static_cast<std::size_t>(id));
    double total = state.downSecondsTotal;
    if (state.downCount > 0 && sim_ != nullptr)
        total += simTimeToSeconds(sim_->now() - state.downSince);
    return total;
}

std::vector<FlowModel::LinkFaultSummary>
FlowModel::linkFaultSummaries() const
{
    std::vector<LinkFaultSummary> out;
    for (std::size_t l = 0; l < links_.size(); ++l) {
        const double down = linkDownSeconds(static_cast<int>(l));
        const std::uint64_t drops = linkStates_[l].drops;
        if (down <= 0.0 && drops == 0)
            continue;
        LinkFaultSummary summary;
        summary.name = links_[l].name;
        summary.downSeconds = down;
        summary.drops = drops;
        out.push_back(std::move(summary));
    }
    return out;
}

std::vector<double>
FlowModel::activeFlowRates() const
{
    std::vector<double> rates;
    rates.reserve(flows_.size());
    for (const auto& [id, flow] : flows_)
        rates.push_back(flow.rate);
    return rates;
}

namespace {

/** Deterministic fold of a FlowModel's dynamic state: active flows
 *  in id order, per-link fault state, partition map, and sticky
 *  failover picks. */
template <typename FlowMap, typename LinkStates, typename Partition,
          typename Picks>
std::uint64_t
flowStateDigest(const FlowMap& flows, const LinkStates& linkStates,
                const Partition& partitionOf, const Picks& picks)
{
    snapshot::Digest digest;
    for (const auto& [id, flow] : flows) {
        digest.u64(id);
        digest.f64(flow.remainingBytes);
        digest.f64(flow.rate);
        digest.f64(flow.tailLatency);
        digest.str(flow.label);
        digest.boolean(flow.completion.pending());
    }
    for (const auto& state : linkStates) {
        digest.i64(state.downCount);
        digest.f64(state.capacityFactor);
        digest.f64(state.latencyFactor);
        digest.i64(state.downSince);
        digest.f64(state.downSecondsTotal);
        digest.u64(state.drops);
    }
    for (const int group : partitionOf)
        digest.i64(group);
    for (const auto& [pair, path] : picks) {
        digest.i64(pair.first);
        digest.i64(pair.second);
        // The pick is a pointer into route storage; digest the
        // picked path's content (or a none marker for unreachable).
        digest.boolean(path != nullptr);
        if (path != nullptr) {
            for (const int link : *path)
                digest.i64(link);
        }
    }
    return digest.value();
}

}  // namespace

void
FlowModel::saveState(snapshot::SnapshotWriter& writer) const
{
    writer.putU64(started_);
    writer.putU64(finished_);
    writer.putU64(reshares_);
    writer.putU64(failovers_);
    writer.putU64(unreachable_);
    writer.putU64(linkDrops_);
    writer.putU64(nextFlowId_);
    writer.putI64(lastUpdate_);
    writer.putI64(downLinkCount_);
    writer.putBool(partitionActive_);
    writer.putU64(flows_.size());
    writer.putU64(failoverPicks_.size());
    writer.putU64(flowStateDigest(flows_, linkStates_, partitionOf_,
                                  failoverPicks_));
}

void
FlowModel::loadState(snapshot::SnapshotReader& reader) const
{
    reader.requireU64("flow.started", started_);
    reader.requireU64("flow.finished", finished_);
    reader.requireU64("flow.reshares", reshares_);
    reader.requireU64("flow.failovers", failovers_);
    reader.requireU64("flow.unreachable", unreachable_);
    reader.requireU64("flow.link_drops", linkDrops_);
    reader.requireU64("flow.next_flow_id", nextFlowId_);
    reader.requireI64("flow.last_update", lastUpdate_);
    reader.requireI64("flow.down_links", downLinkCount_);
    reader.requireBool("flow.partition_active", partitionActive_);
    reader.requireU64("flow.active_flows", flows_.size());
    reader.requireU64("flow.failover_picks", failoverPicks_.size());
    reader.requireU64("flow.state_digest",
                      flowStateDigest(flows_, linkStates_,
                                      partitionOf_, failoverPicks_));
}

}  // namespace hw
}  // namespace uqsim
