#include "uqsim/hw/flow_model.h"

#include <limits>
#include <stdexcept>
#include <utility>

#include "uqsim/hw/machine.h"

namespace uqsim {
namespace hw {

std::vector<double>
maxMinFairShares(const std::vector<double>& capacities,
                 const std::vector<std::vector<int>>& paths)
{
    std::vector<double> rates(paths.size(), 0.0);
    std::vector<double> capLeft = capacities;
    std::vector<int> flowsOn(capacities.size(), 0);
    std::vector<bool> fixed(paths.size(), false);
    std::size_t unfixed = 0;
    for (std::size_t f = 0; f < paths.size(); ++f) {
        if (paths[f].empty()) {
            fixed[f] = true;  // consumes no link; rate stays 0
            continue;
        }
        ++unfixed;
        for (int l : paths[f])
            ++flowsOn[static_cast<std::size_t>(l)];
    }
    // Progressive filling: the tightest link's equal split is a rate
    // no crossing flow can exceed, so those flows are fixed at it;
    // remove them and repeat.  Ties break toward the lowest link
    // index, keeping the arithmetic order deterministic.
    while (unfixed > 0) {
        double best = std::numeric_limits<double>::infinity();
        std::size_t bestLink = capacities.size();
        for (std::size_t l = 0; l < capacities.size(); ++l) {
            if (flowsOn[l] <= 0)
                continue;
            const double share = capLeft[l] / flowsOn[l];
            if (share < best) {
                best = share;
                bestLink = l;
            }
        }
        if (bestLink == capacities.size())
            break;
        for (std::size_t f = 0; f < paths.size(); ++f) {
            if (fixed[f])
                continue;
            bool crosses = false;
            for (int l : paths[f]) {
                if (static_cast<std::size_t>(l) == bestLink) {
                    crosses = true;
                    break;
                }
            }
            if (!crosses)
                continue;
            fixed[f] = true;
            --unfixed;
            rates[f] = best;
            for (int l : paths[f]) {
                const auto li = static_cast<std::size_t>(l);
                capLeft[li] -= best;
                if (capLeft[li] < 0.0)
                    capLeft[li] = 0.0;
                --flowsOn[li];
            }
        }
    }
    return rates;
}

FlowModel::FlowModel() : FlowModel(Config{})
{
}

FlowModel::FlowModel(const Config& config) : config_(config)
{
}

std::unique_ptr<FlowModel>
FlowModel::make()
{
    return make(Config{});
}

std::unique_ptr<FlowModel>
FlowModel::make(const Config& config)
{
    return std::make_unique<FlowModel>(config);
}

int
FlowModel::addLink(const LinkSpec& spec)
{
    if (spec.bytesPerSecond <= 0.0) {
        throw std::invalid_argument("flow model link \"" + spec.name +
                                    "\": capacity must be > 0");
    }
    if (linkIds_.count(spec.name) != 0) {
        throw std::invalid_argument("duplicate flow model link: " +
                                    spec.name);
    }
    const int id = static_cast<int>(links_.size());
    links_.push_back(spec);
    linkIds_.emplace(spec.name, id);
    return id;
}

int
FlowModel::linkId(const std::string& name) const
{
    auto it = linkIds_.find(name);
    return it == linkIds_.end() ? -1 : it->second;
}

void
FlowModel::setRoute(int fromId, int toId, std::vector<int> path)
{
    for (int l : path) {
        if (l < 0 || static_cast<std::size_t>(l) >= links_.size())
            throw std::out_of_range("flow model route uses unknown "
                                    "link id " +
                                    std::to_string(l));
    }
    routes_[{fromId, toId}] = std::move(path);
}

bool
FlowModel::hasRoute(int fromId, int toId) const
{
    return routes_.count({fromId, toId}) != 0;
}

const std::vector<int>&
FlowModel::route(int fromId, int toId) const
{
    auto it = routes_.find({fromId, toId});
    if (it == routes_.end()) {
        throw std::out_of_range(
            "flow model: no route " + std::to_string(fromId) + " -> " +
            std::to_string(toId));
    }
    return it->second;
}

void
FlowModel::bind(Simulator& sim)
{
    sim_ = &sim;
    lastUpdate_ = sim.now();
}

void
FlowModel::onMachineAdded(const Machine& machine)
{
    const auto id = static_cast<std::size_t>(machine.netId());
    if (machineNames_.size() <= id)
        machineNames_.resize(id + 1);
    machineNames_[id] = machine.name();
}

const std::vector<int>&
FlowModel::routeOrThrow(const Machine& from, const Machine& to) const
{
    auto it = routes_.find({from.netId(), to.netId()});
    if (it == routes_.end()) {
        throw std::logic_error("flow network model: no route from \"" +
                               from.name() + "\" to \"" + to.name() +
                               "\"");
    }
    return it->second;
}

void
FlowModel::transit(const Machine* from, const Machine* to,
                   std::uint32_t bytes, double extraLatencySeconds,
                   Callback done, const char* label)
{
    if (from == nullptr || to == nullptr) {
        // External legs (load generator) pay a constant latency and
        // never contend for fabric bandwidth.
        sim_->scheduleAfter(
            secondsToSimTime(config_.externalLatency +
                             extraLatencySeconds),
            std::move(done), label);
        return;
    }
    const std::vector<int>& path = routeOrThrow(*from, *to);
    double latency = extraLatencySeconds;
    for (int l : path)
        latency += links_[static_cast<std::size_t>(l)].latencySeconds;
    if (bytes == 0 || path.empty()) {
        sim_->scheduleAfter(secondsToSimTime(latency), std::move(done),
                            label);
        return;
    }
    const std::uint64_t id = nextFlowId_++;
    Flow& flow = flows_[id];
    flow.path = &path;
    flow.remainingBytes = static_cast<double>(bytes);
    flow.tailLatency = latency;
    flow.done = std::move(done);
    flow.label = label;
    ++started_;
    reshare();
}

void
FlowModel::loopback(const Machine* machine, std::uint32_t bytes,
                    double extraLatencySeconds, Callback done,
                    const char* label)
{
    (void)machine;
    (void)bytes;
    sim_->scheduleAfter(
        secondsToSimTime(config_.loopbackLatency + extraLatencySeconds),
        std::move(done), label);
}

void
FlowModel::reshare()
{
    const SimTime now = sim_->now();
    if (now > lastUpdate_) {
        const double dt = simTimeToSeconds(now - lastUpdate_);
        for (auto& [id, flow] : flows_) {
            flow.remainingBytes -= flow.rate * dt;
            if (flow.remainingBytes < 0.0)
                flow.remainingBytes = 0.0;
        }
    }
    lastUpdate_ = now;
    ++reshares_;

    // Progressive filling over the active flows, in flow-id order.
    capLeft_.resize(links_.size());
    flowsOn_.assign(links_.size(), 0);
    for (std::size_t l = 0; l < links_.size(); ++l)
        capLeft_[l] = links_[l].bytesPerSecond;
    active_.clear();
    for (auto& [id, flow] : flows_) {
        active_.push_back(&flow);
        for (int l : *flow.path)
            ++flowsOn_[static_cast<std::size_t>(l)];
    }
    std::vector<double> oldRates;
    oldRates.reserve(active_.size());
    for (Flow* flow : active_) {
        oldRates.push_back(flow->rate);
        flow->rate = -1.0;
    }
    std::size_t unfixed = active_.size();
    while (unfixed > 0) {
        double best = std::numeric_limits<double>::infinity();
        std::size_t bestLink = links_.size();
        for (std::size_t l = 0; l < links_.size(); ++l) {
            if (flowsOn_[l] <= 0)
                continue;
            const double share = capLeft_[l] / flowsOn_[l];
            if (share < best) {
                best = share;
                bestLink = l;
            }
        }
        if (bestLink == links_.size())
            break;
        for (Flow* flow : active_) {
            if (flow->rate >= 0.0)
                continue;
            bool crosses = false;
            for (int l : *flow->path) {
                if (static_cast<std::size_t>(l) == bestLink) {
                    crosses = true;
                    break;
                }
            }
            if (!crosses)
                continue;
            flow->rate = best;
            --unfixed;
            for (int l : *flow->path) {
                const auto li = static_cast<std::size_t>(l);
                capLeft_[li] -= best;
                if (capLeft_[li] < 0.0)
                    capLeft_[li] = 0.0;
                --flowsOn_[li];
            }
        }
    }

    // Reschedule completions.  A flow whose rate did not change
    // keeps its pending event: the remaining bytes shrank exactly in
    // step with the old schedule, so the old finish time still
    // holds (and skipping the reschedule avoids rounding drift).
    std::size_t index = 0;
    for (auto it = flows_.begin(); it != flows_.end(); ++it) {
        Flow& flow = it->second;
        const double oldRate = oldRates[index++];
        if (flow.rate == oldRate && flow.completion.pending())
            continue;
        flow.completion.cancel();
        const SimTime remaining =
            flow.rate > 0.0
                ? secondsToSimTime(flow.remainingBytes / flow.rate)
                : 0;
        const std::uint64_t fid = it->first;
        flow.completion = sim_->scheduleAfter(
            remaining, [this, fid]() { finishFlow(fid); }, "net/flow");
    }
}

void
FlowModel::finishFlow(std::uint64_t id)
{
    auto it = flows_.find(id);
    if (it == flows_.end())
        return;
    Flow flow = std::move(it->second);
    flows_.erase(it);
    ++finished_;
    // Release the flow's share first, then pay the propagation tail:
    // the remaining flows speed up the moment the last byte leaves.
    reshare();
    sim_->scheduleAfter(secondsToSimTime(flow.tailLatency),
                        std::move(flow.done), flow.label);
}

}  // namespace hw
}  // namespace uqsim
