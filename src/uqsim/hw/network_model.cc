#include "uqsim/hw/network_model.h"

#include <utility>

#include "uqsim/hw/machine.h"
#include "uqsim/snapshot/snapshot.h"

namespace uqsim {
namespace hw {

const char*
dropReasonName(DropReason reason)
{
    switch (reason) {
      case DropReason::FaultLoss:
        return "fault_loss";
      case DropReason::LinkDown:
        return "link_down";
      case DropReason::Unreachable:
        return "unreachable";
    }
    return "unknown";
}

void
NetworkModel::onMachineAdded(const Machine& machine)
{
    (void)machine;
}

void
NetworkModel::saveState(snapshot::SnapshotWriter& writer) const
{
    (void)writer;
}

void
NetworkModel::loadState(snapshot::SnapshotReader& reader) const
{
    (void)reader;
}

ConstantModel::ConstantModel() : ConstantModel(Config{})
{
}

ConstantModel::ConstantModel(const Config& config) : config_(config)
{
}

std::unique_ptr<ConstantModel>
ConstantModel::make()
{
    return make(Config{});
}

std::unique_ptr<ConstantModel>
ConstantModel::make(const Config& config)
{
    return std::make_unique<ConstantModel>(config);
}

void
ConstantModel::bind(Simulator& sim)
{
    sim_ = &sim;
}

void
ConstantModel::transit(const Machine* from, const Machine* to,
                       std::uint32_t bytes,
                       double extraLatencySeconds, Callback done,
                       DropCallback dropped, const char* label)
{
    (void)from;
    (void)to;
    (void)bytes;
    (void)dropped;  // a constant wire cannot drop
    const SimTime wire =
        secondsToSimTime(config_.wireLatency + extraLatencySeconds);
    sim_->scheduleAfter(wire, std::move(done), label);
}

void
ConstantModel::loopback(const Machine* machine, std::uint32_t bytes,
                        double extraLatencySeconds, Callback done,
                        const char* label)
{
    (void)machine;
    (void)bytes;
    const SimTime wire =
        secondsToSimTime(config_.loopbackLatency + extraLatencySeconds);
    sim_->scheduleAfter(wire, std::move(done), label);
}

}  // namespace hw
}  // namespace uqsim
