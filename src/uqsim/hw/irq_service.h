#ifndef UQSIM_HW_IRQ_SERVICE_H_
#define UQSIM_HW_IRQ_SERVICE_H_

/**
 * @file
 * Per-machine network (software interrupt) processing service.
 *
 * The paper models network processing "as a separate process in the
 * simulator: each server is coupled with a network processing
 * process as a standalone service, and all microservices deployed on
 * the same server share the process handling interrupts" (§III-B).
 * Every message entering or leaving a machine passes through this
 * station.  It is a FIFO queue served by the machine's dedicated
 * soft-irq cores; its saturation is what bounds high fan-out
 * scale-out (Fig. 8, 16-way case).
 */

#include <cstdint>
#include <deque>
#include <string>

#include "uqsim/core/engine/inline_function.h"
#include "uqsim/core/engine/simulator.h"
#include "uqsim/hw/core_set.h"
#include "uqsim/hw/dvfs.h"
#include "uqsim/random/distribution.h"
#include "uqsim/random/rng.h"
#include "uqsim/stats/summary.h"

namespace uqsim {
namespace hw {

/**
 * Completion callback passed through the network/IRQ pipeline.
 * Move-only with 64 inline bytes: the dispatcher's delivery
 * closures fit without touching the heap, and callbacks can carry
 * move-only state (another Callback, a pooled handle).
 */
using Callback = InlineFunction<void(), 64>;

/** FIFO multi-server station processing network packets. */
class IrqService {
  public:
    /**
     * @param sim         owning simulator
     * @param name        diagnostic label (e.g. "server0/irq")
     * @param cores       number of soft-irq cores (> 0)
     * @param per_packet  base processing time per packet (seconds)
     * @param per_byte    additional seconds per payload byte
     * @param dvfs        frequency domain scaling service times, or
     *                    nullptr for frequency-insensitive handling
     */
    IrqService(Simulator& sim, std::string name, int cores,
               random::DistributionPtr per_packet, double per_byte,
               const DvfsDomain* dvfs);

    /**
     * Enqueues a packet of @p bytes; @p done fires when interrupt
     * processing completes.
     */
    void process(std::uint32_t bytes, Callback done);

    /** Packets fully processed so far. */
    std::uint64_t processedPackets() const { return processed_; }

    /** Packets currently queued (not yet in service). */
    std::size_t queuedPackets() const { return queue_.size(); }

    /** Mean core utilization so far. */
    double utilization() const;

    /** Observed per-packet processing-time statistics. */
    const stats::Summary& serviceTimeStats() const
    {
        return serviceTimes_;
    }

  private:
    struct Packet {
        std::uint32_t bytes;
        Callback done;
    };

    void tryStart();
    void startService(Packet packet);

    Simulator& sim_;
    std::string name_;
    std::string doneLabel_;
    CoreSet cores_;
    random::DistributionPtr perPacket_;
    double perByte_;
    const DvfsDomain* dvfs_;
    random::RngStream rng_;
    std::deque<Packet> queue_;
    std::uint64_t processed_ = 0;
    stats::Summary serviceTimes_;
};

}  // namespace hw
}  // namespace uqsim

#endif  // UQSIM_HW_IRQ_SERVICE_H_
