#include "uqsim/hw/irq_service.h"

#include <stdexcept>
#include <utility>

namespace uqsim {
namespace hw {

IrqService::IrqService(Simulator& sim, std::string name, int cores,
                       random::DistributionPtr per_packet, double per_byte,
                       const DvfsDomain* dvfs)
    : sim_(sim), name_(std::move(name)), doneLabel_(name_ + "/done"),
      cores_(cores, name_ + "/cores"),
      perPacket_(std::move(per_packet)), perByte_(per_byte), dvfs_(dvfs),
      rng_(sim.masterSeed(), name_)
{
    if (!perPacket_)
        throw std::invalid_argument("irq per-packet distribution required");
    if (per_byte < 0.0)
        throw std::invalid_argument("irq per-byte cost must be >= 0");
}

void
IrqService::process(std::uint32_t bytes, Callback done)
{
    queue_.push_back(Packet{bytes, std::move(done)});
    tryStart();
}

void
IrqService::tryStart()
{
    while (!queue_.empty() && cores_.tryAcquire(sim_.now())) {
        Packet packet = std::move(queue_.front());
        queue_.pop_front();
        startService(std::move(packet));
    }
}

void
IrqService::startService(Packet packet)
{
    double seconds =
        perPacket_->sample(rng_) + perByte_ * packet.bytes;
    if (dvfs_ != nullptr)
        seconds *= dvfs_->slowdown();
    serviceTimes_.add(seconds);
    const SimTime duration = secondsToSimTime(seconds);
    sim_.scheduleAfter(
        duration,
        [this, done = std::move(packet.done)]() mutable {
            cores_.release(sim_.now());
            ++processed_;
            if (done)
                done();
            tryStart();
        },
        doneLabel_.c_str());
}

double
IrqService::utilization() const
{
    return cores_.utilization(sim_.now());
}

}  // namespace hw
}  // namespace uqsim
