#include "uqsim/hw/network.h"

#include <utility>

#include "uqsim/snapshot/state_io.h"

namespace uqsim {
namespace hw {

Network::Network(Simulator& sim, std::unique_ptr<NetworkModel> model)
    : sim_(sim),
      model_(model ? std::move(model) : ConstantModel::make()),
      faultRng_(sim.masterSeed(), "network/faults")
{
    model_->bind(sim_);
}

Network::Network(Simulator& sim, const NetworkConfig& config)
    : Network(sim, ConstantModel::make(config))
{
}

void
Network::setDegradation(double extraLatencySeconds,
                        double lossProbability)
{
    degraded_ = true;
    extraLatency_ = extraLatencySeconds;
    lossProb_ = lossProbability;
}

void
Network::clearDegradation()
{
    degraded_ = false;
    extraLatency_ = 0.0;
    lossProb_ = 0.0;
}

void
Network::transfer(Machine* from, Machine* to, std::uint32_t bytes,
                  Callback done, DropCallback dropped)
{
    ++transfers_;
    // Decide loss and latency at send time: a window that closes
    // mid-flight does not rescue messages already on the wire.
    const double extra = degraded_ ? extraLatency_ : 0.0;
    const bool lost = degraded_ && lossProb_ > 0.0 &&
                      faultRng_.nextBool(lossProb_);
    if (from != nullptr && from == to) {
        // Loopback: single pass through the local IRQ service.  The
        // kernel loopback path cannot lose messages, but a degraded
        // host still adds latency.
        model_->loopback(
            from, bytes, extra,
            [this, to, bytes, cb = std::move(done)]() mutable {
                deliver(to, bytes, std::move(cb));
            },
            "net/loopback");
        return;
    }
    if (lost) {
        ++dropped_;
        // The sender still pays TX IRQ work and the message occupies
        // the wire before vanishing.  The wire leg itself may also
        // fail (dead link, unreachable); the model guarantees exactly
        // one of done/dropped fires, so one shared callback serves
        // both outcomes with the reason that actually happened.
        auto shared =
            std::make_shared<DropCallback>(std::move(dropped));
        auto after_tx = [this, from, to, bytes, extra,
                         shared]() mutable {
            model_->transit(
                from, to, bytes, extra,
                [shared]() {
                    if (*shared)
                        (*shared)(DropReason::FaultLoss);
                },
                [shared](DropReason reason) {
                    if (*shared)
                        (*shared)(reason);
                },
                "net/drop");
        };
        if (from != nullptr && from->irq() != nullptr) {
            from->irq()->process(bytes, std::move(after_tx));
        } else {
            after_tx();
        }
        return;
    }
    auto after_tx = [this, from, to, bytes, extra,
                     cb = std::move(done),
                     drop = std::move(dropped)]() mutable {
        model_->transit(
            from, to, bytes, extra,
            [this, to, bytes, cb2 = std::move(cb)]() mutable {
                deliver(to, bytes, std::move(cb2));
            },
            std::move(drop), "net/wire");
    };
    if (from != nullptr && from->irq() != nullptr) {
        from->irq()->process(bytes, std::move(after_tx));
    } else {
        after_tx();
    }
}

void
Network::deliver(Machine* to, std::uint32_t bytes, Callback done)
{
    if (to != nullptr && to->irq() != nullptr) {
        to->irq()->process(bytes, std::move(done));
    } else if (done) {
        done();
    }
}

void
Network::saveState(snapshot::SnapshotWriter& writer) const
{
    writer.beginSection(snapshot::SectionId::Network);
    writer.putString(model_->modelName());
    writer.putU64(transfers_);
    writer.putU64(dropped_);
    writer.putBool(degraded_);
    writer.putF64(extraLatency_);
    writer.putF64(lossProb_);
    snapshot::putRngState(writer, faultRng_.state());
    model_->saveState(writer);
    writer.endSection();
}

void
Network::loadState(snapshot::SnapshotReader& reader) const
{
    reader.openSection(snapshot::SectionId::Network);
    reader.requireString("model", model_->modelName());
    reader.requireU64("transfers", transfers_);
    reader.requireU64("dropped", dropped_);
    reader.requireBool("degraded", degraded_);
    reader.requireF64("extra_latency", extraLatency_);
    reader.requireF64("loss_prob", lossProb_);
    snapshot::requireRngState(reader, "fault_rng", faultRng_.state());
    model_->loadState(reader);
    reader.closeSection();
}

}  // namespace hw
}  // namespace uqsim
