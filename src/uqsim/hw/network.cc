#include "uqsim/hw/network.h"

#include <utility>

namespace uqsim {
namespace hw {

Network::Network(Simulator& sim, const NetworkConfig& config)
    : sim_(sim), config_(config)
{
}

void
Network::transfer(Machine* from, Machine* to, std::uint32_t bytes,
                  std::function<void()> done)
{
    ++transfers_;
    if (from != nullptr && from == to) {
        // Loopback: single pass through the local IRQ service.
        const SimTime wire = secondsToSimTime(config_.loopbackLatency);
        sim_.scheduleAfter(
            wire,
            [this, to, bytes, cb = std::move(done)]() mutable {
                deliver(to, bytes, std::move(cb));
            },
            "net/loopback");
        return;
    }
    auto after_tx = [this, to, bytes, cb = std::move(done)]() mutable {
        const SimTime wire = secondsToSimTime(config_.wireLatency);
        sim_.scheduleAfter(
            wire,
            [this, to, bytes, cb2 = std::move(cb)]() mutable {
                deliver(to, bytes, std::move(cb2));
            },
            "net/wire");
    };
    if (from != nullptr && from->irq() != nullptr) {
        from->irq()->process(bytes, std::move(after_tx));
    } else {
        after_tx();
    }
}

void
Network::deliver(Machine* to, std::uint32_t bytes,
                 std::function<void()> done)
{
    if (to != nullptr && to->irq() != nullptr) {
        to->irq()->process(bytes, std::move(done));
    } else if (done) {
        done();
    }
}

}  // namespace hw
}  // namespace uqsim
