#include "uqsim/hw/topology.h"

#include <stdexcept>
#include <utility>

#include "uqsim/hw/cluster.h"

namespace uqsim {
namespace hw {

const std::vector<int>&
Topology::route(int from, int to) const
{
    if (from < 0 || from >= hostCount || to < 0 || to >= hostCount) {
        throw std::out_of_range("topology route host out of range: " +
                                std::to_string(from) + " -> " +
                                std::to_string(to));
    }
    return routes[static_cast<std::size_t>(from) *
                      static_cast<std::size_t>(hostCount) +
                  static_cast<std::size_t>(to)];
}

const std::vector<std::vector<int>>&
Topology::backupRoutes(int from, int to) const
{
    static const std::vector<std::vector<int>> kNoBackups;
    if (from < 0 || from >= hostCount || to < 0 || to >= hostCount) {
        throw std::out_of_range(
            "topology backup route host out of range: " +
            std::to_string(from) + " -> " + std::to_string(to));
    }
    if (backups.empty())
        return kNoBackups;
    return backups[static_cast<std::size_t>(from) *
                       static_cast<std::size_t>(hostCount) +
                   static_cast<std::size_t>(to)];
}

std::unique_ptr<FlowModel>
Topology::makeModel(const FlowModel::Config& config) const
{
    auto model = FlowModel::make(config);
    for (const FlowModel::LinkSpec& spec : links)
        model->addLink(spec);
    for (int from = 0; from < hostCount; ++from) {
        for (int to = 0; to < hostCount; ++to) {
            if (from == to)
                continue;
            model->setRoute(from, to, route(from, to));
            for (const std::vector<int>& alt : backupRoutes(from, to))
                model->addBackupRoute(from, to, alt);
        }
    }
    for (const SwitchSpec& sw : switches)
        model->registerSwitch(sw.name, sw.linkIds);
    return model;
}

void
Topology::populateCluster(Cluster& cluster,
                          MachineConfig prototype) const
{
    if (cluster.machineCount() != 0) {
        throw std::logic_error(
            "Topology::populateCluster requires an empty cluster so "
            "host indices line up with machine net ids");
    }
    for (const std::string& name : hostNames) {
        prototype.name = name;
        cluster.addMachine(prototype);
    }
}

Topology
TopologyBuilder::fatTree(const FatTreeConfig& config)
{
    const int k = config.arity;
    if (k < 2 || k % 2 != 0) {
        throw std::invalid_argument(
            "fat-tree arity must be even and >= 2, got " +
            std::to_string(k));
    }
    const int half = k / 2;
    int hostsPerEdge = config.hostsPerEdge;
    if (hostsPerEdge <= 0) {
        if (config.oversubscription <= 0.0) {
            throw std::invalid_argument(
                "fat-tree oversubscription must be > 0");
        }
        hostsPerEdge = static_cast<int>(
            static_cast<double>(half) * config.oversubscription + 0.5);
        if (hostsPerEdge < 1)
            hostsPerEdge = 1;
    }
    if (config.hostGbps <= 0.0 || config.fabricGbps <= 0.0)
        throw std::invalid_argument("fat-tree link speeds must be > 0");

    Topology topo;
    topo.arity = k;
    topo.hostsPerEdge = hostsPerEdge;
    topo.edgeCount = k * half;
    topo.aggCount = k * half;
    topo.coreCount = half * half;
    topo.hostCount = topo.edgeCount * hostsPerEdge;

    const double hostBps = gbpsToBytesPerSecond(config.hostGbps);
    const double fabricBps = gbpsToBytesPerSecond(config.fabricGbps);
    const double latency = config.linkLatencySeconds;
    auto addLink = [&topo, latency](std::string name, double bps) {
        topo.links.push_back(
            FlowModel::LinkSpec{std::move(name), bps, latency});
        return static_cast<int>(topo.links.size()) - 1;
    };

    // Host NIC links: "h7:up" carries host 7 -> edge switch traffic.
    std::vector<int> hostUp(topo.hostCount);
    std::vector<int> hostDown(topo.hostCount);
    topo.hostNames.reserve(topo.hostCount);
    for (int h = 0; h < topo.hostCount; ++h) {
        topo.hostNames.push_back(config.hostPrefix +
                                 std::to_string(h));
        hostUp[h] = addLink(topo.hostNames.back() + ":up", hostBps);
        hostDown[h] =
            addLink(topo.hostNames.back() + ":down", hostBps);
    }

    // Edge <-> aggregation, per pod: edge e and agg a are the pod's
    // local switch indices in [0, k/2).
    const auto eaIndex = [half](int pod, int edge, int agg) {
        return static_cast<std::size_t>((pod * half + edge) * half +
                                        agg);
    };
    std::vector<int> eaUp(static_cast<std::size_t>(k) * half * half);
    std::vector<int> eaDown(eaUp.size());
    for (int pod = 0; pod < k; ++pod) {
        for (int edge = 0; edge < half; ++edge) {
            for (int agg = 0; agg < half; ++agg) {
                const std::string base =
                    "pod" + std::to_string(pod) + ":edge" +
                    std::to_string(edge) + ":agg" +
                    std::to_string(agg);
                eaUp[eaIndex(pod, edge, agg)] =
                    addLink(base + ":up", fabricBps);
                eaDown[eaIndex(pod, edge, agg)] =
                    addLink(base + ":down", fabricBps);
            }
        }
    }

    // Aggregation <-> core: agg a in every pod connects to the core
    // group [a*(k/2), (a+1)*(k/2)); j is the offset in that group.
    const auto acIndex = [half](int pod, int agg, int j) {
        return static_cast<std::size_t>((pod * half + agg) * half + j);
    };
    std::vector<int> acUp(static_cast<std::size_t>(k) * half * half);
    std::vector<int> acDown(acUp.size());
    for (int pod = 0; pod < k; ++pod) {
        for (int agg = 0; agg < half; ++agg) {
            for (int j = 0; j < half; ++j) {
                const int core = agg * half + j;
                const std::string base =
                    "pod" + std::to_string(pod) + ":agg" +
                    std::to_string(agg) + ":core" +
                    std::to_string(core);
                acUp[acIndex(pod, agg, j)] =
                    addLink(base + ":up", fabricBps);
                acDown[acIndex(pod, agg, j)] =
                    addLink(base + ":down", fabricBps);
            }
        }
    }

    // Switch registry: every link incident to a switch, so
    // switch_down faults can fail them as a unit.  Creation order is
    // edges, then aggregations, then cores.
    for (int pod = 0; pod < k; ++pod) {
        for (int edge = 0; edge < half; ++edge) {
            Topology::SwitchSpec sw;
            sw.name = "pod" + std::to_string(pod) + ":edge" +
                      std::to_string(edge);
            const int edgeIdx = pod * half + edge;
            for (int h = edgeIdx * hostsPerEdge;
                 h < (edgeIdx + 1) * hostsPerEdge; ++h) {
                sw.linkIds.push_back(hostUp[h]);
                sw.linkIds.push_back(hostDown[h]);
            }
            for (int agg = 0; agg < half; ++agg) {
                sw.linkIds.push_back(eaUp[eaIndex(pod, edge, agg)]);
                sw.linkIds.push_back(eaDown[eaIndex(pod, edge, agg)]);
            }
            topo.switches.push_back(std::move(sw));
        }
    }
    for (int pod = 0; pod < k; ++pod) {
        for (int agg = 0; agg < half; ++agg) {
            Topology::SwitchSpec sw;
            sw.name = "pod" + std::to_string(pod) + ":agg" +
                      std::to_string(agg);
            for (int edge = 0; edge < half; ++edge) {
                sw.linkIds.push_back(eaUp[eaIndex(pod, edge, agg)]);
                sw.linkIds.push_back(eaDown[eaIndex(pod, edge, agg)]);
            }
            for (int j = 0; j < half; ++j) {
                sw.linkIds.push_back(acUp[acIndex(pod, agg, j)]);
                sw.linkIds.push_back(acDown[acIndex(pod, agg, j)]);
            }
            topo.switches.push_back(std::move(sw));
        }
    }
    for (int core = 0; core < topo.coreCount; ++core) {
        Topology::SwitchSpec sw;
        sw.name = "core" + std::to_string(core);
        const int agg = core / half;
        const int j = core % half;
        for (int pod = 0; pod < k; ++pod) {
            sw.linkIds.push_back(acUp[acIndex(pod, agg, j)]);
            sw.linkIds.push_back(acDown[acIndex(pod, agg, j)]);
        }
        topo.switches.push_back(std::move(sw));
    }

    // All-pairs destination-based routes (see file comment), plus —
    // when enabled — backup candidates through every other
    // (aggregation, core) choice, rotating from the primary so the
    // failover order is a pure function of (source, destination).
    const int hostsPerPod = half * hostsPerEdge;
    topo.routes.resize(static_cast<std::size_t>(topo.hostCount) *
                       static_cast<std::size_t>(topo.hostCount));
    if (config.backupRoutes)
        topo.backups.resize(topo.routes.size());
    for (int s = 0; s < topo.hostCount; ++s) {
        const int sEdge = s / hostsPerEdge;
        const int sPod = s / hostsPerPod;
        const int sEdgeLocal = sEdge % half;
        for (int d = 0; d < topo.hostCount; ++d) {
            if (s == d)
                continue;
            const int dEdge = d / hostsPerEdge;
            const int dPod = d / hostsPerPod;
            const int dEdgeLocal = dEdge % half;
            const std::size_t pair =
                static_cast<std::size_t>(s) *
                    static_cast<std::size_t>(topo.hostCount) +
                static_cast<std::size_t>(d);
            std::vector<int>& path = topo.routes[pair];
            path.push_back(hostUp[s]);
            if (sEdge != dEdge) {
                const int agg = d % half;
                path.push_back(eaUp[eaIndex(sPod, sEdgeLocal, agg)]);
                if (sPod != dPod) {
                    const int j = (d / half) % half;
                    path.push_back(acUp[acIndex(sPod, agg, j)]);
                    path.push_back(acDown[acIndex(dPod, agg, j)]);
                }
                path.push_back(eaDown[eaIndex(dPod, dEdgeLocal, agg)]);
            }
            path.push_back(hostDown[d]);

            if (!config.backupRoutes || sEdge == dEdge)
                continue;
            std::vector<std::vector<int>>& alts = topo.backups[pair];
            if (sPod == dPod) {
                // Same pod: any other aggregation switch works.
                for (int o = 1; o < half; ++o) {
                    const int agg = (d % half + o) % half;
                    std::vector<int> alt;
                    alt.push_back(hostUp[s]);
                    alt.push_back(
                        eaUp[eaIndex(sPod, sEdgeLocal, agg)]);
                    alt.push_back(
                        eaDown[eaIndex(dPod, dEdgeLocal, agg)]);
                    alt.push_back(hostDown[d]);
                    alts.push_back(std::move(alt));
                }
            } else {
                // Cross pod: every other (aggregation, core offset)
                // pair, rotating from the primary's.
                const int primary =
                    (d % half) * half + (d / half) % half;
                for (int o = 1; o < half * half; ++o) {
                    const int pick = (primary + o) % (half * half);
                    const int agg = pick / half;
                    const int j = pick % half;
                    std::vector<int> alt;
                    alt.push_back(hostUp[s]);
                    alt.push_back(
                        eaUp[eaIndex(sPod, sEdgeLocal, agg)]);
                    alt.push_back(acUp[acIndex(sPod, agg, j)]);
                    alt.push_back(acDown[acIndex(dPod, agg, j)]);
                    alt.push_back(
                        eaDown[eaIndex(dPod, dEdgeLocal, agg)]);
                    alt.push_back(hostDown[d]);
                    alts.push_back(std::move(alt));
                }
            }
        }
    }
    return topo;
}

}  // namespace hw
}  // namespace uqsim
