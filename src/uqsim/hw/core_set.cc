#include "uqsim/hw/core_set.h"

#include <stdexcept>

namespace uqsim {
namespace hw {

CoreSet::CoreSet(int capacity, std::string name)
    : name_(std::move(name)), capacity_(capacity)
{
    if (capacity <= 0)
        throw std::invalid_argument("core set capacity must be > 0");
}

void
CoreSet::accumulate(SimTime now)
{
    if (now > lastUpdate_) {
        busyTicks_ += static_cast<double>(inUse_) *
                      static_cast<double>(now - lastUpdate_);
        lastUpdate_ = now;
    }
}

bool
CoreSet::tryAcquire(SimTime now)
{
    if (inUse_ >= capacity_)
        return false;
    accumulate(now);
    ++inUse_;
    return true;
}

void
CoreSet::release(SimTime now)
{
    if (inUse_ <= 0)
        throw std::logic_error("core set release without acquire: " +
                               name_);
    accumulate(now);
    --inUse_;
}

double
CoreSet::utilization(SimTime now) const
{
    if (now <= 0)
        return 0.0;
    double busy = busyTicks_;
    if (now > lastUpdate_) {
        busy += static_cast<double>(inUse_) *
                static_cast<double>(now - lastUpdate_);
    }
    return busy / (static_cast<double>(capacity_) *
                   static_cast<double>(now));
}

double
CoreSet::busyCoreSeconds(SimTime now) const
{
    double busy = busyTicks_;
    if (now > lastUpdate_) {
        busy += static_cast<double>(inUse_) *
                static_cast<double>(now - lastUpdate_);
    }
    return busy / static_cast<double>(kSecond);
}

}  // namespace hw
}  // namespace uqsim
