#ifndef UQSIM_HW_CORE_SET_H_
#define UQSIM_HW_CORE_SET_H_

/**
 * @file
 * A set of physical cores dedicated to one consumer (a microservice
 * instance or the per-machine IRQ service).  The paper pins every
 * thread/process to a dedicated core; a CoreSet captures that
 * allocation and tracks occupancy plus a busy-time integral for
 * utilization reporting.
 */

#include <cstdint>
#include <string>

#include "uqsim/core/engine/sim_time.h"

namespace uqsim {
namespace hw {

/** Counting-semaphore view of a group of identical cores. */
class CoreSet {
  public:
    /**
     * @param capacity number of cores (> 0)
     * @param name     diagnostic label
     */
    CoreSet(int capacity, std::string name = "cores");

    const std::string& name() const { return name_; }
    int capacity() const { return capacity_; }
    int inUse() const { return inUse_; }
    int available() const { return capacity_ - inUse_; }

    /**
     * Acquires one core at time @p now; returns false when all cores
     * are busy.
     */
    bool tryAcquire(SimTime now);

    /** Releases one core at time @p now. */
    void release(SimTime now);

    /**
     * Mean utilization over [0, now]: busy core-time divided by
     * capacity * elapsed time.
     */
    double utilization(SimTime now) const;

    /** Total busy core-seconds accumulated so far. */
    double busyCoreSeconds(SimTime now) const;

  private:
    void accumulate(SimTime now);

    std::string name_;
    int capacity_;
    int inUse_ = 0;
    SimTime lastUpdate_ = 0;
    double busyTicks_ = 0.0;  // integral of inUse_ over time, in ticks
};

}  // namespace hw
}  // namespace uqsim

#endif  // UQSIM_HW_CORE_SET_H_
