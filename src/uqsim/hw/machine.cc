#include "uqsim/hw/machine.h"

#include <stdexcept>

#include "uqsim/random/distributions.h"

namespace uqsim {
namespace hw {

Machine::Machine(Simulator& sim, const MachineConfig& config)
    : sim_(sim), name_(config.name), totalCores_(config.cores),
      dvfs_(DvfsTable(config.dvfsGhz), config.name + "/dvfs")
{
    if (config.cores <= 0)
        throw std::invalid_argument("machine must have > 0 cores");
    if (config.irqCores < 0)
        throw std::invalid_argument("irq core count must be >= 0");
    if (config.irqCores > 0) {
        if (config.irqCores > totalCores_) {
            throw std::invalid_argument(
                "irq cores exceed machine cores on " + name_);
        }
        allocatedCores_ += config.irqCores;
        irq_ = std::make_unique<IrqService>(
            sim_, name_ + "/irq", config.irqCores,
            std::make_shared<random::ExponentialDistribution>(
                config.irqPerPacket),
            config.irqPerByte, &dvfs_);
    }
    for (const Disk::Config& disk : config.disks) {
        if (this->disk(disk.name) != nullptr) {
            throw std::invalid_argument("duplicate disk \"" +
                                        disk.name + "\" on machine " +
                                        name_);
        }
        disks_.push_back(std::make_unique<Disk>(sim_, name_, disk));
    }
}

Disk*
Machine::disk(const std::string& name)
{
    for (const auto& disk : disks_) {
        if (disk->name() == name)
            return disk.get();
    }
    return nullptr;
}

Disk*
Machine::defaultDisk()
{
    return disks_.empty() ? nullptr : disks_.front().get();
}

DvfsDomain&
Machine::makeDvfsDomain(const std::string& label)
{
    extraDomains_.push_back(std::make_unique<DvfsDomain>(
        dvfs_.table(), name_ + "/" + label));
    return *extraDomains_.back();
}

CoreSet&
Machine::allocateCores(int count, const std::string& label)
{
    if (count <= 0)
        throw std::invalid_argument("core allocation must be > 0");
    if (allocatedCores_ + count > totalCores_) {
        throw std::runtime_error(
            "machine " + name_ + " out of cores: requested " +
            std::to_string(count) + ", free " +
            std::to_string(freeCores()));
    }
    allocatedCores_ += count;
    allocations_.push_back(
        std::make_unique<CoreSet>(count, name_ + "/" + label));
    return *allocations_.back();
}

}  // namespace hw
}  // namespace uqsim
