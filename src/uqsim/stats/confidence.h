#ifndef UQSIM_STATS_CONFIDENCE_H_
#define UQSIM_STATS_CONFIDENCE_H_

/**
 * @file
 * Confidence intervals across independent replications.
 *
 * Multi-seed experiment campaigns (runner::SweepRunner) report each
 * metric as mean ± half-width at a configurable confidence level.
 * The interval uses the Student-t quantile with n-1 degrees of
 * freedom, so it is valid for the handful of replications (3-30) a
 * sweep typically runs, where the normal approximation is too tight.
 */

#include <string>

#include "uqsim/stats/summary.h"

namespace uqsim {
namespace stats {

/**
 * Standard normal quantile (inverse CDF) for p in (0, 1).
 * Acklam's rational approximation; |relative error| < 1.15e-9.
 */
double normalQuantile(double p);

/**
 * Student-t quantile for p in (0, 1) with @p dof >= 1 degrees of
 * freedom (Hill's 1970 expansion around the normal quantile; exact
 * closed forms for dof 1 and 2).  Accurate to ~1e-6 for the central
 * quantiles confidence intervals use.
 */
double tQuantile(double p, int dof);

/** A two-sided confidence interval for a mean. */
struct ConfidenceInterval {
    double mean = 0.0;
    double halfWidth = 0.0;
    /** Confidence level the interval was built at, e.g. 0.95. */
    double confidence = 0.0;
    /** Number of observations the interval is based on. */
    std::uint64_t count = 0;

    double lo() const { return mean - halfWidth; }
    double hi() const { return mean + halfWidth; }

    /** True when the interval is meaningful (>= 2 observations). */
    bool valid() const { return count >= 2; }

    /** "1.23 ± 0.04 (95% CI, n=8)" */
    std::string describe() const;
};

/**
 * Two-sided CI for the mean of the observations in @p summary:
 * mean ± t_{1-(1-confidence)/2, n-1} * stddev / sqrt(n).
 * With fewer than two observations the half-width is zero and
 * valid() is false.
 */
ConfidenceInterval meanConfidenceInterval(const Summary& summary,
                                          double confidence = 0.95);

}  // namespace stats
}  // namespace uqsim

#endif  // UQSIM_STATS_CONFIDENCE_H_
