#include "uqsim/stats/confidence.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace uqsim {
namespace stats {

double
normalQuantile(double p)
{
    if (!(p > 0.0 && p < 1.0))
        throw std::invalid_argument("normalQuantile needs p in (0, 1)");

    // Acklam's rational approximation in three regions.
    static const double a[] = {-3.969683028665376e+01,
                               2.209460984245205e+02,
                               -2.759285104469687e+02,
                               1.383577518672690e+02,
                               -3.066479806614716e+01,
                               2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01,
                               1.615858368580409e+02,
                               -1.556989798598866e+02,
                               6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03,
                               -3.223964580411365e-01,
                               -2.400758277161838e+00,
                               -2.549732539343734e+00,
                               4.374664141464968e+00,
                               2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03,
                               3.224671290700398e-01,
                               2.445134137142996e+00,
                               3.754408661907416e+00};
    const double p_low = 0.02425;

    if (p < p_low) {
        const double q = std::sqrt(-2.0 * std::log(p));
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q +
                 c[4]) * q + c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    if (p > 1.0 - p_low) {
        const double q = std::sqrt(-2.0 * std::log(1.0 - p));
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q +
                  c[4]) * q + c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) *
            r + a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) *
            r + 1.0);
}

double
tQuantile(double p, int dof)
{
    if (!(p > 0.0 && p < 1.0))
        throw std::invalid_argument("tQuantile needs p in (0, 1)");
    if (dof < 1)
        throw std::invalid_argument("tQuantile needs dof >= 1");

    // Exact closed forms for the heaviest tails.
    if (dof == 1)
        return std::tan(M_PI * (p - 0.5));
    if (dof == 2)
        return (2.0 * p - 1.0) *
               std::sqrt(2.0 / (4.0 * p * (1.0 - p)));

    // Hill (1970): Cornish-Fisher style expansion of the t quantile
    // in powers of 1/dof around the normal quantile.
    const double z = normalQuantile(p);
    const double g = static_cast<double>(dof);
    const double z2 = z * z;
    const double term1 = (z2 + 1.0) * z / 4.0;
    const double term2 = ((5.0 * z2 + 16.0) * z2 + 3.0) * z / 96.0;
    const double term3 =
        (((3.0 * z2 + 19.0) * z2 + 17.0) * z2 - 15.0) * z / 384.0;
    const double term4 =
        ((((79.0 * z2 + 776.0) * z2 + 1482.0) * z2 - 1920.0) * z2 -
         945.0) * z / 92160.0;
    return z + term1 / g + term2 / (g * g) + term3 / (g * g * g) +
           term4 / (g * g * g * g);
}

std::string
ConfidenceInterval::describe() const
{
    std::ostringstream out;
    out << mean << " ± " << halfWidth << " ("
        << static_cast<int>(confidence * 100.0 + 0.5) << "% CI, n="
        << count << ")";
    return out.str();
}

ConfidenceInterval
meanConfidenceInterval(const Summary& summary, double confidence)
{
    if (!(confidence > 0.0 && confidence < 1.0))
        throw std::invalid_argument("confidence must be in (0, 1)");
    ConfidenceInterval ci;
    ci.mean = summary.mean();
    ci.confidence = confidence;
    ci.count = summary.count();
    if (summary.count() < 2)
        return ci;
    const double n = static_cast<double>(summary.count());
    const double t = tQuantile(0.5 + confidence / 2.0,
                               static_cast<int>(summary.count()) - 1);
    ci.halfWidth = t * summary.stddev() / std::sqrt(n);
    return ci;
}

}  // namespace stats
}  // namespace uqsim
