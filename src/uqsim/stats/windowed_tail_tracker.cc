#include "uqsim/stats/windowed_tail_tracker.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace uqsim {
namespace stats {

namespace {

double
interpolatedPercentile(const std::vector<double>& sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
    const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
    if (lo == hi)
        return sorted[lo];
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

void
WindowedTailTracker::add(double value)
{
    window_.push_back(value);
}

WindowStats
WindowedTailTracker::computeStats(std::vector<double> samples)
{
    WindowStats stats;
    if (samples.empty())
        return stats;
    stats.count = samples.size();
    stats.mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
                 static_cast<double>(samples.size());
    std::sort(samples.begin(), samples.end());
    stats.p50 = interpolatedPercentile(samples, 50.0);
    stats.p95 = interpolatedPercentile(samples, 95.0);
    stats.p99 = interpolatedPercentile(samples, 99.0);
    stats.max = samples.back();
    return stats;
}

WindowStats
WindowedTailTracker::close()
{
    WindowStats stats = computeStats(std::move(window_));
    window_.clear();
    return stats;
}

WindowStats
WindowedTailTracker::peek() const
{
    return computeStats(window_);
}

}  // namespace stats
}  // namespace uqsim
