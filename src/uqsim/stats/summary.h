#ifndef UQSIM_STATS_SUMMARY_H_
#define UQSIM_STATS_SUMMARY_H_

/**
 * @file
 * Streaming summary statistics (count / mean / variance / min / max)
 * using Welford's numerically stable online algorithm.
 */

#include <cstdint>
#include <limits>
#include <string>

namespace uqsim {
namespace stats {

/** Online count/mean/variance/min/max accumulator. */
class Summary {
  public:
    Summary() = default;

    /** Adds one observation. */
    void add(double value);

    /** Merges another summary into this one. */
    void merge(const Summary& other);

    /** Clears all accumulated state. */
    void reset();

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ > 0 ? mean_ : 0.0; }
    /** Sample variance (n-1 denominator); 0 for fewer than 2 samples. */
    double variance() const;
    double stddev() const;
    double min() const;
    double max() const;
    double sum() const { return count_ > 0 ? mean_ * count_ : 0.0; }

    /** One-line rendering, e.g. "n=100 mean=1.2 sd=0.3 [0.5, 3.1]". */
    std::string describe() const;

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace stats
}  // namespace uqsim

#endif  // UQSIM_STATS_SUMMARY_H_
