#ifndef UQSIM_STATS_WINDOWED_TAIL_TRACKER_H_
#define UQSIM_STATS_WINDOWED_TAIL_TRACKER_H_

/**
 * @file
 * Tumbling-window tail-latency tracker.
 *
 * The power manager (Algorithm 1) makes decisions every interval
 * based on the tail latency observed *within* that interval.  The
 * tracker accumulates observations for the current window; closing a
 * window returns its statistics and starts a fresh one.
 */

#include <cstddef>
#include <vector>

namespace uqsim {
namespace stats {

/** Statistics of one closed window. */
struct WindowStats {
    std::size_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
};

/** Accumulates samples in a tumbling window. */
class WindowedTailTracker {
  public:
    WindowedTailTracker() = default;

    /** Adds an observation to the current window. */
    void add(double value);

    /** Number of samples in the open window. */
    std::size_t pending() const { return window_.size(); }

    /**
     * Closes the current window, returning its stats, and starts a
     * new one.  An empty window yields all-zero stats.
     */
    WindowStats close();

    /** Peeks at the open window's stats without closing it. */
    WindowStats peek() const;

  private:
    static WindowStats computeStats(std::vector<double> samples);

    std::vector<double> window_;
};

}  // namespace stats
}  // namespace uqsim

#endif  // UQSIM_STATS_WINDOWED_TAIL_TRACKER_H_
