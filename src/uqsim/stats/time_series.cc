#include "uqsim/stats/time_series.h"

#include <algorithm>
#include <sstream>

namespace uqsim {
namespace stats {

TimeSeries::TimeSeries(std::string name) : name_(std::move(name)) {}

void
TimeSeries::add(double time, double value)
{
    points_.push_back({time, value});
}

double
TimeSeries::lastValue(double fallback) const
{
    return points_.empty() ? fallback : points_.back().value;
}

double
TimeSeries::valueAt(double time, double fallback) const
{
    const auto it = std::upper_bound(
        points_.begin(), points_.end(), time,
        [](double t, const TimePoint& p) { return t < p.time; });
    if (it == points_.begin())
        return fallback;
    return std::prev(it)->value;
}

double
TimeSeries::meanOver(double t0, double t1) const
{
    double sum = 0.0;
    std::size_t n = 0;
    for (const TimePoint& point : points_) {
        if (point.time >= t0 && point.time < t1) {
            sum += point.value;
            ++n;
        }
    }
    return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

std::string
TimeSeries::toText() const
{
    std::ostringstream out;
    for (const TimePoint& point : points_)
        out << point.time << ' ' << point.value << '\n';
    return out.str();
}

}  // namespace stats
}  // namespace uqsim
