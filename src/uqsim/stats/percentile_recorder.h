#ifndef UQSIM_STATS_PERCENTILE_RECORDER_H_
#define UQSIM_STATS_PERCENTILE_RECORDER_H_

/**
 * @file
 * Exact-percentile latency recorder.
 *
 * Stores every observation and computes percentiles by sorting on
 * demand (amortized: the sorted order is cached until the next add).
 * Simulation runs record at most a few million latencies, so exact
 * storage is cheap and avoids quantile-sketch error in validation
 * figures.
 */

#include <cstddef>
#include <vector>

#include "uqsim/stats/summary.h"

namespace uqsim {
namespace stats {

/** Records observations and answers exact percentile queries. */
class PercentileRecorder {
  public:
    PercentileRecorder() = default;

    /** Adds one observation. */
    void add(double value);

    /**
     * Appends all of @p other's observations to this recorder.
     * Merging the recorders of independent replications is exactly
     * equivalent to having recorded the pooled stream (observations
     * keep insertion order within each source; percentiles are
     * order-independent).  Merging an empty recorder is a no-op.
     */
    void merge(const PercentileRecorder& other);

    /** Number of recorded observations. */
    std::size_t count() const { return values_.size(); }
    bool empty() const { return values_.empty(); }

    /**
     * Exact percentile with linear interpolation between order
     * statistics; @p p is in [0, 100].  Returns 0 when empty.
     */
    double percentile(double p) const;

    /** Convenience accessors. */
    double p50() const { return percentile(50.0); }
    double p95() const { return percentile(95.0); }
    double p99() const { return percentile(99.0); }
    double mean() const { return summary_.mean(); }
    double max() const { return summary_.max(); }
    double min() const { return summary_.min(); }
    const Summary& summary() const { return summary_; }

    /** Drops all observations. */
    void reset();

    /** Raw observations in insertion order. */
    const std::vector<double>& values() const { return values_; }

  private:
    void ensureSorted() const;

    std::vector<double> values_;
    mutable std::vector<double> sorted_;
    mutable bool sortedValid_ = false;
    Summary summary_;
};

}  // namespace stats
}  // namespace uqsim

#endif  // UQSIM_STATS_PERCENTILE_RECORDER_H_
