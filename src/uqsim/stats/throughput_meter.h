#ifndef UQSIM_STATS_THROUGHPUT_METER_H_
#define UQSIM_STATS_THROUGHPUT_METER_H_

/**
 * @file
 * Completion-rate meter.  Counts completion events and reports
 * throughput over the measurement interval, with optional fixed-size
 * bucketing for throughput-over-time series.
 */

#include <cstdint>
#include <vector>

namespace uqsim {
namespace stats {

/** Counts events and reports rates. */
class ThroughputMeter {
  public:
    /**
     * @param bucket_width  width (in seconds) of the per-bucket rate
     *                      series; 0 disables bucketing
     */
    explicit ThroughputMeter(double bucket_width = 0.0);

    /** Registers one completion at time @p time (seconds). */
    void record(double time);

    std::uint64_t count() const { return count_; }

    /** Overall rate between the first and last recorded events. */
    double overallRate() const;

    /** Rate over an explicit interval [t0, t1]. */
    double rateOver(double t0, double t1) const;

    /** Per-bucket rates (events per second in each bucket). */
    const std::vector<double>& bucketRates() const;

  private:
    double bucketWidth_;
    std::uint64_t count_ = 0;
    double firstTime_ = 0.0;
    double lastTime_ = 0.0;
    bool hasEvents_ = false;
    mutable std::vector<double> rates_;
    std::vector<std::uint64_t> bucketCounts_;
};

}  // namespace stats
}  // namespace uqsim

#endif  // UQSIM_STATS_THROUGHPUT_METER_H_
