#include "uqsim/stats/percentile_recorder.h"

#include <algorithm>
#include <cmath>

namespace uqsim {
namespace stats {

void
PercentileRecorder::add(double value)
{
    values_.push_back(value);
    summary_.add(value);
    sortedValid_ = false;
}

void
PercentileRecorder::merge(const PercentileRecorder& other)
{
    if (other.values_.empty())
        return;
    if (&other == this) {
        PercentileRecorder copy = other;
        merge(copy);
        return;
    }
    values_.insert(values_.end(), other.values_.begin(),
                   other.values_.end());
    summary_.merge(other.summary_);
    sortedValid_ = false;
}

void
PercentileRecorder::ensureSorted() const
{
    if (sortedValid_)
        return;
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    sortedValid_ = true;
}

double
PercentileRecorder::percentile(double p) const
{
    if (values_.empty())
        return 0.0;
    ensureSorted();
    const double clamped = std::clamp(p, 0.0, 100.0);
    // Linear interpolation between closest ranks (type-7 quantile,
    // the numpy default).
    const double rank =
        clamped / 100.0 * static_cast<double>(sorted_.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
    const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
    if (lo == hi)
        return sorted_[lo];
    const double frac = rank - static_cast<double>(lo);
    return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

void
PercentileRecorder::reset()
{
    // Swap with empties instead of clear(): after merging large
    // replications the capacity would otherwise stay pinned at the
    // pooled size for the rest of the sweep.
    std::vector<double>().swap(values_);
    std::vector<double>().swap(sorted_);
    sortedValid_ = false;
    summary_.reset();
}

}  // namespace stats
}  // namespace uqsim
