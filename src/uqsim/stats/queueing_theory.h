#ifndef UQSIM_STATS_QUEUEING_THEORY_H_
#define UQSIM_STATS_QUEUEING_THEORY_H_

/**
 * @file
 * Closed-form queueing-theory results.
 *
 * The paper's core insight is that single-concerned microservices
 * conform to the principles of queueing theory; these analytic
 * results are the ground truth the simulator is validated against
 * (M/M/1, M/M/k via Erlang-C, M/G/1 via Pollaczek-Khinchine) and the
 * quick estimators a capacity-planning user reaches for before
 * running a full simulation.
 *
 * Conventions: lambda = arrival rate (per second), mu = per-server
 * service rate, k = servers, rho = lambda / (k * mu) must be < 1.
 */

#include <stdexcept>

namespace uqsim {
namespace stats {

/** Offered load in Erlangs: lambda / mu. */
double offeredLoadErlangs(double lambda, double mu);

/** Utilization rho = lambda / (k * mu); throws unless 0 <= rho. */
double utilization(double lambda, double mu, int k);

/**
 * Erlang-C: probability an arriving M/M/k job must queue.
 * Requires rho < 1.
 */
double erlangC(double lambda, double mu, int k);

/** Mean wait in queue (excluding service) of an M/M/k system. */
double mmkMeanWait(double lambda, double mu, int k);

/** Mean sojourn time (wait + service) of an M/M/k system. */
double mmkMeanSojourn(double lambda, double mu, int k);

/** Mean number of jobs in an M/M/1 system: rho / (1 - rho). */
double mm1MeanJobs(double lambda, double mu);

/**
 * The @p p quantile (0 < p < 1) of the M/M/1 sojourn time, which is
 * exponential with rate (mu - lambda):  -ln(1-p) / (mu - lambda).
 */
double mm1SojournQuantile(double lambda, double mu, double p);

/**
 * Pollaczek-Khinchine: mean wait in queue of an M/G/1 system with
 * service mean @p service_mean and squared coefficient of variation
 * @p service_scv (= variance / mean^2; 1 for exponential, 0 for
 * deterministic).
 */
double mg1MeanWait(double lambda, double service_mean,
                   double service_scv);

/** Mean sojourn time of an M/G/1 system (PK wait + service). */
double mg1MeanSojourn(double lambda, double service_mean,
                      double service_scv);

/**
 * Tail-at-scale hit probability: chance that a request fanning out
 * to @p fanout servers touches at least one of the slow fraction
 * @p slow_fraction — 1 - (1 - p)^N (Dean & Barroso).
 */
double fanoutHitProbability(double slow_fraction, int fanout);

}  // namespace stats
}  // namespace uqsim

#endif  // UQSIM_STATS_QUEUEING_THEORY_H_
