#include "uqsim/stats/throughput_meter.h"

#include <cmath>
#include <stdexcept>

namespace uqsim {
namespace stats {

ThroughputMeter::ThroughputMeter(double bucket_width)
    : bucketWidth_(bucket_width)
{
    if (bucket_width < 0.0)
        throw std::invalid_argument("bucket width must be >= 0");
}

void
ThroughputMeter::record(double time)
{
    if (!hasEvents_) {
        firstTime_ = time;
        hasEvents_ = true;
    }
    lastTime_ = time;
    ++count_;
    if (bucketWidth_ > 0.0 && time >= 0.0) {
        const std::size_t bucket =
            static_cast<std::size_t>(time / bucketWidth_);
        if (bucket >= bucketCounts_.size())
            bucketCounts_.resize(bucket + 1, 0);
        ++bucketCounts_[bucket];
    }
}

double
ThroughputMeter::overallRate() const
{
    if (count_ < 2 || lastTime_ <= firstTime_)
        return 0.0;
    return static_cast<double>(count_ - 1) / (lastTime_ - firstTime_);
}

double
ThroughputMeter::rateOver(double t0, double t1) const
{
    if (t1 <= t0 || bucketWidth_ <= 0.0)
        return 0.0;
    double events = 0.0;
    for (std::size_t i = 0; i < bucketCounts_.size(); ++i) {
        const double lo = static_cast<double>(i) * bucketWidth_;
        const double hi = lo + bucketWidth_;
        const double overlap =
            std::max(0.0, std::min(hi, t1) - std::max(lo, t0));
        events += static_cast<double>(bucketCounts_[i]) *
                  (overlap / bucketWidth_);
    }
    return events / (t1 - t0);
}

const std::vector<double>&
ThroughputMeter::bucketRates() const
{
    rates_.assign(bucketCounts_.size(), 0.0);
    if (bucketWidth_ > 0.0) {
        for (std::size_t i = 0; i < bucketCounts_.size(); ++i) {
            rates_[i] =
                static_cast<double>(bucketCounts_[i]) / bucketWidth_;
        }
    }
    return rates_;
}

}  // namespace stats
}  // namespace uqsim
