#include "uqsim/stats/summary.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace uqsim {
namespace stats {

void
Summary::add(double value)
{
    ++count_;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

void
Summary::merge(const Summary& other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double n_a = static_cast<double>(count_);
    const double n_b = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = n_a + n_b;
    mean_ += delta * n_b / total;
    m2_ += other.m2_ + delta * delta * n_a * n_b / total;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
Summary::reset()
{
    *this = Summary();
}

double
Summary::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
Summary::stddev() const
{
    return std::sqrt(variance());
}

double
Summary::min() const
{
    return count_ > 0 ? min_ : 0.0;
}

double
Summary::max() const
{
    return count_ > 0 ? max_ : 0.0;
}

std::string
Summary::describe() const
{
    std::ostringstream out;
    out << "n=" << count_ << " mean=" << mean() << " sd=" << stddev()
        << " [" << min() << ", " << max() << "]";
    return out.str();
}

}  // namespace stats
}  // namespace uqsim
