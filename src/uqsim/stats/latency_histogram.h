#ifndef UQSIM_STATS_LATENCY_HISTOGRAM_H_
#define UQSIM_STATS_LATENCY_HISTOGRAM_H_

/**
 * @file
 * Log-bucketed latency histogram (HdrHistogram-style), used where the
 * full-sample PercentileRecorder would be too memory hungry, e.g.
 * per-stage latency tracking in very long power-management runs.
 *
 * Buckets have bounded relative error: each power-of-two range is
 * divided into a fixed number of linear sub-buckets.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace uqsim {
namespace stats {

/** Fixed-precision log-bucketed histogram of non-negative values. */
class LatencyHistogram {
  public:
    /**
     * @param unit              value granularity; values are quantized
     *                          to multiples of this before bucketing
     *                          (e.g. 1e-6 for microsecond precision
     *                          when recording seconds)
     * @param sub_bucket_bits   log2 of the linear sub-buckets per
     *                          power-of-two range; relative error is
     *                          bounded by 2^-sub_bucket_bits
     */
    explicit LatencyHistogram(double unit = 1e-6, int sub_bucket_bits = 7);

    /** Records one value (clamped below at 0). */
    void add(double value);

    /** Records @p count occurrences of @p value. */
    void addN(double value, std::uint64_t count);

    /** Merges a histogram with identical parameters. */
    void merge(const LatencyHistogram& other);

    std::uint64_t count() const { return totalCount_; }
    /** Samples clamped to the finite recording ceiling (non-finite
     *  or astronomically large inputs). */
    std::uint64_t clampedSamples() const { return clamped_; }
    double mean() const;
    double max() const { return maxValue_; }
    double min() const;

    /** Percentile in [0, 100] with bucket-midpoint resolution. */
    double percentile(double p) const;

    void reset();

    std::string describe() const;

  private:
    std::size_t bucketIndex(std::uint64_t quantized) const;
    double bucketMidpoint(std::size_t index) const;

    double unit_;
    int subBucketBits_;
    std::uint64_t subBucketCount_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t totalCount_ = 0;
    std::uint64_t clamped_ = 0;
    double sum_ = 0.0;
    double maxValue_ = 0.0;
    double minValue_ = 0.0;
    bool hasValues_ = false;
};

}  // namespace stats
}  // namespace uqsim

#endif  // UQSIM_STATS_LATENCY_HISTOGRAM_H_
