#include "uqsim/stats/latency_histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace uqsim {
namespace stats {

LatencyHistogram::LatencyHistogram(double unit, int sub_bucket_bits)
    : unit_(unit), subBucketBits_(sub_bucket_bits),
      subBucketCount_(1ULL << sub_bucket_bits)
{
    if (unit <= 0.0)
        throw std::invalid_argument("histogram unit must be > 0");
    if (sub_bucket_bits < 1 || sub_bucket_bits > 20)
        throw std::invalid_argument("sub_bucket_bits must be in [1, 20]");
}

std::size_t
LatencyHistogram::bucketIndex(std::uint64_t quantized) const
{
    if (quantized < subBucketCount_)
        return static_cast<std::size_t>(quantized);
    // The leading range containing `quantized` starts at
    // 2^(bits) where bits >= subBucketBits_.
    const int bits = 63 - std::countl_zero(quantized);
    const int shift = bits - subBucketBits_;
    const std::uint64_t sub =
        (quantized >> shift) - subBucketCount_;  // in [0, subBucketCount_)
    const std::uint64_t range =
        static_cast<std::uint64_t>(bits - subBucketBits_);
    return static_cast<std::size_t>(subBucketCount_ +
                                    range * subBucketCount_ + sub);
}

double
LatencyHistogram::bucketMidpoint(std::size_t index) const
{
    if (index < subBucketCount_)
        return (static_cast<double>(index) + 0.5) * unit_;
    const std::uint64_t i = index - subBucketCount_;
    const std::uint64_t range = i / subBucketCount_;
    const std::uint64_t sub = i % subBucketCount_;
    const int shift = static_cast<int>(range);
    const double lower =
        std::ldexp(static_cast<double>(subBucketCount_ + sub), shift);
    const double width = std::ldexp(1.0, shift);
    return (lower + 0.5 * width) * unit_;
}

void
LatencyHistogram::add(double value)
{
    addN(value, 1);
}

void
LatencyHistogram::addN(double value, std::uint64_t count)
{
    if (count == 0)
        return;
    // Sanitize before the integer quantization: casting NaN, +inf,
    // or anything >= 2^64 units to uint64_t is undefined behavior.
    // NaN counts as 0 (like the negative clamp); huge finite values
    // and +inf clamp to a ceiling that still quantizes safely.
    if (std::isnan(value))
        value = 0.0;
    value = std::max(value, 0.0);
    const double ceiling = unit_ * 0x1p62;
    if (value > ceiling) {
        value = ceiling;
        clamped_ += count;
    }
    const std::uint64_t quantized =
        static_cast<std::uint64_t>(value / unit_);
    const std::size_t index = bucketIndex(quantized);
    if (index >= counts_.size())
        counts_.resize(index + 1, 0);
    counts_[index] += count;
    totalCount_ += count;
    sum_ += value * static_cast<double>(count);
    if (!hasValues_) {
        minValue_ = value;
        maxValue_ = value;
        hasValues_ = true;
    } else {
        minValue_ = std::min(minValue_, value);
        maxValue_ = std::max(maxValue_, value);
    }
}

void
LatencyHistogram::merge(const LatencyHistogram& other)
{
    if (other.unit_ != unit_ || other.subBucketBits_ != subBucketBits_)
        throw std::invalid_argument("cannot merge mismatched histograms");
    if (other.counts_.size() > counts_.size())
        counts_.resize(other.counts_.size(), 0);
    for (std::size_t i = 0; i < other.counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    totalCount_ += other.totalCount_;
    clamped_ += other.clamped_;
    sum_ += other.sum_;
    if (other.hasValues_) {
        if (!hasValues_) {
            minValue_ = other.minValue_;
            maxValue_ = other.maxValue_;
            hasValues_ = true;
        } else {
            minValue_ = std::min(minValue_, other.minValue_);
            maxValue_ = std::max(maxValue_, other.maxValue_);
        }
    }
}

double
LatencyHistogram::mean() const
{
    return totalCount_ > 0 ? sum_ / static_cast<double>(totalCount_) : 0.0;
}

double
LatencyHistogram::min() const
{
    return hasValues_ ? minValue_ : 0.0;
}

double
LatencyHistogram::percentile(double p) const
{
    if (totalCount_ == 0)
        return 0.0;
    const double clamped = std::clamp(p, 0.0, 100.0);
    if (clamped >= 100.0)
        return maxValue_;  // exact recorded maximum, not a midpoint
    const double target =
        clamped / 100.0 * static_cast<double>(totalCount_);
    std::uint64_t running = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        running += counts_[i];
        if (static_cast<double>(running) >= target && counts_[i] > 0) {
            // A bucket midpoint can overshoot the recorded maximum
            // (or undershoot the minimum) by up to half a bucket;
            // clamp so percentiles stay within observed values.
            return std::clamp(bucketMidpoint(i), minValue_, maxValue_);
        }
    }
    return maxValue_;
}

void
LatencyHistogram::reset()
{
    counts_.clear();
    totalCount_ = 0;
    clamped_ = 0;
    sum_ = 0.0;
    minValue_ = 0.0;
    maxValue_ = 0.0;
    hasValues_ = false;
}

std::string
LatencyHistogram::describe() const
{
    std::ostringstream out;
    out << "hist(n=" << totalCount_ << ", mean=" << mean()
        << ", p99=" << percentile(99.0) << ", max=" << maxValue_ << ')';
    return out.str();
}

}  // namespace stats
}  // namespace uqsim
