#include "uqsim/stats/queueing_theory.h"

#include <cmath>

namespace uqsim {
namespace stats {

namespace {

void
checkRates(double lambda, double mu, int k)
{
    if (lambda < 0.0 || mu <= 0.0 || k <= 0)
        throw std::invalid_argument(
            "queueing formulas need lambda >= 0, mu > 0, k > 0");
}

void
checkStable(double lambda, double mu, int k)
{
    checkRates(lambda, mu, k);
    if (lambda >= k * mu)
        throw std::invalid_argument(
            "system is unstable: lambda >= k * mu");
}

}  // namespace

double
offeredLoadErlangs(double lambda, double mu)
{
    checkRates(lambda, mu, 1);
    return lambda / mu;
}

double
utilization(double lambda, double mu, int k)
{
    checkRates(lambda, mu, k);
    return lambda / (k * mu);
}

double
erlangC(double lambda, double mu, int k)
{
    checkStable(lambda, mu, k);
    const double a = lambda / mu;
    double factorial = 1.0;
    double sum = 0.0;
    for (int i = 0; i < k; ++i) {
        if (i > 0)
            factorial *= i;
        sum += std::pow(a, i) / factorial;
    }
    factorial *= (k > 1) ? k : 1;  // now k!
    const double term = std::pow(a, k) / factorial * (k / (k - a));
    return term / (sum + term);
}

double
mmkMeanWait(double lambda, double mu, int k)
{
    checkStable(lambda, mu, k);
    if (k == 1)
        return lambda / (mu * (mu - lambda));
    return erlangC(lambda, mu, k) / (k * mu - lambda);
}

double
mmkMeanSojourn(double lambda, double mu, int k)
{
    return mmkMeanWait(lambda, mu, k) + 1.0 / mu;
}

double
mm1MeanJobs(double lambda, double mu)
{
    checkStable(lambda, mu, 1);
    const double rho = lambda / mu;
    return rho / (1.0 - rho);
}

double
mm1SojournQuantile(double lambda, double mu, double p)
{
    checkStable(lambda, mu, 1);
    if (p <= 0.0 || p >= 1.0)
        throw std::invalid_argument("quantile must be in (0, 1)");
    return -std::log(1.0 - p) / (mu - lambda);
}

double
mg1MeanWait(double lambda, double service_mean, double service_scv)
{
    if (service_mean <= 0.0 || service_scv < 0.0)
        throw std::invalid_argument(
            "M/G/1 needs service_mean > 0 and scv >= 0");
    checkStable(lambda, 1.0 / service_mean, 1);
    const double rho = lambda * service_mean;
    return rho * service_mean * (1.0 + service_scv) /
           (2.0 * (1.0 - rho));
}

double
mg1MeanSojourn(double lambda, double service_mean, double service_scv)
{
    return mg1MeanWait(lambda, service_mean, service_scv) +
           service_mean;
}

double
fanoutHitProbability(double slow_fraction, int fanout)
{
    if (slow_fraction < 0.0 || slow_fraction > 1.0 || fanout < 0)
        throw std::invalid_argument(
            "hit probability needs fraction in [0,1], fanout >= 0");
    return 1.0 - std::pow(1.0 - slow_fraction, fanout);
}

}  // namespace stats
}  // namespace uqsim
