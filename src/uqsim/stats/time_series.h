#ifndef UQSIM_STATS_TIME_SERIES_H_
#define UQSIM_STATS_TIME_SERIES_H_

/**
 * @file
 * Timestamped sample recorder for producing figure series (tail
 * latency over time, frequency settings over time, offered load over
 * time, ...).
 */

#include <cstddef>
#include <string>
#include <vector>

namespace uqsim {
namespace stats {

/** One (time, value) sample. */
struct TimePoint {
    double time = 0.0;
    double value = 0.0;
};

/** Append-only series of timestamped values. */
class TimeSeries {
  public:
    explicit TimeSeries(std::string name = "");

    void add(double time, double value);

    const std::string& name() const { return name_; }
    std::size_t size() const { return points_.size(); }
    bool empty() const { return points_.empty(); }
    const std::vector<TimePoint>& points() const { return points_; }

    /** Last recorded value, or @p fallback when empty. */
    double lastValue(double fallback = 0.0) const;

    /**
     * Value in effect at @p time under zero-order hold (the most
     * recent sample at or before @p time); @p fallback before the
     * first sample.  Requires samples appended in time order.
     */
    double valueAt(double time, double fallback = 0.0) const;

    /** Mean of values whose time lies in [t0, t1). */
    double meanOver(double t0, double t1) const;

    /** Renders "time value" rows, one per line. */
    std::string toText() const;

  private:
    std::string name_;
    std::vector<TimePoint> points_;
};

}  // namespace stats
}  // namespace uqsim

#endif  // UQSIM_STATS_TIME_SERIES_H_
