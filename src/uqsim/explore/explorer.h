#ifndef UQSIM_EXPLORE_EXPLORER_H_
#define UQSIM_EXPLORE_EXPLORER_H_

/**
 * @file
 * Schedule-space explorer for resilience policies.
 *
 * The deterministic engine resolves "don't care" nondeterminism by
 * fixed tie-breaking; the explorer systematically perturbs exactly
 * those tie-breaks — same-timestamp event order, fault-window onset
 * jitter, retry/hedge/timeout timer firing order — and checks
 * user-declared invariants over every schedule it visits.
 *
 * Search: stateless model checking over decision prefixes.  Every
 * run starts from the initial state, replays a decision prefix, and
 * defaults afterwards while recording the fresh decisions it meets.
 * Each fresh decision with k options spawns k-1 alternative prefixes
 * onto the frontier.  The frontier is consumed shallowest-first by
 * default so cheap-to-reach alternatives (e.g. fault-window jitter,
 * decided at t=0) are tried before deep tie-break subtrees; a
 * depth-first mode exists for deep bug hunts.  Revisit pruning is
 * DPOR-lite: an alternative is skipped when the same (state
 * fingerprint, kind, option) was already queued — fingerprints hash
 * the clock plus the pending-event multiset, so schedules that
 * merely permuted their way to the same state don't fan out twice.
 *
 * Every schedule runs under the existing deterministic engine, so
 * the run's full behavior is a pure function of its decision list;
 * a violating schedule is emitted as a replayable file
 * (docs/FORMATS.md §"schedule file") that reproduces the failing
 * interleaving bit-identically.
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "uqsim/core/engine/run_control.h"
#include "uqsim/core/sim/config.h"
#include "uqsim/core/sim/simulation.h"
#include "uqsim/explore/invariant.h"
#include "uqsim/explore/schedule.h"
#include "uqsim/runner/failure.h"

namespace uqsim {
namespace explore {

/** Search budget and policy knobs. */
struct ExploreOptions {
    /** Choice-point caps / step sizes for every run. */
    ExploreLimits limits;
    /** Total schedules executed (including the default one). */
    std::size_t maxSchedules = 128;
    /** Consume the frontier LIFO (deep subtrees first) instead of
     *  the default FIFO (shallow alternatives first). */
    bool depthFirst = false;
    /** DPOR-lite revisit pruning on (state, kind, option). */
    bool pruneVisited = true;
    /** Abort each schedule after this many events (0 = off);
     *  classified Timeout via the harness taxonomy. */
    std::uint64_t maxEventsPerSchedule = 0;
    /** External supervisor mailbox (watchdog / Ctrl-C).  An abort
     *  request stops the current schedule (Timeout) and ends the
     *  exploration loop.  Null = explorer-managed control only. */
    RunControl* control = nullptr;
    /** Append one runner-journal line per schedule ("" = off). */
    std::string journalPath;
    /** Journal sweep label; the point index is the schedule index. */
    std::string sweepLabel = "explore";
    /** Write the first violating schedule here ("" = off). */
    std::string scheduleOutPath;
};

/** The fate of one explored schedule. */
struct ScheduleOutcome {
    std::size_t index = 0;
    /** Full decision record (replayable). */
    std::vector<Decision> decisions;
    /** State fingerprint before each decision. */
    std::vector<std::uint64_t> fingerprints;
    std::uint64_t digest = 0;
    /** Harness taxonomy: None = ran to completion. */
    runner::FailureKind status = runner::FailureKind::None;
    /** Exception message for failed schedules. */
    std::string error;
    /** "name: message" of the first violated invariant; empty when
     *  all held (only checked when status is None). */
    std::string violation;
    /** Choice points past the maxDecisions cap (took defaults). */
    std::uint64_t truncatedDecisions = 0;
    RunReport report;

    bool violated() const { return !violation.empty(); }
};

/** Aggregate exploration results. */
struct ExploreResult {
    std::size_t schedulesRun = 0;
    std::size_t violations = 0;
    /** Alternatives skipped by revisit pruning. */
    std::size_t prunedAlternatives = 0;
    /** Alternatives still queued when the budget ran out. */
    std::size_t frontierLeft = 0;
    /** True when an external abort ended the loop early. */
    bool aborted = false;
    /** Digest of the all-defaults schedule (index 0). */
    std::uint64_t defaultDigest = 0;
    std::vector<ScheduleOutcome> outcomes;

    const ScheduleOutcome* firstViolation() const;
};

/** Drives the search; one instance per scenario. */
class Explorer {
  public:
    /**
     * Builds one fresh, finalized Simulation per schedule.  The
     * factory must attach @p chooser via sim().setChooser() *before*
     * Simulation::finalize(), because fault-plan choice points fire
     * inside finalize(); bundleFactory() does this correctly.
     */
    using Factory =
        std::function<std::unique_ptr<Simulation>(Chooser& chooser)>;

    Explorer(Factory factory, ExploreOptions options);

    /** Asserted over every schedule that runs to completion. */
    void addInvariant(Invariant invariant);

    /** Runs the search until budget, frontier, or abort ends it. */
    ExploreResult explore();

    /**
     * Runs the single schedule described by a decision prefix
     * (decisions past the prefix take defaults).  The empty prefix
     * is the engine's default schedule.
     */
    ScheduleOutcome runPrefix(const std::vector<int>& prefix);

    /** Replays a saved schedule; the caller compares
     *  outcome.digest with schedule.expectedDigest. */
    ScheduleOutcome replay(const Schedule& schedule);

    /** Renders an outcome as a saveable schedule file. */
    Schedule makeSchedule(const ScheduleOutcome& outcome) const;

  private:
    ScheduleOutcome runWith(Chooser& chooser, std::size_t index);

    Factory factory_;
    ExploreOptions options_;
    std::vector<Invariant> invariants_;
};

/**
 * Factory over a parsed configuration bundle, assembling the
 * Simulation in the order fromBundle() uses but attaching the
 * chooser before finalize() so FaultJitter choice points are seen.
 */
Explorer::Factory bundleFactory(ConfigBundle bundle);

}  // namespace explore
}  // namespace uqsim

#endif  // UQSIM_EXPLORE_EXPLORER_H_
