#ifndef UQSIM_EXPLORE_INVARIANT_H_
#define UQSIM_EXPLORE_INVARIANT_H_

/**
 * @file
 * User-declared invariants checked after every explored schedule.
 *
 * An invariant inspects the finished run (report, dispatcher
 * counters, completion timeline) and returns an empty string when
 * satisfied or a human-readable violation message when not.  The
 * explorer stops the offending schedule's classification at the
 * first violated invariant and emits the schedule as a replayable
 * file.
 *
 * Builtins cover the resilience properties the paper's fault studies
 * care about: goodput recovers after the fault window closes, every
 * circuit breaker re-closes, and no job or pooled resource leaks.
 */

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "uqsim/core/sim/report.h"
#include "uqsim/core/sim/simulation.h"

namespace uqsim {
namespace explore {

/** Everything an invariant may inspect about one finished run. */
struct InvariantContext {
    const RunReport& report;
    /** The finished simulation (dispatcher counters, latencies). */
    Simulation& sim;
    /** Sim-time (seconds) of every completion, warm-up included,
     *  in completion order. */
    const std::vector<double>& completionSeconds;
};

/** Returns "" when satisfied, a violation message otherwise. */
using InvariantFn = std::function<std::string(const InvariantContext&)>;

/** Named run property asserted over every explored schedule. */
struct Invariant {
    std::string name;
    InvariantFn check;
};

// Builtins ----------------------------------------------------------

/**
 * Goodput recovers after a fault window: at least @p minCompletions
 * requests complete within (@p afterSeconds, @p afterSeconds +
 * @p graceSeconds].  Violated when mitigation (retry storms, stuck
 * breakers) keeps the service down past the window.
 */
Invariant goodputRecovers(double afterSeconds, double graceSeconds,
                          std::uint64_t minCompletions);

/** Every circuit breaker is Closed again by the end of the run. */
Invariant breakerRecloses();

/** No leaked block or hop survives the run, and the request
 *  counters conserve jobs
 *  (started == completed + failed + shed + active). */
Invariant noJobLeaked();

}  // namespace explore
}  // namespace uqsim

#endif  // UQSIM_EXPLORE_INVARIANT_H_
