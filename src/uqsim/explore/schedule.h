#ifndef UQSIM_EXPLORE_SCHEDULE_H_
#define UQSIM_EXPLORE_SCHEDULE_H_

/**
 * @file
 * Replayable schedule files.
 *
 * A schedule is the complete decision record of one explored run: the
 * exploration limits that were in force (branching caps and jitter
 * step sizes — replay must use the same limits or the decision points
 * would not line up) plus the ordered list of decisions taken.  Given
 * the same configuration bundle, replaying a schedule reproduces the
 * run bit-identically; `expectedDigest` carries the original run's
 * trace digest so replays can prove it.
 *
 * File format: JSON, schema "uqsim-schedule-v1"; see docs/FORMATS.md
 * §"schedule file".  The 64-bit digest is stored as a hex string
 * because JSON numbers are doubles and would silently lose low bits.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "uqsim/core/engine/choice.h"
#include "uqsim/core/engine/sim_time.h"
#include "uqsim/json/json_value.h"

namespace uqsim {
namespace explore {

/** Schema tag of schedule files. */
inline constexpr const char* kScheduleSchema = "uqsim-schedule-v1";

/**
 * Branching caps and step sizes for the choice-point kinds.
 * A count <= 1 disables that kind entirely; the defaults disable
 * everything, so callers opt in to exactly the nondeterminism they
 * want perturbed.
 */
struct ExploreLimits {
    /** Max events considered per same-timestamp tie (EventTie). */
    int maxTieChoices = 1;
    /** Discrete fault-window onsets explored (FaultJitter). */
    int faultJitterChoices = 1;
    /** Onset shift per FaultJitter step (seconds). */
    double faultJitterStepSeconds = 0.0;
    /** Discrete resilience-timer nudges explored (TimerNudge). */
    int timerNudgeChoices = 1;
    /** Delay added per TimerNudge step (seconds). */
    double timerNudgeStepSeconds = 0.0;
    /** Surviving backup routes considered per failover
     *  (RouteFailover); capped further by how many actually
     *  survive. */
    int routeFailoverChoices = 1;
    /** Decisions recorded per run; later choice points silently take
     *  the default (they are counted, not explored). */
    std::size_t maxDecisions = 64;

    int choicesFor(ChoiceKind kind) const;
    SimTime stepFor(ChoiceKind kind) const;

    json::JsonValue toJson() const;
    /** @throws json::JsonError on missing/mistyped fields. */
    static ExploreLimits fromJson(const json::JsonValue& doc);
};

/** One decision: which option a choice point took. */
struct Decision {
    ChoiceKind kind = ChoiceKind::EventTie;
    /** Options that were available (EventTie tie-group size; the
     *  configured choice count for the jitter kinds). */
    int options = 0;
    int chosen = 0;
    /** Site label ("event-tie", "fault-window/crash", ...). */
    std::string label;
};

/** A replayable run: limits + decisions + expected outcome. */
struct Schedule {
    ExploreLimits limits;
    std::vector<Decision> choices;
    /** Trace digest of the recorded run (0 = unknown). */
    std::uint64_t expectedDigest = 0;
    /** Invariant violation that made this schedule interesting;
     *  empty for a clean run. */
    std::string violation;

    json::JsonValue toJson() const;
    /** @throws json::JsonError on schema mismatch or bad fields. */
    static Schedule fromJson(const json::JsonValue& doc);

    /** @throws std::runtime_error when the file cannot be written. */
    void save(const std::string& path) const;
    /** @throws std::runtime_error / json::JsonError on bad files. */
    static Schedule load(const std::string& path);
};

/** 64-bit digest <-> fixed-width lowercase hex ("%016x"). */
std::string digestToHex(std::uint64_t digest);
/** @throws std::invalid_argument on non-hex input. */
std::uint64_t digestFromHex(const std::string& hex);

}  // namespace explore
}  // namespace uqsim

#endif  // UQSIM_EXPLORE_SCHEDULE_H_
