#include "uqsim/explore/explorer.h"

#include <deque>
#include <unordered_set>
#include <utility>

#include "uqsim/core/engine/audit.h"
#include "uqsim/explore/choosers.h"
#include "uqsim/runner/run_journal.h"

namespace uqsim {
namespace explore {

namespace {

/** Mixes (state fingerprint, kind, option) into one prune key. */
std::uint64_t
pruneKey(std::uint64_t fingerprint, ChoiceKind kind, int option)
{
    std::uint64_t x = fingerprint;
    x ^= (static_cast<std::uint64_t>(kind) << 32) ^
         static_cast<std::uint64_t>(static_cast<unsigned>(option));
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return x;
}

runner::JournalEntry
journalEntry(const std::string& sweep, const ScheduleOutcome& outcome)
{
    runner::JournalEntry entry;
    entry.sweep = sweep;
    entry.point = outcome.index;
    entry.replication = 0;
    entry.qps = outcome.report.offeredQps;
    entry.seed = 0;
    if (outcome.status != runner::FailureKind::None) {
        entry.status = outcome.status;
        entry.error = outcome.error;
        return entry;
    }
    if (outcome.violated()) {
        // User invariants reuse the harness taxonomy: a violated
        // schedule journals as an invariant failure so resumed or
        // post-processed journals triage it like any other.
        entry.status = runner::FailureKind::InvariantViolation;
        entry.error = outcome.violation;
    }
    entry.traceDigest = outcome.digest;
    entry.achievedQps = outcome.report.achievedQps;
    entry.meanMs = outcome.report.endToEnd.meanMs;
    entry.p50Ms = outcome.report.endToEnd.p50Ms;
    entry.p95Ms = outcome.report.endToEnd.p95Ms;
    entry.p99Ms = outcome.report.endToEnd.p99Ms;
    entry.maxMs = outcome.report.endToEnd.maxMs;
    entry.completed = outcome.report.completed;
    entry.generated = outcome.report.generated;
    entry.events = outcome.report.events;
    return entry;
}

}  // namespace

const ScheduleOutcome*
ExploreResult::firstViolation() const
{
    for (const ScheduleOutcome& outcome : outcomes) {
        if (outcome.violated())
            return &outcome;
    }
    return nullptr;
}

Explorer::Explorer(Factory factory, ExploreOptions options)
    : factory_(std::move(factory)), options_(std::move(options))
{
}

void
Explorer::addInvariant(Invariant invariant)
{
    invariants_.push_back(std::move(invariant));
}

ScheduleOutcome
Explorer::runWith(Chooser& chooser, std::size_t index)
{
    ScheduleOutcome outcome;
    outcome.index = index;

    // A fresh mailbox per schedule: RunControl aborts are sticky, so
    // a budget abort must not poison the next schedule.  An external
    // control (watchdog, Ctrl-C) is shared and ends the whole loop.
    RunControl localControl;
    RunControl* control = options_.control;
    if (control == nullptr &&
        options_.maxEventsPerSchedule != 0) {
        localControl.setMaxEvents(options_.maxEventsPerSchedule);
        control = &localControl;
    }

    std::unique_ptr<Simulation> sim;
    std::vector<double> completionSeconds;
    try {
        sim = factory_(chooser);
        if (!sim || !sim->finalized()) {
            throw std::logic_error(
                "explorer factory must return a finalized "
                "Simulation with the chooser attached");
        }
        if (sim->sim().chooser() != &chooser) {
            throw std::logic_error(
                "explorer factory did not attach the chooser "
                "(call sim().setChooser() before finalize())");
        }
        if (control != nullptr)
            sim->setRunControl(control);
        Simulation* raw = sim.get();
        sim->setCompletionListener(
            [raw, &completionSeconds](const Job&, double) {
                completionSeconds.push_back(
                    simTimeToSeconds(raw->sim().now()));
            });
        outcome.report = sim->run();
        outcome.digest = raw->sim().traceDigest();
    } catch (...) {
        outcome.status =
            runner::classifyException(std::current_exception(),
                                      &outcome.error);
        if (sim) {
            outcome.digest = sim->sim().traceDigest();
            // Mirror the harness abort path: a cooperative abort
            // lands between events, so the engine must still audit
            // clean.  Corrupted bookkeeping outranks the timeout.
            const audit::AuditReport audit =
                sim->sim().auditEngine();
            if (!audit.violations.empty()) {
                outcome.status =
                    runner::FailureKind::InvariantViolation;
                outcome.error += "; post-abort audit: " +
                                 audit.violations.front();
            }
        }
        return outcome;
    }

    const InvariantContext ctx{outcome.report, *sim,
                               completionSeconds};
    for (const Invariant& invariant : invariants_) {
        const std::string message = invariant.check(ctx);
        if (!message.empty()) {
            outcome.violation = invariant.name + ": " + message;
            break;
        }
    }
    return outcome;
}

ScheduleOutcome
Explorer::runPrefix(const std::vector<int>& prefix)
{
    RecordingChooser chooser(options_.limits, prefix);
    ScheduleOutcome outcome = runWith(chooser, 0);
    outcome.decisions = chooser.decisions();
    outcome.fingerprints = chooser.fingerprints();
    outcome.truncatedDecisions = chooser.truncatedDecisions();
    return outcome;
}

ScheduleOutcome
Explorer::replay(const Schedule& schedule)
{
    ReplayChooser chooser(schedule);
    ScheduleOutcome outcome = runWith(chooser, 0);
    outcome.decisions = schedule.choices;
    if (chooser.divergences() != 0 && outcome.error.empty()) {
        outcome.error = std::to_string(chooser.divergences()) +
                        " decision(s) diverged from the schedule";
    }
    return outcome;
}

Schedule
Explorer::makeSchedule(const ScheduleOutcome& outcome) const
{
    Schedule schedule;
    schedule.limits = options_.limits;
    schedule.choices = outcome.decisions;
    schedule.expectedDigest = outcome.digest;
    schedule.violation = outcome.violation;
    return schedule;
}

ExploreResult
Explorer::explore()
{
    ExploreResult result;
    std::unique_ptr<runner::JournalWriter> journal;
    if (!options_.journalPath.empty()) {
        journal = std::make_unique<runner::JournalWriter>(
            options_.journalPath);
    }

    std::deque<std::vector<int>> frontier;
    frontier.push_back({});  // the all-defaults schedule
    std::unordered_set<std::uint64_t> enqueued;
    bool scheduleWritten = false;

    while (!frontier.empty() &&
           result.schedulesRun < options_.maxSchedules) {
        if (options_.control != nullptr &&
            options_.control->abortRequested() !=
                AbortReason::None &&
            result.schedulesRun > 0) {
            result.aborted = true;
            break;
        }
        std::vector<int> prefix;
        if (options_.depthFirst) {
            prefix = std::move(frontier.back());
            frontier.pop_back();
        } else {
            prefix = std::move(frontier.front());
            frontier.pop_front();
        }

        RecordingChooser chooser(options_.limits, prefix);
        ScheduleOutcome outcome =
            runWith(chooser, result.schedulesRun);
        outcome.decisions = chooser.decisions();
        outcome.fingerprints = chooser.fingerprints();
        outcome.truncatedDecisions = chooser.truncatedDecisions();
        ++result.schedulesRun;
        if (outcome.index == 0)
            result.defaultDigest = outcome.digest;
        if (outcome.violated()) {
            ++result.violations;
            if (!options_.scheduleOutPath.empty() &&
                !scheduleWritten) {
                makeSchedule(outcome).save(options_.scheduleOutPath);
                scheduleWritten = true;
            }
        }
        if (journal)
            journal->append(
                journalEntry(options_.sweepLabel, outcome));

        const bool externallyAborted =
            options_.control != nullptr &&
            options_.control->abortRequested() != AbortReason::None;

        // Expand only decisions first *discovered* by this run (the
        // prefix part was expanded when it was fresh).  Alternatives
        // are pruned when the same (state, kind, option) is already
        // queued or was already run — DPOR-lite.
        if (!externallyAborted &&
            outcome.status == runner::FailureKind::None) {
            for (std::size_t depth = prefix.size();
                 depth < outcome.decisions.size(); ++depth) {
                const Decision& decision = outcome.decisions[depth];
                for (int option = 1; option < decision.options;
                     ++option) {
                    if (option == decision.chosen)
                        continue;
                    if (options_.pruneVisited) {
                        const std::uint64_t key = pruneKey(
                            outcome.fingerprints[depth],
                            decision.kind, option);
                        if (!enqueued.insert(key).second) {
                            ++result.prunedAlternatives;
                            continue;
                        }
                    }
                    std::vector<int> next;
                    next.reserve(depth + 1);
                    for (std::size_t i = 0; i < depth; ++i)
                        next.push_back(outcome.decisions[i].chosen);
                    next.push_back(option);
                    frontier.push_back(std::move(next));
                }
            }
        }

        result.outcomes.push_back(std::move(outcome));
        if (externallyAborted) {
            result.aborted = true;
            break;
        }
    }
    result.frontierLeft = frontier.size();
    return result;
}

Explorer::Factory
bundleFactory(ConfigBundle bundle)
{
    return [bundle](Chooser& chooser) {
        auto simulation =
            std::make_unique<Simulation>(bundle.options);
        // The chooser must see the fault plan being scheduled, and
        // that happens inside finalize() — attach first.
        simulation->sim().setChooser(&chooser);
        simulation->loadMachinesJson(bundle.machines);
        for (const json::JsonValue& service : bundle.services)
            simulation->loadServiceJson(service);
        simulation->loadGraphJson(bundle.graph);
        simulation->loadPathJson(bundle.paths);
        simulation->loadClientJson(bundle.client);
        if (!bundle.faults.isNull())
            simulation->loadFaultsJson(bundle.faults);
        simulation->finalize();
        return simulation;
    };
}

}  // namespace explore
}  // namespace uqsim
