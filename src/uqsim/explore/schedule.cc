#include "uqsim/explore/schedule.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "uqsim/json/json_parser.h"
#include "uqsim/json/json_writer.h"

namespace uqsim {
namespace explore {

int
ExploreLimits::choicesFor(ChoiceKind kind) const
{
    switch (kind) {
      case ChoiceKind::EventTie: return maxTieChoices;
      case ChoiceKind::FaultJitter: return faultJitterChoices;
      case ChoiceKind::TimerNudge: return timerNudgeChoices;
      case ChoiceKind::RouteFailover: return routeFailoverChoices;
    }
    return 1;
}

SimTime
ExploreLimits::stepFor(ChoiceKind kind) const
{
    switch (kind) {
      case ChoiceKind::EventTie:
        return 0;
      case ChoiceKind::FaultJitter:
        return secondsToSimTime(faultJitterStepSeconds);
      case ChoiceKind::TimerNudge:
        return secondsToSimTime(timerNudgeStepSeconds);
      case ChoiceKind::RouteFailover:
        return 0;  // picks a path, not a time shift
    }
    return 0;
}

json::JsonValue
ExploreLimits::toJson() const
{
    json::JsonValue doc = json::JsonValue::makeObject();
    json::JsonObject& obj = doc.asObject();
    obj["max_tie_choices"] = maxTieChoices;
    obj["fault_jitter_choices"] = faultJitterChoices;
    obj["fault_jitter_step_s"] = faultJitterStepSeconds;
    obj["timer_nudge_choices"] = timerNudgeChoices;
    obj["timer_nudge_step_s"] = timerNudgeStepSeconds;
    obj["route_failover_choices"] = routeFailoverChoices;
    obj["max_decisions"] = static_cast<std::int64_t>(maxDecisions);
    return doc;
}

ExploreLimits
ExploreLimits::fromJson(const json::JsonValue& doc)
{
    ExploreLimits limits;
    limits.maxTieChoices = doc.getOr("max_tie_choices", 1);
    limits.faultJitterChoices = doc.getOr("fault_jitter_choices", 1);
    limits.faultJitterStepSeconds =
        doc.getOr("fault_jitter_step_s", 0.0);
    limits.timerNudgeChoices = doc.getOr("timer_nudge_choices", 1);
    limits.timerNudgeStepSeconds =
        doc.getOr("timer_nudge_step_s", 0.0);
    limits.routeFailoverChoices =
        doc.getOr("route_failover_choices", 1);
    limits.maxDecisions = static_cast<std::size_t>(
        doc.getOr("max_decisions", std::int64_t{64}));
    return limits;
}

json::JsonValue
Schedule::toJson() const
{
    json::JsonValue doc = json::JsonValue::makeObject();
    json::JsonObject& obj = doc.asObject();
    obj["schema"] = kScheduleSchema;
    obj["limits"] = limits.toJson();
    json::JsonArray decisions;
    decisions.reserve(choices.size());
    for (const Decision& d : choices) {
        json::JsonValue entry = json::JsonValue::makeObject();
        json::JsonObject& e = entry.asObject();
        e["kind"] = choiceKindName(d.kind);
        e["options"] = d.options;
        e["chosen"] = d.chosen;
        e["label"] = d.label;
        decisions.push_back(std::move(entry));
    }
    obj["choices"] = json::JsonValue(std::move(decisions));
    obj["expected_digest"] = digestToHex(expectedDigest);
    if (!violation.empty())
        obj["violation"] = violation;
    return doc;
}

Schedule
Schedule::fromJson(const json::JsonValue& doc)
{
    const std::string schema = doc.getOr("schema", "");
    if (schema != kScheduleSchema) {
        throw json::JsonError("schedule file schema is \"" + schema +
                              "\", expected \"" + kScheduleSchema +
                              "\"");
    }
    Schedule schedule;
    schedule.limits = ExploreLimits::fromJson(doc.at("limits"));
    for (const json::JsonValue& entry : doc.at("choices").asArray()) {
        Decision d;
        d.kind = choiceKindFromName(entry.at("kind").asString());
        d.options = static_cast<int>(entry.at("options").asInt());
        d.chosen = static_cast<int>(entry.at("chosen").asInt());
        d.label = entry.getOr("label", "");
        if (d.chosen < 0 || d.chosen >= d.options) {
            throw json::JsonError(
                "schedule decision chose option " +
                std::to_string(d.chosen) + " of " +
                std::to_string(d.options));
        }
        schedule.choices.push_back(std::move(d));
    }
    schedule.expectedDigest =
        digestFromHex(doc.getOr("expected_digest", "0"));
    schedule.violation = doc.getOr("violation", "");
    return schedule;
}

void
Schedule::save(const std::string& path) const
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("cannot write schedule file: " +
                                 path);
    out << json::writePretty(toJson()) << "\n";
    if (!out)
        throw std::runtime_error("failed writing schedule file: " +
                                 path);
}

Schedule
Schedule::load(const std::string& path)
{
    return fromJson(json::parseFile(path));
}

std::string
digestToHex(std::uint64_t digest)
{
    static const char* kDigits = "0123456789abcdef";
    std::string hex(16, '0');
    for (int i = 15; i >= 0; --i) {
        hex[static_cast<std::size_t>(i)] =
            kDigits[digest & 0xF];
        digest >>= 4;
    }
    return hex;
}

std::uint64_t
digestFromHex(const std::string& hex)
{
    if (hex.empty() || hex.size() > 16)
        throw std::invalid_argument("bad digest hex: \"" + hex +
                                    "\"");
    std::uint64_t value = 0;
    for (const char c : hex) {
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F')
            digit = c - 'A' + 10;
        else
            throw std::invalid_argument("bad digest hex: \"" + hex +
                                        "\"");
        value = (value << 4) | static_cast<std::uint64_t>(digit);
    }
    return value;
}

}  // namespace explore
}  // namespace uqsim
