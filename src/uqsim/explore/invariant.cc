#include "uqsim/explore/invariant.h"

#include <string>

namespace uqsim {
namespace explore {

Invariant
goodputRecovers(double afterSeconds, double graceSeconds,
                std::uint64_t minCompletions)
{
    Invariant inv;
    inv.name = "goodput-recovers";
    inv.check = [afterSeconds, graceSeconds,
                 minCompletions](const InvariantContext& ctx) {
        const double deadline = afterSeconds + graceSeconds;
        std::uint64_t recovered = 0;
        for (const double t : ctx.completionSeconds) {
            if (t > afterSeconds && t <= deadline)
                ++recovered;
        }
        if (recovered >= minCompletions)
            return std::string();
        return std::to_string(recovered) +
               " completion(s) in recovery window (" +
               std::to_string(afterSeconds) + "s, " +
               std::to_string(deadline) + "s], need " +
               std::to_string(minCompletions);
    };
    return inv;
}

Invariant
breakerRecloses()
{
    Invariant inv;
    inv.name = "breaker-recloses";
    inv.check = [](const InvariantContext& ctx) {
        const std::size_t open = ctx.sim.dispatcher().openBreakers();
        if (open == 0)
            return std::string();
        return std::to_string(open) +
               " circuit breaker(s) still open after the run";
    };
    return inv;
}

Invariant
noJobLeaked()
{
    Invariant inv;
    inv.name = "no-job-leaked";
    inv.check = [](const InvariantContext& ctx) {
        Dispatcher& d = ctx.sim.dispatcher();
        if (d.leakedBlocks() != 0 || d.leakedHops() != 0) {
            return std::to_string(d.leakedBlocks()) +
                   " leaked block(s), " +
                   std::to_string(d.leakedHops()) +
                   " leaked hop(s)";
        }
        // Requests still in flight when the duration limit lands are
        // not leaks — they are counted on the active side of the
        // conservation ledger.
        const std::uint64_t accounted =
            d.requestsCompleted() + d.requestsFailed() +
            d.requestsShed() + d.activeRequests();
        if (d.requestsStarted() != accounted) {
            return "job conservation broken: started " +
                   std::to_string(d.requestsStarted()) +
                   " != completed+failed+shed+active " +
                   std::to_string(accounted);
        }
        return std::string();
    };
    return inv;
}

}  // namespace explore
}  // namespace uqsim
