#ifndef UQSIM_EXPLORE_CHOOSERS_H_
#define UQSIM_EXPLORE_CHOOSERS_H_

/**
 * @file
 * The two Chooser implementations the explorer drives runs with.
 *
 * RecordingChooser plays a fixed decision prefix and then answers
 * "default" (option 0) for every later choice point, recording the
 * full decision sequence plus a state fingerprint at each decision —
 * the raw material for the explorer's frontier expansion and revisit
 * pruning.  ReplayChooser strictly follows a saved Schedule and
 * counts divergences instead of crashing, so a stale schedule file
 * fails loudly (digest mismatch + divergence count) rather than
 * undefined-behaviorally.
 */

#include <cstdint>
#include <vector>

#include "uqsim/core/engine/choice.h"
#include "uqsim/core/engine/simulator.h"
#include "uqsim/explore/schedule.h"

namespace uqsim {
namespace explore {

/** Plays a prefix, defaults after it, records everything. */
class RecordingChooser : public Chooser {
  public:
    RecordingChooser(const ExploreLimits& limits,
                     std::vector<int> prefix)
        : limits_(limits), prefix_(std::move(prefix))
    {
    }

    void attach(Simulator& sim) override { sim_ = &sim; }

    int
    choose(ChoiceKind kind, int options, const char* label) override
    {
        if (decisions_.size() >= limits_.maxDecisions) {
            // Beyond the recorded-decision budget the run silently
            // takes defaults; count so diagnostics can report how
            // much of the space the cap hid.
            ++truncatedDecisions_;
            return 0;
        }
        int pick = 0;
        if (decisions_.size() < prefix_.size()) {
            pick = prefix_[decisions_.size()];
            if (pick >= options)
                pick = options - 1;  // tie group shrank; stay valid
        }
        fingerprints_.push_back(sim_ != nullptr
                                    ? sim_->stateFingerprint()
                                    : 0);
        decisions_.push_back(
            Decision{kind, options, pick, label});
        return pick;
    }

    int
    maxChoices(ChoiceKind kind) const override
    {
        return limits_.choicesFor(kind);
    }

    SimTime
    jitterStep(ChoiceKind kind) const override
    {
        return limits_.stepFor(kind);
    }

    /** Decisions taken, in order (prefix replays included). */
    const std::vector<Decision>& decisions() const
    {
        return decisions_;
    }
    /** Simulator state fingerprint *before* each decision; aligned
     *  with decisions(). */
    const std::vector<std::uint64_t>& fingerprints() const
    {
        return fingerprints_;
    }
    /** Choice points that fell past maxDecisions. */
    std::uint64_t truncatedDecisions() const
    {
        return truncatedDecisions_;
    }

  private:
    ExploreLimits limits_;
    std::vector<int> prefix_;
    Simulator* sim_ = nullptr;
    std::vector<Decision> decisions_;
    std::vector<std::uint64_t> fingerprints_;
    std::uint64_t truncatedDecisions_ = 0;
};

/** Strictly follows a saved schedule; defaults past its end. */
class ReplayChooser : public Chooser {
  public:
    explicit ReplayChooser(const Schedule& schedule)
        : schedule_(schedule)
    {
    }

    void attach(Simulator& sim) override { (void)sim; }

    int
    choose(ChoiceKind kind, int options, const char* label) override
    {
        (void)label;
        const std::size_t index = next_++;
        if (index >= schedule_.choices.size())
            return 0;  // recorded run also defaulted past its record
        const Decision& d = schedule_.choices[index];
        if (d.kind != kind || d.chosen >= options) {
            ++divergences_;
            return 0;
        }
        return d.chosen;
    }

    int
    maxChoices(ChoiceKind kind) const override
    {
        return schedule_.limits.choicesFor(kind);
    }

    SimTime
    jitterStep(ChoiceKind kind) const override
    {
        return schedule_.limits.stepFor(kind);
    }

    /** Choice points consumed so far. */
    std::size_t consumed() const { return next_; }
    /** Decisions that did not match the run (kind or range); a
     *  faithful replay has zero. */
    std::size_t divergences() const { return divergences_; }

  private:
    const Schedule& schedule_;
    std::size_t next_ = 0;
    std::size_t divergences_ = 0;
};

}  // namespace explore
}  // namespace uqsim

#endif  // UQSIM_EXPLORE_CHOOSERS_H_
