#include "uqsim/power/qos_bucket.h"

#include <algorithm>
#include <stdexcept>

namespace uqsim {
namespace power {

namespace {

constexpr double kRewardFactor = 1.1;
constexpr double kPenaltyFactor = 0.5;
constexpr double kMaxPreference = 100.0;
constexpr double kMinPreference = 1e-3;
constexpr std::size_t kMaxTuplesPerBucket = 64;

}  // namespace

bool
noMoreRelaxedThan(const TierTuple& a, const TierTuple& b)
{
    if (a.size() != b.size())
        throw std::invalid_argument("tier tuple size mismatch");
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] > b[i])
            return false;
    }
    return true;
}

QosBucket::QosBucket(double lower, double upper)
    : lower_(lower), upper_(upper)
{
    if (lower < 0.0 || upper <= lower)
        throw std::invalid_argument("invalid bucket bounds");
}

bool
QosBucket::insert(const TierTuple& tuple)
{
    // Reject tuples at least as relaxed as a known-failing target.
    for (const TierTuple& failed : failing_) {
        if (noMoreRelaxedThan(failed, tuple))
            return false;
    }
    if (tuples_.size() >= kMaxTuplesPerBucket)
        tuples_.erase(tuples_.begin());
    tuples_.push_back(tuple);
    return true;
}

void
QosBucket::recordFailure(const TierTuple& tuple)
{
    failing_.push_back(tuple);
    // Drop stored tuples invalidated by the new failure.
    tuples_.erase(std::remove_if(tuples_.begin(), tuples_.end(),
                                 [&](const TierTuple& t) {
                                     return noMoreRelaxedThan(tuple, t);
                                 }),
                  tuples_.end());
    if (failing_.size() > kMaxTuplesPerBucket)
        failing_.erase(failing_.begin());
}

void
QosBucket::reward()
{
    preference_ = std::min(preference_ * kRewardFactor, kMaxPreference);
}

void
QosBucket::penalize()
{
    preference_ = std::max(preference_ * kPenaltyFactor, kMinPreference);
}

const TierTuple&
QosBucket::sampleTuple(random::Rng& rng) const
{
    if (tuples_.empty())
        throw std::logic_error("sampleTuple on empty bucket");
    return tuples_[static_cast<std::size_t>(
        rng.nextBounded(tuples_.size()))];
}

QosBucketTable::QosBucketTable(double qos_target, int bucket_count)
{
    if (qos_target <= 0.0)
        throw std::invalid_argument("QoS target must be > 0");
    if (bucket_count <= 0)
        throw std::invalid_argument("bucket count must be > 0");
    const double width = qos_target / bucket_count;
    buckets_.reserve(static_cast<std::size_t>(bucket_count));
    for (int i = 0; i < bucket_count; ++i)
        buckets_.emplace_back(i * width, (i + 1) * width);
}

std::size_t
QosBucketTable::classify(double latency) const
{
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i].contains(latency))
            return i;
    }
    return buckets_.size() - 1;
}

std::size_t
QosBucketTable::choose(random::Rng& rng) const
{
    double total = 0.0;
    for (const QosBucket& bucket : buckets_) {
        if (!bucket.empty())
            total += bucket.preference();
    }
    if (total <= 0.0)
        return buckets_.size();
    double draw = rng.nextDouble() * total;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i].empty())
            continue;
        draw -= buckets_[i].preference();
        if (draw <= 0.0)
            return i;
    }
    for (std::size_t i = buckets_.size(); i-- > 0;) {
        if (!buckets_[i].empty())
            return i;
    }
    return buckets_.size();
}

}  // namespace power
}  // namespace uqsim
