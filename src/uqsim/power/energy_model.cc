#include "uqsim/power/energy_model.h"

#include <cmath>
#include <stdexcept>

namespace uqsim {
namespace power {

EnergyTracker::EnergyTracker(Simulator& sim, hw::DvfsDomain& domain,
                             int cores, const EnergyModelConfig& config)
    : sim_(sim), domain_(domain), cores_(cores), config_(config),
      startTime_(sim.now()), lastUpdate_(sim.now()),
      currentFrequency_(domain.frequency())
{
    if (cores <= 0)
        throw std::invalid_argument("energy tracker needs > 0 cores");
    domain_.onChange([this](const hw::DvfsDomain& changed) {
        accumulate();
        currentFrequency_ = changed.frequency();
    });
}

double
EnergyTracker::wattsAt(double frequency_ghz) const
{
    const double ratio = frequency_ghz / domain_.table().nominal();
    return static_cast<double>(cores_) *
           (config_.staticWatts +
            config_.dynamicWattsNominal * ratio * ratio * ratio);
}

void
EnergyTracker::accumulate() const
{
    const SimTime now = sim_.now();
    if (now > lastUpdate_) {
        joules_ += wattsAt(currentFrequency_) *
                   simTimeToSeconds(now - lastUpdate_);
        lastUpdate_ = now;
    }
}

double
EnergyTracker::currentWatts() const
{
    return wattsAt(currentFrequency_);
}

double
EnergyTracker::nominalWatts() const
{
    return wattsAt(domain_.table().nominal());
}

double
EnergyTracker::consumedJoules() const
{
    accumulate();
    return joules_;
}

double
EnergyTracker::nominalJoules() const
{
    return nominalWatts() * simTimeToSeconds(sim_.now() - startTime_);
}

double
EnergyTracker::savingsFraction() const
{
    const double nominal = nominalJoules();
    if (nominal <= 0.0)
        return 0.0;
    return 1.0 - consumedJoules() / nominal;
}

}  // namespace power
}  // namespace uqsim
