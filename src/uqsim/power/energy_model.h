#ifndef UQSIM_POWER_ENERGY_MODEL_H_
#define UQSIM_POWER_ENERGY_MODEL_H_

/**
 * @file
 * Core power/energy accounting for DVFS domains.
 *
 * A simple cubic dynamic-power model per core:
 *
 *   P(f) = P_static + P_dyn_nominal * (f / f_nominal)^3
 *
 * (voltage scales roughly linearly with frequency over the DVFS
 * range, so dynamic power C*V^2*f scales ~f^3).  The tracker
 * integrates power over time as the domain's frequency changes, so
 * benches can report the energy saved by Algorithm 1 relative to
 * running at nominal frequency.
 */

#include <string>
#include <vector>

#include "uqsim/core/engine/simulator.h"
#include "uqsim/hw/dvfs.h"

namespace uqsim {
namespace power {

/** Power model parameters (per core). */
struct EnergyModelConfig {
    /** Static/leakage power per core (watts). */
    double staticWatts = 2.0;
    /** Dynamic power per core at nominal frequency (watts). */
    double dynamicWattsNominal = 8.0;
};

/** Tracks energy use of one DVFS domain covering @p cores cores. */
class EnergyTracker {
  public:
    /**
     * Subscribes to @p domain frequency changes; integration starts
     * at the current simulation time.
     */
    EnergyTracker(Simulator& sim, hw::DvfsDomain& domain, int cores,
                  const EnergyModelConfig& config = {});

    /** Instantaneous power draw at the current frequency (watts). */
    double currentWatts() const;

    /** Power draw the domain would have at nominal frequency. */
    double nominalWatts() const;

    /** Energy consumed so far (joules). */
    double consumedJoules() const;

    /** Energy a nominal-frequency run would have used (joules). */
    double nominalJoules() const;

    /** Fraction of nominal energy saved so far, in [0, 1). */
    double savingsFraction() const;

  private:
    double wattsAt(double frequency_ghz) const;
    void accumulate() const;

    Simulator& sim_;
    hw::DvfsDomain& domain_;
    int cores_;
    EnergyModelConfig config_;
    SimTime startTime_;
    mutable SimTime lastUpdate_;
    mutable double joules_ = 0.0;
    mutable double currentFrequency_;
};

}  // namespace power
}  // namespace uqsim

#endif  // UQSIM_POWER_ENERGY_MODEL_H_
