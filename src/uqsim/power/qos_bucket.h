#ifndef UQSIM_POWER_QOS_BUCKET_H_
#define UQSIM_POWER_QOS_BUCKET_H_

/**
 * @file
 * Bucketed per-tier QoS learning state for Algorithm 1.
 *
 * The tail-latency space below the end-to-end QoS target is divided
 * into buckets.  Each bucket collects per-tier latency tuples
 * observed while the end-to-end target was met, keeps a list of
 * tuples that *failed* when used as targets, and carries a
 * preference weight the scheduler adjusts as it learns which buckets
 * reliably meet QoS (paper §V-B).
 */

#include <cstddef>
#include <vector>

#include "uqsim/random/rng.h"

namespace uqsim {
namespace power {

/** Per-tier latency tuple (seconds, one entry per tier, fixed order). */
using TierTuple = std::vector<double>;

/** True when every component of @p a is <= the matching one in @p b. */
bool noMoreRelaxedThan(const TierTuple& a, const TierTuple& b);

/** One end-to-end latency range. */
class QosBucket {
  public:
    QosBucket(double lower, double upper);

    double lower() const { return lower_; }
    double upper() const { return upper_; }
    bool contains(double value) const
    {
        return value >= lower_ && value < upper_;
    }

    /**
     * Inserts @p tuple unless it is more relaxed than some failing
     * tuple (i.e. it is rejected when any failing tuple is
     * componentwise <= it).  Returns whether it was inserted.
     */
    bool insert(const TierTuple& tuple);

    /** Records @p tuple as a failed target. */
    void recordFailure(const TierTuple& tuple);

    /** Scales the preference up (success). */
    void reward();
    /** Scales the preference down (violation). */
    void penalize();

    double preference() const { return preference_; }
    bool empty() const { return tuples_.empty(); }
    std::size_t tupleCount() const { return tuples_.size(); }
    std::size_t failureCount() const { return failing_.size(); }

    /** Uniformly samples one stored tuple; bucket must be non-empty. */
    const TierTuple& sampleTuple(random::Rng& rng) const;

  private:
    double lower_;
    double upper_;
    std::vector<TierTuple> tuples_;
    std::vector<TierTuple> failing_;
    double preference_ = 1.0;
};

/** The full bucket table over [0, qos_target). */
class QosBucketTable {
  public:
    /**
     * @param qos_target  end-to-end tail-latency target (seconds)
     * @param bucket_count number of equal-width buckets
     */
    QosBucketTable(double qos_target, int bucket_count);

    std::size_t size() const { return buckets_.size(); }
    QosBucket& bucket(std::size_t index) { return buckets_[index]; }
    const QosBucket& bucket(std::size_t index) const
    {
        return buckets_[index];
    }

    /** Index of the bucket containing @p latency; the last bucket
     *  absorbs values in [target, infinity) for bookkeeping. */
    std::size_t classify(double latency) const;

    /**
     * Samples a bucket index weighted by preference among non-empty
     * buckets; returns size() when every bucket is empty.
     */
    std::size_t choose(random::Rng& rng) const;

  private:
    std::vector<QosBucket> buckets_;
};

}  // namespace power
}  // namespace uqsim

#endif  // UQSIM_POWER_QOS_BUCKET_H_
