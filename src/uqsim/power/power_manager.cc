#include "uqsim/power/power_manager.h"

#include <stdexcept>

namespace uqsim {
namespace power {

PowerManager::PowerManager(Simulator& sim,
                           const PowerManagerConfig& config,
                           std::vector<TierControl> tiers)
    : sim_(sim), config_(config), tiers_(std::move(tiers)),
      rng_(sim.masterSeed(), "power-manager"),
      buckets_(config.qosTargetSeconds, config.bucketCount),
      targetBucket_(buckets_.size()), tailSeries_("end2end_p99_ms")
{
    if (tiers_.empty())
        throw std::invalid_argument("power manager needs >= 1 tier");
    if (config.intervalSeconds <= 0.0)
        throw std::invalid_argument("decision interval must be > 0");
    tierWindows_.resize(tiers_.size());
    for (std::size_t i = 0; i < tiers_.size(); ++i) {
        if (tiers_[i].domains.empty()) {
            throw std::invalid_argument("tier \"" + tiers_[i].service +
                                        "\" controls no DVFS domains");
        }
        tierIndex_[tiers_[i].service] = i;
        freqSeries_.emplace_back(tiers_[i].service + "_ghz");
    }
    // Initial per-tier targets: an even split of the end-to-end QoS.
    targets_.assign(tiers_.size(),
                    config.qosTargetSeconds /
                        static_cast<double>(tiers_.size()));
}

void
PowerManager::noteEndToEnd(double seconds)
{
    endToEndWindow_.add(seconds);
}

void
PowerManager::noteTierLatency(const std::string& service, double seconds)
{
    const auto it = tierIndex_.find(service);
    if (it != tierIndex_.end())
        tierWindows_[it->second].add(seconds);
}

void
PowerManager::start()
{
    recordFrequencies();
    sim_.scheduleAfter(secondsToSimTime(config_.intervalSeconds),
                       [this]() { decide(); }, "power/decide");
}

const stats::TimeSeries&
PowerManager::frequencySeries(const std::string& service) const
{
    const auto it = tierIndex_.find(service);
    if (it == tierIndex_.end())
        throw std::out_of_range("unknown tier: " + service);
    return freqSeries_[it->second];
}

double
PowerManager::violationRate() const
{
    return windows_ > 0
               ? static_cast<double>(violations_) /
                     static_cast<double>(windows_)
               : 0.0;
}

void
PowerManager::applyFrequencyStep(std::size_t tier, bool up)
{
    for (hw::DvfsDomain* domain : tiers_[tier].domains) {
        if (up) {
            domain->stepUp();
        } else {
            domain->stepDown();
        }
    }
}

void
PowerManager::recordFrequencies()
{
    const double now = simTimeToSeconds(sim_.now());
    for (std::size_t i = 0; i < tiers_.size(); ++i) {
        freqSeries_[i].add(now,
                           tiers_[i].domains.front()->frequency());
    }
}

void
PowerManager::chooseNewTarget()
{
    const std::size_t chosen = buckets_.choose(rng_);
    if (chosen >= buckets_.size())
        return;  // nothing learned yet; keep current targets
    targetBucket_ = chosen;
    targets_ = buckets_.bucket(chosen).sampleTuple(rng_);
}

void
PowerManager::decide()
{
    const stats::WindowStats end_to_end = endToEndWindow_.close();
    std::vector<stats::WindowStats> tier_stats(tiers_.size());
    TierTuple observed(tiers_.size(), 0.0);
    for (std::size_t i = 0; i < tiers_.size(); ++i) {
        tier_stats[i] = tierWindows_[i].close();
        observed[i] = tier_stats[i].p99;
    }

    if (end_to_end.count >= config_.minWindowSamples) {
        ++windows_;
        tailSeries_.add(simTimeToSeconds(sim_.now()),
                        end_to_end.p99 * 1e3);

        if (end_to_end.p99 < config_.qosTargetSeconds) {
            // --- QoS met (Algorithm 1, lines 5-14) ---
            const std::size_t bucket_index =
                buckets_.classify(end_to_end.p99);
            QosBucket& bucket = buckets_.bucket(bucket_index);
            bucket.insert(observed);
            bucket.reward();
            if (++cyclesSinceRetarget_ >= config_.retargetCycles) {
                cyclesSinceRetarget_ = 0;
                chooseNewTarget();
            }
            // Slow down at most one tier: the one with most slack.
            std::size_t best_tier = tiers_.size();
            double best_slack = config_.slackThreshold;
            for (std::size_t i = 0; i < tiers_.size(); ++i) {
                if (tier_stats[i].count == 0 || targets_[i] <= 0.0)
                    continue;
                const double slack =
                    (targets_[i] - observed[i]) / targets_[i];
                if (slack > best_slack &&
                    !tiers_[i].domains.front()->atLowest()) {
                    best_slack = slack;
                    best_tier = i;
                }
            }
            if (best_tier < tiers_.size()) {
                for (int step = 0; step < config_.slowDownSteps;
                     ++step) {
                    applyFrequencyStep(best_tier, /*up=*/false);
                }
            }
        } else {
            // --- QoS violated (Algorithm 1, lines 15-21) ---
            ++violations_;
            if (targetBucket_ < buckets_.size()) {
                QosBucket& bucket = buckets_.bucket(targetBucket_);
                bucket.penalize();
                bucket.recordFailure(targets_);
            }
            chooseNewTarget();
            for (std::size_t i = 0; i < tiers_.size(); ++i) {
                if (tier_stats[i].count == 0)
                    continue;
                if (observed[i] > targets_[i]) {
                    for (int step = 0; step < config_.speedUpSteps;
                         ++step) {
                        applyFrequencyStep(i, /*up=*/true);
                    }
                }
            }
        }
        recordFrequencies();
    }

    sim_.scheduleAfter(secondsToSimTime(config_.intervalSeconds),
                       [this]() { decide(); }, "power/decide");
}

}  // namespace power
}  // namespace uqsim
