#ifndef UQSIM_POWER_POWER_MANAGER_H_
#define UQSIM_POWER_POWER_MANAGER_H_

/**
 * @file
 * QoS-aware DVFS power manager (Algorithm 1, paper §V-B).
 *
 * The manager divides the end-to-end QoS requirement into per-tier
 * QoS requirements using the learned bucket table.  Every decision
 * interval it inspects the tail latency observed in that window:
 *
 *  - QoS met: record the per-tier tuple in its bucket (unless it is
 *    more relaxed than a known-failing target), reward the bucket,
 *    periodically re-choose the target bucket and per-tier targets,
 *    and slow down *at most one* tier — the one with the largest
 *    latency slack.
 *  - QoS violated: penalize the target bucket, record the current
 *    target as failing, choose a new target, and speed up every tier
 *    whose latency exceeds its per-tier target.
 */

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "uqsim/core/engine/simulator.h"
#include "uqsim/hw/dvfs.h"
#include "uqsim/power/qos_bucket.h"
#include "uqsim/stats/time_series.h"
#include "uqsim/stats/windowed_tail_tracker.h"

namespace uqsim {
namespace power {

/** Manager parameters. */
struct PowerManagerConfig {
    /** Decision interval (seconds); the paper sweeps 0.1-1 s. */
    double intervalSeconds = 0.5;
    /** End-to-end tail-latency (p99) target in seconds. */
    double qosTargetSeconds = 5e-3;
    /** Number of latency buckets over [0, target). */
    int bucketCount = 10;
    /** Re-choose the target bucket every this many met-QoS cycles
     *  ("CycleCount > Interval" in Algorithm 1). */
    int retargetCycles = 8;
    /** Minimum relative slack before a tier is slowed down. */
    double slackThreshold = 0.15;
    /** Frequency steps applied per tier when reacting to a
     *  violation.  The paper's Algorithm 1 steps once per decision;
     *  larger values trade energy for fewer violations. */
    int speedUpSteps = 1;
    /** Frequency steps applied to the slowed tier when QoS is met
     *  with slack.  Scale together with speedUpSteps when using a
     *  fine-grained (RAPL-like) frequency table so the per-decision
     *  frequency delta stays comparable. */
    int slowDownSteps = 1;
    /** Minimum samples in a window to act on it. */
    std::size_t minWindowSamples = 20;
};

/** One controlled tier: a name plus the DVFS domains it spans. */
struct TierControl {
    std::string service;
    std::vector<hw::DvfsDomain*> domains;
};

/** The runtime power manager. */
class PowerManager {
  public:
    /**
     * @param sim     owning simulator
     * @param config  algorithm parameters
     * @param tiers   controlled tiers in a fixed order (the tuple
     *                order of the bucket table)
     */
    PowerManager(Simulator& sim, const PowerManagerConfig& config,
                 std::vector<TierControl> tiers);

    /** Feeds one end-to-end latency observation (seconds). */
    void noteEndToEnd(double seconds);

    /** Feeds one per-tier latency observation (seconds). */
    void noteTierLatency(const std::string& service, double seconds);

    /** Schedules the periodic decision loop. */
    void start();

    // -- outputs for Fig. 16 / Table III ---------------------------

    /** p99 per decision window (ms). */
    const stats::TimeSeries& tailSeries() const { return tailSeries_; }

    /** Frequency setting over time for tier @p service (GHz). */
    const stats::TimeSeries& frequencySeries(
        const std::string& service) const;

    /** Decision windows evaluated so far. */
    std::uint64_t windows() const { return windows_; }
    /** Windows whose p99 violated the QoS target. */
    std::uint64_t violations() const { return violations_; }
    /** Violated fraction of evaluated windows. */
    double violationRate() const;

    const QosBucketTable& buckets() const { return buckets_; }
    const TierTuple& currentTargets() const { return targets_; }

  private:
    void decide();
    void applyFrequencyStep(std::size_t tier, bool up);
    void recordFrequencies();
    void chooseNewTarget();

    Simulator& sim_;
    PowerManagerConfig config_;
    std::vector<TierControl> tiers_;
    std::map<std::string, std::size_t> tierIndex_;
    random::RngStream rng_;
    QosBucketTable buckets_;
    stats::WindowedTailTracker endToEndWindow_;
    std::vector<stats::WindowedTailTracker> tierWindows_;
    TierTuple targets_;
    std::size_t targetBucket_;
    int cyclesSinceRetarget_ = 0;
    std::uint64_t windows_ = 0;
    std::uint64_t violations_ = 0;
    stats::TimeSeries tailSeries_;
    std::vector<stats::TimeSeries> freqSeries_;
};

}  // namespace power
}  // namespace uqsim

#endif  // UQSIM_POWER_POWER_MANAGER_H_
