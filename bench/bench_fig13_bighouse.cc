/**
 * @file
 * Reproduces Fig. 13: µqSim vs BigHouse.
 *
 * Two applications are simulated both ways: a single-process NGINX
 * webserver and a 4-thread memcached.  BigHouse models each as a
 * single queue whose service time is the sum of all stage costs, so
 * the epoll cost is charged in full to every request; µqSim
 * amortizes it across the batch as the real system does.
 *
 * Expected shape (paper §IV-E): µqSim tracks the real saturation
 * point; BigHouse saturates at lower load and overestimates tail
 * latency.  The gap grows with the ratio of event-handling overhead
 * to request processing time (large for memcached's microsecond
 * requests, small for NGINX's ~100 us static serving).
 */

#include "bench_util.h"
#include "uqsim/bighouse/bighouse.h"
#include "uqsim/json/json_parser.h"
#include "uqsim/models/applications.h"
#include "uqsim/models/memcached.h"
#include "uqsim/models/nginx.h"
#include "uqsim/models/stage_presets.h"
#include "uqsim/random/distributions.h"

using namespace uqsim;

namespace {

/** Builds a client -> single-service bundle (no other tiers). */
ConfigBundle
singleServiceBundle(json::JsonValue service_json,
                    const std::string& service,
                    const std::string& path, double qps,
                    std::uint64_t seed = 1)
{
    using json::JsonArray;
    using json::JsonValue;
    ConfigBundle bundle;
    bundle.options.seed = seed;
    bundle.options.warmupSeconds = 0.4;
    bundle.options.durationSeconds = 1.9;

    const int threads =
        static_cast<int>(service_json.at("threads").asInt());
    bundle.services.push_back(std::move(service_json));

    // Light irq so the comparison is server-bound on both sides
    // (the BigHouse station has no network path at all).
    bundle.machines = json::parse(R"({
        "wire_latency_us": 20, "loopback_latency_us": 5,
        "machines": [{"name": "server0", "cores": 12, "irq_cores": 4,
                      "irq_per_packet_us": 2.0}]})");

    JsonValue inst = JsonValue::makeObject();
    inst.asObject()["machine"] = "server0";
    inst.asObject()["threads"] = threads;
    JsonArray instances;
    instances.push_back(std::move(inst));
    JsonValue svc = JsonValue::makeObject();
    svc.asObject()["service"] = service;
    svc.asObject()["instances"] = JsonValue(std::move(instances));
    JsonArray services;
    services.push_back(std::move(svc));
    JsonValue graph = JsonValue::makeObject();
    graph.asObject()["services"] = JsonValue(std::move(services));
    bundle.graph = std::move(graph);

    JsonValue node = JsonValue::makeObject();
    node.asObject()["node_id"] = 0;
    node.asObject()["service"] = service;
    node.asObject()["path"] = path;
    node.asObject()["children"] = JsonValue(JsonArray{});
    JsonArray nodes;
    nodes.push_back(std::move(node));
    JsonValue variant = JsonValue::makeObject();
    variant.asObject()["probability"] = 1.0;
    variant.asObject()["nodes"] = JsonValue(std::move(nodes));
    JsonArray variants;
    variants.push_back(std::move(variant));
    JsonValue paths = JsonValue::makeObject();
    paths.asObject()["paths"] = JsonValue(std::move(variants));
    bundle.paths = std::move(paths);

    JsonValue client = JsonValue::makeObject();
    client.asObject()["front_service"] = service;
    client.asObject()["connections"] = 320;
    client.asObject()["arrival"] = "poisson";
    JsonValue load = JsonValue::makeObject();
    load.asObject()["type"] = "constant";
    load.asObject()["qps"] = qps;
    client.asObject()["load"] = std::move(load);
    JsonValue bytes = JsonValue::makeObject();
    bytes.asObject()["type"] = "exponential";
    bytes.asObject()["mean"] = 128.0;
    client.asObject()["request_bytes"] = std::move(bytes);
    bundle.client = std::move(client);
    return bundle;
}

SweepCurve
bigHouseSweep(const std::string& label, double per_request_us,
              int servers, const std::vector<double>& loads)
{
    SweepCurve curve;
    curve.label = label;
    for (double qps : loads) {
        bighouse::BigHouseOptions options;
        options.seed = 1;
        options.warmupSeconds = 0.4;
        options.durationSeconds = 1.9;
        bighouse::BigHouseSimulation sim(options);
        sim.addStation(
            {label, servers,
             std::make_shared<random::ExponentialDistribution>(
                 per_request_us * 1e-6)});
        SweepPoint point;
        point.offeredQps = qps;
        point.report = sim.run(qps);
        curve.points.push_back(std::move(point));
    }
    return curve;
}

}  // namespace

int
main()
{
    using namespace models;

    // ---------------- memcached panel ----------------
    bench::banner("Fig. 13 (memcached)",
                  "uqsim vs BigHouse: 4-thread memcached");
    const std::vector<double> mc_loads =
        linspace(50000.0, 400000.0, 8);
    const SweepCurve mc_uqsim = bench::parallelSweep(
        "uqsim", mc_loads, [&](double qps, std::uint64_t seed) {
            MemcachedOptions options;
            options.threads = 4;
            return Simulation::fromBundle(singleServiceBundle(
                memcachedServiceJson(options), "memcached",
                "memcached_read", qps, seed));
        });
    // BigHouse: full per-request cost = epoll + read + proc + send.
    const double mc_per_request =
        kEpollBaseUs + kEpollPerJobUs + kSocketBaseUs +
        128.0 * kSocketReadPerByteNs * 1e-3 + kMemcachedReadUs +
        kSocketBaseUs + 128.0 * kSocketSendPerByteNs * 1e-3;
    const SweepCurve mc_bighouse =
        bigHouseSweep("bighouse", mc_per_request, 4, mc_loads);
    bench::printCurves({mc_uqsim, mc_bighouse});
    std::printf("gap: BigHouse saturates at %.0f vs uqsim %.0f qps "
                "(ratio %.2f; BigHouse earlier)\n\n",
                mc_bighouse.saturationQps(), mc_uqsim.saturationQps(),
                mc_uqsim.saturationQps() /
                    std::max(1.0, mc_bighouse.saturationQps()));

    // ---------------- NGINX panel ----------------
    bench::banner("Fig. 13 (nginx)",
                  "uqsim vs BigHouse: single-process NGINX webserver");
    const std::vector<double> web_loads = linspace(2000.0, 12000.0, 6);
    const SweepCurve web_uqsim = bench::parallelSweep(
        "uqsim", web_loads, [&](double qps, std::uint64_t seed) {
            NginxOptions options;
            options.serviceName = "nginx_web";
            options.workers = 1;
            return Simulation::fromBundle(singleServiceBundle(
                nginxWebserverJson(options), "nginx_web", "serve",
                qps, seed));
        });
    const double web_per_request =
        kEpollBaseUs + kEpollPerJobUs + kSocketBaseUs +
        128.0 * kSocketReadPerByteNs * 1e-3 + kNginxStaticUs +
        kSocketBaseUs + 128.0 * kSocketSendPerByteNs * 1e-3;
    const SweepCurve web_bighouse =
        bigHouseSweep("bighouse", web_per_request, 1, web_loads);
    bench::printCurves({web_uqsim, web_bighouse});

    bench::paperNote(
        "BigHouse saturates at much lower load than the real system "
        "because the batched epoll cost is charged to every request; "
        "uqsim amortizes it.  The effect is strongest when epoll cost "
        "is comparable to request processing (memcached); for NGINX "
        "(~105 us static serving) the overhead fraction — and thus "
        "the gap — is smaller in our calibration.");
    return 0;
}
