/**
 * @file
 * Extension study: DVFS granularity (the paper's future-work note).
 *
 * §V-B observes that tail latency converges near 2 ms despite the
 * 5 ms QoS target because the discrete DVFS steps quantize the
 * achievable processing speeds, and suggests finer-grained
 * mechanisms (RAPL) would close the gap.  This bench re-runs the
 * power-managed 2-tier application with 8 steps (classic DVFS), 15
 * and 57 steps (RAPL-like), comparing the converged tail, violation
 * rate, and energy savings.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "uqsim/models/applications.h"
#include "uqsim/power/energy_model.h"
#include "uqsim/power/power_manager.h"

using namespace uqsim;

namespace {

struct GranularityResult {
    double convergedTailMs = 0.0;
    double violationRate = 0.0;
    double energySavings = 0.0;
    double meanFreqGhz = 0.0;
};

GranularityResult
runWithSteps(int dvfs_steps)
{
    models::PowerTwoTierParams params;
    params.run.seed = 7;
    params.run.warmupSeconds = 1.0;
    params.run.durationSeconds = 90.0;
    params.dvfsSteps = dvfs_steps;
    auto simulation =
        Simulation::fromBundle(models::powerTwoTierBundle(params));

    power::PowerManagerConfig config;
    config.intervalSeconds = 0.5;
    config.qosTargetSeconds = 5e-3;
    // Keep the *frequency delta* of a violation reaction comparable
    // across granularities: finer tables get proportionally more
    // steps per decision, or the controller cannot climb out of a
    // ramp (a real step-size/control-law interaction).
    config.speedUpSteps = std::max(1, dvfs_steps / 8);
    config.slowDownSteps = std::max(1, dvfs_steps / 16);
    power::PowerManager manager(
        simulation->sim(), config,
        {{"nginx",
          {simulation->deployment().instance("nginx", 0).dvfs()}},
         {"memcached",
          {simulation->deployment()
               .instance("memcached", 0)
               .dvfs()}}});
    simulation->setCompletionListener(
        [&](const Job&, double seconds) {
            manager.noteEndToEnd(seconds);
        });
    simulation->setTierListener(
        [&](const std::string& tier, double seconds) {
            manager.noteTierLatency(tier, seconds);
        });
    power::EnergyTracker front_energy(
        simulation->sim(),
        *simulation->deployment().instance("nginx", 0).dvfs(), 2);
    power::EnergyTracker back_energy(
        simulation->sim(),
        *simulation->deployment().instance("memcached", 0).dvfs(), 2);
    manager.start();
    simulation->run();

    GranularityResult result;
    // "Converged" tail: mean of the per-window p99 over the second
    // half of the run.
    result.convergedTailMs =
        manager.tailSeries().meanOver(45.0, 90.0);
    result.violationRate = manager.violationRate();
    result.energySavings = (front_energy.savingsFraction() +
                            back_energy.savingsFraction()) /
                           2.0;
    result.meanFreqGhz =
        (manager.frequencySeries("nginx").meanOver(45.0, 90.0) +
         manager.frequencySeries("memcached").meanOver(45.0, 90.0)) /
        2.0;
    return result;
}

}  // namespace

int
main()
{
    bench::banner("Ablation (DVFS granularity)",
                  "Algorithm 1 with coarse DVFS vs RAPL-like "
                  "fine-grained steps, 5 ms p99 target");
    std::printf("%8s %16s %14s %12s %14s\n", "steps",
                "converged_p99", "violations", "mean_GHz",
                "energy_saved");
    for (int steps : {8, 15, 57}) {
        const GranularityResult result = runWithSteps(steps);
        std::printf("%8d %13.2f ms %13.1f%% %12.2f %13.0f%%\n", steps,
                    result.convergedTailMs,
                    result.violationRate * 100.0, result.meanFreqGhz,
                    result.energySavings * 100.0);
    }
    bench::paperNote(
        "the paper observes the tail converging well below the 5 ms "
        "target because discrete DVFS steps quantize the achievable "
        "speeds, and expects finer-grained mechanisms (RAPL) to help. "
        "Measured: at matched per-decision frequency deltas, finer "
        "steps cut the violation rate substantially (the controller "
        "lands on a sustainable speed instead of oscillating across "
        "a coarse boundary) but Algorithm 1's conservative slack rule "
        "then parks at a higher mean frequency, trading some of the "
        "energy savings for that reliability — granularity moves the "
        "violations/energy frontier rather than improving both.");
    return 0;
}
