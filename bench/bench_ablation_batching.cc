/**
 * @file
 * Ablation: how much capacity does per-stage batching buy, and what
 * does the worker scheduling policy (event-loop drain vs stage
 * order) change?  These are the two intra-microservice modeling
 * choices DESIGN.md calls out; BigHouse's error in Fig. 13 is the
 * batching one.
 */

#include <algorithm>

#include "bench_util.h"
#include "uqsim/models/applications.h"
#include "uqsim/models/stage_presets.h"

using namespace uqsim;

namespace {

enum class Variant { Batched, Unbatched, StageOrder };

ConfigBundle
makeBundle(double qps, std::uint64_t seed, double epoll_base_us,
           Variant variant)
{
    models::ThriftEchoParams params;
    params.run.qps = qps;
    params.run.seed = seed;
    params.run.warmupSeconds = 0.4;
    params.run.durationSeconds = 1.6;
    ConfigBundle bundle = models::thriftEchoBundle(params);
    // Raise the epoll base cost (the batching lever).
    json::JsonValue& stage0 =
        bundle.services[0].asObject()["stages"].asArray()[0];
    json::JsonValue base = json::JsonValue::makeObject();
    base.asObject()["type"] = "deterministic";
    base.asObject()["value"] = epoll_base_us * 1e-6;
    stage0.asObject()["service_time"].asObject()["base"] =
        std::move(base);
    if (variant == Variant::Unbatched) {
        for (json::JsonValue& stage :
             bundle.services[0].asObject()["stages"].asArray()) {
            stage.asObject()["queue_type"] = "single";
            stage.asObject()["batching"] = false;
            stage.asObject().erase("queue_parameter");
        }
    }
    if (variant == Variant::StageOrder) {
        for (json::JsonValue& svc :
             bundle.graph.asObject()["services"].asArray()) {
            for (json::JsonValue& inst :
                 svc.asObject()["instances"].asArray()) {
                inst.asObject()["scheduling"] = "stage_order";
            }
        }
    }
    return bundle;
}

SweepCurve
sweepVariant(const std::string& label, double epoll_base_us,
             Variant variant)
{
    return bench::parallelSweep(
        label, linspace(10000.0, 70000.0, 7),
        [&](double qps, std::uint64_t seed) {
            return Simulation::fromBundle(
                makeBundle(qps, seed, epoll_base_us, variant));
        });
}

}  // namespace

int
main()
{
    bench::banner("Ablation (batching)",
                  "Thrift echo with a 10 us epoll: batched vs "
                  "unbatched vs stage-order scheduling");
    const SweepCurve batched =
        sweepVariant("batched", 10.0, Variant::Batched);
    const SweepCurve unbatched =
        sweepVariant("unbatched", 10.0, Variant::Unbatched);
    const SweepCurve stage_order =
        sweepVariant("stage_order", 10.0, Variant::StageOrder);
    bench::printCurves({batched, unbatched, stage_order});

    // Per-request work besides epoll: read + echo proc + send.
    const double other_us = models::kSocketBaseUs +
                            128.0 * models::kSocketReadPerByteNs * 1e-3 +
                            models::kThriftEchoUs +
                            models::kSocketBaseUs +
                            128.0 * models::kSocketSendPerByteNs * 1e-3 +
                            models::kEpollPerJobUs;
    std::printf(
        "\nbatching raises capacity %.2fx (analytic bound %.2fx for "
        "8-deep batches with 10 us epoll + %.1f us per-request work)\n",
        batched.saturationQps() /
            std::max(1.0, unbatched.saturationQps()),
        (10.0 + other_us) / (10.0 / 8 + other_us), other_us);
    std::printf("drain vs stage-order scheduling: saturation %.0f vs "
                "%.0f qps (both work-conserving; drain mirrors the "
                "real event loop's latency profile)\n",
                batched.saturationQps(),
                stage_order.saturationQps());
    return 0;
}
