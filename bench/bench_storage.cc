/**
 * @file
 * Storage-model benchmark: the perf trajectory for shared-bandwidth
 * disk simulation.
 *
 * Two workloads, each repeated --reps times (median reported):
 *
 *  - disk_churn       raw hw::Disk stress: repeating waves of 8
 *                     concurrent readers and 4 concurrent writers on
 *                     one disk, every start and finish triggering an
 *                     incremental re-share.  Also asserts each
 *                     wave's per-op finish time matches the
 *                     equal-split closed form within 5%.
 *  - replay_stampede  the cache-stampede case study (cache tier in
 *                     front of a disk-backed store at 35% hit rate),
 *                     end to end through client, network, cache, and
 *                     the contended store disk.
 *
 * Each section prints its trace digest so disk-model changes can be
 * checked for bit-exact determinism.  Results are written as JSON
 * (default BENCH_storage.json, schema uqsim-bench-engine-v1) so CI
 * can compare events/sec against the committed baseline with
 * scripts/check_bench.py.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "uqsim/core/sim/simulation.h"
#include "uqsim/hw/disk.h"
#include "uqsim/json/json_value.h"
#include "uqsim/json/json_writer.h"
#include "uqsim/models/applications.h"

namespace {

using uqsim::json::JsonValue;

double
median(std::vector<double> values)
{
    std::sort(values.begin(), values.end());
    return values[values.size() / 2];
}

struct SectionResult {
    std::string name;
    std::uint64_t events = 0;
    double wallSeconds = 0.0;
    double eventsPerSec = 0.0;
    std::uint64_t digest = 0;
};

/**
 * Raw disk churn: @p waves waves of 8 reads and 4 writes submitted
 * simultaneously against one disk.  Every op start/finish re-shares
 * its direction's bandwidth, so this isolates the disk hot path from
 * the rest of the stack.  Verifies the equal-split closed form as it
 * runs: with all ops of a direction equal-sized and simultaneous,
 * each wave's direction drains in ops * bytes / capacity.
 */
SectionResult
runDiskChurn(int waves)
{
    using Clock = std::chrono::steady_clock;
    constexpr int kReaders = 8;
    constexpr int kWriters = 4;
    constexpr double kReadBps = 2e8;
    constexpr double kWriteBps = 1e8;
    constexpr std::uint64_t kBytes = 262144;

    uqsim::Simulator sim(2025);
    uqsim::hw::Disk::Config config;
    config.name = "bench";
    config.readBytesPerSecond = kReadBps;
    config.writeBytesPerSecond = kWriteBps;
    uqsim::hw::Disk disk(sim, "host", config);

    const double read_expect = kReaders * kBytes / kReadBps;
    const double write_expect = kWriters * kBytes / kWriteBps;
    int bad_ops = 0;
    std::function<void(int)> startWave;
    startWave = [&](int wave) {
        if (wave >= waves)
            return;
        auto pending = std::make_shared<int>(kReaders + kWriters);
        const uqsim::SimTime began = sim.now();
        auto submit = [&](uqsim::hw::Disk::OpKind kind,
                          double expected) {
            disk.submit(kind, kBytes, 0.0,
                        [&, pending, began, wave, expected]() {
                            const double elapsed =
                                uqsim::simTimeToSeconds(sim.now() -
                                                        began);
                            if (std::fabs(elapsed - expected) >
                                expected * 0.05)
                                ++bad_ops;
                            if (--*pending == 0)
                                startWave(wave + 1);
                        },
                        "bench/op");
        };
        for (int i = 0; i < kReaders; ++i)
            submit(uqsim::hw::Disk::OpKind::Read, read_expect);
        for (int i = 0; i < kWriters; ++i)
            submit(uqsim::hw::Disk::OpKind::Write, write_expect);
    };
    const auto start = Clock::now();
    sim.scheduleAt(0, [&]() { startWave(0); }, "bench/wave");
    sim.run();
    const double wall =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (bad_ops != 0) {
        std::fprintf(stderr,
                     "FATAL: %d ops outside 5%% of the equal-split "
                     "closed form\n",
                     bad_ops);
        std::exit(1);
    }
    SectionResult result;
    result.name = "disk_churn";
    result.events = sim.executedEvents();
    result.wallSeconds = wall;
    result.eventsPerSec = static_cast<double>(result.events) / wall;
    result.digest = sim.traceDigest();
    return result;
}

uqsim::ConfigBundle
stampedeBundle()
{
    uqsim::models::CacheStampedeParams params;
    params.run.qps = 3000.0;
    params.run.seed = 811;
    params.run.warmupSeconds = 0.25;
    params.run.durationSeconds = 2.0;
    params.run.clientConnections = 256;
    params.hitRate = 0.35;
    return uqsim::models::cacheStampedeBundle(params);
}

SectionResult
runReplay(const std::string& name, const uqsim::ConfigBundle& bundle)
{
    using Clock = std::chrono::steady_clock;
    auto simulation = uqsim::Simulation::fromBundle(bundle);
    const auto start = Clock::now();
    const uqsim::RunReport report = simulation->run();
    const double wall =
        std::chrono::duration<double>(Clock::now() - start).count();
    SectionResult result;
    result.name = name;
    result.events = report.events;
    result.wallSeconds = wall;
    result.eventsPerSec = static_cast<double>(report.events) / wall;
    result.digest = simulation->sim().traceDigest();
    return result;
}

SectionResult
best(std::vector<SectionResult> reps)
{
    std::vector<double> rates;
    rates.reserve(reps.size());
    for (const SectionResult& rep : reps)
        rates.push_back(rep.eventsPerSec);
    SectionResult result = reps.front();
    for (const SectionResult& rep : reps) {
        if (rep.digest != result.digest || rep.events != result.events) {
            std::fprintf(stderr,
                         "FATAL: %s not deterministic across reps\n",
                         result.name.c_str());
            std::exit(1);
        }
    }
    result.eventsPerSec = median(rates);
    result.wallSeconds =
        static_cast<double>(result.events) / result.eventsPerSec;
    return result;
}

}  // namespace

int
main(int argc, char** argv)
{
    int reps = 5;
    int waves = 100000;
    std::string out = "BENCH_storage.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
            reps = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out = argv[++i];
        } else if (std::strcmp(argv[i], "--quick") == 0) {
            reps = 2;
            waves = 10000;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--reps N] [--out FILE] [--quick]\n",
                         argv[0]);
            return 2;
        }
    }
    if (reps < 1)
        reps = 1;

    std::vector<SectionResult> sections;
    struct Spec {
        const char* name;
        std::function<SectionResult()> run;
    };
    const Spec specs[] = {
        {"disk_churn", [&]() { return runDiskChurn(waves); }},
        {"replay_stampede",
         []() {
             return runReplay("replay_stampede", stampedeBundle());
         }},
    };
    for (const Spec& spec : specs) {
        std::vector<SectionResult> rep_results;
        for (int r = 0; r < reps; ++r)
            rep_results.push_back(spec.run());
        const SectionResult section = best(std::move(rep_results));
        std::printf(
            "%-18s %10llu events  %8.3f s  %12.0f events/s  "
            "digest %016llx\n",
            section.name.c_str(),
            static_cast<unsigned long long>(section.events),
            section.wallSeconds, section.eventsPerSec,
            static_cast<unsigned long long>(section.digest));
        sections.push_back(section);
    }

    JsonValue doc = JsonValue::makeObject();
    doc.asObject()["schema"] = "uqsim-bench-engine-v1";
    doc.asObject()["reps"] = reps;
    JsonValue list = JsonValue::makeArray();
    for (const SectionResult& section : sections) {
        JsonValue entry = JsonValue::makeObject();
        entry.asObject()["name"] = section.name;
        entry.asObject()["events"] = section.events;
        entry.asObject()["wall_s"] = section.wallSeconds;
        entry.asObject()["events_per_sec"] = section.eventsPerSec;
        char digest[32];
        std::snprintf(digest, sizeof(digest), "%016llx",
                      static_cast<unsigned long long>(section.digest));
        entry.asObject()["trace_digest"] = digest;
        list.asArray().push_back(std::move(entry));
    }
    doc.asObject()["sections"] = std::move(list);
    std::ofstream file(out);
    file << uqsim::json::writePretty(doc) << "\n";
    if (!file) {
        std::fprintf(stderr, "failed to write %s\n", out.c_str());
        return 1;
    }
    std::printf("wrote %s\n", out.c_str());
    return 0;
}
