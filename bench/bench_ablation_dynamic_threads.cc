/**
 * @file
 * Ablation: the dynamic thread/process spawning policy (paper
 * §III-B offers static counts or a dynamic spawning policy).
 *
 * A Thrift server with 2 base workers faces a 4x load step.  The
 * static configuration saturates during the burst; the elastic one
 * spawns up to 8 workers (paying spawn latency and context-switch
 * cost when oversubscribed) and rides it out.
 */

#include <cstdio>

#include "bench_util.h"
#include "uqsim/json/json_parser.h"
#include "uqsim/models/applications.h"

using namespace uqsim;

namespace {

RunReport
runStep(bool elastic, Simulation** out = nullptr,
        std::unique_ptr<Simulation>* holder = nullptr)
{
    models::ThriftEchoParams params;
    params.run.warmupSeconds = 0.5;
    params.run.durationSeconds = 4.0;
    params.serverThreads = 2;
    ConfigBundle bundle = models::thriftEchoBundle(params);
    // Load step: 20 kQPS baseline, 160 kQPS burst in [1.5, 2.5) —
    // well past the ~104 kQPS two-worker capacity.
    bundle.client.asObject()["load"] = json::parse(R"({
        "type": "steps",
        "points": [[0, 20000], [1.5, 160000], [2.5, 20000]]})");
    if (elastic) {
        json::JsonValue policy = json::JsonValue::makeObject();
        policy.asObject()["max"] = 8;
        policy.asObject()["queue_threshold"] = 8;
        policy.asObject()["spawn_latency_us"] = 100.0;
        policy.asObject()["idle_timeout_ms"] = 5.0;
        bundle.services[0].asObject()["dynamic_threads"] =
            std::move(policy);
        // Give the instance dedicated cores for the spawned workers
        // (otherwise they would just oversubscribe the base cores).
        bundle.graph.asObject()["services"]
            .asArray()[0]
            .asObject()["instances"]
            .asArray()[0]
            .asObject()["cores"] = 8;
    }
    // More cores than base threads so spawned workers can run, and
    // a light irq so the burst stresses the server, not the NIC.
    json::JsonValue& machine =
        bundle.machines.asObject()["machines"].asArray()[0];
    machine.asObject()["cores"] = 12;
    machine.asObject()["irq_cores"] = 4;
    machine.asObject()["irq_per_packet_us"] = 2.0;
    auto simulation = Simulation::fromBundle(bundle);
    const RunReport report = simulation->run();
    if (holder != nullptr) {
        *holder = std::move(simulation);
        if (out != nullptr)
            *out = holder->get();
    }
    return report;
}

}  // namespace

int
main()
{
    bench::banner("Ablation (dynamic threads)",
                  "static 2-worker Thrift server vs elastic (2..8 "
                  "workers) under a 4x load step");
    std::unique_ptr<Simulation> static_sim, elastic_sim;
    Simulation* raw = nullptr;
    const RunReport fixed = runStep(false, &raw, &static_sim);
    const RunReport dynamic = runStep(true, &raw, &elastic_sim);

    std::printf("%-10s %12s %12s %12s %12s\n", "config",
                "achieved", "mean_ms", "p99_ms", "peak_thr");
    std::printf("%-10s %12.0f %12.3f %12.3f %12d\n", "static",
                fixed.achievedQps, fixed.endToEnd.meanMs,
                fixed.endToEnd.p99Ms,
                static_sim->deployment()
                    .instance("thrift_echo", 0)
                    .peakThreads());
    std::printf("%-10s %12.0f %12.3f %12.3f %12d\n", "elastic",
                dynamic.achievedQps, dynamic.endToEnd.meanMs,
                dynamic.endToEnd.p99Ms,
                elastic_sim->deployment()
                    .instance("thrift_echo", 0)
                    .peakThreads());
    std::printf(
        "\nthe 160 kQPS burst exceeds the ~104 kQPS 2-worker "
        "capacity: the static server builds a backlog for the whole "
        "burst second, while the elastic one spawns workers (100 us "
        "spawn latency) and keeps the tail bounded.  Off-burst, more "
        "pollers mean smaller epoll batches, so the elastic config "
        "pays slightly higher baseline latency — the classic "
        "elasticity-vs-efficiency trade.\n");
    return 0;
}
