/**
 * @file
 * Reproduces Fig. 14: the tail-at-scale effects of request fan-out
 * (paper §V-A, after Dean & Barroso).
 *
 * Clusters of 5..1000 one-stage servers (exponential ~1 ms service);
 * every request fans out to all servers and completes when the last
 * responds.  A configurable fraction of randomly chosen servers is
 * slow (10x mean service time).
 *
 * Expected shape: for a fixed slow fraction, larger clusters are
 * more likely to touch a slow server, so tail latency climbs with
 * cluster size; for clusters >= 100 servers, 1% slow servers is
 * sufficient to drive the tail high — consistent with the analytic
 * hit probability 1 - (1-p)^N.
 */

#include <cmath>

#include "bench_util.h"
#include "uqsim/models/applications.h"

using namespace uqsim;

int
main()
{
    bench::banner("Fig. 14",
                  "tail at scale: p99 latency vs cluster size and "
                  "slow-server fraction");
    const std::vector<int> clusters = {5, 10, 50, 100, 500, 1000};
    const std::vector<double> fractions = {0.0, 0.01, 0.05, 0.10};

    std::printf("%8s", "servers");
    for (double fraction : fractions)
        std::printf(" | %6.0f%%_p99ms %6.0f%%_hitP", fraction * 100,
                    fraction * 100);
    std::printf("\n");

    for (int cluster : clusters) {
        std::printf("%8d", cluster);
        for (double fraction : fractions) {
            models::TailAtScaleParams params;
            params.run.qps = 30.0;
            params.run.warmupSeconds = 0.5;
            // Longer runs for small clusters to stabilize p99.
            params.run.durationSeconds = cluster <= 100 ? 8.0 : 4.0;
            params.run.clientConnections = 64;
            params.run.seed =
                static_cast<std::uint64_t>(3 + cluster) +
                static_cast<std::uint64_t>(fraction * 1000.0);
            params.clusterSize = cluster;
            params.slowFraction = fraction;
            auto simulation = Simulation::fromBundle(
                models::tailAtScaleBundle(params));
            const RunReport report = simulation->run();
            const double hit_probability =
                1.0 - std::pow(1.0 - fraction, cluster);
            std::printf(" | %12.2f %12.2f",
                        report.endToEnd.p99Ms, hit_probability);
        }
        std::printf("\n");
    }

    bench::paperNote(
        "for the same slow fraction, larger clusters pin the tail to "
        "the slow machines; >= 100 servers with 1% slow is enough to "
        "drive tail latency high (hit probability 1-(1-p)^N -> 1).");
    return 0;
}
