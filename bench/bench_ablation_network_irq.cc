/**
 * @file
 * Ablation: the per-machine network (soft-irq) processing service.
 *
 * Fig. 8's 16-way load balancing saturates sub-linearly because the
 * proxy machine's irq cores saturate before the NGINX instances.
 * This bench re-runs the 16-way configuration with irq modeling
 * disabled (irq_cores = 0 on every machine) to quantify how much of
 * the knee the irq model explains.
 */

#include "bench_util.h"
#include "uqsim/models/applications.h"

using namespace uqsim;

namespace {

SweepCurve
sweepLb16(const std::string& label, bool disable_irq)
{
    return bench::parallelSweep(
        label, linspace(40000.0, 180000.0, 8),
        [&](double qps, std::uint64_t seed) {
            models::LoadBalancerParams params;
            params.run.qps = qps;
            params.run.seed = seed;
            params.run.warmupSeconds = 0.4;
            params.run.durationSeconds = 1.4;
            params.webServers = 16;
            ConfigBundle bundle = models::loadBalancerBundle(params);
            if (disable_irq) {
                for (json::JsonValue& machine :
                     bundle.machines.asObject()["machines"]
                         .asArray()) {
                    machine.asObject()["irq_cores"] = 0;
                }
            }
            return Simulation::fromBundle(bundle);
        });
}

}  // namespace

int
main()
{
    bench::banner("Ablation (network irq)",
                  "16-way load balancing with and without the "
                  "per-machine soft-irq service");
    const SweepCurve with_irq = sweepLb16("with_irq", false);
    const SweepCurve without_irq = sweepLb16("no_irq", true);
    bench::printCurves({with_irq, without_irq});

    std::printf(
        "\nwithout irq modeling the 16-way configuration scales to "
        "%.0f qps (leaf-bound); with it the knee is %.0f qps "
        "(irq-bound) — the sub-linear scaling in Fig. 8 comes from "
        "the irq service.\n",
        without_irq.saturationQps(), with_irq.saturationQps());
    return 0;
}
