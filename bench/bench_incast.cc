/**
 * @file
 * Flow-model benchmark: the perf trajectory for bandwidth-sharing
 * network simulation.
 *
 * Two workloads, each repeated --reps times (median reported):
 *
 *  - flow_churn     raw FlowModel stress: repeating incast waves on
 *                   an 8-sender star fabric, every start and finish
 *                   triggering an incremental max-min re-share.
 *                   Also asserts each wave's per-flow throughput is
 *                   within 5% of the analytical share cap/8.
 *  - replay_incast  the fan-out case study on a generated 4-ary,
 *                   4x-oversubscribed fat tree (64 hosts, flow
 *                   model), end to end through dispatcher, network,
 *                   IRQ, and instances.
 *
 * Each section prints its trace digest so FlowModel changes can be
 * checked for bit-exact determinism.  Results are written as JSON
 * (default BENCH_incast.json, schema uqsim-bench-engine-v1) so CI
 * can compare events/sec against the committed baseline with
 * scripts/check_bench.py.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "uqsim/core/sim/simulation.h"
#include "uqsim/hw/cluster.h"
#include "uqsim/hw/flow_model.h"
#include "uqsim/json/json_value.h"
#include "uqsim/json/json_writer.h"
#include "uqsim/models/applications.h"

namespace {

using uqsim::json::JsonValue;

double
median(std::vector<double> values)
{
    std::sort(values.begin(), values.end());
    return values[values.size() / 2];
}

struct SectionResult {
    std::string name;
    std::uint64_t events = 0;
    double wallSeconds = 0.0;
    double eventsPerSec = 0.0;
    std::uint64_t digest = 0;
};

/**
 * Raw flow churn: @p waves incast waves of 8 simultaneous senders
 * into one receiver NIC.  Every flow start/finish re-shares the
 * allocation, so this isolates the FlowModel hot path from the rest
 * of the stack.  Verifies the max-min acceptance bound as it runs.
 */
SectionResult
runFlowChurn(int waves)
{
    using Clock = std::chrono::steady_clock;
    constexpr int kSenders = 8;
    constexpr double kDownCap = 1.25e8;  // 1 Gb/s receiver NIC
    constexpr double kUpCap = 1.25e9;    // 10 Gb/s sender NICs
    constexpr std::uint32_t kBytes = 250000;

    uqsim::Simulator sim(2024);
    auto model = uqsim::hw::FlowModel::make();
    uqsim::hw::FlowModel* flow_model = model.get();
    const int down = flow_model->addLink({"down", kDownCap, 1e-6});
    for (int i = 0; i < kSenders; ++i) {
        const int up = flow_model->addLink(
            {"up" + std::to_string(i), kUpCap, 1e-6});
        flow_model->setRoute(1 + i, 0, {up, down});
    }
    uqsim::hw::Cluster cluster(sim, std::move(model));
    uqsim::hw::MachineConfig proto;
    proto.cores = 2;
    proto.irqCores = 0;
    proto.name = "recv";
    cluster.addMachine(proto);
    std::vector<uqsim::hw::Machine*> senders;
    for (int i = 0; i < kSenders; ++i) {
        proto.name = "send" + std::to_string(i);
        senders.push_back(&cluster.addMachine(proto));
    }
    uqsim::hw::Machine& receiver = cluster.machine("recv");

    const double share = kDownCap / kSenders;
    int bad_flows = 0;
    std::function<void(int)> startWave;
    startWave = [&](int wave) {
        if (wave >= waves)
            return;
        auto pending = std::make_shared<int>(kSenders);
        const uqsim::SimTime began = sim.now();
        for (int i = 0; i < kSenders; ++i) {
            cluster.network().transfer(
                senders[i], &receiver, kBytes,
                [&, pending, began, wave]() {
                    const double elapsed =
                        uqsim::simTimeToSeconds(sim.now() - began) -
                        2e-6;
                    const double throughput = kBytes / elapsed;
                    if (std::fabs(throughput - share) > share * 0.05)
                        ++bad_flows;
                    if (--*pending == 0)
                        startWave(wave + 1);
                });
        }
    };
    const auto start = Clock::now();
    sim.scheduleAt(0, [&]() { startWave(0); }, "incast/wave");
    sim.run();
    const double wall =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (bad_flows != 0) {
        std::fprintf(stderr,
                     "FATAL: %d flows outside 5%% of the analytical "
                     "max-min share\n",
                     bad_flows);
        std::exit(1);
    }
    SectionResult result;
    result.name = "flow_churn";
    result.events = sim.executedEvents();
    result.wallSeconds = wall;
    result.eventsPerSec = static_cast<double>(result.events) / wall;
    result.digest = sim.traceDigest();
    return result;
}

uqsim::ConfigBundle
incastBundle()
{
    uqsim::models::FanoutFatTreeParams params;
    params.run.qps = 600.0;
    params.run.seed = 907;
    params.run.warmupSeconds = 0.25;
    params.run.durationSeconds = 2.0;
    params.run.clientConnections = 128;
    params.fanout = 16;
    params.responseBytes = 64 * 1024;
    return uqsim::models::fanoutFatTreeBundle(params);
}

SectionResult
runReplay(const std::string& name, const uqsim::ConfigBundle& bundle)
{
    using Clock = std::chrono::steady_clock;
    auto simulation = uqsim::Simulation::fromBundle(bundle);
    const auto start = Clock::now();
    const uqsim::RunReport report = simulation->run();
    const double wall =
        std::chrono::duration<double>(Clock::now() - start).count();
    SectionResult result;
    result.name = name;
    result.events = report.events;
    result.wallSeconds = wall;
    result.eventsPerSec = static_cast<double>(report.events) / wall;
    result.digest = simulation->sim().traceDigest();
    return result;
}

SectionResult
best(std::vector<SectionResult> reps)
{
    std::vector<double> rates;
    rates.reserve(reps.size());
    for (const SectionResult& rep : reps)
        rates.push_back(rep.eventsPerSec);
    SectionResult result = reps.front();
    for (const SectionResult& rep : reps) {
        if (rep.digest != result.digest || rep.events != result.events) {
            std::fprintf(stderr,
                         "FATAL: %s not deterministic across reps\n",
                         result.name.c_str());
            std::exit(1);
        }
    }
    result.eventsPerSec = median(rates);
    result.wallSeconds =
        static_cast<double>(result.events) / result.eventsPerSec;
    return result;
}

}  // namespace

int
main(int argc, char** argv)
{
    int reps = 5;
    int waves = 50000;
    std::string out = "BENCH_incast.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
            reps = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out = argv[++i];
        } else if (std::strcmp(argv[i], "--quick") == 0) {
            reps = 2;
            waves = 5000;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--reps N] [--out FILE] [--quick]\n",
                         argv[0]);
            return 2;
        }
    }
    if (reps < 1)
        reps = 1;

    std::vector<SectionResult> sections;
    struct Spec {
        const char* name;
        std::function<SectionResult()> run;
    };
    const Spec specs[] = {
        {"flow_churn", [&]() { return runFlowChurn(waves); }},
        {"replay_incast",
         []() { return runReplay("replay_incast", incastBundle()); }},
    };
    for (const Spec& spec : specs) {
        std::vector<SectionResult> rep_results;
        for (int r = 0; r < reps; ++r)
            rep_results.push_back(spec.run());
        const SectionResult section = best(std::move(rep_results));
        std::printf(
            "%-18s %10llu events  %8.3f s  %12.0f events/s  "
            "digest %016llx\n",
            section.name.c_str(),
            static_cast<unsigned long long>(section.events),
            section.wallSeconds, section.eventsPerSec,
            static_cast<unsigned long long>(section.digest));
        sections.push_back(section);
    }

    JsonValue doc = JsonValue::makeObject();
    doc.asObject()["schema"] = "uqsim-bench-engine-v1";
    doc.asObject()["reps"] = reps;
    JsonValue list = JsonValue::makeArray();
    for (const SectionResult& section : sections) {
        JsonValue entry = JsonValue::makeObject();
        entry.asObject()["name"] = section.name;
        entry.asObject()["events"] = section.events;
        entry.asObject()["wall_s"] = section.wallSeconds;
        entry.asObject()["events_per_sec"] = section.eventsPerSec;
        char digest[32];
        std::snprintf(digest, sizeof(digest), "%016llx",
                      static_cast<unsigned long long>(section.digest));
        entry.asObject()["trace_digest"] = digest;
        list.asArray().push_back(std::move(entry));
    }
    doc.asObject()["sections"] = std::move(list);
    std::ofstream file(out);
    file << uqsim::json::writePretty(doc) << "\n";
    if (!file) {
        std::fprintf(stderr, "failed to write %s\n", out.c_str());
        return 1;
    }
    std::printf("wrote %s\n", out.c_str());
    return 0;
}
